//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::Rng;
use std::ops::{Range, RangeInclusive};

/// Acceptable length specifications for [`vec`].
pub trait SizeRange {
    /// Draws a length.
    fn pick(&self, rng: &mut Rng) -> usize;
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut Rng) -> usize {
        assert!(self.start < self.end, "empty vec length range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut Rng) -> usize {
        assert!(self.start() <= self.end(), "empty vec length range");
        self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
    }
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut Rng) -> usize {
        *self
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

/// A `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Option<Vec<S::Value>> {
        let len = self.size.pick(rng);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Some(out)
    }
}
