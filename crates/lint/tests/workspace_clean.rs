//! The meta-test: the workspace's own source must pass its own lint,
//! in-process, with every surviving allow carrying a justification.
//! This is the same gate CI runs, so a rule regression or a new
//! unjustified suppression fails `cargo test` locally first.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = tcpa_lint::check_workspace(&root).expect("Lint.toml must load");
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        report.render_human()
    );
    assert!(
        report.files_checked > 50,
        "walk looks truncated: only {} files",
        report.files_checked
    );
    for allow in &report.allowed {
        assert!(
            !allow.justification.trim().is_empty(),
            "{}:{} allows {} without a justification",
            allow.path,
            allow.line,
            allow.rule
        );
    }
}
