// PathSpec scenarios are configured field-by-field from the default so
// each deviation reads as one labelled line.
#![allow(clippy::field_reassign_with_default)]

//! Zero-window probing: a slow-reading application closes the offered
//! window; the sender's persist timer probes it; window updates reopen
//! it; the transfer still completes exactly.

use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::{Connection, Dir, Duration};

fn slow_reader(rate: u64) -> tcpa_tcpsim::TcpConfig {
    let mut cfg = profiles::reno();
    cfg.app_read_rate = Some(rate);
    cfg
}

#[test]
fn slow_reader_transfer_completes() {
    // The app reads at 16 KB/s over a path that can carry far more: the
    // window, not the network, is the bottleneck.
    let out = run_transfer(
        profiles::reno(),
        slow_reader(16 * 1024),
        &PathSpec::default(),
        64 * 1024,
        51,
    );
    assert!(out.completed, "window-limited transfer still completes");
    assert_eq!(out.sender_stats.bytes_acked, 64 * 1024 + 1);
    // The whole transfer takes about bytes/rate seconds.
    assert!(
        out.finished_at > tcpa_trace::Time::from_secs(3),
        "app-limited pace, finished at {}",
        out.finished_at
    );
}

#[test]
fn window_closes_and_probes_flow() {
    // A very slow reader with a buffer that is an exact MSS multiple:
    // the sender can fill it to the byte, the window hits zero, and the
    // persist timer must carry the connection (drain of 2 MSS takes
    // ~11 s, i.e. beyond the 5 s initial persist delay).
    let mut receiver = slow_reader(512);
    receiver.recv_window = 4 * 1460;
    let out = run_transfer(
        profiles::reno(),
        receiver,
        &PathSpec::default(),
        16 * 1024,
        52,
    );
    assert!(out.completed);
    assert!(
        out.sender_stats.zero_window_probes > 0,
        "persist timer must have fired"
    );
    // (At 512 B/s the app has drained a probe's worth by the time the
    // 5 s persist fires, so probes are *accepted*; outright rejection is
    // exercised by the frozen reader below.)
    assert!(
        out.receiver_stats.window_updates_sent > 0,
        "reopened windows must be advertised"
    );
    // The advertised window collapses below one segment (a continuously
    // draining reader rarely advertises exactly 0 at ack time; the
    // frozen-reader test below pins the exact-zero case).
    let conn = Connection::split(&out.sender_trace()).remove(0);
    let tiny_wins = conn
        .in_dir(Dir::ReceiverToSender)
        .filter(|r| r.tcp.flags.ack() && !r.tcp.flags.syn() && u32::from(r.tcp.window) < 1460)
        .count();
    assert!(tiny_wins > 0, "receiver's window collapsed below one MSS");
}

#[test]
fn persist_backoff_grows() {
    // Freeze the reader entirely partway: probes must space out
    // exponentially (5 s, 10 s, 20 s … capped).
    let mut receiver = slow_reader(0); // frozen application
    receiver.recv_window = 4 * 1460; // exact MSS multiple: closes fully
    let mut extras = tcpa_tcpsim::harness::Extras::default();
    extras.horizon = Some(tcpa_trace::Time::from_secs(120));
    let out = tcpa_tcpsim::harness::run_transfer_with(
        profiles::reno(),
        receiver,
        &PathSpec::default(),
        32 * 1024,
        53,
        &extras,
    );
    // Not expected to complete in 120 s at 1 B/s; that's fine.
    let conn = Connection::split(&out.sender_trace()).remove(0);
    let probes: Vec<_> = conn
        .in_dir(Dir::SenderToReceiver)
        .filter(|r| r.payload_len == 1)
        .map(|r| r.ts)
        .collect();
    assert!(probes.len() >= 3, "got {} probes", probes.len());
    let gap1 = probes[1] - probes[0];
    let gap2 = probes[2] - probes[1];
    assert!(
        gap2 > gap1 + Duration::from_secs(1),
        "backoff must grow: {gap1} then {gap2}"
    );
    assert!(
        out.receiver_stats.window_rejected > 0,
        "a frozen reader discards probes into the shut window"
    );
    let zero_wins = conn
        .in_dir(Dir::ReceiverToSender)
        .filter(|r| r.tcp.flags.ack() && !r.tcp.flags.syn() && r.tcp.window == 0)
        .count();
    assert!(zero_wins > 0, "frozen reader advertises window 0");
}

#[test]
fn fast_reader_is_unaffected() {
    // A reader faster than the link never dents the window.
    let out = run_transfer(
        profiles::reno(),
        slow_reader(10_000_000),
        &PathSpec::default(),
        64 * 1024,
        54,
    );
    assert!(out.completed);
    assert_eq!(out.sender_stats.zero_window_probes, 0);
    let conn = Connection::split(&out.sender_trace()).remove(0);
    assert!(conn
        .in_dir(Dir::ReceiverToSender)
        .all(|r| !r.tcp.flags.ack() || r.tcp.window > 0));
}

#[test]
fn keepalives_probe_an_idle_connection() {
    use tcpa_tcpsim::harness::{run_transfer_with, Extras};
    // Sender pauses mid-transfer for 30 s; 5 s keep-alive interval.
    let mut sender = profiles::reno();
    sender.keepalive_interval = Some(Duration::from_secs(5));
    let extras = Extras {
        quench_at: vec![],
        horizon: None,
        sender_pause: Some((16 * 1024, Duration::from_secs(30))),
    };
    let out = run_transfer_with(
        sender,
        profiles::reno(),
        &PathSpec::default(),
        48 * 1024,
        90,
        &extras,
    );
    assert!(out.completed, "transfer resumes after the pause");
    assert!(
        out.sender_stats.keepalives_sent >= 3,
        "~30 s idle / 5 s interval, got {}",
        out.sender_stats.keepalives_sent
    );
    // Each probe drew a duplicate ack from the live peer.
    let conn = Connection::split(&out.sender_trace()).remove(0);
    let probes = conn
        .in_dir(Dir::SenderToReceiver)
        .filter(|r| !r.is_data() && !r.tcp.flags.syn() && !r.tcp.flags.fin())
        .filter(|r| r.tcp.flags.ack())
        .count();
    assert!(probes >= 3, "probes on the wire: {probes}");
}

#[test]
fn no_keepalives_without_idle_or_config() {
    let out = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &PathSpec::default(),
        48 * 1024,
        91,
    );
    assert_eq!(out.sender_stats.keepalives_sent, 0);
}
