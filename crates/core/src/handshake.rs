//! Connection-establishment analysis: SYN retransmission timers.
//!
//! The paper's predecessors probed exactly this: Comer & Lin's active
//! probing measured initial retransmission timeouts \[CL94\], and Stevens
//! found remote TCPs that "did not correctly back off their
//! connection-establishment retry timer" (§2). Passive traces carry the
//! same evidence whenever a SYN or SYN-ack goes unanswered: the spacing
//! of the retries *is* the connection-establishment timer.
//!
//! This module extracts the retry schedule from a trace and checks it
//! against a candidate [`TcpConfig`]'s `syn_rto`: the first gap estimates
//! the initial value, and gap ratios reveal whether the timer backs off
//! exponentially (per the standard), stays flat (Stevens's broken
//! clients), or restarts.

use tcpa_tcpsim::config::TcpConfig;
use tcpa_trace::{Connection, Dir, Duration, Time};

/// How the retry schedule evolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackoffShape {
    /// Gaps grow multiplicatively (standard exponential backoff).
    Exponential,
    /// Gaps stay roughly constant — §2's "did not correctly back off".
    Flat,
    /// Gaps shrink or wander; no coherent scheme.
    Erratic,
    /// Fewer than two gaps: shape unknowable.
    Unknown,
}

/// Extracted SYN-retry behavior for the connection initiator.
#[derive(Debug, Clone)]
pub struct HandshakeAnalysis {
    /// Times each initial SYN (same sequence number) was sent.
    pub syn_times: Vec<Time>,
    /// Gaps between successive SYNs.
    pub gaps: Vec<Duration>,
    /// The first retry gap — the initial connection RTO.
    pub initial_rto: Option<Duration>,
    /// The backoff shape.
    pub shape: BackoffShape,
}

impl HandshakeAnalysis {
    /// Number of retransmitted SYNs.
    pub fn retries(&self) -> usize {
        self.syn_times.len().saturating_sub(1)
    }

    /// Whether the observed schedule is consistent with `cfg`'s
    /// connection timer: the first gap within a factor of two of
    /// `syn_rto` (coarse timers round heavily) and, when more gaps exist,
    /// a growing schedule.
    pub fn consistent_with(&self, cfg: &TcpConfig) -> bool {
        match self.initial_rto {
            None => true, // no retries: nothing to contradict
            Some(first) => {
                let expect = cfg.syn_rto.as_nanos() as f64;
                let got = first.as_nanos() as f64;
                let ratio = got / expect;
                (0.5..=2.5).contains(&ratio) && self.shape != BackoffShape::Erratic
            }
        }
    }
}

/// Extracts the initiator's SYN schedule from a connection. Returns
/// `None` when the trace contains no SYN from the data sender.
pub fn analyze_handshake(conn: &Connection) -> Option<HandshakeAnalysis> {
    let syn_times: Vec<Time> = conn
        .in_dir(Dir::SenderToReceiver)
        .filter(|r| r.tcp.flags.syn() && !r.tcp.flags.ack())
        .map(|r| r.ts)
        .collect();
    if syn_times.is_empty() {
        return None;
    }
    let gaps: Vec<Duration> = syn_times.windows(2).map(|w| w[1] - w[0]).collect();
    let initial_rto = gaps.first().copied();
    let shape = classify_shape(&gaps);
    Some(HandshakeAnalysis {
        syn_times,
        gaps,
        initial_rto,
        shape,
    })
}

fn classify_shape(gaps: &[Duration]) -> BackoffShape {
    if gaps.len() < 2 {
        return BackoffShape::Unknown;
    }
    let ratios: Vec<f64> = gaps
        .windows(2)
        .map(|w| w[1].as_nanos() as f64 / (w[0].as_nanos() as f64).max(1.0))
        .collect();
    if ratios.iter().all(|&r| r >= 1.5) {
        BackoffShape::Exponential
    } else if ratios.iter().all(|&r| (0.7..1.5).contains(&r)) {
        BackoffShape::Flat
    } else {
        BackoffShape::Erratic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpa_tcpsim::profiles;
    use tcpa_trace::{Trace, TraceRecord};
    use tcpa_wire::{IpProtocol, Ipv4Addr, Ipv4Repr, SeqNum, TcpFlags, TcpRepr};

    fn syn_at(ts_ms: i64) -> TraceRecord {
        TraceRecord {
            ts: Time::from_millis(ts_ms),
            ip: Ipv4Repr {
                src: Ipv4Addr::from_host_id(1),
                dst: Ipv4Addr::from_host_id(2),
                protocol: IpProtocol::Tcp,
                ttl: 64,
                ident: 0,
                payload_len: 20,
            },
            tcp: TcpRepr {
                seq: SeqNum(1000),
                flags: TcpFlags::SYN,
                ..TcpRepr::new(5001, 5002)
            },
            payload_len: 0,
            checksum_ok: Some(true),
        }
    }

    fn data_at(ts_ms: i64) -> TraceRecord {
        let mut r = syn_at(ts_ms);
        r.tcp.flags = TcpFlags::ACK;
        r.tcp.seq = SeqNum(1001);
        r.payload_len = 512;
        r.ip.payload_len = 532;
        r
    }

    fn conn(records: Vec<TraceRecord>) -> Connection {
        let trace: Trace = records.into_iter().collect();
        Connection::split(&trace).remove(0)
    }

    #[test]
    fn exponential_schedule_extracted() {
        let c = conn(vec![
            syn_at(0),
            syn_at(6000),
            syn_at(18_000),
            syn_at(42_000),
            data_at(43_000),
        ]);
        let h = analyze_handshake(&c).unwrap();
        assert_eq!(h.retries(), 3);
        assert_eq!(h.initial_rto, Some(Duration::from_secs(6)));
        assert_eq!(h.shape, BackoffShape::Exponential);
        assert!(h.consistent_with(&profiles::reno()));
    }

    #[test]
    fn flat_schedule_flagged() {
        // Stevens's broken clients: retries at a constant interval.
        let c = conn(vec![
            syn_at(0),
            syn_at(1000),
            syn_at(2000),
            syn_at(3000),
            data_at(3500),
        ]);
        let h = analyze_handshake(&c).unwrap();
        assert_eq!(h.shape, BackoffShape::Flat);
        assert!(
            !h.consistent_with(&profiles::reno()),
            "1 s flat retries are not BSD's 6 s doubling timer"
        );
    }

    #[test]
    fn no_retries_is_vacuously_consistent() {
        let c = conn(vec![syn_at(0), data_at(100)]);
        let h = analyze_handshake(&c).unwrap();
        assert_eq!(h.retries(), 0);
        assert_eq!(h.shape, BackoffShape::Unknown);
        assert!(h.consistent_with(&profiles::reno()));
        assert!(h.consistent_with(&profiles::solaris_2_4()));
    }

    #[test]
    fn missing_syn_yields_none() {
        let c = conn(vec![data_at(0), data_at(10)]);
        assert!(analyze_handshake(&c).is_none());
    }

    #[test]
    fn erratic_schedule_rejected() {
        let c = conn(vec![
            syn_at(0),
            syn_at(6000),
            syn_at(7000), // shrank: no sane timer does this
            data_at(8000),
        ]);
        let h = analyze_handshake(&c).unwrap();
        assert_eq!(h.shape, BackoffShape::Erratic);
        assert!(!h.consistent_with(&profiles::reno()));
    }
}
