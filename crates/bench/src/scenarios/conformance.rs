//! The §2 companion: a \[CL94\]-style conformance matrix.
//!
//! Comer & Lin probed implementations for their initial retransmission
//! timeouts, keep-alive strategies and zero-window probing; Dawson et
//! al. added timer management and RST-on-give-up. The paper's point is
//! that *passive traces carry the same evidence*; this scenario derives
//! the whole matrix from traces alone.

use crate::{Section, TextTable};
use tcpa_netsim::LossModel;
use tcpa_tcpsim::harness::{run_transfer, run_transfer_with, Extras, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::{Connection, Duration, Time};
use tcpanaly::handshake::analyze_handshake;

/// Measures one implementation's connection-management behaviors from
/// three targeted traces.
struct Row {
    name: &'static str,
    initial_syn_rto: String,
    syn_backoff: String,
    zero_window: String,
    keepalive: String,
}

fn probe(cfg: tcpa_tcpsim::TcpConfig) -> Row {
    let name = cfg.name;

    // (1) SYN retry schedule: lose the first two SYNs.
    let mut path = PathSpec::default();
    path.loss_data = LossModel::DropList(vec![0, 1]);
    let out = run_transfer(cfg.clone(), profiles::reno(), &path, 8 * 1024, 900);
    let conn = Connection::split(&out.sender_trace()).remove(0);
    let (initial_syn_rto, syn_backoff) = match analyze_handshake(&conn) {
        Some(h) if h.retries() > 0 => (
            h.initial_rto
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
            format!("{:?}", h.shape),
        ),
        _ => ("-".into(), "-".into()),
    };

    // (2) Zero-window probing against a frozen reader.
    let mut receiver = profiles::reno();
    receiver.app_read_rate = Some(0);
    receiver.recv_window = 4 * 1460;
    let extras = Extras {
        quench_at: vec![],
        horizon: Some(Time::from_secs(90)),
        sender_pause: None,
    };
    let out = run_transfer_with(
        cfg.clone(),
        receiver,
        &PathSpec::default(),
        32 * 1024,
        901,
        &extras,
    );
    let zero_window = if out.sender_stats.zero_window_probes > 0 {
        format!("probes ({}x)", out.sender_stats.zero_window_probes)
    } else {
        "none seen".into()
    };

    // (3) Keep-alives across a 30 s application pause (5 s interval
    // configured so the behavior is observable in a short trace).
    let mut ka = cfg.clone();
    ka.keepalive_interval = Some(Duration::from_secs(5));
    let extras = Extras {
        quench_at: vec![],
        horizon: None,
        sender_pause: Some((8 * 1024, Duration::from_secs(30))),
    };
    let out = run_transfer_with(
        ka,
        profiles::reno(),
        &PathSpec::default(),
        24 * 1024,
        902,
        &extras,
    );
    let keepalive = if out.sender_stats.keepalives_sent > 0 {
        format!("probes ({}x)", out.sender_stats.keepalives_sent)
    } else {
        "none seen".into()
    };

    Row {
        name,
        initial_syn_rto,
        syn_backoff,
        zero_window,
        keepalive,
    }
}

/// Runs the matrix over a representative profile subset.
pub fn run() -> Section {
    let subset = vec![
        profiles::reno(),
        profiles::tahoe(),
        profiles::solaris_2_4(),
        profiles::linux_1_0(),
        profiles::trumpet_winsock(),
    ];
    let mut table = TextTable::new(&[
        "implementation",
        "initial SYN RTO",
        "SYN backoff",
        "zero-window",
        "keep-alive",
    ]);
    let mut all_probed = true;
    let mut exponential = 0;
    for cfg in subset {
        let row = probe(cfg);
        if row.zero_window == "none seen" || row.keepalive == "none seen" {
            all_probed = false;
        }
        if row.syn_backoff.contains("Exponential") {
            exponential += 1;
        }
        table.row(vec![
            row.name.into(),
            row.initial_syn_rto,
            row.syn_backoff,
            row.zero_window,
            row.keepalive,
        ]);
    }
    Section {
        id: "§2 companion".into(),
        title: "Connection-management conformance from passive traces".into(),
        paper_claim: "[CL94] actively probed initial RTOs, keep-alive strategies and \
                      zero-window probing; [DJM97] added timer management and give-up \
                      behavior. The paper argues passive trace analysis can recover \
                      the same facts ('one can combine active techniques … with \
                      automated analysis of traces of the results')."
            .into(),
        params: "Per implementation: (1) two lost SYNs expose the connection timer; \
                 (2) a frozen reader exposes zero-window probing; (3) a 30 s \
                 application pause with a 5 s keep-alive interval exposes keep-alives"
            .into(),
        body: table.render(),
        measured: vec![
            (
                "all implementations probe shut windows & idle peers".into(),
                all_probed.to_string(),
            ),
            ("exponential SYN backoff".into(), format!("{exponential}/5")),
        ],
        verdict: if all_probed && exponential == 4 {
            "REPRODUCED: the [CL94]/[DJM97] conformance matrix falls out of passive traces alone — including Trumpet's flat (non-backing-off) connection retry, the [St96] bug.".into()
        } else {
            format!("PARTIAL: probed={all_probed}, exponential={exponential}/5")
        },
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn conformance_matrix_reproduces() {
        let s = super::run();
        assert!(
            s.verdict.starts_with("REPRODUCED"),
            "{}\n{}",
            s.verdict,
            s.body
        );
    }
}
