//! Trace records: one captured packet, and whole traces.

use crate::time::Time;
use tcpa_wire::{Ipv4Repr, SeqNum, TcpRepr};

/// One TCP/IP packet as recorded by a packet filter.
///
/// The record holds decoded headers rather than raw bytes — the analyzer
/// never needs the payload contents, only its length and (when available)
/// whether its checksum verified. This mirrors the paper's situation, where
/// most traces were captured with a snap length that kept headers only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The packet filter's timestamp for this packet.
    pub ts: Time,
    /// Decoded IPv4 header.
    pub ip: Ipv4Repr,
    /// Decoded TCP header (options included).
    pub tcp: TcpRepr,
    /// TCP payload length in bytes, as computed from the IP total length
    /// (valid even when the payload itself was not captured).
    pub payload_len: u32,
    /// `Some(true)` / `Some(false)` when the full packet was captured and
    /// its TCP checksum verified / failed; `None` when the capture was
    /// header-only and the checksum could not be checked (§7: corruption
    /// must then be inferred from receiver behavior).
    pub checksum_ok: Option<bool>,
}

impl TraceRecord {
    /// Sequence space this packet occupies: payload bytes plus one unit
    /// each for SYN and FIN.
    pub fn seq_len(&self) -> u32 {
        let mut len = self.payload_len;
        if self.tcp.flags.syn() {
            len += 1;
        }
        if self.tcp.flags.fin() {
            len += 1;
        }
        len
    }

    /// First sequence number occupied.
    pub fn seq_lo(&self) -> SeqNum {
        self.tcp.seq
    }

    /// One past the last sequence number occupied.
    pub fn seq_hi(&self) -> SeqNum {
        self.tcp.seq + self.seq_len()
    }

    /// `true` when the packet carries payload bytes.
    pub fn is_data(&self) -> bool {
        self.payload_len > 0
    }

    /// `true` for a payload-free ACK that is not a SYN/FIN/RST.
    pub fn is_pure_ack(&self) -> bool {
        self.payload_len == 0
            && self.tcp.flags.ack()
            && !self.tcp.flags.syn()
            && !self.tcp.flags.fin()
            && !self.tcp.flags.rst()
    }

    /// A compact single-line rendering, in the spirit of tcpdump output.
    pub fn render(&self) -> String {
        format!(
            "{} {}:{} > {}:{} {} seq {} len {} ack {} win {}",
            self.ts,
            self.ip.src,
            self.tcp.src_port,
            self.ip.dst,
            self.tcp.dst_port,
            self.tcp.flags,
            self.tcp.seq,
            self.payload_len,
            self.tcp.ack,
            self.tcp.window,
        )
    }
}

/// The full sequence of records one measurement point produced, in the
/// order the filter wrote them (which, per §3.1.3, is *not* necessarily the
/// order events occurred on the wire).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Records in filter order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record.
    pub fn push(&mut self, rec: TraceRecord) {
        self.records.push(rec);
    }

    /// Iterates over records.
    pub fn iter(&self) -> core::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// The timestamp of the first record, if any.
    pub fn start_time(&self) -> Option<Time> {
        self.records.first().map(|r| r.ts)
    }

    /// Rebases all timestamps so the first record is at `Time::ZERO`.
    /// Reporting helper; analysis never requires it.
    pub fn rebase(&mut self) {
        if let Some(t0) = self.start_time() {
            for rec in &mut self.records {
                rec.ts = Time(rec.ts.0 - t0.0);
            }
        }
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceRecord>>(iter: T) -> Self {
        Trace {
            records: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use tcpa_wire::{IpProtocol, Ipv4Addr, TcpFlags};

    /// Builds a minimal record for tests: `src`/`dst` host ids, flags, seq,
    /// payload length, ack.
    pub fn rec(
        ts_ms: i64,
        src: u8,
        dst: u8,
        flags: TcpFlags,
        seq: u32,
        len: u32,
        ack: u32,
    ) -> TraceRecord {
        TraceRecord {
            ts: Time::from_millis(ts_ms),
            ip: Ipv4Repr {
                src: Ipv4Addr::from_host_id(src),
                dst: Ipv4Addr::from_host_id(dst),
                protocol: IpProtocol::Tcp,
                ttl: 64,
                ident: 0,
                payload_len: 20 + len as usize,
            },
            tcp: TcpRepr {
                src_port: 5000 + u16::from(src),
                dst_port: 5000 + u16::from(dst),
                seq: SeqNum(seq),
                ack: SeqNum(ack),
                flags,
                window: 8192,
                urgent: 0,
                options: Vec::new(),
            },
            payload_len: len,
            checksum_ok: Some(true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::rec;
    use super::*;
    use tcpa_wire::TcpFlags;

    #[test]
    fn seq_space_accounts_for_syn_and_fin() {
        let syn = rec(0, 1, 2, TcpFlags::SYN, 100, 0, 0);
        assert_eq!(syn.seq_len(), 1);
        assert_eq!(syn.seq_hi(), SeqNum(101));

        let data = rec(1, 1, 2, TcpFlags::ACK, 101, 512, 1);
        assert_eq!(data.seq_len(), 512);
        assert_eq!(data.seq_hi(), SeqNum(613));

        let fin = rec(2, 1, 2, TcpFlags::ACK | TcpFlags::FIN, 613, 0, 1);
        assert_eq!(fin.seq_len(), 1);
    }

    #[test]
    fn classification_predicates() {
        let data = rec(0, 1, 2, TcpFlags::ACK, 1, 512, 1);
        assert!(data.is_data());
        assert!(!data.is_pure_ack());

        let ack = rec(0, 2, 1, TcpFlags::ACK, 1, 0, 513);
        assert!(ack.is_pure_ack());
        assert!(!ack.is_data());

        let synack = rec(0, 2, 1, TcpFlags::SYN | TcpFlags::ACK, 0, 0, 1);
        assert!(!synack.is_pure_ack());
    }

    #[test]
    fn rebase_shifts_to_zero() {
        let mut trace: Trace = vec![
            rec(100, 1, 2, TcpFlags::ACK, 0, 10, 0),
            rec(150, 1, 2, TcpFlags::ACK, 10, 10, 0),
        ]
        .into_iter()
        .collect();
        trace.rebase();
        assert_eq!(trace.records[0].ts, Time::ZERO);
        assert_eq!(trace.records[1].ts, Time::from_millis(50));
    }

    #[test]
    fn render_is_single_line() {
        let r = rec(5, 1, 2, TcpFlags::ACK | TcpFlags::PSH, 42, 100, 7);
        let line = r.render();
        assert!(line.contains("192.0.2.1"));
        assert!(!line.contains('\n'));
    }
}
