//! Conversion between [`Trace`] and libpcap capture files.
//!
//! Writing synthesizes full Ethernet/IPv4/TCP frames (payload bytes are a
//! deterministic pattern; a record marked corrupt gets one payload byte
//! flipped so its TCP checksum genuinely fails). Reading parses frames and
//! populates [`TraceRecord::checksum_ok`] — `Some(..)` when the full
//! payload is present, `None` when the capture was snapped to headers, in
//! which case the analyzer must infer corruption from behavior (§7).

use crate::record::{Trace, TraceRecord};
use crate::time::Time;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use tcpa_wire::ethernet::{EtherType, EthernetRepr, MacAddr};
use tcpa_wire::pcap::{
    salvage_records, DamageRegion, FaultKind, PcapError, PcapReader, PcapRecord, PcapWriter,
    LINKTYPE_ETHERNET,
};
use tcpa_wire::{Ipv4Repr, TcpRepr, TsResolution};

/// Builds the full frame bytes for one record (Ethernet + IP + TCP +
/// synthetic payload).
pub fn frame_bytes(rec: &TraceRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(usize::try_from(rec.payload_len).unwrap_or(0));
    // Deterministic pattern keyed to the sequence number so identical
    // retransmissions carry identical bytes. The low byte is taken via
    // to_le_bytes rather than a narrowing cast.
    let base = rec.tcp.seq.0;
    for i in 0..rec.payload_len {
        payload.push(base.wrapping_add(i).to_le_bytes()[0]);
    }

    let mut tcp_bytes = Vec::new();
    rec.tcp
        .emit(rec.ip.src, rec.ip.dst, &payload, &mut tcp_bytes);
    if rec.checksum_ok == Some(false) {
        // Flip a payload byte *after* the checksum was computed so the
        // frame is genuinely corrupt on the wire.
        let n = tcp_bytes.len();
        assert!(
            rec.payload_len > 0,
            "cannot corrupt a zero-payload record without breaking headers"
        );
        tcp_bytes[n - 1] ^= 0x55;
    }

    let ip = Ipv4Repr {
        payload_len: tcp_bytes.len(),
        ..rec.ip
    };
    let mut frame = Vec::with_capacity(14 + 20 + tcp_bytes.len());
    EthernetRepr {
        dst: MacAddr::from_host_id(rec.ip.dst.0[3]),
        src: MacAddr::from_host_id(rec.ip.src.0[3]),
        ethertype: EtherType::Ipv4,
    }
    .emit(&mut frame);
    ip.emit(&mut frame);
    frame.extend_from_slice(&tcp_bytes);
    frame
}

/// Writes `trace` as a pcap file. `snaplen` truncates captured bytes the
/// way tcpdump's `-s` does (0 means capture everything).
pub fn write_pcap<W: Write>(
    trace: &Trace,
    out: W,
    resolution: TsResolution,
    snaplen: u32,
) -> std::io::Result<W> {
    let effective_snap = if snaplen == 0 { u32::MAX } else { snaplen };
    let mut writer = PcapWriter::new(out, resolution, LINKTYPE_ETHERNET, effective_snap)?;
    for rec in trace.iter() {
        let frame = frame_bytes(rec);
        let orig_len = u32::try_from(frame.len()).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "frame of {} bytes overflows the 32-bit orig_len field",
                    frame.len()
                ),
            )
        })?;
        // A snap length that does not fit usize cannot truncate anything
        // addressable, so it is equivalent to "keep everything".
        let keep = frame
            .len()
            .min(usize::try_from(effective_snap).unwrap_or(usize::MAX));
        // pcap timestamps are unsigned; clamp pathological negative stamps
        // (real time-travel traces are produced in-memory, not via pcap).
        let ts = rec.ts.as_nanos().max(0) as u64;
        writer.write_record(ts, orig_len, &frame[..keep])?;
    }
    writer.finish()
}

/// Reads a pcap file into a [`Trace`]. Non-IPv4 and non-TCP frames are
/// skipped (the paper's filters matched TCP packets only). Frames whose
/// TCP header itself is truncated by the snap length are skipped too, with
/// their count returned alongside the trace.
pub fn read_pcap<R: Read>(input: R) -> Result<(Trace, usize), PcapError> {
    let _span = tcpa_obs::span("ingest.read");
    let mut reader = PcapReader::new(input)?;
    if reader.linktype() != LINKTYPE_ETHERNET {
        return Err(PcapError::UnsupportedLinkType {
            linktype: reader.linktype(),
        });
    }
    let mut trace = Trace::new();
    let mut skipped = 0usize;
    while let Some(pkt) = reader.next_record()? {
        match decode_frame(&pkt) {
            Some(rec) => trace.push(rec),
            None => skipped += 1,
        }
    }
    tcpa_obs::add("ingest.reads", 1);
    tcpa_obs::add("ingest.frames", trace.len() as u64);
    tcpa_obs::add("ingest.frames_skipped", skipped as u64);
    Ok((trace, skipped))
}

/// Decodes one captured Ethernet frame into a [`TraceRecord`], or `None`
/// when it is not a parseable TCP/IPv4 frame (the paper's filters matched
/// TCP packets only; everything else is counted and skipped).
fn decode_frame(pkt: &PcapRecord) -> Option<TraceRecord> {
    let (eth, ip_bytes) = EthernetRepr::parse(&pkt.data).ok()?;
    if eth.ethertype != EtherType::Ipv4 {
        return None;
    }
    // Lenient parse: snap lengths legitimately truncate the payload.
    let (ip, tcp_bytes) = Ipv4Repr::parse_lenient(ip_bytes).ok()?;
    if ip.protocol != tcpa_wire::IpProtocol::Tcp {
        return None;
    }
    let (tcp, captured_payload) = TcpRepr::parse(tcp_bytes).ok()?;
    let header_len = tcp.header_len();
    // Checked: the IP length field is 16-bit so this always fits, but a
    // parser bug upstream must surface as a skipped frame, not wrap.
    let payload_len = u32::try_from(ip.payload_len.saturating_sub(header_len)).ok()?;
    // Full payload present iff the captured TCP segment length matches
    // the IP claim; only then can the checksum be verified. Compare in
    // u64 so no operand is narrowed.
    let checksum_ok = if captured_payload.len() as u64 == u64::from(payload_len)
        && u64::from(pkt.orig_len) == pkt.data.len() as u64
    {
        Some(TcpRepr::verify_checksum(ip.src, ip.dst, tcp_bytes))
    } else {
        None
    };
    Some(TraceRecord {
        // Always fits: sec ≤ u32::MAX bounds ts_nanos below i64::MAX.
        ts: Time(i64::try_from(pkt.ts_nanos).ok()?),
        ip,
        tcp,
        payload_len,
        checksum_ok,
    })
}

/// What salvage-mode ingest recovered from one capture and what it had to
/// give up: the per-file degradation ledger the corpus census aggregates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Capture records recovered from the byte stream.
    pub records: usize,
    /// Records that decoded into TCP/IPv4 trace entries.
    pub frames: usize,
    /// Records skipped as non-TCP or undecodable frames.
    pub frames_skipped: usize,
    /// Total bytes presented.
    pub bytes_total: u64,
    /// Bytes inside damaged regions, never parsed into any record.
    pub bytes_skipped: u64,
    /// The global header was unusable; defaults were assumed.
    pub header_assumed: bool,
    /// Every damaged region with its classification, in file order.
    pub damage: Vec<DamageRegion>,
}

impl IngestReport {
    /// `true` when the capture parsed without any damage.
    pub fn is_clean(&self) -> bool {
        self.damage.is_empty() && !self.header_assumed
    }

    /// Damaged-region count per fault class (stable iteration order).
    pub fn fault_counts(&self) -> BTreeMap<FaultKind, usize> {
        let mut counts = BTreeMap::new();
        for region in &self.damage {
            *counts.entry(region.kind).or_insert(0) += 1;
        }
        counts
    }
}

impl core::fmt::Display for IngestReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_clean() {
            return write!(
                f,
                "clean: {} records ({} TCP frames)",
                self.records, self.frames
            );
        }
        write!(
            f,
            "salvaged {} records ({} TCP frames), skipped {}/{} bytes in {} damaged region(s)",
            self.records,
            self.frames,
            self.bytes_skipped,
            self.bytes_total,
            self.damage.len()
        )?;
        let counts = self.fault_counts();
        if !counts.is_empty() {
            write!(f, " [")?;
            for (i, (kind, n)) in counts.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{kind} x{n}")?;
            }
            write!(f, "]")?;
        }
        if self.header_assumed {
            write!(f, " (global header assumed: LE/µs/Ethernet)")?;
        }
        Ok(())
    }
}

/// Salvage-mode ingest over in-memory capture bytes: never fails, never
/// panics. Damaged regions are skipped via resynchronization and accounted
/// for in the returned [`IngestReport`]; whatever TCP frames survive are
/// decoded exactly as [`read_pcap`] would.
pub fn read_pcap_salvage_bytes(bytes: &[u8]) -> (Trace, IngestReport) {
    let _span = tcpa_obs::span("ingest.salvage");
    let (records, summary) = salvage_records(bytes);
    let mut trace = Trace::new();
    let mut frames_skipped = 0usize;
    for pkt in &records {
        match decode_frame(pkt) {
            Some(rec) => trace.push(rec),
            None => frames_skipped += 1,
        }
    }
    let report = IngestReport {
        records: records.len(),
        frames: trace.len(),
        frames_skipped,
        bytes_total: summary.bytes_total,
        bytes_skipped: summary.bytes_skipped,
        header_assumed: summary.header_assumed,
        damage: summary.damage,
    };
    tcpa_obs::add("ingest.salvage_reads", 1);
    tcpa_obs::add("ingest.frames", trace.len() as u64);
    tcpa_obs::add("ingest.frames_skipped", frames_skipped as u64);
    tcpa_obs::add("ingest.bytes_total", report.bytes_total);
    tcpa_obs::add("ingest.bytes_skipped", report.bytes_skipped);
    tcpa_obs::add("ingest.damage_regions", report.damage.len() as u64);
    tcpa_obs::add("ingest.headers_assumed", report.header_assumed as u64);
    (trace, report)
}

/// Salvage-mode ingest from any reader (buffers the capture; resync needs
/// random access). Only genuine I/O failure is an error — malformed bytes
/// degrade into the [`IngestReport`] instead.
pub fn read_pcap_salvage<R: Read>(mut input: R) -> std::io::Result<(Trace, IngestReport)> {
    let mut bytes = Vec::new();
    input.read_to_end(&mut bytes)?;
    Ok(read_pcap_salvage_bytes(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_util::rec;
    use std::io::Cursor;
    use tcpa_wire::TcpFlags;

    fn sample_trace() -> Trace {
        vec![
            rec(0, 1, 2, TcpFlags::SYN, 100, 0, 0),
            rec(5, 2, 1, TcpFlags::SYN | TcpFlags::ACK, 900, 0, 101),
            rec(10, 1, 2, TcpFlags::ACK | TcpFlags::PSH, 101, 512, 901),
            rec(20, 2, 1, TcpFlags::ACK, 901, 0, 613),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn full_capture_round_trip() {
        let trace = sample_trace();
        let bytes = write_pcap(&trace, Vec::new(), TsResolution::Nano, 0).unwrap();
        let (read, skipped) = read_pcap(Cursor::new(bytes)).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(read.len(), trace.len());
        for (orig, got) in trace.iter().zip(read.iter()) {
            assert_eq!(got.ts, orig.ts);
            assert_eq!(got.tcp, orig.tcp);
            assert_eq!(got.payload_len, orig.payload_len);
            assert_eq!(got.checksum_ok, Some(true));
        }
    }

    #[test]
    fn snapped_capture_yields_unknown_checksum() {
        let trace = sample_trace();
        // 68 bytes was tcpdump's classic default snap: eth(14)+ip(20)+tcp(20)+14.
        let bytes = write_pcap(&trace, Vec::new(), TsResolution::Micro, 68).unwrap();
        let (read, skipped) = read_pcap(Cursor::new(bytes)).unwrap();
        assert_eq!(skipped, 0);
        let data_rec = read.records.iter().find(|r| r.is_data()).unwrap();
        assert_eq!(data_rec.payload_len, 512, "length comes from IP header");
        assert_eq!(data_rec.checksum_ok, None, "payload cut, cannot verify");
    }

    #[test]
    fn corrupt_record_fails_checksum_on_read() {
        let mut trace = sample_trace();
        trace.records[2].checksum_ok = Some(false);
        let bytes = write_pcap(&trace, Vec::new(), TsResolution::Nano, 0).unwrap();
        let (read, _) = read_pcap(Cursor::new(bytes)).unwrap();
        assert_eq!(read.records[2].checksum_ok, Some(false));
        assert_eq!(read.records[3].checksum_ok, Some(true));
    }

    #[test]
    fn non_tcp_frames_skipped() {
        let trace = sample_trace();
        let mut bytes = write_pcap(&trace, Vec::new(), TsResolution::Nano, 0).unwrap();
        // Append an ARP frame record by hand.
        let mut arp_frame = Vec::new();
        EthernetRepr {
            dst: MacAddr::BROADCAST,
            src: MacAddr::from_host_id(1),
            ethertype: EtherType::Arp,
        }
        .emit(&mut arp_frame);
        arp_frame.extend_from_slice(&[0u8; 28]);
        let ts: u32 = 1;
        bytes.extend_from_slice(&ts.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&(arp_frame.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&(arp_frame.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&arp_frame);
        let (read, skipped) = read_pcap(Cursor::new(bytes)).unwrap();
        assert_eq!(read.len(), 4);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn salvage_matches_strict_on_clean_capture() {
        let trace = sample_trace();
        let bytes = write_pcap(&trace, Vec::new(), TsResolution::Nano, 0).unwrap();
        let (strict, _) = read_pcap(Cursor::new(&bytes[..])).unwrap();
        let (salvaged, report) = read_pcap_salvage(Cursor::new(&bytes[..])).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.frames, strict.len());
        assert_eq!(report.bytes_skipped, 0);
        assert_eq!(salvaged.records, strict.records);
        assert!(report.to_string().starts_with("clean:"));
    }

    #[test]
    fn salvage_recovers_records_around_damage() {
        let trace = sample_trace();
        let bytes = write_pcap(&trace, Vec::new(), TsResolution::Micro, 0).unwrap();
        let (mangled, fault) =
            crate::mangle::inject(&bytes, crate::mangle::FaultKind::GarbageSplice, 11)
                .expect("clean capture accepts a splice");
        let (salvaged, report) = read_pcap_salvage_bytes(&mangled);
        assert_eq!(salvaged.len(), trace.len(), "no record should be lost");
        assert!(!report.is_clean());
        assert_eq!(report.damage.len(), 1);
        assert_eq!(report.damage[0].offset, fault.offset);
        assert!(report.bytes_skipped >= 16);
        assert!(report.to_string().contains("damaged region"));
    }

    #[test]
    fn negative_timestamps_clamped_on_write() {
        let mut trace = sample_trace();
        trace.records[0].ts = Time(-5);
        let bytes = write_pcap(&trace, Vec::new(), TsResolution::Nano, 0).unwrap();
        let (read, _) = read_pcap(Cursor::new(bytes)).unwrap();
        assert_eq!(read.records[0].ts, Time(0));
    }
}
