//! Regenerates the \[CL94\]-style conformance matrix from passive traces.
fn main() {
    print!("{}", tcpa_bench::scenarios::conformance::run().render());
}
