//! Property-based tests for the trace model: pcap round-trips for
//! arbitrary record sets, statistics invariants, and connection-split
//! conservation.

use proptest::prelude::*;
use std::io::Cursor;
use tcpa_trace::{pcap_io, Connection, Duration, Histogram, Summary, Time, Trace, TraceRecord};
use tcpa_wire::{IpProtocol, Ipv4Addr, Ipv4Repr, SeqNum, TcpFlags, TcpRepr, TsResolution};

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        0i64..10_000_000_000, // ts nanos
        0u8..4,               // src host
        0u8..4,               // dst host
        any::<u16>(),         // ident
        any::<u32>(),         // seq
        0u32..2048,           // payload
        any::<u32>(),         // ack
        any::<u16>(),         // window
        0u8..32,              // flags (skip URG)
    )
        .prop_filter("src != dst", |(_, s, d, ..)| s != d)
        .prop_map(
            |(ts, src, dst, ident, seq, len, ack, window, flags)| TraceRecord {
                ts: Time(ts),
                ip: Ipv4Repr {
                    src: Ipv4Addr::from_host_id(src),
                    dst: Ipv4Addr::from_host_id(dst),
                    protocol: IpProtocol::Tcp,
                    ttl: 64,
                    ident,
                    payload_len: 20 + len as usize,
                },
                tcp: TcpRepr {
                    seq: SeqNum(seq),
                    ack: SeqNum(ack),
                    flags: TcpFlags(flags | TcpFlags::ACK.0),
                    window,
                    ..TcpRepr::new(1000 + u16::from(src), 1000 + u16::from(dst))
                },
                payload_len: len,
                checksum_ok: Some(true),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pcap_round_trip_preserves_headers(records in proptest::collection::vec(arb_record(), 0..40)) {
        let trace: Trace = records.into_iter().collect();
        let bytes = pcap_io::write_pcap(&trace, Vec::new(), TsResolution::Nano, 0).unwrap();
        let (read, skipped) = pcap_io::read_pcap(Cursor::new(bytes)).unwrap();
        prop_assert_eq!(skipped, 0);
        prop_assert_eq!(read.len(), trace.len());
        for (a, b) in trace.iter().zip(read.iter()) {
            prop_assert_eq!(&a.tcp, &b.tcp);
            prop_assert_eq!(a.payload_len, b.payload_len);
            prop_assert_eq!(a.ip.src, b.ip.src);
            prop_assert_eq!(a.ip.ident, b.ip.ident);
            prop_assert_eq!(a.ts, b.ts);
        }
    }

    #[test]
    fn connection_split_conserves_records(records in proptest::collection::vec(arb_record(), 0..60)) {
        let trace: Trace = records.into_iter().collect();
        let conns = Connection::split(&trace);
        let total: usize = conns.iter().map(|c| c.records.len()).sum();
        prop_assert_eq!(total, trace.len());
        // Each record's direction tags are consistent with its endpoints.
        for conn in &conns {
            for (dir, rec) in &conn.records {
                let src = (rec.ip.src, rec.tcp.src_port);
                match dir {
                    tcpa_trace::Dir::SenderToReceiver => {
                        prop_assert_eq!(src, (conn.sender.addr, conn.sender.port))
                    }
                    tcpa_trace::Dir::ReceiverToSender => {
                        prop_assert_eq!(src, (conn.receiver.addr, conn.receiver.port))
                    }
                }
            }
        }
    }

    #[test]
    fn summary_moments_bounded(samples in proptest::collection::vec(-1_000_000_000i64..1_000_000_000, 1..200)) {
        let mut s = Summary::new();
        for &v in &samples {
            s.add(Duration(v));
        }
        let min = s.min().unwrap();
        let max = s.max().unwrap();
        let mean = s.mean().unwrap();
        prop_assert!(min <= mean && mean <= max);
        prop_assert_eq!(s.count(), samples.len());
        // Percentiles are monotone and within [min, max].
        let mut prev = min;
        for p in [0.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = s.percentile(p).unwrap();
            prop_assert!(v >= prev, "percentile({p}) went backwards");
            prop_assert!(v >= min && v <= max);
            prev = v;
        }
    }

    #[test]
    fn histogram_conserves_samples(samples in proptest::collection::vec(-50i64..500, 0..200)) {
        let mut h = Histogram::new(Duration::ZERO, Duration::from_millis(50), 8);
        for &v in &samples {
            h.add(Duration::from_millis(v));
        }
        prop_assert_eq!(
            h.total() + h.underflow + h.overflow,
            samples.len() as u64
        );
        prop_assert_eq!(h.underflow, samples.iter().filter(|&&v| v < 0).count() as u64);
        prop_assert_eq!(h.overflow, samples.iter().filter(|&&v| v >= 400).count() as u64);
    }

    #[test]
    fn rebase_preserves_gaps(records in proptest::collection::vec(arb_record(), 1..40)) {
        let mut trace: Trace = records.into_iter().collect();
        let gaps: Vec<_> = trace
            .records
            .windows(2)
            .map(|w| w[1].ts - w[0].ts)
            .collect();
        trace.rebase();
        prop_assert_eq!(trace.records[0].ts, Time::ZERO);
        let new_gaps: Vec<_> = trace
            .records
            .windows(2)
            .map(|w| w[1].ts - w[0].ts)
            .collect();
        prop_assert_eq!(gaps, new_gaps);
    }

    #[test]
    fn seq_plot_points_bounded(records in proptest::collection::vec(arb_record(), 1..60)) {
        let trace: Trace = records.into_iter().collect();
        for conn in Connection::split(&trace) {
            let plot = tcpa_trace::plot::SeqPlot::extract(&conn);
            // Rendering never panics regardless of contents.
            let _ = plot.render_ascii(40, 10);
            prop_assert!(plot.points.len() <= conn.records.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The salvage reader's core guarantee: arbitrary byte soup never
    /// panics, never loops, and every byte is accounted for (consumed by
    /// a record or counted as skipped damage).
    #[test]
    fn salvage_never_panics_on_byte_soup(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let (trace, report) = pcap_io::read_pcap_salvage_bytes(&bytes);
        prop_assert_eq!(report.bytes_total, bytes.len() as u64);
        prop_assert!(report.bytes_skipped <= report.bytes_total);
        prop_assert!(trace.len() <= report.records);
        let mut prev_end = 0u64;
        for d in &report.damage {
            prop_assert!(d.offset >= prev_end, "damage regions must not overlap");
            prop_assert!(d.offset + d.len <= bytes.len() as u64);
            prop_assert!(d.len > 0);
            prev_end = d.offset + d.len;
        }
    }

    /// Salvage is a pure function of the bytes.
    #[test]
    fn salvage_is_deterministic(bytes in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let (t1, r1) = pcap_io::read_pcap_salvage_bytes(&bytes);
        let (t2, r2) = pcap_io::read_pcap_salvage_bytes(&bytes);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(t1.len(), t2.len());
    }

    /// Byte soup prefixed with a valid header behaves the same way —
    /// exercises the record loop rather than header recovery.
    #[test]
    fn salvage_survives_valid_header_plus_soup(soup in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let trace = Trace::new();
        let mut bytes = pcap_io::write_pcap(&trace, Vec::new(), TsResolution::Micro, 0).unwrap();
        bytes.extend_from_slice(&soup);
        let (_, report) = pcap_io::read_pcap_salvage_bytes(&bytes);
        prop_assert_eq!(report.bytes_total, bytes.len() as u64);
        prop_assert!(!report.header_assumed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mangle → salvage round trip: a seeded fault in a well-formed
    /// capture never panics the salvage reader, damage is reported for
    /// every injected fault, and recovery loses at most the records a
    /// single fault can plausibly take out.
    #[test]
    fn mangled_capture_salvages_within_bounds(
        records in proptest::collection::vec(arb_record(), 2..24),
        kind_idx in any::<proptest::sample::Index>(),
        seed in any::<u64>(),
    ) {
        let kind = tcpa_trace::mangle::FaultKind::ALL
            [kind_idx.index(tcpa_trace::mangle::FaultKind::ALL.len())];
        let trace: Trace = records.into_iter().collect();
        let n = trace.len();
        let base = pcap_io::write_pcap(&trace, Vec::new(), TsResolution::Micro, 0).unwrap();
        prop_assume!(tcpa_trace::mangle::inject(&base, kind, seed).is_some());
        let (mangled, fault) = tcpa_trace::mangle::inject(&base, kind, seed).unwrap();
        prop_assert_eq!(fault.kind, kind);
        let (salvaged, report) = pcap_io::read_pcap_salvage_bytes(&mangled);
        prop_assert_eq!(report.bytes_total, mangled.len() as u64);
        prop_assert!(!report.is_clean(), "an injected {kind} must be visible");
        match kind {
            // Whole-file faults can cost everything after the fault point.
            tcpa_trace::mangle::FaultKind::TruncatedGlobalHeader
            | tcpa_trace::mangle::FaultKind::MidRecordEof
            | tcpa_trace::mangle::FaultKind::TruncatedRecordHeader => {}
            // In-place faults damage one record; resync must bring back
            // the rest (phantom parses may add records, never frames).
            _ => prop_assert!(
                salvaged.len() + 2 >= n,
                "one in-place {kind} lost {} of {n} frames",
                n - salvaged.len().min(n)
            ),
        }
    }

    /// Injection is deterministic: same bytes, kind and seed → same file.
    #[test]
    fn inject_is_deterministic(
        records in proptest::collection::vec(arb_record(), 2..16),
        kind_idx in any::<proptest::sample::Index>(),
        seed in any::<u64>(),
    ) {
        let kind = tcpa_trace::mangle::FaultKind::ALL
            [kind_idx.index(tcpa_trace::mangle::FaultKind::ALL.len())];
        let trace: Trace = records.into_iter().collect();
        let base = pcap_io::write_pcap(&trace, Vec::new(), TsResolution::Micro, 0).unwrap();
        let a = tcpa_trace::mangle::inject(&base, kind, seed);
        let b = tcpa_trace::mangle::inject(&base, kind, seed);
        match (a, b) {
            (None, None) => {}
            (Some((fa, ia)), Some((fb, ib))) => {
                prop_assert_eq!(fa, fb);
                prop_assert_eq!(ia.offset, ib.offset);
            }
            _ => prop_assert!(false, "inject applicability must be deterministic"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ConnStats invariants. Timestamps are sorted (traces are written in
    /// filter order); sequence numbers remain arbitrary, so the byte
    /// accounting is only sanity-checked, not related across the wrap.
    #[test]
    fn connstats_invariants(mut records in proptest::collection::vec(arb_record(), 1..60)) {
        records.sort_by_key(|r| r.ts);
        let trace: Trace = records.into_iter().collect();
        for conn in Connection::split(&trace) {
            let Some(s) = tcpa_trace::ConnStats::of(&conn) else { continue };
            prop_assert!(s.retransmitted_packets <= s.data_packets);
            prop_assert!(s.elapsed().as_nanos() >= 0);
            prop_assert!(s.longest_silence <= s.elapsed());
            prop_assert!(s.goodput() >= 0.0);
            prop_assert!(s.retransmission_ratio() >= 0.0 && s.retransmission_ratio() <= 1.0);
        }
    }
}
