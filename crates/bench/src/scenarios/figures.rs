//! Figures 1–5: the paper's sequence-plot case studies.

use crate::{fmt_rate, Section};
use tcpa_filter::{apply, FilterConfig};
use tcpa_netsim::LossModel;
use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::plot::{PointKind, SeqPlot};
use tcpa_trace::{Connection, Dir, Duration, Time, Trace};
use tcpanaly::calibrate::Calibrator;
use tcpanaly::fingerprint::fingerprint_one;

fn conn_of(trace: &Trace) -> Connection {
    Connection::split(trace).remove(0)
}

/// Figure 1 — packet-filter duplication (IRIX 5.2/5.3, §3.1.2).
///
/// Each outgoing packet appears twice; the first copies' slope reflects
/// the OS sourcing rate (~2.5 MB/s in the paper) and the later copies the
/// Ethernet wire rate (~1 MB/s there; our LAN is 10 Mb/s ≈ 1.25 MB/s).
pub fn fig1() -> Section {
    let mut path = PathSpec::default();
    path.rate_bps = 8_000_000; // fast WAN: LAN serialization dominates
    path.one_way_delay = Duration::from_millis(30);
    // A stretch-acking receiver (one ack per ~4 segments) makes each ack
    // liberate a clean back-to-back burst — the paper's "ack just before
    // … liberated five packets".
    let mut receiver = profiles::reno();
    receiver.ack_every_n = 4;
    let out = run_transfer(profiles::irix(), receiver, &path, 100 * 1024, 101);
    let (measured, report) = apply(&out.sender_tap, &FilterConfig::irix_duplicating(), 101);

    // Find the longest run of duplicated outbound data records and
    // compute both slopes over it.
    let mut firsts: Vec<(Time, u32)> = Vec::new(); // (ts, wire bytes)
    let mut seconds: Vec<(Time, u32)> = Vec::new();
    let mut seen = std::collections::HashMap::new();
    for rec in measured.iter().filter(|r| r.is_data()) {
        let key = (rec.ip.ident, rec.tcp.seq.0);
        let bytes = rec.payload_len + 54;
        match seen.entry(key) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(rec.ts);
                firsts.push((rec.ts, bytes));
            }
            std::collections::hash_map::Entry::Occupied(_) => seconds.push((rec.ts, bytes)),
        }
    }
    let slope = |points: &[(Time, u32)]| -> f64 {
        // Use the largest burst: contiguous points < 2 ms apart (both
        // copy streams space packets well under that within a burst,
        // while ack-clocked bursts sit ≥ 2.4 ms apart).
        let mut best: Option<(usize, usize)> = None;
        let mut start = 0;
        for i in 1..=points.len() {
            let broke =
                i == points.len() || points[i].0 - points[i - 1].0 > Duration::from_millis(2);
            if broke {
                if best.is_none_or(|(s, e)| i - start > e - s) {
                    best = Some((start, i));
                }
                start = i;
            }
        }
        let (s, e) = best.unwrap_or((0, points.len()));
        if e - s < 3 {
            return 0.0;
        }
        let bytes: u32 = points[s + 1..e].iter().map(|p| p.1).sum();
        let dt = (points[e - 1].0 - points[s].0).as_secs_f64();
        bytes as f64 / dt.max(1e-9)
    };
    let first_rate = slope(&firsts);
    let second_rate = slope(&seconds);

    let calibrator = Calibrator::at_sender();
    let (_, cal) = calibrator.calibrate(&measured);

    Section {
        id: "Figure 1".into(),
        title: "Packet filter duplication (IRIX)".into(),
        paper_claim: "Each outgoing data packet appears twice; the first copies' slope \
                      is >2.5 MB/s (OS sourcing rate) and the second copies' almost \
                      exactly 1 MB/s (Ethernet rate) — the earlier timestamps are bogus, \
                      the later accurate. tcpanaly discards the later copy."
            .into(),
        params: "IRIX sender, 100 KB over 8 Mb/s WAN, 10 Mb/s LAN; IRIX duplicating \
                 filter model (OS copy rate 2.5 MB/s)"
            .into(),
        body: String::new(),
        measured: vec![
            (
                "duplicate records added".into(),
                report.duplicates_added.to_string(),
            ),
            (
                "duplicates detected & removed".into(),
                cal.duplicates.len().to_string(),
            ),
            ("first-copy slope".into(), fmt_rate(first_rate)),
            ("second-copy slope".into(), fmt_rate(second_rate)),
        ],
        verdict: if cal.duplicates.len() == report.duplicates_added
            && first_rate > 2.0e6
            && (0.9e6..2.0e6).contains(&second_rate)
        {
            "REPRODUCED: two copies per packet; OS-rate vs wire-rate slopes; all duplicates detected.".into()
        } else {
            format!(
                "PARTIAL: detected {}/{} dups, slopes {} vs {}",
                cal.duplicates.len(),
                report.duplicates_added,
                fmt_rate(first_rate),
                fmt_rate(second_rate)
            )
        },
    }
}

/// Figure 2 — vantage-point ambiguity (§3.2).
///
/// The paper's example: shortly after an ack arrives covering certain
/// data, the sender (apparently) retransmits that very data — because the
/// TCP was still responding to an *earlier* ack when the filter recorded
/// the later one. Neither the filter nor the TCP misbehaved.
pub fn fig2() -> Section {
    // A Solaris sender (whose §8.6 oddity retransmits the segment just
    // above a liberating ack) on a fast path with a sluggish host and an
    // ack-every-packet receiver: acks arrive ~2 ms apart while responses
    // lag arrivals by ~7 ms, so by the time a response is on the wire,
    // the filter has already recorded acks covering it — the paper's
    // ambiguity exactly.
    let mut path = PathSpec::default();
    path.rate_bps = 6_000_000;
    path.one_way_delay = Duration::from_millis(40);
    path.proc_delay = Duration::from_millis(6);
    let out = run_transfer(
        profiles::solaris_2_4(),
        profiles::linux_2_0(),
        &path,
        100 * 1024,
        102,
    );
    let trace = out.sender_trace();
    let conn = conn_of(&trace);

    // Search for the signature: a retransmission recorded after an ack
    // that already covers it.
    let mut instances = 0usize;
    let mut excerpt = String::new();
    let mut highest = None::<tcpa_wire::SeqNum>;
    let mut last_ack: Option<(Time, tcpa_wire::SeqNum)> = None;
    for (dir, rec) in &conn.records {
        match dir {
            Dir::SenderToReceiver if rec.is_data() => {
                let hi = rec.seq_hi();
                let is_retx = highest.is_some_and(|h| !hi.after(h));
                if is_retx {
                    if let Some((t_ack, ack)) = last_ack {
                        if ack.at_or_after(hi) && rec.ts - t_ack < Duration::from_millis(25) {
                            instances += 1;
                            if instances <= 3 {
                                excerpt.push_str(&format!(
                                    "ack {} recorded {}, then 'needless' retransmit of [{}..{}) at {}\n",
                                    ack,
                                    t_ack,
                                    rec.seq_lo(),
                                    hi,
                                    rec.ts
                                ));
                            }
                        }
                    }
                }
                highest = Some(match highest {
                    Some(h) => h.max(hi),
                    None => hi,
                });
            }
            Dir::ReceiverToSender if rec.is_pure_ack() => {
                last_ack = Some((rec.ts, rec.tcp.ack));
            }
            _ => {}
        }
    }

    // The analyzer must absorb the ambiguity: the correct profile still
    // fits with zero hard issues.
    let fit = fingerprint_one(&conn, &profiles::solaris_2_4()).expect("analyzable");

    Section {
        id: "Figure 2".into(),
        title: "Vantage-point ambiguity".into(),
        paper_claim: "A retransmission appears just after the ack that covers it; \
                      neither filter nor TCP erred — the filter's vantage point is \
                      not the TCP's. tcpanaly must cope via look-behind."
            .into(),
        params: "Solaris 2.4 sender, ack-every-packet receiver, 6 ms host \
                 processing delay, 80 ms RTT lossless path"
            .into(),
        body: excerpt,
        measured: vec![
            (
                "apparently-needless retransmissions".into(),
                instances.to_string(),
            ),
            (
                "hard issues under correct profile".into(),
                fit.analysis.hard_issues().to_string(),
            ),
            ("fit of correct profile".into(), fit.fit.to_string()),
        ],
        verdict: if instances > 0 && fit.analysis.hard_issues() == 0 {
            "REPRODUCED: the ambiguity occurs and the analyzer resolves it via look-behind.".into()
        } else {
            format!(
                "PARTIAL: {} instances, {} hard issues",
                instances,
                fit.analysis.hard_issues()
            )
        },
    }
}

/// Figure 3 — the Net/3 uninitialized-cwnd bug (§8.4).
pub fn fig3() -> Section {
    let mut receiver = profiles::reno();
    receiver.send_mss_option = false; // the trigger
    receiver.recv_window = 16_384;
    receiver.recv_window_schedule = vec![16_384, 20_000, 24_576, 32_768];
    let mut path = PathSpec::default();
    path.one_way_delay = Duration::from_millis(100);
    path.queue_cap = 16;
    let out = run_transfer(profiles::net3(), receiver.clone(), &path, 100 * 1024, 103);
    let trace = out.sender_trace();
    let conn = conn_of(&trace);
    let plot = SeqPlot::extract(&conn);

    // Packets in the first 150 ms after the first data send.
    let data_times: Vec<Time> = conn
        .in_dir(Dir::SenderToReceiver)
        .filter(|r| r.is_data())
        .map(|r| r.ts)
        .collect();
    let t0 = data_times[0];
    let burst = data_times
        .iter()
        .filter(|&&t| t - t0 < Duration::from_millis(150))
        .count();
    let lost_of_burst = out
        .truth
        .queue_drops
        .iter()
        .chain(out.truth.wire_drops.iter())
        .filter(|(t, _)| *t - t0 < Duration::from_millis(400))
        .count();

    Section {
        id: "Figure 3".into(),
        title: "Net/3 uninitialized-cwnd bug".into(),
        paper_claim: "SYN-ack without an MSS option leaves cwnd/ssthresh huge: the \
                      TCP instantly sends all 30 packets fitting the 16,384-byte \
                      offered window; 14 of the first 61 packets were lost."
            .into(),
        params: "Net/3 sender vs MSS-option-less receiver offering 16 KB growing \
                 window; 200 ms RTT, 16-packet bottleneck queue"
            .into(),
        body: plot.render_ascii(72, 18),
        measured: vec![
            ("first-burst packets (150 ms)".into(), burst.to_string()),
            (
                "packets lost near the burst".into(),
                lost_of_burst.to_string(),
            ),
            (
                "retransmissions".into(),
                out.sender_stats.retransmissions.to_string(),
            ),
        ],
        verdict: if burst >= 25 && lost_of_burst > 0 {
            format!(
                "REPRODUCED: {burst}-packet opening blast into the offered window; \
                 the bottleneck queue overflowed ({lost_of_burst} lost)."
            )
        } else {
            format!("PARTIAL: burst {burst}, losses {lost_of_burst}")
        },
    }
}

/// Figure 4 — broken Linux 1.0 retransmission (§8.5).
pub fn fig4() -> Section {
    let mut path = PathSpec::default();
    path.rate_bps = 256_000;
    path.queue_cap = 8;
    path.one_way_delay = Duration::from_millis(60);
    path.loss_data = LossModel::Periodic(20);
    let out = run_transfer(
        profiles::linux_1_0(),
        profiles::linux_1_0(),
        &path,
        100 * 1024,
        104,
    );
    let trace = out.sender_trace();
    let conn = conn_of(&trace);
    let plot = SeqPlot::extract(&conn);

    let pkts = out.sender_stats.data_packets_sent;
    let retx = out.sender_stats.retransmissions;
    let drop_pct =
        100.0 * out.truth.total_drops() as f64 / (pkts + out.receiver_stats.acks_sent) as f64;

    // Control: Linux 2.0 on the identical path.
    let fixed = run_transfer(
        profiles::linux_2_0(),
        profiles::linux_2_0(),
        &path,
        100 * 1024,
        104,
    );

    Section {
        id: "Figure 4".into(),
        title: "Broken Linux 1.0 retransmission".into(),
        paper_claim: "On a dup ack, Linux 1.0 retransmits every packet in flight; \
                      the example connection sent 317 packets, 117 of them \
                      retransmissions, with 20% of packets dropped — 'pouring \
                      gasoline on a fire'. Fixed in later releases."
            .into(),
        params: "Linux 1.0 both ends, 256 kb/s bottleneck, 8-packet queue, 120 ms \
                 RTT, 1-in-20 data loss; control run with Linux 2.0"
            .into(),
        body: plot.render_ascii(72, 18),
        measured: vec![
            ("packets sent".into(), pkts.to_string()),
            (
                "retransmissions".into(),
                format!("{retx} ({:.0}%)", 100.0 * retx as f64 / pkts as f64),
            ),
            ("network drop rate".into(), format!("{drop_pct:.1}%")),
            (
                "burst retransmissions (plot R)".into(),
                plot.count(PointKind::Retransmit).to_string(),
            ),
            (
                "Linux 2.0 control retransmissions".into(),
                format!(
                    "{} ({:.0}%)",
                    fixed.sender_stats.retransmissions,
                    100.0 * fixed.sender_stats.retransmissions as f64
                        / fixed.sender_stats.data_packets_sent as f64
                ),
            ),
        ],
        verdict: if retx as f64 > 0.2 * pkts as f64
            && (fixed.sender_stats.retransmissions as f64) < 0.5 * retx as f64
        {
            "REPRODUCED: a retransmission storm (>20% of packets) that the fixed Linux 2.0 does not exhibit.".into()
        } else {
            format!(
                "PARTIAL: {retx}/{pkts} vs control {}",
                fixed.sender_stats.retransmissions
            )
        },
    }
}

/// Figure 5 — broken Solaris retransmission timer (§8.6).
pub fn fig5() -> Section {
    let mut path = PathSpec::default();
    path.one_way_delay = Duration::from_millis(335); // RTT ≈ 680 ms
    let out = run_transfer(
        profiles::solaris_2_4(),
        profiles::reno(),
        &path,
        100 * 1024,
        105,
    );
    let trace = out.sender_trace();
    let conn = conn_of(&trace);
    let plot = SeqPlot::extract(&conn);

    let retx = out.sender_stats.retransmissions;
    let fresh = out.sender_stats.data_packets_sent - retx;
    let reno = run_transfer(profiles::reno(), profiles::reno(), &path, 100 * 1024, 105);

    Section {
        id: "Figure 5".into(),
        title: "Broken Solaris 2.3/2.4 retransmission timer".into(),
        paper_claim: "RTT 680 ms exceeds the ~300 ms initial RTO; Solaris sends \
                      almost as many retransmissions as new packets, every one \
                      needless, and the RTO never adapts because acks of \
                      retransmitted data restore it to its erroneously small value."
            .into(),
        params: "Solaris 2.4 sender, California→Netherlands-like path (680 ms RTT), \
                 no loss; Reno control on the same path"
            .into(),
        body: plot.render_ascii(72, 18),
        measured: vec![
            ("new data packets".into(), fresh.to_string()),
            (
                "needless retransmissions".into(),
                format!(
                    "{retx} (network dropped {} packets)",
                    out.truth.total_drops()
                ),
            ),
            (
                "Reno control retransmissions".into(),
                reno.sender_stats.retransmissions.to_string(),
            ),
        ],
        verdict: if out.truth.total_drops() == 0
            && retx as f64 > 0.3 * fresh as f64
            && reno.sender_stats.retransmissions <= 2
        {
            "REPRODUCED: a flood of needless retransmissions unique to the Solaris timer.".into()
        } else {
            format!(
                "PARTIAL: {retx} retx / {fresh} fresh (control {})",
                reno.sender_stats.retransmissions
            )
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces() {
        assert!(
            fig1().verdict.starts_with("REPRODUCED"),
            "{}",
            fig1().verdict
        );
    }

    #[test]
    fn fig2_reproduces() {
        assert!(
            fig2().verdict.starts_with("REPRODUCED"),
            "{}",
            fig2().verdict
        );
    }

    #[test]
    fn fig3_reproduces() {
        assert!(
            fig3().verdict.starts_with("REPRODUCED"),
            "{}",
            fig3().verdict
        );
    }

    #[test]
    fn fig4_reproduces() {
        assert!(
            fig4().verdict.starts_with("REPRODUCED"),
            "{}",
            fig4().verdict
        );
    }

    #[test]
    fn fig5_reproduces() {
        assert!(
            fig5().verdict.starts_with("REPRODUCED"),
            "{}",
            fig5().verdict
        );
    }
}
