//! Golden tests over the committed damaged captures in
//! `tests/fixtures/mangled/` (regenerate with
//! `cargo run --example gen_mangled_fixtures`).
//!
//! One fixture per [`FaultKind`]. The expected `IngestReport` numbers are
//! pinned: any drift means the salvage reader changed behavior on bytes
//! that did not change, which is exactly what these tests exist to catch.
//! Note the *classification* of in-stream damage is heuristic — garbage
//! bytes are classified by how their first bytes misparse — so a few
//! fixtures legitimately report a different `FaultKind` than was injected
//! (the file-kind → reported-kind mapping below is part of the pin).

use std::path::PathBuf;
use tcpa_trace::mangle::FaultKind;
use tcpa_trace::pcap_io::read_pcap_salvage_bytes;
use tcpa_trace::source::{CorpusItem, LoadMode};

fn mangled_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mangled")
}

struct Golden {
    file: &'static str,
    records: usize,
    frames: usize,
    bytes_skipped: u64,
    regions: usize,
    reported: FaultKind,
    header_assumed: bool,
}

/// The pinned expectations, one row per injected fault kind.
const GOLDEN: &[Golden] = &[
    Golden {
        file: "truncated-global-header.pcap",
        records: 0,
        frames: 0,
        bytes_skipped: 23,
        regions: 1,
        reported: FaultKind::TruncatedGlobalHeader,
        header_assumed: true,
    },
    Golden {
        file: "bad-magic.pcap",
        records: 33,
        frames: 33,
        bytes_skipped: 4,
        regions: 1,
        reported: FaultKind::BadMagic,
        header_assumed: true,
    },
    Golden {
        file: "truncated-record-header.pcap",
        records: 1,
        frames: 1,
        bytes_skipped: 14,
        regions: 1,
        reported: FaultKind::TruncatedRecordHeader,
        header_assumed: false,
    },
    Golden {
        file: "mid-record-eof.pcap",
        records: 14,
        frames: 14,
        bytes_skipped: 1190,
        regions: 1,
        reported: FaultKind::MidRecordEof,
        header_assumed: false,
    },
    Golden {
        // Injected: garbage splice. The splice's first bytes misparse as
        // a corrupt timestamp, so that is the class reported.
        file: "garbage-splice.pcap",
        records: 33,
        frames: 33,
        bytes_skipped: 96,
        regions: 1,
        reported: FaultKind::CorruptTimestamp,
        header_assumed: false,
    },
    Golden {
        // Injected: zeroed incl_len. The zeroed record parses as an empty
        // record (counted, not a frame); its stranded payload misparses
        // as a record cut off by EOF.
        file: "zero-length.pcap",
        records: 33,
        frames: 32,
        bytes_skipped: 54,
        regions: 1,
        reported: FaultKind::MidRecordEof,
        header_assumed: false,
    },
    Golden {
        file: "oversized-length.pcap",
        records: 32,
        frames: 32,
        bytes_skipped: 1530,
        regions: 1,
        reported: FaultKind::OversizedLength,
        header_assumed: false,
    },
    Golden {
        file: "corrupt-timestamp.pcap",
        records: 32,
        frames: 32,
        bytes_skipped: 1530,
        regions: 1,
        reported: FaultKind::CorruptTimestamp,
        header_assumed: false,
    },
];

#[test]
fn every_fault_kind_has_a_committed_fixture() {
    for kind in FaultKind::ALL {
        let path = mangled_dir().join(format!("{}.pcap", kind.label()));
        assert!(path.is_file(), "missing fixture {}", path.display());
        assert!(
            GOLDEN
                .iter()
                .any(|g| g.file == format!("{}.pcap", kind.label())),
            "no golden row for {kind}"
        );
    }
}

#[test]
fn salvage_reports_match_golden() {
    for g in GOLDEN {
        let path = mangled_dir().join(g.file);
        let bytes = std::fs::read(&path).expect("fixture readable");
        let (trace, report) = read_pcap_salvage_bytes(&bytes);
        assert!(!report.is_clean(), "{}: damage must be reported", g.file);
        assert_eq!(report.records, g.records, "{}: records", g.file);
        assert_eq!(report.frames, g.frames, "{}: frames", g.file);
        assert_eq!(trace.len(), g.frames, "{}: trace length", g.file);
        assert_eq!(report.bytes_total, bytes.len() as u64, "{}", g.file);
        assert_eq!(report.bytes_skipped, g.bytes_skipped, "{}: skipped", g.file);
        assert_eq!(report.damage.len(), g.regions, "{}: regions", g.file);
        assert_eq!(report.header_assumed, g.header_assumed, "{}", g.file);
        let counts = report.fault_counts();
        assert_eq!(
            counts.get(&g.reported).copied(),
            Some(g.regions),
            "{}: expected {} x{}, got {:?}",
            g.file,
            g.reported,
            g.regions,
            counts
        );
        // Damage regions must lie within the file and never overlap.
        let mut prev_end = 0u64;
        for d in &report.damage {
            assert!(d.offset >= prev_end, "{}: overlapping damage", g.file);
            assert!(d.offset + d.len <= bytes.len() as u64, "{}", g.file);
            prev_end = d.offset + d.len;
        }
    }
}

#[test]
fn salvage_is_deterministic_on_fixtures() {
    for g in GOLDEN {
        let bytes = std::fs::read(mangled_dir().join(g.file)).unwrap();
        let (t1, r1) = read_pcap_salvage_bytes(&bytes);
        let (t2, r2) = read_pcap_salvage_bytes(&bytes);
        assert_eq!(r1, r2, "{}: report must be deterministic", g.file);
        assert_eq!(t1.len(), t2.len(), "{}", g.file);
    }
}

#[test]
fn strict_load_rejects_every_fixture_salvage_load_accepts() {
    for g in GOLDEN {
        let bytes = std::fs::read(mangled_dir().join(g.file)).unwrap();
        let item = CorpusItem::pcap_bytes(g.file, bytes);
        assert!(
            item.input.load_mode(LoadMode::Strict).is_err(),
            "{}: strict must reject damage",
            g.file
        );
        let loaded = item
            .input
            .load_mode(LoadMode::Salvage)
            .expect("salvage never fails on readable bytes");
        let report = loaded.salvage.expect("pcap inputs carry a report");
        assert_eq!(report.frames, g.frames, "{}", g.file);
    }
}
