//! §8.3 — the minor-variant matrix: can the analyzer tell each variant
//! from its negation on a targeted workload?
//!
//! For each catalogued variant we build a scenario that expresses it,
//! generate a trace with the variant ON, and replay it under both the ON
//! and OFF configs. A variant is *distinguished* when the matching config
//! fits closely and the mismatched one accumulates hard issues. Some
//! variants are honestly indistinguishable on short traces (the paper
//! calls several of them "rarely manifested"); those rows are reported
//! as such rather than papered over.

use crate::{Section, TextTable};
use tcpa_netsim::LossModel;
use tcpa_tcpsim::config::{CwndIncrease, TcpConfig};
use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::{Connection, Duration};
use tcpanaly::fingerprint::{classify, FitClass};
use tcpanaly::sender::analyze_sender;

struct Variant {
    name: &'static str,
    on: TcpConfig,
    off: TcpConfig,
    path: PathSpec,
    receiver: TcpConfig,
    /// Whether we expect a short bulk trace to distinguish the pair.
    expect_distinguish: bool,
}

fn long_ca_path() -> PathSpec {
    // A path that forces a long congestion-avoidance phase: early loss
    // cuts ssthresh, then a lengthy linear-growth tail where the Eqn 1 /
    // Eqn 2 difference accumulates.
    let mut path = PathSpec::default();
    path.one_way_delay = Duration::from_millis(80);
    path.loss_data = LossModel::DropList(vec![15]);
    path
}

fn variants() -> Vec<Variant> {
    let reno = profiles::reno;
    vec![
        Variant {
            name: "Eqn 1 vs Eqn 2 (super-linear CA increase)",
            on: TcpConfig {
                name: "eqn2",
                cwnd_increase: CwndIncrease::SuperLinear,
                ..reno()
            },
            off: TcpConfig {
                name: "eqn1",
                cwnd_increase: CwndIncrease::Linear,
                ..reno()
            },
            path: long_ca_path(),
            receiver: reno(),
            expect_distinguish: true,
        },
        Variant {
            name: "uninitialized-cwnd bug (Net/3, §8.4)",
            on: TcpConfig {
                name: "uninit-on",
                uninit_cwnd_bug: true,
                ..reno()
            },
            off: TcpConfig {
                name: "uninit-off",
                ..reno()
            },
            path: {
                let mut p = PathSpec::default();
                p.one_way_delay = Duration::from_millis(100);
                p.queue_cap = 64;
                p
            },
            receiver: TcpConfig {
                name: "no-mss-receiver",
                send_mss_option: false,
                ..reno()
            },
            expect_distinguish: true,
        },
        Variant {
            name: "initial ssthresh = 1 MSS (Linux/Solaris)",
            on: TcpConfig {
                name: "ssthresh-1",
                initial_ssthresh_segs: Some(1),
                ..reno()
            },
            off: TcpConfig {
                name: "ssthresh-default",
                ..reno()
            },
            path: PathSpec::default(),
            receiver: reno(),
            expect_distinguish: true,
        },
        Variant {
            name: "header-prediction bug (no deflation after recovery)",
            on: TcpConfig {
                name: "hdr-bug",
                header_prediction_bug: true,
                ..reno()
            },
            off: TcpConfig {
                name: "hdr-ok",
                ..reno()
            },
            path: {
                let mut p = long_ca_path();
                // Drop mid-flight so enough dup acks follow to trigger
                // fast retransmit (the bug only manifests in recovery).
                p.loss_data = LossModel::DropList(vec![18]);
                p
            },
            receiver: reno(),
            expect_distinguish: true,
        },
        Variant {
            name: "ssthresh rounded down to MSS multiple",
            on: TcpConfig {
                name: "round-down",
                ssthresh_round_down: true,
                ..reno()
            },
            off: TcpConfig {
                name: "round-off",
                ..reno()
            },
            path: long_ca_path(),
            receiver: reno(),
            // A ≤MSS-sized ssthresh difference takes a long CA phase to
            // surface; on a 100 KB transfer it rarely manifests (§8.3).
            expect_distinguish: false,
        },
        Variant {
            name: "slow-start boundary test (< vs <=)",
            on: TcpConfig {
                name: "strict",
                ss_test_strict: true,
                ..reno()
            },
            off: TcpConfig {
                name: "lax",
                ..reno()
            },
            path: long_ca_path(),
            receiver: reno(),
            expect_distinguish: false, // one-segment, one-ack difference
        },
    ]
}

/// Runs the variant-discrimination matrix.
pub fn run() -> Section {
    let mut table = TextTable::new(&[
        "variant",
        "self fit",
        "cross fit",
        "distinguished",
        "expected",
    ]);
    let mut ok = true;
    for v in variants() {
        let out = run_transfer(v.on.clone(), v.receiver.clone(), &v.path, 100 * 1024, 800);
        let conn = Connection::split(&out.sender_trace()).remove(0);
        let self_fit = analyze_sender(&conn, &v.on).expect("analyzable");
        let cross_fit = analyze_sender(&conn, &v.off).expect("analyzable");
        // Distinguished when the true config fits closely and the negated
        // one does not (hard issues OR degraded response delays — the
        // paper's imperfect-fit criterion, §6.1).
        let self_class = classify(&self_fit);
        let cross_class = classify(&cross_fit);
        let distinguished = self_class == FitClass::Close && cross_class != FitClass::Close;
        if self_class != FitClass::Close {
            ok = false;
        }
        if v.expect_distinguish && !distinguished {
            ok = false;
        }
        table.row(vec![
            v.name.into(),
            format!("{} ({} issues)", self_class, self_fit.issues.len()),
            format!("{} ({} issues)", cross_class, cross_fit.issues.len()),
            if distinguished {
                "yes".into()
            } else {
                "no".into()
            },
            if v.expect_distinguish {
                "yes".into()
            } else {
                "(rarely manifests)".into()
            },
        ]);
    }
    Section {
        id: "§8.3".into(),
        title: "Minor sender variants".into(),
        paper_claim: "Reno derivatives differ in an assortment of minor ways: Eqn 1 \
                      vs Eqn 2, ssthresh rounding, slow-start boundary test, \
                      dup-ack bookkeeping, MSS confusion, cwnd from the offered \
                      MSS — several 'rarely manifested'."
            .into(),
        params: "Per-variant targeted workloads; trace generated with variant ON, \
                 replayed under both ON and OFF configs"
            .into(),
        body: table.render(),
        measured: vec![],
        verdict: if ok {
            "REPRODUCED: every variant self-fits; each variant expected to manifest is distinguished from its negation (and the rarely-manifested ones behave as the paper says).".into()
        } else {
            "PARTIAL: see table".into()
        },
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn variants_reproduce() {
        let s = super::run();
        assert!(
            s.verdict.starts_with("REPRODUCED"),
            "{}\n{}",
            s.verdict,
            s.body
        );
    }
}
