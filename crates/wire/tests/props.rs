//! Property-based tests for the wire codecs: every valid value must
//! round-trip emit → parse unchanged, checksums must verify, and the
//! decoders must never panic on arbitrary bytes.

use proptest::prelude::*;
use tcpa_wire::{
    checksum, EthernetRepr, IcmpRepr, IpProtocol, Ipv4Addr, Ipv4Repr, MacAddr, SeqNum, TcpFlags,
    TcpOption, TcpRepr,
};

fn arb_ipv4_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(Ipv4Addr)
}

fn arb_tcp_option() -> impl Strategy<Value = TcpOption> {
    prop_oneof![
        Just(TcpOption::Nop),
        any::<u16>().prop_map(TcpOption::Mss),
        (0u8..15).prop_map(TcpOption::WindowScale),
        Just(TcpOption::SackPermitted),
        (any::<u32>(), any::<u32>())
            .prop_map(|(tsval, tsecr)| TcpOption::Timestamps { tsval, tsecr }),
        proptest::collection::vec((any::<u32>(), any::<u32>()), 1..4).prop_map(|blocks| {
            TcpOption::Sack(
                blocks
                    .into_iter()
                    .map(|(a, b)| (SeqNum(a), SeqNum(b)))
                    .collect(),
            )
        }),
        (128u8..255, proptest::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(kind, data)| TcpOption::Unknown(kind, data)),
    ]
}

fn arb_tcp_repr() -> impl Strategy<Value = TcpRepr> {
    (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        0u8..64,
        any::<u16>(),
        proptest::collection::vec(arb_tcp_option(), 0..4).prop_filter(
            "options must fit the 40-byte area",
            |opts| {
                let tmp = TcpRepr {
                    options: opts.clone(),
                    ..TcpRepr::new(0, 0)
                };
                tmp.header_len() <= 60
            },
        ),
    )
        .prop_map(|(sp, dp, seq, ack, flags, window, options)| TcpRepr {
            src_port: sp,
            dst_port: dp,
            seq: SeqNum(seq),
            ack: SeqNum(ack),
            flags: TcpFlags(flags),
            window,
            urgent: 0,
            options,
        })
}

proptest! {
    #[test]
    fn tcp_round_trips(repr in arb_tcp_repr(), payload in proptest::collection::vec(any::<u8>(), 0..256),
                       src in arb_ipv4_addr(), dst in arb_ipv4_addr()) {
        let mut buf = Vec::new();
        repr.emit(src, dst, &payload, &mut buf);
        prop_assert!(TcpRepr::verify_checksum(src, dst, &buf));
        let (parsed, got_payload) = TcpRepr::parse(&buf).unwrap();
        prop_assert_eq!(parsed, repr);
        prop_assert_eq!(got_payload, &payload[..]);
    }

    #[test]
    fn tcp_detects_any_single_bit_flip(repr in arb_tcp_repr(),
                                       payload in proptest::collection::vec(any::<u8>(), 1..128),
                                       src in arb_ipv4_addr(), dst in arb_ipv4_addr(),
                                       flip in any::<proptest::sample::Index>(), bit in 0u8..8) {
        let mut buf = Vec::new();
        repr.emit(src, dst, &payload, &mut buf);
        let idx = flip.index(buf.len());
        buf[idx] ^= 1 << bit;
        // A single bit flip is always caught by the ones'-complement sum.
        prop_assert!(!TcpRepr::verify_checksum(src, dst, &buf));
    }

    #[test]
    fn ipv4_round_trips(src in arb_ipv4_addr(), dst in arb_ipv4_addr(),
                        ident in any::<u16>(), ttl in 1u8..=255,
                        payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let repr = Ipv4Repr {
            src, dst,
            protocol: IpProtocol::Tcp,
            ttl, ident,
            payload_len: payload.len(),
        };
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf.extend_from_slice(&payload);
        let (parsed, got) = Ipv4Repr::parse(&buf).unwrap();
        prop_assert_eq!(parsed, repr);
        prop_assert_eq!(got, &payload[..]);
        // Lenient parse agrees on intact packets.
        let (parsed2, got2) = Ipv4Repr::parse_lenient(&buf).unwrap();
        prop_assert_eq!(parsed2, repr);
        prop_assert_eq!(got2, &payload[..]);
    }

    #[test]
    fn ethernet_round_trips(dst in any::<[u8; 6]>(), src in any::<[u8; 6]>(), et in any::<u16>(),
                            payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let repr = EthernetRepr { dst: MacAddr(dst), src: MacAddr(src), ethertype: et.into() };
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf.extend_from_slice(&payload);
        let (parsed, got) = EthernetRepr::parse(&buf).unwrap();
        prop_assert_eq!(parsed, repr);
        prop_assert_eq!(got, &payload[..]);
    }

    #[test]
    fn icmp_round_trips(ident in any::<u16>(), seq in any::<u16>()) {
        for msg in [IcmpRepr::EchoRequest { ident, seq }, IcmpRepr::EchoReply { ident, seq }] {
            let mut buf = Vec::new();
            msg.emit(&mut buf);
            prop_assert_eq!(IcmpRepr::parse(&buf).unwrap(), msg);
        }
    }

    #[test]
    fn parsers_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = TcpRepr::parse(&bytes);
        let _ = Ipv4Repr::parse(&bytes);
        let _ = Ipv4Repr::parse_lenient(&bytes);
        let _ = EthernetRepr::parse(&bytes);
        let _ = IcmpRepr::parse(&bytes);
    }

    #[test]
    fn checksum_incremental_matches_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                            cut in any::<proptest::sample::Index>()) {
        let split = cut.index(data.len() + 1) & !1; // even split point
        let mut inc = checksum::Checksum::new();
        inc.add_bytes(&data[..split]);
        inc.add_bytes(&data[split..]);
        prop_assert_eq!(inc.finish(), checksum::checksum(&data));
    }

    #[test]
    fn seqnum_ordering_is_antisymmetric(a in any::<u32>(), d in 1u32..0x7fff_ffff) {
        let x = SeqNum(a);
        let y = x + d;
        prop_assert!(x.before(y));
        prop_assert!(y.after(x));
        prop_assert!(!y.before(x));
        prop_assert_eq!(y - x, i64::from(d));
        prop_assert_eq!(x - y, -i64::from(d));
    }

    #[test]
    fn seqnum_window_membership(base in any::<u32>(), len in 1u32..1_000_000, off in any::<u32>()) {
        let lo = SeqNum(base);
        let p = lo + (off % (len * 2));
        let inside = (p - lo) < i64::from(len);
        prop_assert_eq!(p.in_window(lo, len), inside);
    }

    #[test]
    fn seqnum_max_min_consistent(a in any::<u32>(), d in 0u32..0x7fff_ffff) {
        let x = SeqNum(a);
        let y = x + d;
        prop_assert_eq!(x.max(y), y);
        prop_assert_eq!(x.min(y), x);
    }
}
