//! `any::<T>()` — the canonical whole-domain strategy for a type.

use crate::strategy::Strategy;
use crate::test_runner::Rng;
use std::marker::PhantomData;

/// Types with a canonical uniform generator.
pub trait Arbitrary: Sized {
    /// Draws one value covering the type's whole domain.
    fn arbitrary(rng: &mut Rng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut Rng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut Rng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut Rng) -> f64 {
        rng.next_f64()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut Rng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}
