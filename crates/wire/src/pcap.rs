//! Classic libpcap capture files — the format `tcpdump` writes.
//!
//! The paper's input corpus is tcpdump traces; this module lets the
//! reproduction round-trip its simulated traces through the same container
//! so they can be inspected with standard tools, and lets the analyzer
//! ingest real captures.
//!
//! Both byte orders and both timestamp resolutions (microsecond magic
//! `0xa1b2c3d4`, nanosecond magic `0xa1b23c4d`) are supported on read;
//! writes use little-endian with a caller-chosen resolution.

use crate::WireError;
use std::io::{self, Read, Write};

/// Timestamp resolution of a capture file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsResolution {
    /// Microsecond timestamps (magic `0xa1b2c3d4`).
    Micro,
    /// Nanosecond timestamps (magic `0xa1b23c4d`).
    Nano,
}

impl TsResolution {
    fn magic(self) -> u32 {
        match self {
            TsResolution::Micro => 0xa1b2_c3d4,
            TsResolution::Nano => 0xa1b2_3c4d,
        }
    }

    /// Subsecond units per second at this resolution.
    pub fn units_per_sec(self) -> u64 {
        match self {
            TsResolution::Micro => 1_000_000,
            TsResolution::Nano => 1_000_000_000,
        }
    }
}

/// `LINKTYPE_ETHERNET`, the only link type the simulators emit.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// One captured record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture timestamp in nanoseconds since the epoch (normalized from
    /// the file's native resolution).
    pub ts_nanos: u64,
    /// Original packet length on the wire (may exceed `data.len()` when the
    /// capture used a snap length).
    pub orig_len: u32,
    /// The captured bytes.
    pub data: Vec<u8>,
}

/// Errors arising when reading or writing capture files.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed file contents.
    Format(WireError),
}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

impl From<WireError> for PcapError {
    fn from(e: WireError) -> Self {
        PcapError::Format(e)
    }
}

impl core::fmt::Display for PcapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap i/o error: {e}"),
            PcapError::Format(e) => write!(f, "pcap format error: {e}"),
        }
    }
}

impl std::error::Error for PcapError {}

/// Streaming reader for classic pcap files.
pub struct PcapReader<R: Read> {
    inner: R,
    swapped: bool,
    resolution: TsResolution,
    linktype: u32,
    snaplen: u32,
}

impl<R: Read> PcapReader<R> {
    /// Opens a capture, consuming and validating the 24-byte global header.
    pub fn new(mut inner: R) -> core::result::Result<Self, PcapError> {
        let mut header = [0u8; 24];
        inner.read_exact(&mut header)?;
        let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let (swapped, resolution) = match magic {
            0xa1b2_c3d4 => (false, TsResolution::Micro),
            0xd4c3_b2a1 => (true, TsResolution::Micro),
            0xa1b2_3c4d => (false, TsResolution::Nano),
            0x4d3c_b2a1 => (true, TsResolution::Nano),
            _ => return Err(WireError::BadMagic.into()),
        };
        let read_u32 = |bytes: &[u8]| {
            let arr = [bytes[0], bytes[1], bytes[2], bytes[3]];
            if swapped {
                u32::from_be_bytes(arr)
            } else {
                u32::from_le_bytes(arr)
            }
        };
        let snaplen = read_u32(&header[16..20]);
        let linktype = read_u32(&header[20..24]);
        Ok(PcapReader {
            inner,
            swapped,
            resolution,
            linktype,
            snaplen,
        })
    }

    /// The file's link type (e.g. [`LINKTYPE_ETHERNET`]).
    pub fn linktype(&self) -> u32 {
        self.linktype
    }

    /// The file's snap length.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// The file's native timestamp resolution.
    pub fn resolution(&self) -> TsResolution {
        self.resolution
    }

    fn to_u32(&self, b: [u8; 4]) -> u32 {
        if self.swapped {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        }
    }

    /// Reads the next record, or `Ok(None)` at a clean end of file.
    pub fn next_record(&mut self) -> core::result::Result<Option<PcapRecord>, PcapError> {
        let mut header = [0u8; 16];
        match self.inner.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let ts_sec = self.to_u32([header[0], header[1], header[2], header[3]]);
        let ts_sub = self.to_u32([header[4], header[5], header[6], header[7]]);
        let incl_len = self.to_u32([header[8], header[9], header[10], header[11]]);
        let orig_len = self.to_u32([header[12], header[13], header[14], header[15]]);
        if u64::from(ts_sub) >= self.resolution.units_per_sec() {
            return Err(WireError::BadValue.into());
        }
        if incl_len > 0x0400_0000 {
            // 64 MiB record: clearly corrupt; refuse rather than OOM.
            return Err(WireError::BadLength.into());
        }
        let mut data = vec![0u8; incl_len as usize];
        self.inner.read_exact(&mut data)?;
        let per_unit = 1_000_000_000 / self.resolution.units_per_sec();
        let ts_nanos = u64::from(ts_sec) * 1_000_000_000 + u64::from(ts_sub) * per_unit;
        Ok(Some(PcapRecord {
            ts_nanos,
            orig_len,
            data,
        }))
    }

    /// Collects every remaining record.
    pub fn read_all(&mut self) -> core::result::Result<Vec<PcapRecord>, PcapError> {
        let mut records = Vec::new();
        while let Some(rec) = self.next_record()? {
            records.push(rec);
        }
        Ok(records)
    }
}

/// Streaming writer for classic pcap files (little-endian).
pub struct PcapWriter<W: Write> {
    inner: W,
    resolution: TsResolution,
}

impl<W: Write> PcapWriter<W> {
    /// Creates a capture file, emitting the global header.
    pub fn new(
        mut inner: W,
        resolution: TsResolution,
        linktype: u32,
        snaplen: u32,
    ) -> io::Result<Self> {
        inner.write_all(&resolution.magic().to_le_bytes())?;
        inner.write_all(&2u16.to_le_bytes())?; // version major
        inner.write_all(&4u16.to_le_bytes())?; // version minor
        inner.write_all(&0i32.to_le_bytes())?; // thiszone
        inner.write_all(&0u32.to_le_bytes())?; // sigfigs
        inner.write_all(&snaplen.to_le_bytes())?;
        inner.write_all(&linktype.to_le_bytes())?;
        Ok(PcapWriter { inner, resolution })
    }

    /// Appends one record. `ts_nanos` is truncated to the file resolution.
    pub fn write_record(&mut self, ts_nanos: u64, orig_len: u32, data: &[u8]) -> io::Result<()> {
        let per_unit = 1_000_000_000 / self.resolution.units_per_sec();
        let ts_sec = (ts_nanos / 1_000_000_000) as u32;
        let ts_sub = ((ts_nanos % 1_000_000_000) / per_unit) as u32;
        self.inner.write_all(&ts_sec.to_le_bytes())?;
        self.inner.write_all(&ts_sub.to_le_bytes())?;
        self.inner.write_all(&(data.len() as u32).to_le_bytes())?;
        self.inner.write_all(&orig_len.to_le_bytes())?;
        self.inner.write_all(data)
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip(resolution: TsResolution) {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, resolution, LINKTYPE_ETHERNET, 65535).unwrap();
            w.write_record(1_500_000_123_456_789_000, 100, &[1, 2, 3])
                .unwrap();
            w.write_record(1_500_000_124_000_000_500, 4, &[9, 9, 9, 9])
                .unwrap();
            w.finish().unwrap();
        }
        let mut r = PcapReader::new(Cursor::new(buf)).unwrap();
        assert_eq!(r.linktype(), LINKTYPE_ETHERNET);
        assert_eq!(r.resolution(), resolution);
        let recs = r.read_all().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].data, vec![1, 2, 3]);
        assert_eq!(recs[0].orig_len, 100);
        match resolution {
            TsResolution::Micro => {
                assert_eq!(recs[0].ts_nanos, 1_500_000_123_456_789_000);
                // sub-µs truncated
                assert_eq!(recs[1].ts_nanos, 1_500_000_124_000_000_000);
            }
            TsResolution::Nano => {
                assert_eq!(recs[1].ts_nanos, 1_500_000_124_000_000_500);
            }
        }
    }

    #[test]
    fn micro_round_trip() {
        round_trip(TsResolution::Micro);
    }

    #[test]
    fn nano_round_trip() {
        round_trip(TsResolution::Nano);
    }

    #[test]
    fn big_endian_file_readable() {
        // Hand-build a big-endian µs file with one empty record.
        let mut buf = Vec::new();
        buf.extend_from_slice(&0xa1b2_c3d4u32.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0i32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&65535u32.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&10u32.to_be_bytes()); // ts_sec
        buf.extend_from_slice(&250_000u32.to_be_bytes()); // ts_usec
        buf.extend_from_slice(&0u32.to_be_bytes()); // incl_len
        buf.extend_from_slice(&60u32.to_be_bytes()); // orig_len
        let mut r = PcapReader::new(Cursor::new(buf)).unwrap();
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.ts_nanos, 10_250_000_000);
        assert_eq!(rec.orig_len, 60);
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = vec![0u8; 24];
        match PcapReader::new(Cursor::new(buf)) {
            Err(PcapError::Format(WireError::BadMagic)) => {}
            Err(other) => panic!("expected BadMagic, got {other:?}"),
            Ok(_) => panic!("expected BadMagic, got a reader"),
        }
    }

    #[test]
    fn truncated_record_is_io_error() {
        let mut buf = Vec::new();
        {
            let mut w =
                PcapWriter::new(&mut buf, TsResolution::Micro, LINKTYPE_ETHERNET, 65535).unwrap();
            w.write_record(0, 10, &[0; 10]).unwrap();
            w.finish().unwrap();
        }
        buf.truncate(buf.len() - 3);
        let mut r = PcapReader::new(Cursor::new(buf)).unwrap();
        assert!(matches!(r.next_record(), Err(PcapError::Io(_))));
    }

    #[test]
    fn absurd_record_length_rejected() {
        let mut buf = Vec::new();
        {
            let w =
                PcapWriter::new(&mut buf, TsResolution::Micro, LINKTYPE_ETHERNET, 65535).unwrap();
            w.finish().unwrap();
        }
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0xffff_ffffu32.to_le_bytes()); // incl_len
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut r = PcapReader::new(Cursor::new(buf)).unwrap();
        assert!(matches!(
            r.next_record(),
            Err(PcapError::Format(WireError::BadLength))
        ));
    }
}
