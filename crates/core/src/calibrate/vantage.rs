//! Inferring the measurement vantage point (§3.2).
//!
//! tcpanaly needs to know whether a trace was captured near the data
//! sender or near the receiver — the self-consistency checks and the
//! response-delay semantics differ. The trace itself answers: at the
//! *sender's* filter, a data packet follows its liberating ack within the
//! host's processing time (sub-milliseconds), while acks trail the data
//! they acknowledge by a round-trip. At the *receiver's* filter the
//! asymmetry flips: acks chase arriving data within the acking delay,
//! and fresh data trails the acks that liberated it by a round-trip.

use super::drops::Vantage;
use tcpa_trace::{Connection, Dir, Duration, Summary};

/// The evidence behind a vantage inference.
#[derive(Debug, Clone)]
pub struct VantageInference {
    /// The inferred vantage.
    pub vantage: Vantage,
    /// Median gap from an ack to the next data packet (sender-side
    /// response time when small).
    pub ack_to_data: Option<Duration>,
    /// Median gap from a data packet to the next ack (receiver-side
    /// response time when small).
    pub data_to_ack: Option<Duration>,
}

/// Infers where the filter sat relative to one connection.
///
/// Returns [`Vantage::Unknown`] when the trace is too small or the
/// asymmetry too weak to call.
pub fn infer_vantage(conn: &Connection) -> VantageInference {
    let mut ack_to_data = Summary::new();
    let mut data_to_ack = Summary::new();
    let mut last_ack_at = None;
    let mut last_data_at = None;
    for (dir, rec) in &conn.records {
        match dir {
            Dir::SenderToReceiver if rec.is_data() => {
                if let Some(t) = last_ack_at.take() {
                    ack_to_data.add(rec.ts - t);
                }
                last_data_at = Some(rec.ts);
            }
            Dir::ReceiverToSender if rec.is_pure_ack() => {
                if let Some(t) = last_data_at.take() {
                    data_to_ack.add(rec.ts - t);
                }
                last_ack_at = Some(rec.ts);
            }
            _ => {}
        }
    }
    let mut a2d = ack_to_data;
    let mut d2a = data_to_ack;
    let (ma, md) = (a2d.median(), d2a.median());
    let vantage = match (ma, md) {
        (Some(a), Some(d)) if a2d.count() >= 4 && d2a.count() >= 4 => {
            // Require a clear factor between the two directions.
            if a.as_nanos() * 4 < d.as_nanos() {
                Vantage::Sender
            } else if d.as_nanos() * 4 < a.as_nanos() {
                Vantage::Receiver
            } else {
                Vantage::Unknown
            }
        }
        _ => Vantage::Unknown,
    };
    VantageInference {
        vantage,
        ack_to_data: ma,
        data_to_ack: md,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpa_trace::{Time, Trace, TraceRecord};
    use tcpa_wire::{IpProtocol, Ipv4Addr, Ipv4Repr, SeqNum, TcpFlags, TcpRepr};

    fn rec(ts_us: i64, src: u8, dst: u8, seq: u32, len: u32, ack: u32) -> TraceRecord {
        TraceRecord {
            ts: Time::from_micros(ts_us),
            ip: Ipv4Repr {
                src: Ipv4Addr::from_host_id(src),
                dst: Ipv4Addr::from_host_id(dst),
                protocol: IpProtocol::Tcp,
                ttl: 64,
                ident: 0,
                payload_len: 20 + len as usize,
            },
            tcp: TcpRepr {
                seq: SeqNum(seq),
                ack: SeqNum(ack),
                flags: TcpFlags::ACK,
                window: 16_384,
                ..TcpRepr::new(5000 + u16::from(src), 5000 + u16::from(dst))
            },
            payload_len: len,
            checksum_ok: Some(true),
        }
    }

    /// Ack-clocked transfer seen from the sender: data leaves ~1 ms after
    /// each ack; acks arrive ~100 ms after the data they cover.
    fn sender_side() -> Connection {
        let mut v = Vec::new();
        let mut t = 0;
        for k in 0..10u32 {
            v.push(rec(t, 1, 2, 1 + 512 * k, 512, 1)); // data out
            t += 100_000; // RTT later the ack shows up
            v.push(rec(t, 2, 1, 1, 0, 1 + 512 * (k + 1)));
            t += 1_000; // sender responds in ~1 ms
        }
        Connection::split(&v.into_iter().collect::<Trace>()).remove(0)
    }

    /// The same transfer seen from the receiver: data arrives, the ack
    /// leaves ~1 ms later; fresh data trails each ack by ~100 ms.
    fn receiver_side() -> Connection {
        let mut v = Vec::new();
        let mut t = 0;
        for k in 0..10u32 {
            v.push(rec(t, 1, 2, 1 + 512 * k, 512, 1)); // data arrives
            t += 1_000; // receiver acks promptly
            v.push(rec(t, 2, 1, 1, 0, 1 + 512 * (k + 1)));
            t += 100_000; // next data a round-trip later
        }
        Connection::split(&v.into_iter().collect::<Trace>()).remove(0)
    }

    #[test]
    fn sender_vantage_inferred() {
        let inf = infer_vantage(&sender_side());
        assert_eq!(inf.vantage, Vantage::Sender, "{inf:?}");
    }

    #[test]
    fn receiver_vantage_inferred() {
        let inf = infer_vantage(&receiver_side());
        assert_eq!(inf.vantage, Vantage::Receiver, "{inf:?}");
    }

    #[test]
    fn tiny_trace_is_unknown() {
        let v = vec![rec(0, 1, 2, 1, 512, 1), rec(1000, 2, 1, 1, 0, 513)];
        let conn = Connection::split(&v.into_iter().collect::<Trace>()).remove(0);
        assert_eq!(infer_vantage(&conn).vantage, Vantage::Unknown);
    }
}
