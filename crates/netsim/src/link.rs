//! Unidirectional links: bandwidth, propagation delay, drop-tail queue,
//! and loss injection.

use crate::packet::Packet;
use crate::rng::SplitMix64;
use std::collections::VecDeque;
use tcpa_trace::{Duration, Time};

/// How a link loses packets in flight (beyond queue overflow).
#[derive(Debug, Clone)]
pub enum LossModel {
    /// No induced loss.
    None,
    /// Independent loss with the given probability per packet.
    Bernoulli(f64),
    /// Drop exactly the packets whose *per-link transmission index*
    /// (0-based count of packets that completed transmission on this link)
    /// appears in the list. Gives figure scenarios exact control.
    DropList(Vec<u64>),
    /// Drop every `n`-th packet (1-based: `n=10` drops indices 9, 19, …).
    Periodic(u64),
}

impl LossModel {
    fn should_drop(&self, tx_index: u64, rng: &mut SplitMix64) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Bernoulli(p) => rng.chance(*p),
            LossModel::DropList(list) => list.contains(&tx_index),
            LossModel::Periodic(n) => *n > 0 && (tx_index + 1).is_multiple_of(*n),
        }
    }
}

/// Static parameters of a link.
#[derive(Debug, Clone)]
pub struct LinkParams {
    /// Transmission rate in bits per second.
    pub rate_bps: u64,
    /// Propagation delay.
    pub prop_delay: Duration,
    /// Drop-tail queue capacity in packets (excluding the one in
    /// transmission). Real early-90s router queues were 4–30 packets.
    pub queue_cap: usize,
    /// Induced loss.
    pub loss: LossModel,
    /// Induced payload corruption: matched packets are delivered with
    /// their `corrupt` flag set, so the receiving TCP discards them on
    /// checksum failure (§7). Uses the same selection semantics as
    /// [`LossModel`], on the same per-link transmission index.
    pub corruption: LossModel,
}

impl LinkParams {
    /// A 10 Mb/s Ethernet-like LAN hop with a tiny delay and a deep queue.
    pub fn ethernet() -> LinkParams {
        LinkParams {
            rate_bps: 10_000_000,
            prop_delay: Duration::from_micros(50),
            queue_cap: 100,
            loss: LossModel::None,
            corruption: LossModel::None,
        }
    }

    /// A wide-area path: `rate_bps` bottleneck, one-way `delay`, modest
    /// router queue.
    pub fn wan(rate_bps: u64, delay: Duration, queue_cap: usize) -> LinkParams {
        LinkParams {
            rate_bps,
            prop_delay: delay,
            queue_cap,
            loss: LossModel::None,
            corruption: LossModel::None,
        }
    }

    /// Sets the loss model (builder style).
    pub fn with_loss(mut self, loss: LossModel) -> LinkParams {
        self.loss = loss;
        self
    }

    /// Sets the corruption model (builder style).
    pub fn with_corruption(mut self, corruption: LossModel) -> LinkParams {
        self.corruption = corruption;
        self
    }
}

/// Outcome of offering a packet to a link queue.
#[derive(Debug, PartialEq, Eq)]
pub enum Enqueue {
    /// Accepted; the caller must start transmission if the link was idle.
    Accepted {
        /// `true` if the transmitter was idle and transmission of this
        /// packet should begin now.
        starts_tx: bool,
    },
    /// Queue full; packet dropped at the tail.
    Overflow,
}

/// Runtime state of a link.
#[derive(Debug)]
pub struct Link {
    /// Static parameters.
    pub params: LinkParams,
    /// Destination host index.
    pub dst_host: usize,
    /// Source host index.
    pub src_host: usize,
    queue: VecDeque<Packet>,
    transmitting: Option<Packet>,
    tx_count: u64,
}

impl Link {
    /// Creates an idle link.
    pub fn new(src_host: usize, dst_host: usize, params: LinkParams) -> Link {
        Link {
            params,
            dst_host,
            src_host,
            queue: VecDeque::new(),
            transmitting: None,
            tx_count: 0,
        }
    }

    /// Offers a packet. On `Accepted { starts_tx: true }` transmission
    /// begins immediately; the caller must schedule the completion event
    /// at `now + current_tx_time()`.
    pub fn enqueue(&mut self, pkt: Packet) -> Enqueue {
        if self.transmitting.is_none() {
            debug_assert!(self.queue.is_empty());
            self.transmitting = Some(pkt);
            Enqueue::Accepted { starts_tx: true }
        } else if self.queue.len() < self.params.queue_cap {
            self.queue.push_back(pkt);
            Enqueue::Accepted { starts_tx: false }
        } else {
            Enqueue::Overflow
        }
    }

    /// Serialization time of the packet currently in the transmitter.
    pub fn current_tx_time(&self) -> Duration {
        let pkt = self
            .transmitting
            .as_ref()
            .expect("current_tx_time with idle transmitter");
        Duration::transmission(u64::from(pkt.wire_len()), self.params.rate_bps)
    }

    /// Completes the in-flight transmission. Returns the transmitted
    /// packet (its `corrupt` flag set if the corruption model matched),
    /// whether the *link* drops it (loss model), and whether another
    /// packet begins transmitting.
    pub fn complete_tx(&mut self, rng: &mut SplitMix64) -> (Packet, bool, bool) {
        let mut pkt = self
            .transmitting
            .take()
            .expect("complete_tx with idle transmitter");
        let dropped = self.params.loss.should_drop(self.tx_count, rng);
        if self.params.corruption.should_drop(self.tx_count, rng) {
            if let crate::packet::PacketKind::Tcp { corrupt, .. } = &mut pkt.kind {
                *corrupt = true;
            }
        }
        self.tx_count += 1;
        let more = if let Some(next) = self.queue.pop_front() {
            self.transmitting = Some(next);
            true
        } else {
            false
        };
        (pkt, dropped, more)
    }

    /// Number of packets waiting (excluding the one transmitting).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when nothing is queued or transmitting.
    pub fn is_idle(&self) -> bool {
        self.transmitting.is_none() && self.queue.is_empty()
    }

    /// Count of packets that have completed transmission.
    pub fn tx_count(&self) -> u64 {
        self.tx_count
    }

    /// Time reference helper: when a packet transmitted at `start` reaches
    /// the far end.
    pub fn arrival_time(&self, tx_done: Time) -> Time {
        tx_done + self.params.prop_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpa_wire::{Ipv4Addr, TcpRepr};

    fn pkt() -> Packet {
        Packet::tcp(
            Ipv4Addr::from_host_id(1),
            Ipv4Addr::from_host_id(2),
            0,
            TcpRepr::new(1, 2),
            1000,
        )
    }

    #[test]
    fn first_packet_starts_transmission() {
        let mut link = Link::new(0, 1, LinkParams::ethernet());
        assert_eq!(link.enqueue(pkt()), Enqueue::Accepted { starts_tx: true });
        assert_eq!(link.enqueue(pkt()), Enqueue::Accepted { starts_tx: false });
        assert_eq!(link.queue_len(), 1);
    }

    #[test]
    fn overflow_at_capacity() {
        let params = LinkParams {
            queue_cap: 2,
            ..LinkParams::ethernet()
        };
        let mut link = Link::new(0, 1, params);
        assert!(matches!(link.enqueue(pkt()), Enqueue::Accepted { .. })); // tx
        assert!(matches!(link.enqueue(pkt()), Enqueue::Accepted { .. })); // q1
        assert!(matches!(link.enqueue(pkt()), Enqueue::Accepted { .. })); // q2
        assert_eq!(link.enqueue(pkt()), Enqueue::Overflow);
    }

    #[test]
    fn complete_pops_next() {
        let mut link = Link::new(0, 1, LinkParams::ethernet());
        let mut rng = SplitMix64::new(1);
        link.enqueue(pkt());
        link.enqueue(pkt());
        let (_, dropped, more) = link.complete_tx(&mut rng);
        assert!(!dropped);
        assert!(more);
        let (_, _, more) = link.complete_tx(&mut rng);
        assert!(!more);
        assert!(link.is_idle());
    }

    #[test]
    fn tx_time_matches_rate() {
        let mut link = Link::new(0, 1, LinkParams::ethernet());
        link.enqueue(pkt()); // wire_len = 14+20+20+1000 = 1054 bytes
        assert_eq!(
            link.current_tx_time(),
            Duration::transmission(1054, 10_000_000)
        );
    }

    #[test]
    fn drop_list_drops_exact_indices() {
        let params = LinkParams::ethernet().with_loss(LossModel::DropList(vec![1]));
        let mut link = Link::new(0, 1, params);
        let mut rng = SplitMix64::new(1);
        link.enqueue(pkt());
        link.enqueue(pkt());
        link.enqueue(pkt());
        assert!(!link.complete_tx(&mut rng).1); // index 0 kept
        assert!(link.complete_tx(&mut rng).1); // index 1 dropped
        assert!(!link.complete_tx(&mut rng).1); // index 2 kept
    }

    #[test]
    fn periodic_loss() {
        let params = LinkParams::ethernet().with_loss(LossModel::Periodic(3));
        let mut link = Link::new(0, 1, params);
        let mut rng = SplitMix64::new(1);
        let mut drops = Vec::new();
        for i in 0..9 {
            link.enqueue(pkt());
            if link.complete_tx(&mut rng).1 {
                drops.push(i);
            }
        }
        assert_eq!(drops, vec![2, 5, 8]);
    }
}
