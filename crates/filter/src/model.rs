//! The filter pipeline: tap events → (errors applied) → measured trace.

use crate::clock::ClockModel;
use tcpa_netsim::rng::SplitMix64;
use tcpa_netsim::{PacketKind, TapDir, TapEvent};
use tcpa_trace::{Duration, Time, Trace, TraceRecord};

/// How the filter loses records (§3.1.1). These are *measurement* drops:
/// the packets really crossed the wire.
#[derive(Debug, Clone, Default)]
pub enum DropModel {
    /// Keep everything.
    #[default]
    None,
    /// Drop each record independently with probability `p` (user-level
    /// filters starved of CPU).
    Bernoulli(f64),
    /// Drop exactly the records at these indices (in wire-event order).
    List(Vec<usize>),
    /// Drop a contiguous burst of `len` records starting at `start`
    /// (a filter falling behind and shedding everything for a while).
    Burst {
        /// First dropped index.
        start: usize,
        /// Number of consecutive records dropped.
        len: usize,
    },
}

impl DropModel {
    fn drops(&self, idx: usize, rng: &mut SplitMix64) -> bool {
        match self {
            DropModel::None => false,
            DropModel::Bernoulli(p) => rng.chance(*p),
            DropModel::List(list) => list.contains(&idx),
            DropModel::Burst { start, len } => idx >= *start && idx < start + len,
        }
    }
}

/// The IRIX 5.2/5.3 duplication bug (§3.1.2): outgoing packets are copied
/// to the filter twice — once when scheduled (paced at the OS sourcing
/// rate) and once when they actually depart onto the Ethernet.
#[derive(Debug, Clone)]
pub struct DupModel {
    /// OS packet-sourcing rate in bytes/second (Figure 1: ≈2.5 MB/s).
    pub os_copy_rate: u64,
}

impl Default for DupModel {
    fn default() -> DupModel {
        DupModel {
            os_copy_rate: 2_500_000,
        }
    }
}

/// The Solaris resequencing effect (§3.1.3): two code paths copy packets
/// to the filter, and the inbound path is appreciably slower, so packets
/// are timestamped (and written) out of wire order.
#[derive(Debug, Clone)]
pub struct ReseqModel {
    /// Outbound path delay range (uniform), e.g. 0–100 µs.
    pub out_delay: (Duration, Duration),
    /// Inbound path delay range (uniform), e.g. 200–800 µs.
    pub in_delay: (Duration, Duration),
}

impl Default for ReseqModel {
    fn default() -> ReseqModel {
        ReseqModel {
            out_delay: (Duration::ZERO, Duration::from_micros(100)),
            in_delay: (Duration::from_micros(200), Duration::from_micros(2500)),
        }
    }
}

impl ReseqModel {
    fn sample(&self, dir: TapDir, rng: &mut SplitMix64) -> Duration {
        let (lo, hi) = match dir {
            TapDir::Out => self.out_delay,
            TapDir::In => self.in_delay,
        };
        let span = (hi - lo).as_nanos().max(0) as u64;
        if span == 0 {
            return lo;
        }
        lo + Duration(rng.next_below(span + 1) as i64)
    }
}

/// Full description of one packet filter.
#[derive(Debug, Clone, Default)]
pub struct FilterConfig {
    /// Measurement drops.
    pub drops: DropModel,
    /// IRIX-style duplication of outbound packets.
    pub duplication: Option<DupModel>,
    /// Solaris-style resequencing.
    pub resequencing: Option<ReseqModel>,
    /// The filter host's clock.
    pub clock: ClockModel,
    /// Header-only capture: checksums cannot be verified
    /// (`TraceRecord::checksum_ok` becomes `None`).
    pub headers_only: bool,
}

impl FilterConfig {
    /// An error-free kernel filter with a perfect clock.
    pub fn perfect() -> FilterConfig {
        FilterConfig::default()
    }

    /// The IRIX 5.2/5.3 duplicating filter of Figure 1.
    pub fn irix_duplicating() -> FilterConfig {
        FilterConfig {
            duplication: Some(DupModel::default()),
            ..FilterConfig::default()
        }
    }

    /// The Solaris 2.3/2.4 resequencing filter of §3.1.3.
    pub fn solaris_resequencing() -> FilterConfig {
        FilterConfig {
            resequencing: Some(ReseqModel::default()),
            ..FilterConfig::default()
        }
    }

    /// A BSDI 1.1 / NetBSD 1.0 style filter whose fast clock is stepped
    /// backwards periodically (§3.1.4 time travel).
    pub fn time_travelling(horizon: Time) -> FilterConfig {
        FilterConfig {
            clock: ClockModel::fast_with_periodic_sync(
                300.0,
                Duration::from_secs(2),
                Duration::from_millis(25),
                horizon,
            ),
            ..FilterConfig::default()
        }
    }

    /// A user-level filter shedding records under load.
    pub fn lossy(p: f64) -> FilterConfig {
        FilterConfig {
            drops: DropModel::Bernoulli(p),
            ..FilterConfig::default()
        }
    }
}

/// What the filter did — ground truth for calibration tests.
#[derive(Debug, Clone, Default)]
pub struct FilterReport {
    /// Wire-event indices whose record was dropped by the filter.
    pub dropped_indices: Vec<usize>,
    /// Number of duplicate records added.
    pub duplicates_added: usize,
    /// Number of adjacent record pairs written out of wire order.
    pub inversions: usize,
}

struct Candidate {
    proc_t: Time,
    ev_index: usize,
    rec: TraceRecord,
}

/// Runs tap events through the filter, returning the measured trace and a
/// report of the errors introduced.
pub fn apply(events: &[TapEvent], cfg: &FilterConfig, seed: u64) -> (Trace, FilterReport) {
    let mut rng = SplitMix64::new(seed);
    let mut report = FilterReport::default();
    let mut candidates: Vec<Candidate> = Vec::with_capacity(events.len());
    // Pacing state for the duplication model's first copies.
    let mut next_os_copy_at = Time(i64::MIN);

    for (idx, ev) in events.iter().enumerate() {
        // The filter pattern matches TCP only (§6.2): ICMP is invisible.
        let PacketKind::Tcp {
            tcp,
            payload_len,
            corrupt,
        } = &ev.pkt.kind
        else {
            continue;
        };
        let mk_rec = |ts: Time| TraceRecord {
            ts,
            ip: ev.pkt.ip_repr(),
            tcp: tcp.clone(),
            payload_len: *payload_len,
            checksum_ok: if cfg.headers_only {
                None
            } else {
                Some(!corrupt)
            },
        };

        if cfg.drops.drops(idx, &mut rng) {
            report.dropped_indices.push(idx);
            continue;
        }

        // IRIX duplication: an extra early copy for outbound packets,
        // paced at the OS sourcing rate.
        if let (Some(dup), TapDir::Out, Some(t_stack)) = (&cfg.duplication, ev.dir, ev.t_stack) {
            let pace = Duration::transmission(u64::from(ev.pkt.wire_len()), dup.os_copy_rate * 8);
            let t_first = t_stack.max(next_os_copy_at);
            next_os_copy_at = t_first + pace;
            candidates.push(Candidate {
                proc_t: t_first,
                ev_index: idx,
                rec: mk_rec(Time::ZERO), // ts filled after clock stamping
            });
            report.duplicates_added += 1;
        }

        let reseq_delay = cfg
            .resequencing
            .as_ref()
            .map(|m| m.sample(ev.dir, &mut rng))
            .unwrap_or(Duration::ZERO);
        candidates.push(Candidate {
            proc_t: ev.t_wire + reseq_delay,
            ev_index: idx,
            rec: mk_rec(Time::ZERO),
        });
    }

    // The filter writes records in processing order and stamps them with
    // its clock at processing time.
    candidates.sort_by_key(|c| (c.proc_t, c.ev_index));
    let mut last_index = None;
    let mut trace = Trace::new();
    for mut c in candidates {
        if let Some(prev) = last_index {
            if c.ev_index < prev {
                report.inversions += 1;
            }
        }
        last_index = Some(c.ev_index);
        c.rec.ts = cfg.clock.stamp(c.proc_t);
        trace.push(c.rec);
    }
    (trace, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpa_netsim::Packet;
    use tcpa_wire::{Ipv4Addr, SeqNum, TcpFlags, TcpRepr};

    fn ev(t_ms: i64, dir: TapDir, seq: u32, len: u32) -> TapEvent {
        let mut tcp = TcpRepr::new(1000, 2000);
        tcp.flags = TcpFlags::ACK;
        tcp.seq = SeqNum(seq);
        TapEvent {
            t_wire: Time::from_millis(t_ms),
            t_stack: match dir {
                TapDir::Out => Some(Time::from_millis(t_ms) - Duration::from_micros(800)),
                TapDir::In => None,
            },
            dir,
            pkt: Packet::tcp(
                Ipv4Addr::from_host_id(1),
                Ipv4Addr::from_host_id(2),
                seq as u16,
                tcp,
                len,
            ),
        }
    }

    fn wire_events() -> Vec<TapEvent> {
        (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    ev(i * 10, TapDir::Out, 1000 * i as u32, 512)
                } else {
                    ev(i * 10, TapDir::In, 0, 0)
                }
            })
            .collect()
    }

    #[test]
    fn perfect_filter_preserves_everything() {
        let events = wire_events();
        let (trace, report) = apply(&events, &FilterConfig::perfect(), 1);
        assert_eq!(trace.len(), 20);
        assert!(report.dropped_indices.is_empty());
        assert_eq!(report.duplicates_added, 0);
        assert_eq!(report.inversions, 0);
        for (rec, ev) in trace.iter().zip(events.iter()) {
            assert_eq!(rec.ts, ev.t_wire);
        }
    }

    #[test]
    fn drop_list_removes_exact_records() {
        let events = wire_events();
        let cfg = FilterConfig {
            drops: DropModel::List(vec![3, 7]),
            ..FilterConfig::default()
        };
        let (trace, report) = apply(&events, &cfg, 1);
        assert_eq!(trace.len(), 18);
        assert_eq!(report.dropped_indices, vec![3, 7]);
    }

    #[test]
    fn burst_drop_removes_run() {
        let events = wire_events();
        let cfg = FilterConfig {
            drops: DropModel::Burst { start: 5, len: 4 },
            ..FilterConfig::default()
        };
        let (trace, report) = apply(&events, &cfg, 1);
        assert_eq!(trace.len(), 16);
        assert_eq!(report.dropped_indices, vec![5, 6, 7, 8]);
    }

    #[test]
    fn irix_duplication_doubles_outbound_only() {
        let events = wire_events();
        let (trace, report) = apply(&events, &FilterConfig::irix_duplicating(), 1);
        // 10 outbound → duplicated; 10 inbound → single.
        assert_eq!(report.duplicates_added, 10);
        assert_eq!(trace.len(), 30);
        // For each outbound packet both copies are present, early first.
        let outs: Vec<_> = trace
            .iter()
            .filter(|r| r.tcp.src_port == 1000 && r.is_data())
            .collect();
        assert_eq!(outs.len(), 20);
        assert!(outs[0].ts < outs[1].ts);
        assert_eq!(outs[0].tcp.seq, outs[1].tcp.seq);
        assert_eq!(
            outs[0].ip.ident, outs[1].ip.ident,
            "same packet, not a retransmit"
        );
    }

    #[test]
    fn irix_first_copies_are_paced_at_os_rate() {
        // Back-to-back sends: first copies must be spaced by wire_len at
        // the OS copy rate, not all at the same instant.
        let events: Vec<TapEvent> = (0..5)
            .map(|i| {
                let mut e = ev(100, TapDir::Out, i * 512, 512);
                // All emitted by the stack at the same ms, departing 1 ms apart.
                e.t_stack = Some(Time::from_millis(100));
                e.t_wire = Time::from_millis(100 + i as i64);
                e
            })
            .collect();
        let (trace, _) = apply(&events, &FilterConfig::irix_duplicating(), 1);
        // The first copy of each packet is the earlier record per ident.
        let mut idents: Vec<u16> = trace.iter().map(|r| r.ip.ident).collect();
        idents.sort_unstable();
        idents.dedup();
        let mut first_copies: Vec<Time> = idents
            .iter()
            .map(|&ident| {
                trace
                    .iter()
                    .filter(|r| r.ip.ident == ident)
                    .map(|r| r.ts)
                    .min()
                    .unwrap()
            })
            .collect();
        first_copies.sort();
        assert_eq!(first_copies.len(), 5);
        let gap = first_copies[1] - first_copies[0];
        // 566-byte frame at 2.5 MB/s ≈ 226 µs.
        assert!(
            gap > Duration::from_micros(200) && gap < Duration::from_micros(250),
            "gap = {gap}"
        );
    }

    #[test]
    fn resequencing_inverts_tight_sequences() {
        // An inbound ack arriving just before an outbound data packet
        // should frequently be recorded *after* it.
        let mut events = Vec::new();
        for i in 0..200 {
            let t = i * 5;
            events.push(ev(t, TapDir::In, 0, 0));
            // Outbound response 50 µs later (true wire order: In, Out).
            let mut out = ev(t, TapDir::Out, 512 * i as u32, 512);
            out.t_wire = Time::from_millis(t) + Duration::from_micros(50);
            events.push(out);
        }
        let (_, report) = apply(&events, &FilterConfig::solaris_resequencing(), 3);
        assert!(
            report.inversions > 50,
            "tight in/out pairs should invert often, got {}",
            report.inversions
        );
    }

    #[test]
    fn time_travel_produces_decreasing_timestamps() {
        // Packets 1 ms apart — closer together than the 3 ms backward
        // sync steps, so the steps are visible as decreasing stamps.
        let events: Vec<TapEvent> = (0..10_000)
            .map(|i| ev(i, TapDir::Out, i as u32, 512))
            .collect();
        let cfg = FilterConfig::time_travelling(Time::from_secs(10));
        let (trace, _) = apply(&events, &cfg, 1);
        let decreases = trace
            .records
            .windows(2)
            .filter(|w| w[1].ts < w[0].ts)
            .count();
        assert!(decreases >= 2, "periodic backward steps, got {decreases}");
    }

    #[test]
    fn headers_only_capture_hides_checksums() {
        let events = wire_events();
        let cfg = FilterConfig {
            headers_only: true,
            ..FilterConfig::default()
        };
        let (trace, _) = apply(&events, &cfg, 1);
        assert!(trace.iter().all(|r| r.checksum_ok.is_none()));
    }

    #[test]
    fn non_tcp_packets_never_recorded() {
        let mut events = wire_events();
        events.push(TapEvent {
            t_wire: Time::from_millis(500),
            t_stack: None,
            dir: TapDir::In,
            pkt: Packet::source_quench(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::from_host_id(1)),
        });
        let (trace, _) = apply(&events, &FilterConfig::perfect(), 1);
        assert_eq!(trace.len(), 20, "ICMP invisible to a TCP-only filter");
    }
}
