//! Hierarchical span tracing with Chrome `trace_event` export.
//!
//! The flat registry ([`crate::registry`]) can say *how long* the
//! fingerprint stage takes in aggregate; it cannot say where connection
//! #4217 spent its 80 ms, on which worker, or whether a retry
//! interleaved. This module records the *causal* picture — a span tree
//! per corpus item, one lane per thread — and exports it in the Chrome
//! `trace_event` JSON format, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Design constraints, in order:
//!
//! * **Off means free.** Tracing is disabled until [`enable`] is called
//!   (the CLI's `--trace-out`); every hook starts with one relaxed
//!   atomic load and bails.
//! * **Lock-free-enough.** Each thread appends events to a thread-local
//!   buffer; the global sink mutex is touched only when an item
//!   finishes ([`end_item`] / [`finish_adopted`]) or a thread exits, so
//!   workers never contend per-span.
//! * **Deterministic modulo timestamps.** Span ids are per-item
//!   sequence numbers (an item is processed sequentially, even across
//!   the watchdog handoff, so its id assignment does not depend on
//!   scheduling). [`canonicalize`] strips the fields that legitimately
//!   vary between runs — timestamps, durations, and lane/thread
//!   assignment — and sorts by `(item, id)`; the result is
//!   byte-identical whatever `--jobs` was.
//! * **Explicit cross-thread handoff.** The corpus watchdog boundary is
//!   crossed with [`handoff`]/[`adopt`]: the watchdog thread inherits
//!   the item context *and its shared id counter*, so its spans slot
//!   into the same tree (parented under the worker's open span) with no
//!   id collisions.

use crate::json::Value;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The phase of one trace event (a subset of the Chrome vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete span (`ph:"X"`): name + start + duration.
    Complete,
    /// An instant event (`ph:"i"`): a point in time (retry, salvage…).
    Instant,
}

/// One recorded event, before export.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event phase.
    pub phase: Phase,
    /// Span or event name (`stage.fingerprint`, `retry`, …).
    pub name: String,
    /// Lane (thread role) the event happened on (`main`, `worker-3`,
    /// `watchdog`).
    pub lane: String,
    /// The corpus item's label (file path or synthetic name).
    pub item_id: String,
    /// The corpus item's 0-based input-order index.
    pub item_index: u64,
    /// This event's id: its 1-based sequence number within the item.
    pub id: u64,
    /// The enclosing span's id, if any.
    pub parent: Option<u64>,
    /// Nanoseconds since [`enable`] at which the event started.
    pub ts_ns: u64,
    /// Span duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Human-readable detail (connection key, retry reason, …).
    pub detail: String,
}

/// Context for one span opened on the current thread (held by
/// [`crate::Span`] while in flight).
#[derive(Debug, Clone, Copy)]
pub struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    ts_ns: u64,
}

/// The item context carried across the worker→watchdog boundary.
#[derive(Debug, Clone)]
pub struct Handoff {
    item_id: String,
    item_index: u64,
    seq: Arc<AtomicU64>,
    parent: Option<u64>,
}

#[derive(Debug)]
struct ItemCtx {
    id: String,
    index: u64,
    /// Shared with an adopted watchdog thread so ids never collide.
    seq: Arc<AtomicU64>,
    /// Open-span stack (ids); the top is the parent of the next event.
    stack: Vec<u64>,
}

#[derive(Debug, Default)]
struct ThreadCtx {
    lane: Option<String>,
    item: Option<ItemCtx>,
    buf: Vec<TraceEvent>,
}

impl ThreadCtx {
    fn lane(&self) -> String {
        self.lane.clone().unwrap_or_else(|| "main".to_string())
    }
}

impl Drop for ThreadCtx {
    fn drop(&mut self) {
        // A thread exiting with buffered events (worker threads flush per
        // item, but a final partial buffer may remain) ships them to the
        // sink so drain() sees them.
        if !self.buf.is_empty() {
            sink_append(std::mem::take(&mut self.buf));
        }
    }
}

thread_local! {
    static CTX: RefCell<ThreadCtx> = RefCell::new(ThreadCtx::default());
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static SINK: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
/// Spans opened while no item context was active (they are not
/// recorded); exposed so coverage tests can prove the blind spot is
/// empty on instrumented paths.
static ORPHAN_SPANS: AtomicU64 = AtomicU64::new(0);

fn sink_append(mut events: Vec<TraceEvent>) {
    let mut sink = match SINK.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    sink.append(&mut events);
}

/// Turns the collector on (idempotent). All spans and instants recorded
/// after this call, on threads with an open item context, are kept.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Release);
}

/// `true` when the collector is recording.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Names the current thread's lane (`worker-0`, `watchdog`, …). The
/// default lane is `main`. Cheap no-op when tracing is off.
pub fn set_lane(name: &str) {
    if !is_enabled() {
        return;
    }
    CTX.with(|cell| cell.borrow_mut().lane = Some(name.to_string()));
}

/// Opens an item context on this thread: subsequent spans and instants
/// are attributed to `(id, index)` with ids drawn from a fresh counter.
pub fn begin_item(id: &str, index: u64) {
    if !is_enabled() {
        return;
    }
    CTX.with(|cell| {
        cell.borrow_mut().item = Some(ItemCtx {
            id: id.to_string(),
            index,
            seq: Arc::new(AtomicU64::new(0)),
            stack: Vec::new(),
        });
    });
}

/// Closes this thread's item context and flushes the thread-local
/// buffer into the global sink.
pub fn end_item() {
    if !is_enabled() {
        return;
    }
    CTX.with(|cell| {
        let mut ctx = cell.borrow_mut();
        ctx.item = None;
        if !ctx.buf.is_empty() {
            let events = std::mem::take(&mut ctx.buf);
            drop(ctx);
            sink_append(events);
        }
    });
}

/// Captures the current item context for explicit transfer to another
/// thread (the corpus watchdog). The receiving thread's spans will be
/// parented under this thread's currently-open span and numbered from
/// the *same* counter. Returns `None` when tracing is off or no item is
/// open.
pub fn handoff() -> Option<Handoff> {
    if !is_enabled() {
        return None;
    }
    CTX.with(|cell| {
        let ctx = cell.borrow();
        ctx.item.as_ref().map(|item| Handoff {
            item_id: item.id.clone(),
            item_index: item.index,
            seq: Arc::clone(&item.seq),
            parent: item.stack.last().copied(),
        })
    })
}

/// Installs a handed-off item context on this thread (the watchdog) and
/// names its lane `watchdog`. Pair with [`finish_adopted`].
pub fn adopt(h: Handoff) {
    CTX.with(|cell| {
        let mut ctx = cell.borrow_mut();
        ctx.lane = Some("watchdog".to_string());
        ctx.item = Some(ItemCtx {
            id: h.item_id,
            index: h.item_index,
            seq: h.seq,
            // The handoff parent seeds the stack so the watchdog's root
            // span nests under the worker's open span.
            stack: h.parent.into_iter().collect(),
        });
    });
}

/// Ends an adopted context: flushes this thread's events to the sink so
/// they survive the thread, even if the worker has already timed out.
pub fn finish_adopted() {
    if !is_enabled() {
        return;
    }
    CTX.with(|cell| {
        let mut ctx = cell.borrow_mut();
        ctx.item = None;
        if !ctx.buf.is_empty() {
            let events = std::mem::take(&mut ctx.buf);
            drop(ctx);
            sink_append(events);
        }
    });
}

/// Called by [`crate::Span::start`]: allocates an id, pushes it on the
/// open-span stack, and remembers the start time. Returns `None` (and
/// records nothing) when tracing is off or no item context is open.
pub(crate) fn open_span() -> Option<OpenSpan> {
    if !is_enabled() {
        return None;
    }
    CTX.with(|cell| {
        let mut ctx = cell.borrow_mut();
        match ctx.item.as_mut() {
            None => {
                ORPHAN_SPANS.fetch_add(1, Ordering::Relaxed);
                None
            }
            Some(item) => {
                let id = item.seq.fetch_add(1, Ordering::Relaxed) + 1;
                let parent = item.stack.last().copied();
                item.stack.push(id);
                Some(OpenSpan {
                    id,
                    parent,
                    ts_ns: now_ns(),
                })
            }
        }
    })
}

/// Called by [`crate::Span`] on drop: pops the stack and buffers the
/// complete (`ph:"X"`) event.
pub(crate) fn close_span(open: OpenSpan, name: &'static str, detail: &str) {
    let dur_ns = now_ns().saturating_sub(open.ts_ns);
    CTX.with(|cell| {
        let mut ctx = cell.borrow_mut();
        let lane = ctx.lane();
        let Some(item) = ctx.item.as_mut() else {
            // The item closed while this span was open (should not
            // happen on instrumented paths); drop the event rather than
            // misattribute it.
            return;
        };
        // Pop this span (it is the top unless an inner span leaked, in
        // which case retain-to-position keeps the stack consistent).
        if let Some(pos) = item.stack.iter().rposition(|&id| id == open.id) {
            item.stack.truncate(pos);
        }
        let event = TraceEvent {
            phase: Phase::Complete,
            name: name.to_string(),
            lane,
            item_id: item.id.clone(),
            item_index: item.index,
            id: open.id,
            parent: open.parent,
            ts_ns: open.ts_ns,
            dur_ns,
            detail: detail.to_string(),
        };
        ctx.buf.push(event);
    });
}

/// Records an instant event (`ph:"i"`) attached to the currently-open
/// span: retries, timeouts, degrade decisions, salvage ledgers. A no-op
/// when tracing is off or no item context is open.
pub fn instant(name: &'static str, detail: &str) {
    if !is_enabled() {
        return;
    }
    CTX.with(|cell| {
        let mut ctx = cell.borrow_mut();
        let lane = ctx.lane();
        let Some(item) = ctx.item.as_mut() else {
            return;
        };
        let id = item.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let event = TraceEvent {
            phase: Phase::Instant,
            name: name.to_string(),
            lane,
            item_id: item.id.clone(),
            item_index: item.index,
            id,
            parent: item.stack.last().copied(),
            ts_ns: now_ns(),
            dur_ns: 0,
            detail: detail.to_string(),
        };
        ctx.buf.push(event);
    });
}

/// Spans started under tracing but outside any item context (they were
/// not recorded). Zero on fully instrumented paths.
pub fn orphan_spans() -> u64 {
    ORPHAN_SPANS.load(Ordering::Relaxed)
}

/// Flushes the calling thread's buffer and takes every collected event,
/// sorted deterministically by `(item_index, id, ts)`. The collector
/// keeps running; a subsequent drain returns only newer events.
pub fn drain() -> Vec<TraceEvent> {
    CTX.with(|cell| {
        let mut ctx = cell.borrow_mut();
        if !ctx.buf.is_empty() {
            let events = std::mem::take(&mut ctx.buf);
            drop(ctx);
            sink_append(events);
        }
    });
    let mut events = {
        let mut sink = match SINK.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        std::mem::take(&mut *sink)
    };
    events.sort_by(|a, b| {
        (a.item_index, a.id, a.ts_ns)
            .cmp(&(b.item_index, b.id, b.ts_ns))
            .then_with(|| a.item_id.cmp(&b.item_id))
    });
    events
}

/// Microseconds with 3 decimals (Chrome `ts`/`dur` are µs floats).
fn micros(ns: u64) -> Value {
    Value::Num(format!("{}.{:03}", ns / 1000, ns % 1000))
}

/// Renders events as a Chrome `trace_event` JSON document: one process,
/// one lane (tid) per thread role, `thread_name` metadata first, then
/// complete and instant events with `args` carrying the item key and
/// the span-tree links.
pub fn render_chrome(events: &[TraceEvent]) -> String {
    let mut lanes: Vec<String> = events.iter().map(|e| e.lane.clone()).collect();
    lanes.sort();
    lanes.dedup();
    let tid_of = |lane: &str| -> u64 {
        lanes
            .iter()
            .position(|l| l == lane)
            .map(|i| i as u64)
            .unwrap_or(0)
            + 1
    };
    let mut out = Vec::with_capacity(events.len() + lanes.len() + 1);
    out.push(Value::Obj(vec![
        ("name".into(), Value::Str("process_name".into())),
        ("ph".into(), Value::Str("M".into())),
        ("pid".into(), Value::Num("1".into())),
        ("tid".into(), Value::Num("0".into())),
        (
            "args".into(),
            Value::Obj(vec![("name".into(), Value::Str("tcpanaly".into()))]),
        ),
    ]));
    for lane in &lanes {
        out.push(Value::Obj(vec![
            ("name".into(), Value::Str("thread_name".into())),
            ("ph".into(), Value::Str("M".into())),
            ("pid".into(), Value::Num("1".into())),
            ("tid".into(), Value::Num(tid_of(lane).to_string())),
            (
                "args".into(),
                Value::Obj(vec![("name".into(), Value::Str(lane.clone()))]),
            ),
        ]));
    }
    for e in events {
        let cat = e.name.split('.').next().unwrap_or("event").to_string();
        let mut args = vec![
            ("trace".into(), Value::Str(e.item_id.clone())),
            ("item".into(), Value::Num(e.item_index.to_string())),
            ("id".into(), Value::Num(e.id.to_string())),
        ];
        if let Some(parent) = e.parent {
            args.push(("parent".into(), Value::Num(parent.to_string())));
        }
        if !e.detail.is_empty() {
            args.push(("detail".into(), Value::Str(e.detail.clone())));
        }
        let mut members = vec![
            ("name".into(), Value::Str(e.name.clone())),
            ("cat".into(), Value::Str(cat)),
            (
                "ph".into(),
                Value::Str(match e.phase {
                    Phase::Complete => "X".into(),
                    Phase::Instant => "i".into(),
                }),
            ),
            ("pid".into(), Value::Num("1".into())),
            ("tid".into(), Value::Num(tid_of(&e.lane).to_string())),
            ("ts".into(), micros(e.ts_ns)),
        ];
        match e.phase {
            Phase::Complete => members.push(("dur".into(), micros(e.dur_ns))),
            Phase::Instant => members.push(("s".into(), Value::Str("t".into()))),
        }
        members.push(("args".into(), Value::Obj(args)));
        out.push(Value::Obj(members));
    }
    Value::Obj(vec![("traceEvents".into(), Value::Arr(out))]).to_json()
}

fn events_of(doc: &Value) -> Result<&[Value], String> {
    doc.get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or_else(|| "trace: traceEvents is not an array".to_string())
}

fn is_metadata(event: &Value) -> bool {
    event.get("ph").and_then(Value::as_str) == Some("M")
}

/// Validates a Chrome `trace_event` document as this module writes it,
/// returning the first problem.
pub fn validate_trace(text: &str) -> Result<(), String> {
    let doc = Value::parse(text)?;
    for (i, event) in events_of(&doc)?.iter().enumerate() {
        let what = format!("trace event {i}");
        let ph = event
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{what}: ph is not a string"))?;
        event
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{what}: name is not a string"))?;
        for key in ["pid", "tid"] {
            event
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{what}: {key} is not a non-negative integer"))?;
        }
        match ph {
            "M" => continue,
            "X" | "i" => {}
            other => return Err(format!("{what}: unknown ph {other:?}")),
        }
        event
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{what}: ts is not a number"))?;
        if ph == "X" {
            event
                .get("dur")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{what}: dur is not a number"))?;
        }
        let args = event
            .get("args")
            .ok_or_else(|| format!("{what}: missing args"))?;
        args.get("trace")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{what}: args.trace is not a string"))?;
        for key in ["item", "id"] {
            args.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{what}: args.{key} is not a non-negative integer"))?;
        }
    }
    Ok(())
}

/// Checks the span-tree invariants over an exported document: within
/// each item, event ids are unique and every `parent` reference names an
/// existing **complete** span of the same item. Returns the first
/// violation.
pub fn check_tree_invariants(text: &str) -> Result<(), String> {
    use std::collections::{BTreeMap, BTreeSet};
    let doc = Value::parse(text)?;
    // item index -> (complete span ids, all (id, parent) pairs)
    let mut spans: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    let mut edges: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    let mut ids: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for event in events_of(&doc)? {
        if is_metadata(event) {
            continue;
        }
        let args = event.get("args").ok_or("trace: event missing args")?;
        let item = args
            .get("item")
            .and_then(Value::as_u64)
            .ok_or("trace: args.item missing")?;
        let id = args
            .get("id")
            .and_then(Value::as_u64)
            .ok_or("trace: args.id missing")?;
        ids.entry(item).or_default().push(id);
        if event.get("ph").and_then(Value::as_str) == Some("X") {
            spans.entry(item).or_default().insert(id);
        }
        if let Some(parent) = args.get("parent").and_then(Value::as_u64) {
            edges.entry(item).or_default().push((id, parent));
        }
    }
    for (item, mut item_ids) in ids {
        let n = item_ids.len();
        item_ids.sort_unstable();
        item_ids.dedup();
        if item_ids.len() != n {
            return Err(format!("item {item}: duplicate event ids"));
        }
    }
    let empty = BTreeSet::new();
    for (item, pairs) in &edges {
        let closed = spans.get(item).unwrap_or(&empty);
        for &(id, parent) in pairs {
            if !closed.contains(&parent) {
                return Err(format!(
                    "item {item}: event {id} is orphaned — parent {parent} has no \
                     complete span (unclosed or missing)"
                ));
            }
        }
    }
    Ok(())
}

/// The determinism contract, made checkable: strips every field that
/// legitimately varies run-to-run or with `--jobs` — timestamps (`ts`,
/// `dur`), lane/thread assignment (`tid`, `thread_name` metadata) — and
/// re-serializes the rest sorted by `(item, id)`. Two runs over the same
/// corpus produce byte-identical canonical forms whatever the worker
/// count.
pub fn canonicalize(text: &str) -> Result<String, String> {
    let doc = Value::parse(text)?;
    let mut rows: Vec<(u64, u64, Value)> = Vec::new();
    for event in events_of(&doc)? {
        if is_metadata(event) {
            continue;
        }
        let args = event.get("args").ok_or("trace: event missing args")?;
        let item = args
            .get("item")
            .and_then(Value::as_u64)
            .ok_or("trace: args.item missing")?;
        let id = args
            .get("id")
            .and_then(Value::as_u64)
            .ok_or("trace: args.id missing")?;
        let keep_keys = ["name", "cat", "ph", "args"];
        let members: Vec<(String, Value)> = event
            .as_obj()
            .ok_or("trace: event is not an object")?
            .iter()
            .filter(|(k, _)| keep_keys.contains(&k.as_str()))
            .cloned()
            .collect();
        rows.push((item, id, Value::Obj(members)));
    }
    rows.sort_by_key(|row| (row.0, row.1));
    let canon = Value::Obj(vec![(
        "traceEvents".into(),
        Value::Arr(rows.into_iter().map(|(_, _, v)| v).collect()),
    )]);
    Ok(canon.to_json())
}

/// One human-readable line summarizing a drained event set (for `-v`).
pub fn summary_line(events: &[TraceEvent]) -> String {
    let spans = events.iter().filter(|e| e.phase == Phase::Complete).count();
    let instants = events.len() - spans;
    let items: std::collections::BTreeSet<&str> =
        events.iter().map(|e| e.item_id.as_str()).collect();
    let mut line = String::new();
    let _ = write!(
        line,
        "trace: {spans} spans + {instants} instants across {} items",
        items.len()
    );
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global; tests that enable it and drain
    // must not interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        match TEST_LOCK.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = locked();
        // Not enabled in this thread of execution yet (or drained below
        // anyway): spans without enable() must not allocate contexts.
        if !is_enabled() {
            begin_item("x", 0);
            crate::time("stage.trace_off", || ());
            end_item();
            assert!(drain().is_empty());
        }
    }

    #[test]
    fn span_tree_nests_and_exports() {
        let _guard = locked();
        enable();
        let _ = drain();
        begin_item("tests/a.pcap", 3);
        {
            let _outer = crate::span("corpus.item_test");
            instant("retry", "attempt 1");
            crate::time("stage.inner_test", || ());
        }
        end_item();
        let events = drain();
        assert_eq!(events.len(), 3, "{events:?}");
        // Sorted by id: outer span has id 1 but closes last; ordering is
        // by id, not completion.
        assert_eq!(events[0].id, 1);
        assert_eq!(events[0].name, "corpus.item_test");
        assert_eq!(events[0].parent, None);
        assert_eq!(events[1].name, "retry");
        assert_eq!(events[1].phase, Phase::Instant);
        assert_eq!(events[1].parent, Some(1));
        assert_eq!(events[2].name, "stage.inner_test");
        assert_eq!(events[2].parent, Some(1));
        assert!(events.iter().all(|e| e.item_index == 3));

        let json = render_chrome(&events);
        validate_trace(&json).expect("valid chrome trace");
        check_tree_invariants(&json).expect("tree invariants hold");
        assert!(json.contains("\"thread_name\""), "{json}");
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        assert!(json.contains("\"ph\": \"i\""), "{json}");
    }

    #[test]
    fn handoff_shares_ids_across_threads() {
        let _guard = locked();
        enable();
        let _ = drain();
        begin_item("tests/b.pcap", 7);
        let worker_span = crate::span("corpus.item_test");
        let h = handoff().expect("handoff available");
        std::thread::scope(|s| {
            // tcpa-lint: allow(thread-spawn-audit) -- test models the corpus watchdog boundary
            s.spawn(move || {
                adopt(h);
                crate::time("stage.on_watchdog", || ());
                finish_adopted();
            });
        });
        drop(worker_span);
        end_item();
        let events = drain();
        assert_eq!(events.len(), 2, "{events:?}");
        assert_eq!(events[0].name, "corpus.item_test");
        assert_eq!(events[1].name, "stage.on_watchdog");
        assert_eq!(events[1].parent, Some(events[0].id));
        assert_eq!(events[1].lane, "watchdog");
        let json = render_chrome(&events);
        check_tree_invariants(&json).expect("cross-thread tree closes");
    }

    #[test]
    fn canonicalize_strips_timing_and_lanes() {
        let _guard = locked();
        enable();
        let _ = drain();
        set_lane("worker-0");
        begin_item("c.pcap", 1);
        crate::time("stage.canon_test", || ());
        end_item();
        let first = render_chrome(&drain());

        set_lane("worker-5");
        begin_item("c.pcap", 1);
        crate::time("stage.canon_test", || ());
        end_item();
        let second = render_chrome(&drain());

        assert_ne!(first, second, "raw exports differ in lane and ts");
        let canon_a = canonicalize(&first).expect("canonicalize");
        let canon_b = canonicalize(&second).expect("canonicalize");
        assert_eq!(canon_a, canon_b, "canonical forms are byte-identical");
        assert!(!canon_a.contains("\"ts\""), "{canon_a}");
        assert!(!canon_a.contains("\"tid\""), "{canon_a}");
        set_lane("main");
    }

    #[test]
    fn invariant_checker_catches_orphans() {
        let bad = r#"{"traceEvents": [
            {"name": "stage.x", "cat": "stage", "ph": "X", "pid": 1, "tid": 1,
             "ts": 1.0, "dur": 2.0,
             "args": {"trace": "t", "item": 0, "id": 2, "parent": 9}}
        ]}"#;
        validate_trace(bad).expect("shape is valid");
        let err = check_tree_invariants(bad).expect_err("orphan parent");
        assert!(err.contains("orphan"), "{err}");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_trace("{}").is_err());
        assert!(validate_trace(r#"{"traceEvents": [{}]}"#).is_err());
        assert!(validate_trace(
            r#"{"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 1}]}"#
        )
        .is_err());
    }
}
