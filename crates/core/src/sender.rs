//! Sender-behavior analysis (§6): the data-liberation replay engine.
//!
//! Given one connection's trace (captured at or near the sender) and a
//! candidate implementation's [`TcpConfig`], the replay walks the trace
//! maintaining the candidate's congestion state exactly as the real TCP
//! would have, using the same pure rules the simulator runs
//! ([`tcpa_tcpsim::congestion`]). Each incoming ack may raise the
//! *permitted ceiling* — a **liberation** (§6.1). Each outgoing data
//! packet is then either:
//!
//! * matched to the earliest liberation that allows it — the gap is its
//!   **response delay**;
//! * classified as a retransmission with an identifiable cause (timeout,
//!   fast retransmit, the §8.5 burst, the §8.6 odd Solaris retransmit,
//!   go-back-N refill after a cut) — the per-config causes *are* the
//!   coded implementation knowledge;
//! * or flagged: a **window violation** (sent beyond the ceiling), an
//!   **unexplained retransmission**, or a **lull** (sent absurdly late).
//!
//! A trace that fits its true implementation produces small response
//! delays and no flags; a wrong candidate produces violations or
//! unexplained retransmissions (§6.1's close / imperfect / clearly
//! incorrect sorting builds on exactly these outputs).
//!
//! §6.2's implicit-state inferences are integrated: the *sender window*
//! (detected in a first replay, applied in a second) and unseen ICMP
//! *source quench* (a lull whose aftermath looks like a fresh slow
//! start).

use tcpa_tcpsim::config::{FastRecovery, QuenchResponse, TcpConfig};
use tcpa_tcpsim::congestion::CcState;
use tcpa_tcpsim::rtt::RttEstimator;
use tcpa_trace::{Connection, Dir, Duration, Summary, Time, TraceRecord};
use tcpa_wire::SeqNum;

/// How far apart a cause and effect may be recorded and still be
/// attributed to measurement vantage rather than misbehavior (§3.2).
const EPSILON: Duration = Duration::from_millis(2);
/// A response delay beyond this is a lull (§5: "sent only after an
/// apparently excessive delay").
const LULL_THRESHOLD: Duration = Duration::from_millis(250);
/// Burst-continuation window: retransmissions this close to a burst
/// trigger belong to the same burst.
const BURST_WINDOW: Duration = Duration::from_millis(50);

/// Cause assigned to an observed retransmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetxCause {
    /// Retransmission timeout (gap consistent with the config's RTO
    /// floor).
    Timeout,
    /// Fast retransmit at the dup-ack threshold.
    FastRetransmit,
    /// §8.5: retransmission already on the first duplicate ack.
    EarlyDupAck,
    /// §8.5: part of a retransmit-everything burst.
    BurstContinuation,
    /// §8.6: the odd Solaris retransmission of the segment just above a
    /// liberating ack.
    OddRetransmitAfterAck,
    /// Go-back-N refill following a window collapse.
    RefillAfterCut,
}

/// A problem the replay could not reconcile with the candidate config.
#[derive(Debug, Clone)]
pub struct SenderIssue {
    /// What kind of problem.
    pub kind: SenderIssueKind,
    /// Index of the offending record within the connection.
    pub index: usize,
    /// When it happened.
    pub time: Time,
    /// Explanation.
    pub detail: String,
}

/// The kinds of replay disagreement (§6.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SenderIssueKind {
    /// Data sent beyond the candidate's permitted ceiling.
    WindowViolation,
    /// A retransmission no rule of the candidate explains.
    UnexplainedRetransmission,
    /// Data sent absurdly long after its liberation.
    Lull,
}

/// Result of replaying one connection against one candidate.
#[derive(Debug, Clone)]
pub struct SenderAnalysis {
    /// The candidate's name.
    pub config_name: &'static str,
    /// Response delays of new-data sends matched to liberations.
    pub response_delays: Summary,
    /// Violations, unexplained retransmissions and lulls.
    pub issues: Vec<SenderIssue>,
    /// Violations that an ack recorded ≤ ε later cures — evidence of
    /// filter resequencing, not misbehavior (they are *not* in `issues`).
    pub reseq_cured_violations: usize,
    /// Inferred sender window (socket buffer), if one was limiting
    /// (§6.2).
    pub inferred_sender_window: Option<u32>,
    /// Inferred unseen source-quench arrival times (§6.2).
    pub inferred_quenches: Vec<Time>,
    /// One-byte zero-window probes recognized (persist timer traffic;
    /// never window violations).
    pub zero_window_probes: usize,
    /// Data packets observed (sender → receiver, payload > 0).
    pub data_packets: usize,
    /// Of those, retransmissions.
    pub retransmissions: usize,
    /// Cause tally for retransmissions.
    pub retx_causes: Vec<(RetxCause, usize)>,
    /// MSS used for the candidate's window arithmetic.
    pub cwnd_mss: u32,
}

impl SenderAnalysis {
    /// Count of hard disagreements (violations + unexplained retx).
    pub fn hard_issues(&self) -> usize {
        self.issues
            .iter()
            .filter(|i| i.kind != SenderIssueKind::Lull)
            .count()
    }

    /// Count of lulls.
    pub fn lulls(&self) -> usize {
        self.issues
            .iter()
            .filter(|i| i.kind == SenderIssueKind::Lull)
            .count()
    }
}

/// Tunable design choices of the replay — exposed so their contribution
/// can be measured (the ablation harness switches each off in turn).
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Look-ahead window for acks that cure apparent violations
    /// (§3.1.3 situation ii / §3.2). Zero disables the cure.
    pub epsilon: Duration,
    /// Look-behind window for explaining retransmissions from stale
    /// state (§3.2, §4). Zero disables the look-behind.
    pub lookbehind: Duration,
    /// Infer unseen ICMP source quench from slow-start-shaped stalls
    /// (§6.2).
    pub infer_quench: bool,
    /// Infer a limiting sender window and re-replay with it (§6.2).
    pub infer_sender_window: bool,
}

impl Default for ReplayOptions {
    fn default() -> ReplayOptions {
        ReplayOptions {
            epsilon: EPSILON,
            lookbehind: LOOKBEHIND,
            infer_quench: true,
            infer_sender_window: true,
        }
    }
}

/// Connection-level facts gathered before the replay.
struct Prescan {
    iss: SeqNum,
    establish_time: Time,
    peer_sent_mss: bool,
    peer_mss: Option<u16>,
    initial_peer_window: u32,
    max_in_flight: i64,
    final_data_end: SeqNum,
    have_handshake: bool,
}

fn prescan(conn: &Connection) -> Option<Prescan> {
    let mut iss = None;
    let mut peer_mss = None;
    let mut peer_sent_mss = false;
    let mut initial_peer_window = 0u32;
    let mut establish_time = None;
    let mut snd_hi: Option<SeqNum> = None;
    let mut last_ack: Option<SeqNum> = None;
    let mut max_in_flight: i64 = 0;

    for (dir, rec) in &conn.records {
        match dir {
            Dir::SenderToReceiver => {
                if rec.tcp.flags.syn() {
                    iss = Some(rec.tcp.seq);
                }
                if rec.is_data() || rec.tcp.flags.fin() {
                    let hi = rec.seq_hi();
                    snd_hi = Some(match snd_hi {
                        Some(h) => h.max(hi),
                        None => hi,
                    });
                    let base = last_ack.or(iss.map(|s| s + 1)).unwrap_or(rec.tcp.seq);
                    max_in_flight = max_in_flight.max(hi - base);
                }
            }
            Dir::ReceiverToSender => {
                if rec.tcp.flags.syn() && rec.tcp.flags.ack() {
                    peer_mss = rec.tcp.mss_option();
                    peer_sent_mss = peer_mss.is_some();
                    initial_peer_window = u32::from(rec.tcp.window);
                    establish_time = Some(rec.ts);
                } else if rec.tcp.flags.ack() {
                    last_ack = Some(match last_ack {
                        Some(a) => a.max(rec.tcp.ack),
                        None => rec.tcp.ack,
                    });
                }
            }
        }
    }

    let have_handshake = iss.is_some() && establish_time.is_some();
    // Fallbacks for partial traces: synthesize an ISS just below the first
    // data byte and treat the first record as establishment.
    let first_data_seq = conn
        .in_dir(Dir::SenderToReceiver)
        .find(|r| r.is_data())
        .map(|r| r.tcp.seq)?;
    let iss = iss.unwrap_or(first_data_seq - 1);
    let establish_time = establish_time.or(conn.records.first().map(|(_, r)| r.ts))?;
    if !have_handshake {
        initial_peer_window = conn
            .in_dir(Dir::ReceiverToSender)
            .find(|r| r.tcp.flags.ack())
            .map(|r| u32::from(r.tcp.window))
            .unwrap_or(65_535);
    }
    Some(Prescan {
        iss,
        establish_time,
        peer_sent_mss,
        peer_mss,
        initial_peer_window,
        max_in_flight,
        final_data_end: snd_hi.unwrap_or(first_data_seq),
        have_handshake,
    })
}

/// Analyzes a connection's sender behavior against one candidate config.
/// Returns `None` when the connection carries no data to analyze.
pub fn analyze_sender(conn: &Connection, cfg: &TcpConfig) -> Option<SenderAnalysis> {
    analyze_sender_with(conn, cfg, &ReplayOptions::default())
}

/// [`analyze_sender`] with explicit design knobs (ablation support).
pub fn analyze_sender_with(
    conn: &Connection,
    cfg: &TcpConfig,
    opts: &ReplayOptions,
) -> Option<SenderAnalysis> {
    let pre = prescan(conn)?;
    let first = replay(conn, cfg, &pre, None, opts);
    if opts.infer_sender_window && first.sender_window_evidence >= 2 && pre.max_in_flight > 0 {
        let sw = pre.max_in_flight as u32;
        let mut second = replay(conn, cfg, &pre, Some(sw), opts);
        second.analysis.inferred_sender_window = Some(sw);
        Some(second.analysis)
    } else {
        Some(first.analysis)
    }
}

struct ReplayOutput {
    analysis: SenderAnalysis,
    sender_window_evidence: usize,
}

/// A liberation: from `at`, sending up to `permit` was allowed.
#[derive(Debug, Clone, Copy)]
struct Liberation {
    at: Time,
    permit: SeqNum,
}

/// How far back in time a retransmission may be explained by *stale*
/// state — the §3.2 vantage ambiguity: the TCP may still be responding to
/// an earlier packet while later ones have already been recorded by the
/// filter ("in general it is insufficient … to only remember the most
/// recently received packet", §6.1).
const LOOKBEHIND: Duration = Duration::from_millis(15);

/// Snapshot of the retransmission-relevant state, taken before each
/// incoming ack is processed, enabling the look-behind (§4: "-packet
/// look-ahead and look-behind to resolve ambiguities").
#[derive(Debug, Clone, Copy)]
struct Snap {
    t: Time,
    snd_una: SeqNum,
    dup_acks: u32,
    fast_retx_armed: bool,
    resend_ptr: Option<SeqNum>,
}

struct Replay<'a> {
    cfg: &'a TcpConfig,
    pre: &'a Prescan,
    opts: &'a ReplayOptions,
    sender_window: Option<u32>,
    cwnd_mss: u32,
    eff_mss: u32,

    cc: CcState,
    snd_una: SeqNum,
    snd_max_seen: SeqNum,
    peer_window: u32,
    liberations: Vec<Liberation>,
    /// Liberations at or before this time are considered consumed (e.g.
    /// burned by the §8.6 odd retransmission).
    lib_floor: Time,
    last_liberating_ack: Option<Time>,
    /// Last transmission time per segment start (for RTO plausibility).
    last_sent: std::collections::BTreeMap<u32, Time>,
    /// Go-back-N refill pointer after a window collapse.
    resend_ptr: Option<SeqNum>,
    /// Active burst-retransmission window.
    burst_until: Option<Time>,
    /// Fast retransmit armed (threshold reached, retransmission expected).
    fast_retx_armed: bool,
    /// Recent pre-ack state snapshots for the §3.2 look-behind.
    history: std::collections::VecDeque<Snap>,
    /// Continuation pointer for a go-back-N refill matched against stale
    /// state (the snapshots themselves are immutable).
    stale_refill: Option<(SeqNum, Time)>,
    /// Time of the most recent retransmission (any cause); quench
    /// inference is suppressed when the stall overlaps retransmission
    /// activity, which already explains the disturbance.
    last_retx_time: Option<Time>,
    /// The candidate's own RTO machinery, replayed alongside (so a
    /// retransmission is accepted as a timeout only when the candidate's
    /// timer — Jacobson, Solaris-broken, or fixed — would actually have
    /// fired by then).
    rto_model: RttEstimator,
    /// Segment being timed for an RTT sample (hi, first-sent), Karn-style.
    rto_timing: Option<(SeqNum, Time)>,
    /// Highest sequence ever retransmitted (for Karn and the Solaris
    /// reset-on-ack-of-retransmit behavior).
    retx_high: SeqNum,
    any_retransmitted: bool,
    liberating_acks: u64,
    /// Times of liberating acks, for reconstructing slow-start growth
    /// after an inferred quench.
    liberating_ack_times: Vec<Time>,
    /// While set, the replay is resynchronizing after an inferred quench:
    /// the exact quench instant is unknowable ("sometime between the ack
    /// and the data packet", §6.2), so the reconstructed slow-start phase
    /// may lag reality by an ack or two. Within this window, a send one
    /// flight ahead of the model is adopted rather than flagged.
    quench_resync_until: Option<Time>,
    /// cwnd ceiling during resync: the window the TCP demonstrably had
    /// before the inferred quench.
    pre_quench_cwnd: u64,
    rtt_estimate: Option<Duration>,
    first_send_time: std::collections::BTreeMap<u32, Time>,

    analysis: SenderAnalysis,
    sender_window_evidence: usize,
}

fn replay(
    conn: &Connection,
    cfg: &TcpConfig,
    pre: &Prescan,
    sw: Option<u32>,
    opts: &ReplayOptions,
) -> ReplayOutput {
    let cwnd_mss = cfg.cwnd_mss(pre.peer_mss);
    let eff_mss = cfg.effective_send_mss(pre.peer_mss);
    let cc = CcState::at_establishment(cfg, cwnd_mss, pre.peer_sent_mss || !pre.have_handshake);
    let snd_una = pre.iss + 1;
    let mut rp = Replay {
        cfg,
        pre,
        opts,
        sender_window: sw,
        cwnd_mss,
        eff_mss,
        cc,
        snd_una,
        snd_max_seen: snd_una,
        peer_window: pre.initial_peer_window,
        liberations: Vec::new(),
        lib_floor: Time(i64::MIN),
        last_liberating_ack: None,
        last_sent: std::collections::BTreeMap::new(),
        resend_ptr: None,
        burst_until: None,
        fast_retx_armed: false,
        history: std::collections::VecDeque::new(),
        stale_refill: None,
        last_retx_time: None,
        rto_model: RttEstimator::new(cfg),
        rto_timing: None,
        retx_high: snd_una,
        any_retransmitted: false,
        liberating_acks: 0,
        liberating_ack_times: Vec::new(),
        quench_resync_until: None,
        pre_quench_cwnd: 0,
        rtt_estimate: None,
        first_send_time: std::collections::BTreeMap::new(),
        analysis: SenderAnalysis {
            config_name: cfg.name,
            response_delays: Summary::new(),
            issues: Vec::new(),
            reseq_cured_violations: 0,
            inferred_sender_window: None,
            inferred_quenches: Vec::new(),
            zero_window_probes: 0,
            data_packets: 0,
            retransmissions: 0,
            retx_causes: Vec::new(),
            cwnd_mss,
        },
        sender_window_evidence: 0,
    };
    rp.push_liberation(pre.establish_time);

    for (i, (dir, rec)) in conn.records.iter().enumerate() {
        match dir {
            Dir::ReceiverToSender => rp.on_receiver_packet(rec),
            Dir::SenderToReceiver => rp.on_sender_packet(i, rec, conn),
        }
    }

    ReplayOutput {
        sender_window_evidence: rp.sender_window_evidence,
        analysis: rp.analysis,
    }
}

impl<'a> Replay<'a> {
    fn usable_window(&self) -> u64 {
        let cwnd = if self.cfg.no_congestion_window {
            u64::MAX
        } else {
            self.cc.cwnd
        };
        let mut w = cwnd.min(u64::from(self.peer_window));
        if let Some(sw) = self.sender_window {
            w = w.min(u64::from(sw));
        }
        w
    }

    /// The replay has no snd_nxt; the highest sequence seen is the
    /// closest observable proxy for bytes committed to the wire.
    fn snd_nxt_proxy(&self) -> SeqNum {
        self.snd_max_seen
    }

    fn permit(&self) -> SeqNum {
        self.snd_una + (self.usable_window().min(u64::from(u32::MAX)) as u32)
    }

    fn push_liberation(&mut self, at: Time) {
        let permit = self.permit();
        match self.liberations.last() {
            Some(last) if !permit.after(last.permit) => {}
            _ => self.liberations.push(Liberation { at, permit }),
        }
    }

    /// A window cut invalidates earlier, larger permissions.
    fn collapse_liberations(&mut self, at: Time) {
        self.liberations.clear();
        self.push_liberation(at);
    }

    fn note_cause(&mut self, cause: RetxCause) {
        if let Some(entry) = self
            .analysis
            .retx_causes
            .iter_mut()
            .find(|(c, _)| *c == cause)
        {
            entry.1 += 1;
        } else {
            self.analysis.retx_causes.push((cause, 1));
        }
    }

    fn snapshot(&mut self, t: Time) {
        self.history.push_back(Snap {
            t,
            snd_una: self.snd_una,
            dup_acks: self.cc.dup_acks,
            fast_retx_armed: self.fast_retx_armed,
            resend_ptr: self.resend_ptr,
        });
        while self.history.len() > 32 {
            self.history.pop_front();
        }
    }

    fn on_receiver_packet(&mut self, rec: &TraceRecord) {
        let tcp = &rec.tcp;
        if tcp.flags.syn() || tcp.flags.rst() {
            return; // handshake handled in prescan
        }
        if !tcp.flags.ack() {
            return;
        }
        self.snapshot(rec.ts);
        let ack = tcp.ack;
        if ack.after(self.snd_una) {
            // Liberating ack.
            if let Some(t0) = self.first_send_time.get(&(ack - 1).0).copied() {
                // Rough RTT estimate from first transmission to its ack.
                let est = rec.ts - t0;
                self.rtt_estimate = Some(match self.rtt_estimate {
                    Some(prev) => (prev * 7 + est) / 8,
                    None => est,
                });
            }
            // Replay the candidate's RTO machinery (§8.6: the Solaris
            // variant resets on any ack covering retransmitted data).
            let ambiguous = self.any_retransmitted && ack.at_or_before(self.retx_high);
            if ambiguous {
                self.rto_model.on_ack_of_retransmitted();
            } else {
                self.rto_model.on_clean_ack();
            }
            if let Some((timed_hi, t0)) = self.rto_timing {
                if ack.at_or_after(timed_hi) {
                    let retransmitted =
                        self.any_retransmitted && timed_hi.at_or_before(self.retx_high);
                    if !retransmitted {
                        self.rto_model.sample(rec.ts - t0);
                    }
                    self.rto_timing = None;
                }
            }
            if self.cc.in_recovery {
                self.cc.exit_recovery(self.cfg, self.cwnd_mss);
            } else {
                self.cc.open_window(self.cfg, self.cwnd_mss);
            }
            self.cc.dup_acks = 0;
            self.fast_retx_armed = false;
            self.snd_una = ack;
            if let Some(ptr) = self.resend_ptr {
                if ack.at_or_after(self.snd_max_seen) {
                    self.resend_ptr = None;
                } else if ack.after(ptr) {
                    self.resend_ptr = Some(ack);
                }
            }
            self.peer_window = u32::from(tcp.window);
            self.liberating_acks += 1;
            self.liberating_ack_times.push(rec.ts);
            self.last_liberating_ack = Some(rec.ts);
            self.push_liberation(rec.ts);
        } else if ack == self.snd_una {
            let window_changed = u32::from(tcp.window) != self.peer_window;
            let outstanding = self.snd_una.before(self.snd_max_seen);
            if rec.is_pure_ack() && !window_changed && outstanding {
                self.cc.dup_acks += 1;
                if self.cfg.dupack_updates_cwnd {
                    self.cc.open_window(self.cfg, self.cwnd_mss);
                    self.push_liberation(rec.ts);
                }
                if self.cfg.fast_retransmit && self.cc.dup_acks == self.cfg.dupack_threshold {
                    // The TCP will cut & retransmit now; mirror it.
                    let flight = self.usable_window().max(u64::from(self.cwnd_mss));
                    let entered = self.cc.enter_fast_retransmit(
                        self.cfg,
                        self.cwnd_mss,
                        flight,
                        self.snd_max_seen,
                    );
                    self.fast_retx_armed = true;
                    if !entered {
                        // Tahoe collapse: go-back-N from snd_una.
                        self.resend_ptr = Some(self.snd_una);
                    }
                    self.collapse_liberations(rec.ts);
                } else if self.cc.in_recovery && self.cc.dup_acks > self.cfg.dupack_threshold {
                    self.cc.recovery_inflate(self.cwnd_mss);
                    self.push_liberation(rec.ts);
                }
            } else if window_changed {
                self.peer_window = u32::from(tcp.window);
                self.push_liberation(rec.ts);
            }
        }
    }

    fn on_sender_packet(&mut self, index: usize, rec: &TraceRecord, conn: &Connection) {
        let tcp = &rec.tcp;
        if tcp.flags.syn() || tcp.flags.rst() {
            return;
        }
        if !rec.is_data() && !tcp.flags.fin() {
            return; // pure acks from the sender (e.g. handshake third ack)
        }
        let seq = tcp.seq;
        let hi = rec.seq_hi();
        if rec.is_data() {
            self.analysis.data_packets += 1;
        }
        self.first_send_time.entry(hi.0 - 1).or_insert(rec.ts);

        if hi.after(self.snd_max_seen) {
            if self.rto_timing.is_none() && rec.is_data() {
                self.rto_timing = Some((hi, rec.ts));
            }
            self.on_new_data(index, rec, hi, conn);
            self.snd_max_seen = hi;
        } else {
            self.any_retransmitted = true;
            if hi.after(self.retx_high) {
                self.retx_high = hi;
            }
            if let Some((timed_hi, _)) = self.rto_timing {
                if timed_hi.after(seq) && timed_hi.at_or_before(hi + self.cwnd_mss) {
                    self.rto_timing = None; // Karn: the timed segment was re-sent
                }
            }
            self.on_retransmission(index, rec, seq, hi);
        }
        self.last_sent.insert(seq.0, rec.ts);
    }

    fn on_new_data(&mut self, index: usize, rec: &TraceRecord, hi: SeqNum, conn: &Connection) {
        // Zero-window probe: a one-byte segment sent while the window
        // cannot fit a real segment is the persist timer talking, not a
        // violation.
        if rec.payload_len == 1 {
            let in_flight = (self.snd_nxt_proxy() - self.snd_una).max(0) as u64;
            if self.usable_window() <= in_flight + u64::from(self.cwnd_mss) / 4 {
                self.analysis.zero_window_probes += 1;
                return;
            }
        }
        // Window check.
        if hi.after(self.permit()) {
            // Post-quench resync: the slow-start phase reconstruction may
            // lag by an ack; adopt the observed flight while it stays
            // below the pre-quench window.
            if let Some(until) = self.quench_resync_until {
                let flight = (hi - self.snd_una).max(0) as u64;
                if rec.ts <= until && flight <= self.pre_quench_cwnd {
                    self.cc.cwnd = self.cc.cwnd.max(flight);
                    self.analysis.response_delays.add(Duration::ZERO);
                    self.push_liberation(rec.ts);
                    return;
                }
                if rec.ts > until {
                    self.quench_resync_until = None;
                }
            }
            if let Some(margin) = self.curing_ack_ahead(index, rec, hi, conn) {
                self.analysis.reseq_cured_violations += 1;
                self.analysis.response_delays.add(-margin);
                return;
            }
            self.analysis.issues.push(SenderIssue {
                kind: SenderIssueKind::WindowViolation,
                index,
                time: rec.ts,
                detail: format!(
                    "sent {} beyond permit {} (cwnd {}, offered {}, una {})",
                    hi,
                    self.permit(),
                    self.cc.cwnd,
                    self.peer_window,
                    self.snd_una
                ),
            });
            return;
        }
        // Liberation matching: the earliest (unconsumed) liberation whose
        // permit covers `hi`.
        let lib = self
            .liberations
            .iter()
            .filter(|l| l.at > self.lib_floor || self.lib_floor == Time(i64::MIN))
            .find(|l| l.permit.at_or_after(hi))
            .copied();
        if let Some(lib) = lib {
            let delay = rec.ts - lib.at;
            // A *suspect* delay is one far above the connection's own
            // response-time scale: that is where §6.2's source-quench
            // signature hides even when the absolute delay is modest
            // (a quench stall lasts about one RTT).
            let baseline = {
                let mut d = self.analysis.response_delays.clone();
                d.median().unwrap_or(Duration::from_millis(2))
            };
            let suspect = delay > (baseline * 10).max(Duration::from_millis(30));
            if suspect && self.opts.infer_quench && self.quench_consistent(lib.at, hi) {
                self.analysis.inferred_quenches.push(lib.at);
                // Repair the model: the TCP entered slow start when the
                // (unseen) quench arrived — shortly after `lib.at` — and
                // every liberating ack since then grew cwnd by one
                // segment (§6.2: "the whole series is consistent with
                // slow start having begun sometime between the ack and
                // the data packet").
                let rtt = self.rtt_estimate.unwrap_or(Duration::from_millis(100));
                self.pre_quench_cwnd = self.cc.cwnd;
                self.cc.on_quench(self.cfg, self.cwnd_mss);
                let acks_since = self
                    .liberating_ack_times
                    .iter()
                    .filter(|&&t| t > lib.at && t < rec.ts)
                    .count() as u64;
                self.cc.cwnd += acks_since * u64::from(self.cwnd_mss);
                self.quench_resync_until = Some(rec.ts + rtt * 4);
                self.collapse_liberations(rec.ts);
                self.analysis.response_delays.add(Duration::ZERO);
            } else if delay > LULL_THRESHOLD {
                self.analysis.issues.push(SenderIssue {
                    kind: SenderIssueKind::Lull,
                    index,
                    time: rec.ts,
                    detail: format!("new data {} sent {} after liberation", hi, delay),
                });
            } else {
                self.analysis.response_delays.add(delay);
            }
            // Sender-window evidence (§6.2): the window allowed a full
            // segment more than the connection ever had in flight, yet the
            // flight peaked at max_in_flight with data still to come.
            let in_flight = hi - self.snd_una;
            if self.sender_window.is_none()
                && in_flight >= self.pre.max_in_flight
                && self.usable_window() as i64 >= self.pre.max_in_flight + i64::from(self.eff_mss)
                && hi.before(self.pre.final_data_end)
            {
                self.sender_window_evidence += 1;
            }
        }
        // Advancing past the refill pointer completes the refill.
        if let Some(ptr) = self.resend_ptr {
            if hi.after(ptr) {
                self.resend_ptr = None;
            }
        }
    }

    fn on_retransmission(&mut self, index: usize, rec: &TraceRecord, seq: SeqNum, hi: SeqNum) {
        self.analysis.retransmissions += 1;
        let t = rec.ts;
        self.last_retx_time = Some(t);

        // Current-state view first; then the §3.2 look-behind through the
        // pre-ack snapshots (newest first) within the vantage window.
        let now_view = Snap {
            t,
            snd_una: self.snd_una,
            dup_acks: self.cc.dup_acks,
            fast_retx_armed: self.fast_retx_armed,
            resend_ptr: self.resend_ptr,
        };
        let mut matched = self.try_cause(seq, hi, t, &now_view).map(|c| (c, false));
        if matched.is_none() {
            let stale_views: Vec<Snap> = self
                .history
                .iter()
                .rev()
                .take_while(|s| t - s.t <= self.opts.lookbehind)
                .copied()
                .collect();
            for view in stale_views {
                if let Some(c) = self.try_cause(seq, hi, t, &view) {
                    matched = Some((c, true));
                    break;
                }
            }
        }

        let Some((cause, stale)) = matched else {
            self.analysis.issues.push(SenderIssue {
                kind: SenderIssueKind::UnexplainedRetransmission,
                index,
                time: t,
                detail: format!(
                    "retransmission of {} (dup_acks {}) fits no rule of {}",
                    seq, self.cc.dup_acks, self.cfg.name
                ),
            });
            return;
        };
        self.note_cause(cause);
        match cause {
            RetxCause::BurstContinuation | RetxCause::EarlyDupAck => {
                if self.cfg.burst_retransmit {
                    // Rolling window: a burst lasts as long as its packets
                    // keep coming back-to-back (§8.5's bursts can span
                    // dozens of packets and tens of milliseconds).
                    self.burst_until = Some(t + BURST_WINDOW);
                }
            }
            RetxCause::RefillAfterCut => {
                if stale {
                    self.stale_refill = Some((hi, t));
                } else {
                    self.resend_ptr = Some(hi);
                    if !hi.before(self.snd_max_seen) {
                        self.resend_ptr = None;
                    }
                }
            }
            RetxCause::FastRetransmit => {
                self.fast_retx_armed = false;
                if self.cfg.fast_recovery == FastRecovery::Reno {
                    // snd_nxt stays; nothing else to do.
                }
            }
            RetxCause::OddRetransmitAfterAck => {
                // The liberation is burned: new data waits for the next
                // ack (§8.6).
                self.lib_floor = t;
            }
            RetxCause::Timeout => {
                self.rto_model.on_timeout();
                let flight = self.usable_window().max(u64::from(self.cwnd_mss));
                self.cc.on_timeout(self.cfg, self.cwnd_mss, flight);
                self.collapse_liberations(t);
                if self.cfg.burst_retransmit {
                    self.burst_until = Some(t + BURST_WINDOW);
                } else {
                    self.resend_ptr = Some(hi);
                    if !hi.before(self.snd_max_seen) {
                        self.resend_ptr = None;
                    }
                }
            }
        }
    }

    /// Tests every per-config retransmission rule against one state view.
    fn try_cause(&self, seq: SeqNum, hi: SeqNum, t: Time, view: &Snap) -> Option<RetxCause> {
        // (a) Part of an ongoing burst.
        if let Some(until) = self.burst_until {
            if t <= until && seq.at_or_after(view.snd_una) {
                return Some(RetxCause::BurstContinuation);
            }
        }
        // (b) Go-back-N refill at the expected pointer (or continuing a
        // refill that was matched against stale state).
        if view.resend_ptr == Some(seq) && !hi.after(self.permit() + self.cwnd_mss) {
            return Some(RetxCause::RefillAfterCut);
        }
        if let Some((ptr, at)) = self.stale_refill {
            if ptr == seq && t - at <= self.opts.lookbehind {
                return Some(RetxCause::RefillAfterCut);
            }
        }
        let head = seq == view.snd_una;
        // (c) Fast retransmit armed by the dup-ack threshold.
        if head && view.fast_retx_armed {
            return Some(RetxCause::FastRetransmit);
        }
        // (d) §8.5: retransmission on the first dup ack.
        if head && self.cfg.retransmit_on_first_dupack && view.dup_acks >= 1 {
            return Some(RetxCause::EarlyDupAck);
        }
        // (e) §8.6: odd retransmission just after a liberating ack —
        // "just after" includes the host's processing lag (§3.2), so any
        // liberating ack within the look-behind window qualifies.
        if head && self.cfg.retransmit_after_ack_period > 0 {
            let lb = self.opts.lookbehind.max(EPSILON);
            let recent = self
                .liberating_ack_times
                .iter()
                .rev()
                .take(8)
                .any(|&at| t >= at && t - at <= lb);
            if recent {
                return Some(RetxCause::OddRetransmitAfterAck);
            }
        }
        // (f) Timeout: accepted only when the candidate's *own* RTO
        // machinery would have fired by now — this is what lets a trace
        // full of 300–600 ms retransmissions reject every candidate whose
        // adapted timer sits above a second, while the Solaris profile
        // (whose timer is reset by acks of retransmitted data and so
        // never adapts) explains it.
        let since_last = self
            .last_sent
            .get(&seq.0)
            .map(|&t0| t - t0)
            .unwrap_or(Duration::ZERO);
        let floor = self.cfg.min_rto.min(self.cfg.initial_rto);
        let modeled = self.rto_model.rto();
        let threshold = (modeled * 3 / 5).max(floor * 4 / 5);
        if head && since_last >= threshold {
            return Some(RetxCause::Timeout);
        }
        None
    }

    /// Looks ahead ≤ ε for an ack that, once processed, would permit `hi`
    /// (§3.1.3 situation ii / §3.2 vantage ambiguity).
    fn curing_ack_ahead(
        &self,
        index: usize,
        rec: &TraceRecord,
        hi: SeqNum,
        conn: &Connection,
    ) -> Option<Duration> {
        for (dir, next) in conn.records.iter().skip(index + 1) {
            if next.ts - rec.ts > self.opts.epsilon {
                break;
            }
            if *dir == Dir::ReceiverToSender && next.tcp.flags.ack() {
                // Would this ack make hi legal? Approximate: new snd_una +
                // at-least-current usable window (window only grows on a
                // liberating ack).
                let would_permit =
                    next.tcp.ack + (self.usable_window().min(u64::from(u32::MAX)) as u32);
                if next.tcp.ack.after(self.snd_una) && would_permit.at_or_after(hi) {
                    return Some(next.ts - rec.ts);
                }
            }
        }
        None
    }

    /// Does this delayed send look like a slow-start restart — the §6.2
    /// signature of an unseen source quench? The tell is a *collapsed
    /// flight*: the TCP stalled with the window wide open and resumed
    /// with far less data outstanding than the connection's peak. (Not
    /// applicable to configs that do not slow-start on quench, e.g.
    /// Linux 1.0 — exactly the caveat the paper notes.)
    fn quench_consistent(&self, lib_at: Time, hi: SeqNum) -> bool {
        if !matches!(
            self.cfg.quench_response,
            QuenchResponse::SlowStart | QuenchResponse::SlowStartCutSsthresh
        ) {
            return false;
        }
        // Retransmission activity during the stall already explains a
        // disturbed window; do not also invent a quench.
        if self.last_retx_time.is_some_and(|t| t >= lib_at) {
            return false;
        }
        let flight_now = (hi - self.snd_una).max(0);
        flight_now <= i64::from(2 * self.eff_mss).max(self.pre.max_in_flight / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpa_tcpsim::profiles;
    use tcpa_trace::{Trace, TraceRecord};
    use tcpa_wire::{IpProtocol, Ipv4Addr, Ipv4Repr, TcpFlags, TcpOption, TcpRepr};

    fn rec(
        ts_ms: i64,
        src: u8,
        dst: u8,
        flags: TcpFlags,
        seq: u32,
        len: u32,
        ack: u32,
    ) -> TraceRecord {
        TraceRecord {
            ts: Time::from_millis(ts_ms),
            ip: Ipv4Repr {
                src: Ipv4Addr::from_host_id(src),
                dst: Ipv4Addr::from_host_id(dst),
                protocol: IpProtocol::Tcp,
                ttl: 64,
                ident: 0,
                payload_len: 20 + len as usize,
            },
            tcp: TcpRepr {
                seq: SeqNum(seq),
                ack: SeqNum(ack),
                flags,
                window: 32_768,
                ..TcpRepr::new(5000 + u16::from(src), 5000 + u16::from(dst))
            },
            payload_len: len,
            checksum_ok: Some(true),
        }
    }

    fn with_mss(mut r: TraceRecord, mss: u16) -> TraceRecord {
        r.tcp.options.push(TcpOption::Mss(mss));
        r
    }

    const A: TcpFlags = TcpFlags::ACK;
    const S: TcpFlags = TcpFlags::SYN;
    const SA: TcpFlags = TcpFlags(0x12);

    /// A hand-built clean slow-start trace: 1, then 2, then 4 segments,
    /// each flight ack-clocked, MSS 512.
    fn slow_start_trace() -> Connection {
        let mut v = vec![
            with_mss(rec(0, 1, 2, S, 1000, 0, 0), 512),
            with_mss(rec(100, 2, 1, SA, 9000, 0, 1001), 512),
            rec(101, 1, 2, A, 1001, 0, 9001),
            // flight 1
            rec(102, 1, 2, A, 1001, 512, 9001),
            rec(202, 2, 1, A, 9001, 0, 1513),
            // flight 2
            rec(203, 1, 2, A, 1513, 512, 9001),
            rec(204, 1, 2, A, 2025, 512, 9001),
            rec(303, 2, 1, A, 9001, 0, 2537),
            // flight 3 (ack covered both: cwnd now 3*512? one ack for two
            // segments → one open_window → cwnd 3: three segments go out)
            rec(304, 1, 2, A, 2537, 512, 9001),
            rec(305, 1, 2, A, 3049, 512, 9001),
            rec(306, 1, 2, A, 3561, 512, 9001),
        ];
        let trace: Trace = v.drain(..).collect();
        Connection::split(&trace).remove(0)
    }

    #[test]
    fn clean_slow_start_fits_reno_with_no_issues() {
        let conn = slow_start_trace();
        let a = analyze_sender(&conn, &profiles::reno()).expect("analyzable");
        assert!(a.issues.is_empty(), "{:?}", a.issues);
        assert_eq!(a.retransmissions, 0);
        assert_eq!(a.data_packets, 6);
        // Response delays: each flight goes out within a few ms of its ack
        // (the hand-built trace spaces back-to-back sends 1 ms apart).
        assert!(a.response_delays.max().unwrap() <= Duration::from_millis(5));
    }

    #[test]
    fn overshoot_is_a_window_violation() {
        // Same trace, but a 4th segment in flight 3 exceeds cwnd=3·512.
        let conn = {
            let mut v = slow_start_trace().records;
            v.push((Dir::SenderToReceiver, rec(307, 1, 2, A, 4073, 512, 9001)));
            Connection {
                records: v,
                ..slow_start_trace()
            }
        };
        let a = analyze_sender(&conn, &profiles::reno()).unwrap();
        assert_eq!(a.hard_issues(), 1, "{:?}", a.issues);
        assert!(matches!(a.issues[0].kind, SenderIssueKind::WindowViolation));
    }

    #[test]
    fn violation_cured_by_adjacent_ack_is_resequencing_not_misbehavior() {
        let conn = {
            let mut v = slow_start_trace().records;
            v.push((Dir::SenderToReceiver, rec(307, 1, 2, A, 4073, 512, 9001)));
            // The curing ack recorded 400 µs later.
            let mut cure = rec(307, 2, 1, A, 9001, 0, 3049);
            cure.ts = Time::from_micros(307_400);
            v.push((Dir::ReceiverToSender, cure));
            Connection {
                records: v,
                ..slow_start_trace()
            }
        };
        let a = analyze_sender(&conn, &profiles::reno()).unwrap();
        assert_eq!(a.hard_issues(), 0, "{:?}", a.issues);
        assert_eq!(a.reseq_cured_violations, 1);
    }

    #[test]
    fn timeout_retransmission_accepted_and_window_collapsed() {
        let mut v = vec![
            with_mss(rec(0, 1, 2, S, 1000, 0, 0), 512),
            with_mss(rec(100, 2, 1, SA, 9000, 0, 1001), 512),
            rec(102, 1, 2, A, 1001, 512, 9001),
            // no ack; RTO (≥ 1 s for Reno) fires:
            rec(3200, 1, 2, A, 1001, 512, 9001),
        ];
        let trace: Trace = v.drain(..).collect();
        let conn = Connection::split(&trace).remove(0);
        let a = analyze_sender(&conn, &profiles::reno()).unwrap();
        assert!(a.issues.is_empty(), "{:?}", a.issues);
        assert_eq!(a.retransmissions, 1);
        assert_eq!(a.retx_causes, vec![(RetxCause::Timeout, 1)]);
    }

    #[test]
    fn premature_retransmission_rejected_for_reno_accepted_for_solaris() {
        // Retransmission after only 400 ms: below Reno's 1 s floor,
        // above Solaris's 200 ms floor.
        let mut v = vec![
            with_mss(rec(0, 1, 2, S, 1000, 0, 0), 512),
            with_mss(rec(100, 2, 1, SA, 9000, 0, 1001), 512),
            rec(102, 1, 2, A, 1001, 512, 9001),
            rec(502, 1, 2, A, 1001, 512, 9001),
        ];
        let trace: Trace = v.drain(..).collect();
        let conn = Connection::split(&trace).remove(0);

        let reno = analyze_sender(&conn, &profiles::reno()).unwrap();
        assert_eq!(reno.hard_issues(), 1, "{:?}", reno.issues);
        assert!(matches!(
            reno.issues[0].kind,
            SenderIssueKind::UnexplainedRetransmission
        ));

        let sol = analyze_sender(&conn, &profiles::solaris_2_4()).unwrap();
        assert_eq!(sol.hard_issues(), 0, "{:?}", sol.issues);
        assert_eq!(sol.retx_causes, vec![(RetxCause::Timeout, 1)]);
    }

    #[test]
    fn fast_retransmit_after_three_dups_accepted() {
        let mut v = vec![
            with_mss(rec(0, 1, 2, S, 1000, 0, 0), 512),
            with_mss(rec(50, 2, 1, SA, 9000, 0, 1001), 512),
            rec(51, 1, 2, A, 1001, 512, 9001),
            rec(150, 2, 1, A, 9001, 0, 1513),
            rec(151, 1, 2, A, 1513, 512, 9001),
            rec(152, 1, 2, A, 2025, 512, 9001),
            rec(250, 2, 1, A, 9001, 0, 2537),
            // four segments; first (2537) lost in the network
            rec(251, 1, 2, A, 2537, 512, 9001),
            rec(252, 1, 2, A, 3049, 512, 9001),
            rec(253, 1, 2, A, 3561, 512, 9001),
            // dup acks for 2537 elicited by the two later segments + one more
            rec(350, 2, 1, A, 9001, 0, 2537),
            rec(351, 2, 1, A, 9001, 0, 2537),
            rec(352, 2, 1, A, 9001, 0, 2537),
            // fast retransmit
            rec(353, 1, 2, A, 2537, 512, 9001),
        ];
        let trace: Trace = v.drain(..).collect();
        let conn = Connection::split(&trace).remove(0);
        let a = analyze_sender(&conn, &profiles::reno()).unwrap();
        assert_eq!(a.hard_issues(), 0, "{:?}", a.issues);
        assert_eq!(a.retx_causes, vec![(RetxCause::FastRetransmit, 1)]);
    }

    #[test]
    fn burst_retransmission_fits_linux_but_not_reno() {
        let mut v = vec![
            with_mss(rec(0, 1, 2, S, 1000, 0, 0), 512),
            with_mss(rec(50, 2, 1, SA, 9000, 0, 1001), 512),
            rec(51, 1, 2, A, 1001, 512, 9001),
            rec(150, 2, 1, A, 9001, 0, 1513),
            rec(151, 1, 2, A, 1513, 512, 9001),
            rec(152, 1, 2, A, 2025, 512, 9001),
            // one dup ack …
            rec(250, 2, 1, A, 9001, 0, 1513),
            // … and Linux 1.0 re-sends everything in flight at once.
            rec(251, 1, 2, A, 1513, 512, 9001),
            rec(252, 1, 2, A, 2025, 512, 9001),
        ];
        let trace: Trace = v.drain(..).collect();
        let conn = Connection::split(&trace).remove(0);

        let lin = analyze_sender(&conn, &profiles::linux_1_0()).unwrap();
        assert_eq!(lin.hard_issues(), 0, "{:?}", lin.issues);
        assert!(lin
            .retx_causes
            .iter()
            .any(|(c, _)| *c == RetxCause::EarlyDupAck));
        assert!(lin
            .retx_causes
            .iter()
            .any(|(c, _)| *c == RetxCause::BurstContinuation));

        let reno = analyze_sender(&conn, &profiles::reno()).unwrap();
        assert!(reno.hard_issues() >= 1, "{:?}", reno.issues);
    }

    #[test]
    fn sender_window_inferred_when_flight_plateaus() {
        // Offered window 32 KB and cwnd keeps growing, but the socket
        // buffer caps the flight at 2048 bytes (4 segments). The trace
        // follows slow start until the cap binds: flights of 1, 2, 4,
        // 4, 4, … with every segment acked individually.
        let mut v = vec![
            with_mss(rec(0, 1, 2, S, 1000, 0, 0), 512),
            with_mss(rec(50, 2, 1, SA, 9000, 0, 1001), 512),
        ];
        let mut una = 1001u32;
        let mut t = 60;
        for round in 0..8 {
            let flight = [1usize, 2, 4][round.min(2)];
            for k in 0..flight {
                v.push(rec(t + k as i64, 1, 2, A, una + 512 * k as u32, 512, 9001));
            }
            t += 100;
            for k in 0..flight {
                una += 512;
                v.push(rec(t + k as i64, 2, 1, A, 9001, 0, una));
            }
            t += 10;
        }
        let trace: Trace = v.drain(..).collect();
        let conn = Connection::split(&trace).remove(0);
        let a = analyze_sender(&conn, &profiles::reno()).unwrap();
        assert_eq!(a.inferred_sender_window, Some(2048));
        assert!(a.issues.is_empty(), "{:?}", a.issues);
    }

    #[test]
    fn unseen_source_quench_inferred() {
        // cwnd is ~4 segments; suddenly the sender pauses 400 ms and then
        // trickles out a lone segment — the §6.2 slow-start signature.
        let mut v = vec![
            with_mss(rec(0, 1, 2, S, 1000, 0, 0), 512),
            with_mss(rec(50, 2, 1, SA, 9000, 0, 1001), 512),
            rec(51, 1, 2, A, 1001, 512, 9001),
            rec(150, 2, 1, A, 9001, 0, 1513),
            rec(151, 1, 2, A, 1513, 512, 9001),
            rec(152, 1, 2, A, 2025, 512, 9001),
            rec(250, 2, 1, A, 9001, 0, 2537),
            // quench arrives (invisible); 400 ms later one lone segment:
            rec(650, 1, 2, A, 2537, 512, 9001),
            // ack-clocked restart, next data a full RTT later:
            rec(750, 2, 1, A, 9001, 0, 3049),
            rec(751, 1, 2, A, 3049, 512, 9001),
        ];
        let trace: Trace = v.drain(..).collect();
        let conn = Connection::split(&trace).remove(0);
        let a = analyze_sender(&conn, &profiles::reno()).unwrap();
        assert_eq!(a.inferred_quenches.len(), 1, "{:?}", a.issues);
        assert_eq!(a.lulls(), 0);
    }

    #[test]
    fn connection_without_data_is_unanalyzable() {
        let mut v = vec![
            with_mss(rec(0, 1, 2, S, 1000, 0, 0), 512),
            with_mss(rec(50, 2, 1, SA, 9000, 0, 1001), 512),
        ];
        let trace: Trace = v.drain(..).collect();
        let conn = Connection::split(&trace).remove(0);
        assert!(analyze_sender(&conn, &profiles::reno()).is_none());
    }
}
