//! The small ICMP subset the paper needs (RFC 792).
//!
//! The only message type that matters for tcpanaly is **source quench**
//! (type 4): it instructs a TCP to slow down, but because it is an ICMP
//! packet it never appears in a TCP-only packet-filter trace — tcpanaly
//! must *infer* its arrival from the sender's subsequent behavior (§6.2).
//! Echo request/reply are included so the simulator can model background
//! probing traffic.

use crate::checksum;
use crate::{Result, WireError};

/// A decoded ICMP message (header + the quoted bytes, if any).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpRepr {
    /// Echo request (type 8).
    EchoRequest {
        /// Identifier for matching replies.
        ident: u16,
        /// Sequence number within the identifier.
        seq: u16,
    },
    /// Echo reply (type 0).
    EchoReply {
        /// Identifier copied from the request.
        ident: u16,
        /// Sequence number copied from the request.
        seq: u16,
    },
    /// Source quench (type 4, code 0). Carries the IP header + first 8
    /// payload bytes of the datagram that triggered it.
    SourceQuench {
        /// The quoted bytes of the offending datagram.
        quoted: Vec<u8>,
    },
    /// Any other type/code, preserved verbatim as (type, code, rest).
    Other(u8, u8, Vec<u8>),
}

impl IcmpRepr {
    /// Parses an ICMP message, verifying its checksum.
    pub fn parse(packet: &[u8]) -> Result<IcmpRepr> {
        if packet.len() < 8 {
            return Err(WireError::Truncated);
        }
        if !checksum::verify(packet) {
            return Err(WireError::BadChecksum);
        }
        let (ty, code) = (packet[0], packet[1]);
        let rest = &packet[4..];
        Ok(match (ty, code) {
            (8, 0) => IcmpRepr::EchoRequest {
                ident: u16::from_be_bytes([rest[0], rest[1]]),
                seq: u16::from_be_bytes([rest[2], rest[3]]),
            },
            (0, 0) => IcmpRepr::EchoReply {
                ident: u16::from_be_bytes([rest[0], rest[1]]),
                seq: u16::from_be_bytes([rest[2], rest[3]]),
            },
            (4, 0) => IcmpRepr::SourceQuench {
                quoted: rest[4..].to_vec(),
            },
            _ => IcmpRepr::Other(ty, code, rest.to_vec()),
        })
    }

    /// Appends the encoded message (checksum filled in) to `buf`.
    pub fn emit(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        match self {
            IcmpRepr::EchoRequest { ident, seq } => {
                buf.extend_from_slice(&[8, 0, 0, 0]);
                buf.extend_from_slice(&ident.to_be_bytes());
                buf.extend_from_slice(&seq.to_be_bytes());
            }
            IcmpRepr::EchoReply { ident, seq } => {
                buf.extend_from_slice(&[0, 0, 0, 0]);
                buf.extend_from_slice(&ident.to_be_bytes());
                buf.extend_from_slice(&seq.to_be_bytes());
            }
            IcmpRepr::SourceQuench { quoted } => {
                buf.extend_from_slice(&[4, 0, 0, 0, 0, 0, 0, 0]);
                buf.extend_from_slice(quoted);
            }
            IcmpRepr::Other(ty, code, rest) => {
                buf.extend_from_slice(&[*ty, *code, 0, 0]);
                buf.extend_from_slice(rest);
            }
        }
        let ck = checksum::checksum(&buf[start..]);
        buf[start + 2..start + 4].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trip() {
        let msg = IcmpRepr::EchoRequest { ident: 77, seq: 3 };
        let mut buf = Vec::new();
        msg.emit(&mut buf);
        assert_eq!(IcmpRepr::parse(&buf).unwrap(), msg);
    }

    #[test]
    fn source_quench_round_trip() {
        let msg = IcmpRepr::SourceQuench {
            quoted: vec![0x45, 0, 0, 40, 1, 2, 3, 4],
        };
        let mut buf = Vec::new();
        msg.emit(&mut buf);
        assert_eq!(IcmpRepr::parse(&buf).unwrap(), msg);
    }

    #[test]
    fn corrupted_message_rejected() {
        let msg = IcmpRepr::EchoReply { ident: 1, seq: 2 };
        let mut buf = Vec::new();
        msg.emit(&mut buf);
        buf[5] ^= 1;
        assert_eq!(IcmpRepr::parse(&buf).unwrap_err(), WireError::BadChecksum);
    }

    #[test]
    fn short_message_rejected() {
        assert_eq!(
            IcmpRepr::parse(&[4, 0, 0]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn unknown_type_preserved() {
        let msg = IcmpRepr::Other(3, 1, vec![0, 0, 0, 0, 9, 9]);
        let mut buf = Vec::new();
        msg.emit(&mut buf);
        assert_eq!(IcmpRepr::parse(&buf).unwrap(), msg);
    }
}
