//! Per-scenario stage-timing exposition — the `tcpa-bench/v1` JSON that
//! `repro_all` writes next to its markdown report.
//!
//! Each scenario run is paired with the delta of the global
//! [`tcpanaly::obs`] registry around it, so the document breaks every
//! scenario's wall clock down by analysis stage. Checked into
//! `BENCH_stage_timings.json` over time it becomes a perf trajectory:
//! future optimizations (mmap ingest, result caching) show up as a
//! per-stage shift, not just an end-to-end delta.

use tcpanaly::obs::json::{self, Value};
use tcpanaly::obs::metrics::MetricsSnapshot;

/// The bench-timings document schema identifier.
pub const BENCH_SCHEMA: &str = "tcpa-bench/v1";

/// One scenario's measured run.
pub struct ScenarioTiming {
    /// Scenario slug (stable across runs, e.g. `"table1"`).
    pub scenario: String,
    /// The paper artifact the scenario reproduces (e.g. `"Table 1"`).
    pub section: String,
    /// Wall clock of the whole scenario, seconds.
    pub elapsed_secs: f64,
    /// Registry delta around the run: stage histograms + counters.
    pub delta: MetricsSnapshot,
}

/// Renders the `tcpa-bench/v1` document.
pub fn render(rows: &[ScenarioTiming]) -> String {
    let num = |v: u64| Value::Num(v.to_string());
    let scenarios = rows
        .iter()
        .map(|row| {
            let stages = row
                .delta
                .stages
                .iter()
                .map(|(name, h)| {
                    (
                        name.to_string(),
                        Value::Obj(vec![
                            ("count".into(), num(h.count())),
                            ("total_ns".into(), num(h.sum())),
                            ("p50_ns".into(), num(h.percentile(50.0))),
                            ("p90_ns".into(), num(h.percentile(90.0))),
                            ("p99_ns".into(), num(h.percentile(99.0))),
                            ("max_ns".into(), num(h.max())),
                        ]),
                    )
                })
                .collect();
            Value::Obj(vec![
                ("scenario".into(), Value::Str(row.scenario.clone())),
                ("section".into(), Value::Str(row.section.clone())),
                (
                    "elapsed_secs".into(),
                    Value::Num(format!("{:.6}", row.elapsed_secs)),
                ),
                (
                    "counters".into(),
                    json::counters_object(&row.delta.counters),
                ),
                ("stages".into(), Value::Obj(stages)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("schema".into(), Value::Str(BENCH_SCHEMA.into())),
        ("scenarios".into(), Value::Arr(scenarios)),
    ])
    .to_json()
}

/// Validates a `tcpa-bench/v1` document, returning the first problem.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = Value::parse(text)?;
    match doc.get("schema").and_then(Value::as_str) {
        Some(BENCH_SCHEMA) => {}
        other => return Err(format!("bench: schema {other:?}, want {BENCH_SCHEMA:?}")),
    }
    let scenarios = doc
        .get("scenarios")
        .and_then(Value::as_arr)
        .ok_or("bench: scenarios is not an array")?;
    for (i, s) in scenarios.iter().enumerate() {
        let what = format!("bench scenario {i}");
        for key in ["scenario", "section"] {
            s.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{what}: {key} is not a string"))?;
        }
        s.get("elapsed_secs")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{what}: elapsed_secs is not a number"))?;
        let stages = s
            .get("stages")
            .and_then(Value::as_obj)
            .ok_or_else(|| format!("{what}: stages is not an object"))?;
        for (name, stage) in stages {
            for field in ["count", "total_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns"] {
                stage
                    .get(field)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("{what} stage {name:?}: bad {field}"))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use tcpanaly::obs::Registry;

    #[test]
    fn renders_and_validates() {
        let r = Registry::new();
        r.record("stage.calibrate", Duration::from_micros(50));
        r.add("corpus.analyzed", 2);
        let rows = vec![ScenarioTiming {
            scenario: "table1".into(),
            section: "Table 1".into(),
            elapsed_secs: 0.125,
            delta: r.snapshot(),
        }];
        let json = render(&rows);
        validate(&json).expect("schema-valid bench document");
        assert!(json.contains("\"table1\""), "{json}");
        assert!(json.contains("stage.calibrate"), "{json}");
    }

    #[test]
    fn rejects_wrong_schema() {
        assert!(validate(r#"{"schema": "tcpa-bench/v2", "scenarios": []}"#).is_err());
        assert!(validate("{}").is_err());
        assert!(validate(r#"{"schema": "tcpa-bench/v1", "scenarios": [{}]}"#).is_err());
    }
}
