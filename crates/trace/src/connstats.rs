//! Connection-level summary statistics — the numbers the paper's
//! narrative quotes per connection ("this connection sent 317 packets,
//! 117 of them retransmissions", §8.5).

use crate::conn::{Connection, Dir};
use crate::time::{Duration, Time};
use tcpa_wire::SeqNum;

/// Per-connection accounting derived purely from the trace.
#[derive(Debug, Clone)]
pub struct ConnStats {
    /// Data packets sent (sender → receiver, payload > 0).
    pub data_packets: usize,
    /// Of those, packets whose sequence range had been covered before
    /// (retransmissions, as judged from the trace alone).
    pub retransmitted_packets: usize,
    /// Unique payload bytes (highest sequence reached).
    pub unique_bytes: u64,
    /// Total payload bytes including retransmissions.
    pub total_bytes: u64,
    /// Pure acks from the receiver.
    pub acks: usize,
    /// First and last record times.
    pub span: (Time, Time),
    /// RTT of the handshake (SYN → SYN-ack at the initiator's vantage),
    /// when both were captured.
    pub syn_rtt: Option<Duration>,
    /// Longest quiet period between consecutive records.
    pub longest_silence: Duration,
}

impl ConnStats {
    /// Computes the statistics for one connection. Returns `None` for an
    /// empty connection.
    pub fn of(conn: &Connection) -> Option<ConnStats> {
        let first = conn.records.first()?.1.ts;
        let last = conn.records.last()?.1.ts;

        let mut data_packets = 0usize;
        let mut retransmitted = 0usize;
        let mut total_bytes = 0u64;
        let mut highest: Option<SeqNum> = None;
        let mut lowest: Option<SeqNum> = None;
        let mut acks = 0usize;
        let mut syn_at: Option<Time> = None;
        let mut syn_rtt = None;
        let mut longest_silence = Duration::ZERO;
        let mut prev_ts: Option<Time> = None;

        for (dir, rec) in &conn.records {
            if let Some(p) = prev_ts {
                let gap = rec.ts - p;
                if gap > longest_silence {
                    longest_silence = gap;
                }
            }
            prev_ts = Some(rec.ts);
            match dir {
                Dir::SenderToReceiver => {
                    if rec.tcp.flags.syn() {
                        syn_at.get_or_insert(rec.ts);
                    }
                    if rec.is_data() {
                        data_packets += 1;
                        total_bytes += u64::from(rec.payload_len);
                        let hi = rec.seq_hi();
                        if highest.is_some_and(|h| !hi.after(h)) {
                            retransmitted += 1;
                        }
                        highest = Some(highest.map_or(hi, |h| h.max(hi)));
                        lowest = Some(lowest.map_or(rec.seq_lo(), |l| l.min(rec.seq_lo())));
                    }
                }
                Dir::ReceiverToSender => {
                    if rec.tcp.flags.syn() && rec.tcp.flags.ack() {
                        if let (Some(t0), None) = (syn_at, syn_rtt) {
                            syn_rtt = Some(rec.ts - t0);
                        }
                    }
                    if rec.is_pure_ack() {
                        acks += 1;
                    }
                }
            }
        }

        let unique_bytes = match (lowest, highest) {
            (Some(lo), Some(hi)) => (hi - lo).max(0) as u64,
            _ => 0,
        };
        Some(ConnStats {
            data_packets,
            retransmitted_packets: retransmitted,
            unique_bytes,
            total_bytes,
            acks,
            span: (first, last),
            syn_rtt,
            longest_silence,
        })
    }

    /// Elapsed time between the first and last record.
    pub fn elapsed(&self) -> Duration {
        self.span.1 - self.span.0
    }

    /// Goodput over the connection lifetime, bytes/second.
    pub fn goodput(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.unique_bytes as f64 / secs
        }
    }

    /// Fraction of data packets that were retransmissions.
    pub fn retransmission_ratio(&self) -> f64 {
        if self.data_packets == 0 {
            0.0
        } else {
            self.retransmitted_packets as f64 / self.data_packets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_util::rec;
    use crate::record::Trace;
    use tcpa_wire::TcpFlags;

    fn conn(v: Vec<crate::record::TraceRecord>) -> Connection {
        Connection::split(&v.into_iter().collect::<Trace>()).remove(0)
    }

    #[test]
    fn counts_and_ratio() {
        let c = conn(vec![
            rec(0, 1, 2, TcpFlags::SYN, 1000, 0, 0),
            rec(80, 2, 1, TcpFlags::SYN | TcpFlags::ACK, 9000, 0, 1001),
            rec(81, 1, 2, TcpFlags::ACK, 1001, 512, 9001),
            rec(100, 1, 2, TcpFlags::ACK, 1513, 512, 9001),
            rec(400, 1, 2, TcpFlags::ACK, 1001, 512, 9001), // retransmit
            rec(500, 2, 1, TcpFlags::ACK, 9001, 0, 2025),
        ]);
        let s = ConnStats::of(&c).unwrap();
        assert_eq!(s.data_packets, 3);
        assert_eq!(s.retransmitted_packets, 1);
        assert_eq!(s.total_bytes, 1536);
        assert_eq!(s.unique_bytes, 1024);
        assert_eq!(s.acks, 1);
        assert_eq!(s.syn_rtt, Some(Duration::from_millis(80)));
        assert!((s.retransmission_ratio() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.elapsed(), Duration::from_millis(500));
        assert_eq!(s.longest_silence, Duration::from_millis(300));
    }

    #[test]
    fn goodput_uses_unique_bytes() {
        let c = conn(vec![
            rec(0, 1, 2, TcpFlags::ACK, 0, 1000, 1),
            rec(1000, 1, 2, TcpFlags::ACK, 0, 1000, 1), // pure repeat
        ]);
        let s = ConnStats::of(&c).unwrap();
        assert_eq!(s.unique_bytes, 1000);
        assert!((s.goodput() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn empty_connection_is_none() {
        let trace = Trace::new();
        assert!(Connection::split(&trace).is_empty());
    }
}
