//! Receiver-behavior analysis (§7, §9): ack obligations and policies.
//!
//! From a trace captured at (or near) the *receiver*, the analyzer tracks
//! the **ack obligations** the receiver incurs as data arrives — optional
//! for in-sequence data (it may wait, hoping to combine acks, though no
//! longer than 500 ms and at least every two full segments, RFC 1122),
//! mandatory for out-of-sequence data — and classifies every ack the
//! receiver emits:
//!
//! * **delayed** — covering less than two full segments,
//! * **normal** — exactly two,
//! * **stretch** — more than two,
//! * **duplicate** — mandated by out-of-sequence data,
//! * **gratuitous** — nothing obliged it (§7: the receiver-side analogue
//!   of a window violation; evidence of analyzer confusion, measurement
//!   error — or the Solaris 2.3 acking bug, §8.6);
//!
//! and measures each ack's *response delay* since the oldest unacknowledged
//! arrival — the §9.3 noise floor for sender RTT estimation. The shape of
//! the delayed-ack distribution identifies the generation policy (§9.1):
//! BSD's heartbeat gives delays uniform on [0, 200 ms); Solaris's
//! interval timer masses near 50 ms; Linux 1.0 acks within ~1 ms.
//!
//! Corrupted arrivals are discarded by the real receiver before TCP sees
//! them; when the capture is header-only the corruption must be *inferred*
//! (§7): an in-sequence arrival the receiver never acknowledged, repaired
//! only by a retransmission that *is* acknowledged, was discarded on
//! arrival.

use tcpa_trace::{Connection, Dir, Duration, Summary, Time};
use tcpa_wire::SeqNum;

/// Classification of one receiver ack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckClass {
    /// Acked fewer than two full segments.
    Delayed,
    /// Acked exactly two full segments.
    Normal,
    /// Acked more than two full segments (§9.1 "stretch acks").
    Stretch,
    /// A duplicate ack mandated by out-of-sequence data.
    Duplicate,
    /// No obligation, no window change, no connection bookkeeping.
    Gratuitous,
    /// Pure window update (offered window changed, nothing pending).
    WindowUpdate,
    /// Handshake or FIN bookkeeping.
    Bookkeeping,
}

/// One classified ack.
#[derive(Debug, Clone)]
pub struct ClassifiedAck {
    /// Record index within the connection.
    pub index: usize,
    /// The class.
    pub class: AckClass,
    /// Time since the oldest unacknowledged in-sequence arrival, for acks
    /// that had such an obligation pending.
    pub delay: Option<Duration>,
}

/// The receiver's inferred in-sequence acking policy (§9.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyGuess {
    /// Free-running heartbeat of roughly the given period (delays spread
    /// uniformly over [0, period)).
    Heartbeat {
        /// Estimated heartbeat period.
        period_ms: i64,
    },
    /// One-shot interval timer of roughly the given delay (delays mass at
    /// the value).
    IntervalTimer {
        /// Estimated timer delay.
        delay_ms: i64,
    },
    /// Acks every packet immediately.
    EveryPacket,
    /// Not enough evidence.
    Unknown,
}

/// A conformance violation against the acking duties of RFC 1122
/// §4.2.3.2, which the paper quotes (§7): an ack may be delayed "for no
/// longer than 500 msec", and there should be "at least one
/// acknowledgement for every two packet's worth of new data received".
#[derive(Debug, Clone)]
pub struct RfcViolation {
    /// Record index of the triggering ack (or arrival).
    pub index: usize,
    /// What rule was broken.
    pub detail: String,
}

/// Receiver analysis result.
#[derive(Debug, Clone)]
pub struct ReceiverAnalysis {
    /// Every ack, classified, in trace order.
    pub acks: Vec<ClassifiedAck>,
    /// Response delays of acks that had a pending obligation.
    pub ack_delays: Summary,
    /// Response delays of *delayed*-class acks only (§9.1 distribution).
    pub delayed_ack_delays: Summary,
    /// Record indices of arrivals inferred (or observed) corrupt and
    /// discarded by the receiver.
    pub corrupt_arrivals: Vec<usize>,
    /// Inferred acking policy.
    pub policy: PolicyGuess,
    /// The segment-size yardstick used for the two-segment rule.
    pub seg_size: u32,
    /// RFC 1122 acking-duty violations (§7): acks delayed past 500 ms,
    /// or more than two segments' worth of data left unacknowledged.
    pub rfc_violations: Vec<RfcViolation>,
}

impl ReceiverAnalysis {
    /// Count of acks in a class.
    pub fn count(&self, class: AckClass) -> usize {
        self.acks.iter().filter(|a| a.class == class).count()
    }
}

/// Analyzes receiver behavior. Returns `None` if the connection has no
/// data flowing to the receiver.
pub fn analyze_receiver(conn: &Connection) -> Option<ReceiverAnalysis> {
    if !conn.in_dir(Dir::SenderToReceiver).any(|r| r.is_data()) {
        return None;
    }
    let seg_size = segment_yardstick(conn)?;
    let corrupt = find_corrupt_arrivals(conn);

    let mut rcv_nxt: Option<SeqNum> = None;
    let mut ooo: Vec<(SeqNum, SeqNum)> = Vec::new(); // buffered intervals
    let mut pending_bytes: u32 = 0;
    let mut pending_since: Option<Time> = None;
    let mut mandatory_pending = false;
    let mut last_ack: Option<SeqNum> = None;
    let mut last_win: Option<u16> = None;
    let mut fin_seen = false;

    let mut acks = Vec::new();
    let mut ack_delays = Summary::new();
    let mut delayed_delays = Summary::new();
    let mut rfc_violations = Vec::new();

    for (i, (dir, rec)) in conn.records.iter().enumerate() {
        match dir {
            Dir::SenderToReceiver => {
                if rec.tcp.flags.syn() {
                    rcv_nxt = Some(rec.tcp.seq + 1);
                    continue;
                }
                if corrupt.contains(&i) {
                    continue; // discarded before the TCP saw it
                }
                if rec.tcp.flags.fin() {
                    fin_seen = true;
                }
                if !rec.is_data() {
                    // A zero-length segment below the expected sequence is
                    // a keep-alive probe: it mandates a duplicate ack,
                    // which must not read as gratuitous.
                    if let Some(nxt) = rcv_nxt {
                        if rec.tcp.flags.ack()
                            && !rec.tcp.flags.syn()
                            && !rec.tcp.flags.fin()
                            && rec.seq_lo().before(nxt)
                        {
                            mandatory_pending = true;
                        }
                    }
                    continue;
                }
                let lo = rec.seq_lo();
                let hi = rec.seq_lo() + rec.payload_len;
                let nxt = rcv_nxt.get_or_insert(lo);
                // Data beyond the advertised window (e.g. a zero-window
                // probe) is discarded by the receiver with a mandatory
                // ack restating the window.
                if let (Some(la), Some(lw)) = (last_ack, last_win) {
                    if hi.after(la + u32::from(lw)) {
                        mandatory_pending = true;
                        continue;
                    }
                }
                if lo.at_or_before(*nxt) && hi.after(*nxt) {
                    // In sequence (possibly overlapping): optional
                    // obligation accrues.
                    pending_bytes += (hi - *nxt) as u32;
                    *nxt = hi;
                    if pending_since.is_none() {
                        pending_since = Some(rec.ts);
                    }
                    // Drain any buffered intervals that now fit; a filled
                    // hole mandates an immediate ack.
                    loop {
                        let mut advanced = false;
                        ooo.retain(|&(blo, bhi)| {
                            if blo.at_or_before(*nxt) {
                                if bhi.after(*nxt) {
                                    pending_bytes += (bhi - *nxt) as u32;
                                    *nxt = bhi;
                                }
                                advanced = true;
                                false
                            } else {
                                true
                            }
                        });
                        if !advanced {
                            break;
                        }
                        mandatory_pending = true; // hole filled
                    }
                } else if lo.after(*nxt) {
                    // Above a hole: mandatory dup-ack obligation.
                    ooo.push((lo, hi));
                    mandatory_pending = true;
                } else {
                    // Entirely old: a needless retransmission; mandatory
                    // dup ack.
                    mandatory_pending = true;
                }
            }
            Dir::ReceiverToSender => {
                if !rec.tcp.flags.ack() {
                    continue;
                }
                if rec.tcp.flags.syn() || rec.tcp.flags.fin() || rec.tcp.flags.rst() || fin_seen {
                    acks.push(ClassifiedAck {
                        index: i,
                        class: AckClass::Bookkeeping,
                        delay: None,
                    });
                    // FIN-era acks end obligation tracking.
                    pending_bytes = 0;
                    pending_since = None;
                    mandatory_pending = false;
                    last_ack = Some(rec.tcp.ack);
                    last_win = Some(rec.tcp.window);
                    continue;
                }
                let win_changed = last_win != Some(rec.tcp.window);
                let is_dup = Some(rec.tcp.ack) == last_ack;
                let (class, delay) = if mandatory_pending && is_dup {
                    (AckClass::Duplicate, None)
                } else if pending_bytes > 0 {
                    let d = pending_since.map(|t0| rec.ts - t0);
                    if let Some(d) = d {
                        if d > Duration::from_millis(500) {
                            rfc_violations.push(RfcViolation {
                                index: i,
                                detail: format!(
                                    "ack delayed {d} — RFC 1122 caps the delay at 500 ms"
                                ),
                            });
                        }
                    }
                    let segs = pending_bytes / seg_size;
                    if segs > 2 {
                        rfc_violations.push(RfcViolation {
                            index: i,
                            detail: format!(
                                "{segs} full segments unacknowledged — RFC 1122 requires an \
                                 ack at least every two"
                            ),
                        });
                    }
                    let class = if segs < 2 {
                        AckClass::Delayed
                    } else if segs == 2 {
                        AckClass::Normal
                    } else {
                        AckClass::Stretch
                    };
                    (class, d)
                } else if mandatory_pending {
                    // Out-of-order arrival, first ack after it (not a dup
                    // because e.g. it also advanced): mandated.
                    (AckClass::Duplicate, None)
                } else if win_changed {
                    (AckClass::WindowUpdate, None)
                } else {
                    (AckClass::Gratuitous, None)
                };
                if let Some(d) = delay {
                    ack_delays.add(d);
                    if class == AckClass::Delayed {
                        delayed_delays.add(d);
                    }
                }
                acks.push(ClassifiedAck {
                    index: i,
                    class,
                    delay,
                });
                // The cumulative ack discharges obligations it covers.
                if pending_bytes > 0 {
                    if let Some(nxt) = rcv_nxt {
                        if rec.tcp.ack.at_or_after(nxt) {
                            pending_bytes = 0;
                            pending_since = None;
                        }
                    }
                }
                mandatory_pending = false;
                last_ack = Some(rec.tcp.ack);
                last_win = Some(rec.tcp.window);
            }
        }
    }

    let policy = guess_policy(&mut delayed_delays, &acks);
    Some(ReceiverAnalysis {
        acks,
        ack_delays,
        delayed_ack_delays: delayed_delays,
        corrupt_arrivals: corrupt,
        policy,
        seg_size,
        rfc_violations,
    })
}

/// The "full segment" yardstick: the negotiated MSS when the handshake is
/// present, otherwise the modal data packet size.
fn segment_yardstick(conn: &Connection) -> Option<u32> {
    if let Some(mss) = conn.negotiated_mss() {
        return Some(u32::from(mss));
    }
    // BTreeMap so the modal-size tie-break is deterministic: iteration is
    // size-ascending and `max_by_key` keeps the last maximum, so ties
    // resolve to the largest segment size on every run.
    let mut sizes: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
    for rec in conn.in_dir(Dir::SenderToReceiver).filter(|r| r.is_data()) {
        *sizes.entry(rec.payload_len).or_insert(0) += 1;
    }
    sizes.into_iter().max_by_key(|&(_, n)| n).map(|(s, _)| s)
}

/// §7's behavioral corruption inference, plus direct checksum evidence
/// when the capture kept full payloads.
fn find_corrupt_arrivals(conn: &Connection) -> Vec<usize> {
    let mut corrupt = Vec::new();
    let records = &conn.records;
    for (i, (dir, rec)) in records.iter().enumerate() {
        if *dir != Dir::SenderToReceiver || !rec.is_data() {
            continue;
        }
        if rec.payload_len <= 1 {
            // One-byte segments are zero-window probes; their silent
            // rejection is flow control, not corruption.
            continue;
        }
        match rec.checksum_ok {
            Some(false) => {
                corrupt.push(i);
                continue;
            }
            Some(true) => continue,
            None => {}
        }
        // Header-only capture: infer. The arrival is suspect if (a) a
        // later record re-delivers the same range, and (b) no receiver
        // ack between the two covers the range.
        let hi = rec.seq_hi();
        let mut redelivered = None;
        for (j, (dir2, rec2)) in records.iter().enumerate().skip(i + 1) {
            if *dir2 == Dir::SenderToReceiver
                && rec2.is_data()
                && rec2.seq_lo().at_or_before(rec.seq_lo())
                && rec2.seq_hi().at_or_after(hi)
            {
                redelivered = Some(j);
                break;
            }
        }
        let Some(j) = redelivered else { continue };
        // The silence must be *probative*: either it outlasted the 500 ms
        // standard ceiling on delayed acks (§7 / RFC 1122) — a retransmit
        // arriving sooner (e.g. Solaris's premature RTO) proves nothing —
        // or the receiver actively claimed not to have the data, by
        // emitting an ack for exactly this packet's first byte well after
        // the packet arrived.
        let long_silence = records[j].1.ts - rec.ts > Duration::from_millis(500);
        // tcpa-lint: allow(no-unwrap-in-analyzer) -- i + 1 <= j < records.len(): j came from enumerate().skip(i + 1) over records
        let disclaimed = records[i + 1..j].iter().any(|(dir2, rec2)| {
            *dir2 == Dir::ReceiverToSender
                && rec2.tcp.flags.ack()
                && rec2.tcp.ack == rec.seq_lo()
                && rec2.ts - rec.ts > Duration::from_millis(1)
        });
        if !long_silence && !disclaimed {
            continue;
        }
        // tcpa-lint: allow(no-unwrap-in-analyzer) -- i + 1 <= j < records.len(): j came from enumerate().skip(i + 1) over records
        let acked_between = records[i + 1..j].iter().any(|(dir2, rec2)| {
            *dir2 == Dir::ReceiverToSender && rec2.tcp.flags.ack() && rec2.tcp.ack.at_or_after(hi)
        });
        // tcpa-lint: allow(no-unwrap-in-analyzer) -- j < records.len() by the same enumerate bound
        let acked_after = records[j..].iter().any(|(dir2, rec2)| {
            *dir2 == Dir::ReceiverToSender && rec2.tcp.flags.ack() && rec2.tcp.ack.at_or_after(hi)
        });
        if !acked_between && acked_after {
            corrupt.push(i);
        }
    }
    corrupt
}

/// Identifies the §9.1 acking policy from the delayed-ack distribution.
fn guess_policy(delayed: &mut Summary, acks: &[ClassifiedAck]) -> PolicyGuess {
    if delayed.count() < 8 {
        return PolicyGuess::Unknown;
    }
    // count() >= 8 was checked above, but stay graceful if the summary is
    // ever emptied between the check and the reads.
    let (Some(mean), Some(max)) = (delayed.mean(), delayed.percentile(98.0)) else {
        return PolicyGuess::Unknown;
    };
    if mean < Duration::from_millis(2) {
        // Immediate acks; and with ack-every-packet virtually every ack
        // is a "delayed" (sub-two-segment) ack.
        let delayed_count = acks.iter().filter(|a| a.class == AckClass::Delayed).count();
        let counted = acks
            .iter()
            .filter(|a| {
                matches!(
                    a.class,
                    AckClass::Delayed | AckClass::Normal | AckClass::Stretch
                )
            })
            .count();
        if counted > 0 && delayed_count * 10 >= counted * 9 {
            return PolicyGuess::EveryPacket;
        }
    }
    if max < Duration::from_millis(5) {
        // All delayed acks were near-immediate yet the receiver is not an
        // ack-every-packet one: the delay timer simply never got the
        // chance to fire (fast links drown it, §9.1). No timer signal.
        return PolicyGuess::Unknown;
    }
    let ratio = mean.as_nanos() as f64 / max.as_nanos() as f64;
    if ratio > 0.75 {
        PolicyGuess::IntervalTimer {
            delay_ms: (mean.as_millis_f64()).round() as i64,
        }
    } else if ratio < 0.65 {
        PolicyGuess::Heartbeat {
            period_ms: (max.as_millis_f64()).round() as i64,
        }
    } else {
        PolicyGuess::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpa_trace::{Trace, TraceRecord};
    use tcpa_wire::{IpProtocol, Ipv4Addr, Ipv4Repr, TcpFlags, TcpOption, TcpRepr};

    fn rec(
        ts_ms: i64,
        src: u8,
        dst: u8,
        flags: TcpFlags,
        seq: u32,
        len: u32,
        ack: u32,
    ) -> TraceRecord {
        TraceRecord {
            ts: tcpa_trace::Time::from_millis(ts_ms),
            ip: Ipv4Repr {
                src: Ipv4Addr::from_host_id(src),
                dst: Ipv4Addr::from_host_id(dst),
                protocol: IpProtocol::Tcp,
                ttl: 64,
                ident: 0,
                payload_len: 20 + len as usize,
            },
            tcp: TcpRepr {
                seq: SeqNum(seq),
                ack: SeqNum(ack),
                flags,
                window: 16_384,
                ..TcpRepr::new(5000 + u16::from(src), 5000 + u16::from(dst))
            },
            payload_len: len,
            checksum_ok: None,
        }
    }

    const A: TcpFlags = TcpFlags::ACK;
    const S: TcpFlags = TcpFlags::SYN;
    const SA: TcpFlags = TcpFlags(0x12);

    fn conn(records: Vec<TraceRecord>) -> Connection {
        let trace: Trace = records.into_iter().collect();
        Connection::split(&trace).remove(0)
    }

    fn handshake(v: &mut Vec<TraceRecord>) {
        let mut syn = rec(0, 1, 2, S, 1000, 0, 0);
        syn.tcp.options.push(TcpOption::Mss(512));
        let mut synack = rec(1, 2, 1, SA, 9000, 0, 1001);
        synack.tcp.options.push(TcpOption::Mss(512));
        v.push(syn);
        v.push(synack);
    }

    #[test]
    fn normal_and_delayed_acks_classified() {
        let mut v = Vec::new();
        handshake(&mut v);
        // Two full segments, acked promptly → normal ack.
        v.push(rec(100, 1, 2, A, 1001, 512, 9001));
        v.push(rec(101, 1, 2, A, 1513, 512, 9001));
        v.push(rec(102, 2, 1, A, 9001, 0, 2025));
        // One segment, acked 150 ms later → delayed ack.
        v.push(rec(200, 1, 2, A, 2025, 512, 9001));
        v.push(rec(350, 2, 1, A, 9001, 0, 2537));
        let a = analyze_receiver(&conn(v)).unwrap();
        assert_eq!(a.count(AckClass::Normal), 1);
        assert_eq!(a.count(AckClass::Delayed), 1);
        assert_eq!(a.count(AckClass::Gratuitous), 0);
        let delayed = &a
            .acks
            .iter()
            .find(|x| x.class == AckClass::Delayed)
            .unwrap();
        assert_eq!(delayed.delay, Some(Duration::from_millis(150)));
    }

    #[test]
    fn stretch_ack_classified() {
        let mut v = Vec::new();
        handshake(&mut v);
        for k in 0..4 {
            v.push(rec(100 + k, 1, 2, A, 1001 + 512 * k as u32, 512, 9001));
        }
        v.push(rec(120, 2, 1, A, 9001, 0, 1001 + 2048));
        let a = analyze_receiver(&conn(v)).unwrap();
        assert_eq!(a.count(AckClass::Stretch), 1);
    }

    #[test]
    fn out_of_order_arrival_mandates_dup_ack() {
        let mut v = Vec::new();
        handshake(&mut v);
        v.push(rec(100, 1, 2, A, 1001, 512, 9001));
        v.push(rec(101, 2, 1, A, 9001, 0, 1513)); // delayed-ish ack
        v.push(rec(200, 1, 2, A, 2025, 512, 9001)); // hole! 1513 missing
        v.push(rec(201, 2, 1, A, 9001, 0, 1513)); // dup ack
        let a = analyze_receiver(&conn(v)).unwrap();
        assert_eq!(a.count(AckClass::Duplicate), 1);
        assert_eq!(a.count(AckClass::Gratuitous), 0);
    }

    #[test]
    fn gratuitous_ack_flagged() {
        let mut v = Vec::new();
        handshake(&mut v);
        v.push(rec(100, 1, 2, A, 1001, 512, 9001));
        v.push(rec(101, 2, 1, A, 9001, 0, 1513));
        // Nothing arrives; receiver acks again anyway, same window.
        v.push(rec(150, 2, 1, A, 9001, 0, 1513));
        let a = analyze_receiver(&conn(v)).unwrap();
        assert_eq!(a.count(AckClass::Gratuitous), 1);
    }

    #[test]
    fn window_update_not_gratuitous() {
        let mut v = Vec::new();
        handshake(&mut v);
        v.push(rec(100, 1, 2, A, 1001, 512, 9001));
        v.push(rec(101, 2, 1, A, 9001, 0, 1513));
        let mut wu = rec(150, 2, 1, A, 9001, 0, 1513);
        wu.tcp.window = 32_000;
        v.push(wu);
        let a = analyze_receiver(&conn(v)).unwrap();
        assert_eq!(a.count(AckClass::WindowUpdate), 1);
        assert_eq!(a.count(AckClass::Gratuitous), 0);
    }

    #[test]
    fn hole_fill_produces_prompt_ack() {
        let mut v = Vec::new();
        handshake(&mut v);
        v.push(rec(100, 1, 2, A, 1001, 512, 9001));
        v.push(rec(101, 2, 1, A, 9001, 0, 1513));
        v.push(rec(200, 1, 2, A, 2025, 512, 9001)); // above hole
        v.push(rec(201, 2, 1, A, 9001, 0, 1513)); // dup
        v.push(rec(300, 1, 2, A, 1513, 512, 9001)); // fills hole
        v.push(rec(301, 2, 1, A, 9001, 0, 2537)); // cumulative ack
        let a = analyze_receiver(&conn(v)).unwrap();
        // The final ack covers two segments' worth (the fill + buffered).
        assert_eq!(a.count(AckClass::Normal), 1);
        assert_eq!(a.count(AckClass::Duplicate), 1);
    }

    #[test]
    fn corrupt_arrival_inferred_from_behavior() {
        let mut v = Vec::new();
        handshake(&mut v);
        v.push(rec(100, 1, 2, A, 1001, 512, 9001)); // arrives corrupted
                                                    // no ack; sender times out and retransmits:
        v.push(rec(1500, 1, 2, A, 1001, 512, 9001));
        v.push(rec(1501, 2, 1, A, 9001, 0, 1513)); // now acked
        let a = analyze_receiver(&conn(v)).unwrap();
        assert_eq!(a.corrupt_arrivals.len(), 1);
        assert_eq!(a.corrupt_arrivals[0], 2, "the first data record");
    }

    #[test]
    fn checksum_verified_capture_flags_directly() {
        let mut v = Vec::new();
        handshake(&mut v);
        let mut bad = rec(100, 1, 2, A, 1001, 512, 9001);
        bad.checksum_ok = Some(false);
        v.push(bad);
        v.push(rec(1500, 1, 2, A, 1001, 512, 9001));
        v.push(rec(1501, 2, 1, A, 9001, 0, 1513));
        let a = analyze_receiver(&conn(v)).unwrap();
        assert_eq!(a.corrupt_arrivals, vec![2]);
    }

    #[test]
    fn policy_guesses() {
        // Heartbeat: delays uniform over 0..200 ms.
        let mut v = Vec::new();
        handshake(&mut v);
        let mut t = 1000;
        for k in 0..40 {
            v.push(rec(t, 1, 2, A, 1001 + 512 * k as u32, 512, 9001));
            let d = (k * 37) % 200;
            v.push(rec(
                t + 1 + d as i64,
                2,
                1,
                A,
                9001,
                0,
                1513 + 512 * k as u32,
            ));
            t += 1000;
        }
        let a = analyze_receiver(&conn(v.clone())).unwrap();
        assert!(
            matches!(a.policy, PolicyGuess::Heartbeat { period_ms } if (150..=260).contains(&period_ms)),
            "{:?}",
            a.policy
        );

        // Interval timer: every delay ≈ 50 ms.
        let mut v = Vec::new();
        handshake(&mut v);
        let mut t = 1000;
        for k in 0..40 {
            v.push(rec(t, 1, 2, A, 1001 + 512 * k as u32, 512, 9001));
            v.push(rec(t + 50, 2, 1, A, 9001, 0, 1513 + 512 * k as u32));
            t += 1000;
        }
        let a = analyze_receiver(&conn(v)).unwrap();
        assert!(
            matches!(a.policy, PolicyGuess::IntervalTimer { delay_ms } if (40..=60).contains(&delay_ms)),
            "{:?}",
            a.policy
        );

        // Every packet: sub-millisecond acks for every arrival.
        let mut v = Vec::new();
        handshake(&mut v);
        let mut t = 1000;
        for k in 0..40 {
            v.push(rec(t, 1, 2, A, 1001 + 512 * k as u32, 512, 9001));
            v.push(rec(t + 1, 2, 1, A, 9001, 0, 1513 + 512 * k as u32));
            t += 1000;
        }
        let a = analyze_receiver(&conn(v)).unwrap();
        assert_eq!(a.policy, PolicyGuess::EveryPacket);
    }

    #[test]
    fn no_data_connection_unanalyzable() {
        let mut v = Vec::new();
        handshake(&mut v);
        assert!(analyze_receiver(&conn(v)).is_none());
    }
}
