//! The simulator's packet representation.
//!
//! The simulator moves *structured* packets (decoded headers), not byte
//! buffers — the analyzer only ever consumes decoded headers, and keeping
//! packets structured lets a "corrupt" packet be a flag rather than actual
//! bit damage (the pcap writer in `tcpa-trace` can materialize real damage
//! when serializing).

use tcpa_wire::{IpProtocol, Ipv4Addr, Ipv4Repr, TcpRepr};

/// What a packet carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketKind {
    /// A TCP segment.
    Tcp {
        /// The TCP header.
        tcp: TcpRepr,
        /// Payload length in bytes (contents are never modeled).
        payload_len: u32,
        /// `true` if the payload was damaged in flight; the receiving TCP
        /// will discard the segment, and a full-payload capture will show
        /// a failed checksum.
        corrupt: bool,
    },
    /// An ICMP source quench addressed to the sending TCP (§6.2). It is
    /// invisible to TCP-only packet filters by construction.
    SourceQuench,
}

/// One packet in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Engine-assigned unique id (0 until the packet first enters a link).
    /// Ground truth and taps are correlated through this.
    pub uid: u64,
    /// Source IPv4 address.
    pub src: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst: Ipv4Addr,
    /// IP identification field; TCP endpoints typically increment this per
    /// packet, which lets the analyzer distinguish a retransmitted packet
    /// (new ident) from a duplicated trace record (same ident).
    pub ident: u16,
    /// Contents.
    pub kind: PacketKind,
}

impl Packet {
    /// Builds a TCP packet.
    pub fn tcp(src: Ipv4Addr, dst: Ipv4Addr, ident: u16, tcp: TcpRepr, payload_len: u32) -> Packet {
        Packet {
            uid: 0,
            src,
            dst,
            ident,
            kind: PacketKind::Tcp {
                tcp,
                payload_len,
                corrupt: false,
            },
        }
    }

    /// Builds a source-quench control packet.
    pub fn source_quench(src: Ipv4Addr, dst: Ipv4Addr) -> Packet {
        Packet {
            uid: 0,
            src,
            dst,
            ident: 0,
            kind: PacketKind::SourceQuench,
        }
    }

    /// `true` if this is a TCP segment.
    pub fn is_tcp(&self) -> bool {
        matches!(self.kind, PacketKind::Tcp { .. })
    }

    /// The total size on the wire: Ethernet + IP + payload headers.
    pub fn wire_len(&self) -> u32 {
        let ip_payload = match &self.kind {
            PacketKind::Tcp {
                tcp, payload_len, ..
            } => tcp.header_len() as u32 + payload_len,
            // ICMP header + quoted IP header + 8 bytes.
            PacketKind::SourceQuench => 8 + 20 + 8,
        };
        14 + 20 + ip_payload
    }

    /// The IPv4 header this packet would carry on the wire.
    pub fn ip_repr(&self) -> Ipv4Repr {
        let (protocol, ip_payload) = match &self.kind {
            PacketKind::Tcp {
                tcp, payload_len, ..
            } => (IpProtocol::Tcp, tcp.header_len() as u32 + payload_len),
            PacketKind::SourceQuench => (IpProtocol::Icmp, 8 + 20 + 8),
        };
        Ipv4Repr {
            src: self.src,
            dst: self.dst,
            protocol,
            ttl: 64,
            ident: self.ident,
            payload_len: ip_payload as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpa_wire::TcpFlags;

    #[test]
    fn wire_len_counts_all_headers() {
        let mut tcp = TcpRepr::new(1000, 2000);
        tcp.flags = TcpFlags::ACK;
        let pkt = Packet::tcp(
            Ipv4Addr::from_host_id(1),
            Ipv4Addr::from_host_id(2),
            1,
            tcp,
            512,
        );
        // 14 eth + 20 ip + 20 tcp + 512 payload
        assert_eq!(pkt.wire_len(), 566);
    }

    #[test]
    fn source_quench_is_not_tcp() {
        let pkt = Packet::source_quench(Ipv4Addr::from_host_id(9), Ipv4Addr::from_host_id(1));
        assert!(!pkt.is_tcp());
        assert_eq!(pkt.ip_repr().protocol, IpProtocol::Icmp);
    }

    #[test]
    fn ip_repr_reflects_tcp_options() {
        let mut tcp = TcpRepr::new(1, 2);
        tcp.options = vec![tcpa_wire::TcpOption::Mss(1460)];
        let pkt = Packet::tcp(
            Ipv4Addr::from_host_id(1),
            Ipv4Addr::from_host_id(2),
            7,
            tcp,
            0,
        );
        assert_eq!(pkt.ip_repr().payload_len, 24);
        assert_eq!(pkt.ip_repr().ident, 7);
    }
}
