//! Splitting a trace into connections and orienting packets.
//!
//! tcpanaly analyzes one bulk-transfer connection at a time, from the
//! perspective of the *data sender* and the *data receiver*. This module
//! groups a raw [`Trace`] by connection four-tuple and determines which
//! endpoint is the bulk-data source.

use crate::record::{Trace, TraceRecord};
use core::fmt;
use tcpa_wire::Ipv4Addr;

/// One endpoint of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Endpoint {
    /// IPv4 address.
    pub addr: Ipv4Addr,
    /// TCP port.
    pub port: u16,
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

/// A direction within an oriented connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// From the bulk-data sender towards the receiver.
    SenderToReceiver,
    /// From the receiver back towards the sender (acks).
    ReceiverToSender,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::SenderToReceiver => Dir::ReceiverToSender,
            Dir::ReceiverToSender => Dir::SenderToReceiver,
        }
    }
}

/// An unordered connection identifier (the four-tuple, canonicalized).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnKey {
    /// The lexicographically smaller endpoint.
    pub a: Endpoint,
    /// The lexicographically larger endpoint.
    pub b: Endpoint,
}

impl ConnKey {
    /// Builds a canonical key from the two endpoints of a packet.
    pub fn new(x: Endpoint, y: Endpoint) -> ConnKey {
        if x <= y {
            ConnKey { a: x, b: y }
        } else {
            ConnKey { a: y, b: x }
        }
    }

    /// The key for a record's four-tuple.
    pub fn of_record(rec: &TraceRecord) -> ConnKey {
        ConnKey::new(
            Endpoint {
                addr: rec.ip.src,
                port: rec.tcp.src_port,
            },
            Endpoint {
                addr: rec.ip.dst,
                port: rec.tcp.dst_port,
            },
        )
    }
}

/// One connection's records, oriented sender → receiver.
#[derive(Debug, Clone)]
pub struct Connection {
    /// The canonical four-tuple.
    pub key: ConnKey,
    /// The bulk-data sender endpoint.
    pub sender: Endpoint,
    /// The bulk-data receiver endpoint.
    pub receiver: Endpoint,
    /// Records in filter order, tagged with their direction.
    pub records: Vec<(Dir, TraceRecord)>,
}

impl Connection {
    /// Splits a trace into connections. The data sender of each connection
    /// is the endpoint that shipped more payload bytes (ties go to the
    /// SYN initiator, then to the canonical `a` endpoint).
    pub fn split(trace: &Trace) -> Vec<Connection> {
        // Preserve first-seen order of connections.
        let mut order: Vec<ConnKey> = Vec::new();
        let mut groups: std::collections::BTreeMap<ConnKey, Vec<TraceRecord>> =
            std::collections::BTreeMap::new();
        for rec in trace.iter() {
            let key = ConnKey::of_record(rec);
            groups
                .entry(key)
                .or_insert_with(|| {
                    order.push(key);
                    Vec::new()
                })
                .push(rec.clone());
        }
        order
            .into_iter()
            .map(|key| Connection::orient(key, groups.remove(&key).unwrap_or_default()))
            .collect()
    }

    fn orient(key: ConnKey, records: Vec<TraceRecord>) -> Connection {
        let src_of = |rec: &TraceRecord| Endpoint {
            addr: rec.ip.src,
            port: rec.tcp.src_port,
        };
        let mut bytes_from_a: u64 = 0;
        let mut bytes_from_b: u64 = 0;
        let mut syn_initiator: Option<Endpoint> = None;
        for rec in &records {
            let src = src_of(rec);
            if rec.tcp.flags.syn() && !rec.tcp.flags.ack() && syn_initiator.is_none() {
                syn_initiator = Some(src);
            }
            if src == key.a {
                bytes_from_a += u64::from(rec.payload_len);
            } else {
                bytes_from_b += u64::from(rec.payload_len);
            }
        }
        let sender = match bytes_from_a.cmp(&bytes_from_b) {
            core::cmp::Ordering::Greater => key.a,
            core::cmp::Ordering::Less => key.b,
            core::cmp::Ordering::Equal => syn_initiator.unwrap_or(key.a),
        };
        let receiver = if sender == key.a { key.b } else { key.a };
        let records = records
            .into_iter()
            .map(|rec| {
                let dir = if src_of(&rec) == sender {
                    Dir::SenderToReceiver
                } else {
                    Dir::ReceiverToSender
                };
                (dir, rec)
            })
            .collect();
        Connection {
            key,
            sender,
            receiver,
            records,
        }
    }

    /// Iterates over records flowing in `dir`, keeping filter order.
    pub fn in_dir(&self, dir: Dir) -> impl Iterator<Item = &TraceRecord> {
        self.records
            .iter()
            .filter(move |(d, _)| *d == dir)
            .map(|(_, r)| r)
    }

    /// Total payload bytes sent in `dir` (retransmissions included).
    pub fn payload_bytes(&self, dir: Dir) -> u64 {
        self.in_dir(dir).map(|r| u64::from(r.payload_len)).sum()
    }

    /// Number of packets sent in `dir`.
    pub fn packet_count(&self, dir: Dir) -> usize {
        self.in_dir(dir).count()
    }

    /// The MSS option offered by the endpoint sending in `dir`, from its
    /// SYN, if captured.
    pub fn offered_mss(&self, dir: Dir) -> Option<u16> {
        self.in_dir(dir)
            .find(|r| r.tcp.flags.syn())
            .and_then(|r| r.tcp.mss_option())
    }

    /// The negotiated MSS for data flowing sender → receiver: the minimum
    /// of the two offers when both are present (the common interpretation;
    /// §8.3 notes implementations differ on exactly this point).
    pub fn negotiated_mss(&self) -> Option<u16> {
        match (
            self.offered_mss(Dir::SenderToReceiver),
            self.offered_mss(Dir::ReceiverToSender),
        ) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (one, other) => one.or(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_util::rec;
    use tcpa_wire::TcpFlags;

    #[test]
    fn split_groups_by_four_tuple() {
        let trace: Trace = vec![
            rec(0, 1, 2, TcpFlags::SYN, 0, 0, 0),
            rec(1, 3, 4, TcpFlags::SYN, 0, 0, 0),
            rec(2, 2, 1, TcpFlags::SYN | TcpFlags::ACK, 0, 0, 1),
            rec(3, 1, 2, TcpFlags::ACK, 1, 100, 1),
            rec(4, 4, 3, TcpFlags::ACK, 1, 0, 1),
        ]
        .into_iter()
        .collect();
        let conns = Connection::split(&trace);
        assert_eq!(conns.len(), 2);
        assert_eq!(conns[0].records.len(), 3);
        assert_eq!(conns[1].records.len(), 2);
    }

    #[test]
    fn sender_is_bulk_data_source() {
        let trace: Trace = vec![
            rec(0, 2, 1, TcpFlags::SYN, 0, 0, 0), // host 2 initiates (e.g. FTP-style)
            rec(1, 1, 2, TcpFlags::SYN | TcpFlags::ACK, 0, 0, 1),
            rec(2, 1, 2, TcpFlags::ACK, 1, 512, 1), // but host 1 ships the data
            rec(3, 1, 2, TcpFlags::ACK, 513, 512, 1),
            rec(4, 2, 1, TcpFlags::ACK, 1, 0, 1025),
        ]
        .into_iter()
        .collect();
        let conns = Connection::split(&trace);
        assert_eq!(conns.len(), 1);
        let c = &conns[0];
        assert_eq!(c.sender.addr, Ipv4Addr::from_host_id(1));
        assert_eq!(c.payload_bytes(Dir::SenderToReceiver), 1024);
        assert_eq!(c.packet_count(Dir::ReceiverToSender), 2);
    }

    #[test]
    fn tie_broken_by_syn_initiator() {
        let trace: Trace = vec![
            rec(0, 2, 1, TcpFlags::SYN, 0, 0, 0),
            rec(1, 1, 2, TcpFlags::SYN | TcpFlags::ACK, 0, 0, 1),
        ]
        .into_iter()
        .collect();
        let conns = Connection::split(&trace);
        assert_eq!(conns[0].sender.addr, Ipv4Addr::from_host_id(2));
    }

    #[test]
    fn mss_negotiation_takes_minimum() {
        let mut syn = rec(0, 1, 2, TcpFlags::SYN, 0, 0, 0);
        syn.tcp.options = vec![tcpa_wire::TcpOption::Mss(1460)];
        let mut synack = rec(1, 2, 1, TcpFlags::SYN | TcpFlags::ACK, 0, 0, 1);
        synack.tcp.options = vec![tcpa_wire::TcpOption::Mss(536)];
        let data = rec(2, 1, 2, TcpFlags::ACK, 1, 512, 1);
        let trace: Trace = vec![syn, synack, data].into_iter().collect();
        let conns = Connection::split(&trace);
        assert_eq!(conns[0].negotiated_mss(), Some(536));
        assert_eq!(conns[0].offered_mss(Dir::SenderToReceiver), Some(1460));
    }

    #[test]
    fn missing_mss_option_reported_as_none() {
        let trace: Trace = vec![
            rec(0, 1, 2, TcpFlags::SYN, 0, 0, 0),
            rec(1, 2, 1, TcpFlags::SYN | TcpFlags::ACK, 0, 0, 1),
            rec(2, 1, 2, TcpFlags::ACK, 1, 512, 1),
        ]
        .into_iter()
        .collect();
        let conns = Connection::split(&trace);
        // Neither side sent an MSS option — exactly the §8.4 trigger.
        assert_eq!(conns[0].negotiated_mss(), None);
    }

    #[test]
    fn dir_flip_is_involution() {
        assert_eq!(Dir::SenderToReceiver.flip().flip(), Dir::SenderToReceiver);
    }
}
