//! Corpus-scale batch analysis (§8–§10 at production size).
//!
//! The paper's behavioral catalogues came from ~40,000 traces; one trace
//! at a time on one thread does not get there. This module shards a
//! corpus of traces — supplied by any
//! [`TraceSource`](tcpa_trace::source::TraceSource) — across `N` worker
//! threads (plain `std::thread` + channels, no external runtime) and
//! merges the per-trace conclusions into a Table-1-style census.
//!
//! Guarantees the rest of the system builds on:
//!
//! * **Determinism** — results are merged in input order, so the census
//!   (and its rendering) is byte-identical whatever the worker count or
//!   completion order.
//! * **Panic isolation** — a trace that panics the analyzer costs exactly
//!   one failed item, never the pipeline; the panic message is captured
//!   into that item's report.
//! * **Worker reuse** — each worker keeps one [`Analyzer`] (and its
//!   vantage) for its whole life; per-trace setup is just the trace load.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;

use crate::calibrate::Vantage;
use crate::fingerprint::FitClass;
use crate::report::{AnalysisReport, Analyzer};
use tcpa_trace::source::{CorpusItem, TraceInput, TraceSource};
use tcpa_trace::{Duration, Summary, Trace};

/// Batch-pipeline configuration.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Worker threads; `0` means one per available CPU.
    pub jobs: usize,
    /// Vantage assumed for every trace. [`Vantage::Unknown`] auto-detects
    /// per trace (§3.2), like the CLI's default single-trace mode.
    pub vantage: Vantage,
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig {
            jobs: 0,
            vantage: Vantage::Unknown,
        }
    }
}

impl CorpusConfig {
    /// The concrete worker count this config resolves to.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }
}

/// What happened to one corpus item.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemOutcome {
    /// Analyzed successfully; the distilled conclusions.
    Analyzed(ItemSummary),
    /// The trace could not be loaded or decoded.
    LoadError(String),
    /// The analyzer panicked on this trace; the payload message.
    Panicked(String),
}

/// Per-item result, in input order.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemReport {
    /// Position in the corpus (0-based input order).
    pub index: usize,
    /// The item's label (file path or synthetic name).
    pub id: String,
    /// What happened.
    pub outcome: ItemOutcome,
}

/// The distilled per-trace conclusions kept by the census. The full
/// [`AnalysisReport`] (every candidate's replay) would be megabytes per
/// item at corpus scale; this is the part Table 1 needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemSummary {
    /// Packets in the trace.
    pub records: usize,
    /// Connections found after calibration.
    pub connections: usize,
    /// Per connection: the close best-fit implementation, if any.
    pub best_fits: Vec<Option<String>>,
    /// Measurement duplicates removed (§3.1.2).
    pub duplicates: usize,
    /// Timestamp decreases (§3.1.4).
    pub time_travel: usize,
    /// Filter resequencing evidence (§3.1.3).
    pub resequencing: usize,
    /// Packet-filter drop evidence (§3.1.1).
    pub drop_evidence: usize,
    /// Response-delay samples of each connection's best-fit candidate.
    pub response_delays: Vec<Duration>,
}

impl ItemSummary {
    /// `true` when calibration flagged any measurement error.
    pub fn has_calibration_errors(&self) -> bool {
        self.duplicates + self.time_travel + self.resequencing + self.drop_evidence > 0
    }
}

/// Distills a full report into the census-relevant summary.
fn distill(report: &AnalysisReport, records: usize) -> ItemSummary {
    let mut best_fits = Vec::with_capacity(report.connections.len());
    let mut response_delays = Vec::new();
    for conn in &report.connections {
        best_fits.push(conn.best_fit().map(str::to_owned));
        if let Some(top) = conn.fingerprint.first() {
            if top.fit == FitClass::Close {
                response_delays.extend_from_slice(top.analysis.response_delays.samples());
            }
        }
    }
    ItemSummary {
        records,
        connections: report.connections.len(),
        best_fits,
        duplicates: report.calibration.duplicates.len(),
        time_travel: report.calibration.time_travel.len(),
        resequencing: report.calibration.resequencing.len(),
        drop_evidence: report.calibration.drop_evidence.len(),
        response_delays,
    }
}

/// Aggregated, order-independent corpus conclusions.
#[derive(Debug, Clone)]
pub struct Census {
    /// Items fed in.
    pub items_total: usize,
    /// Items analyzed successfully.
    pub analyzed: usize,
    /// Items whose trace failed to load/decode.
    pub load_errors: usize,
    /// Items that panicked the analyzer.
    pub panics: usize,
    /// Connections across all analyzed traces.
    pub connections: usize,
    /// Packets across all analyzed traces.
    pub records: u64,
    /// Close best-fit counts per implementation name (Table 1's census).
    pub best_fit: BTreeMap<String, usize>,
    /// Connections with no close-fitting candidate.
    pub unidentified: usize,
    /// Measurement duplicates removed, summed.
    pub duplicates: usize,
    /// Time-travel instances, summed.
    pub time_travel: usize,
    /// Resequencing evidence, summed.
    pub resequencing: usize,
    /// Filter-drop evidence, summed.
    pub drop_evidence: usize,
    /// Traces with at least one calibration finding.
    pub traces_with_calibration_errors: usize,
    /// Best-fit response delays pooled across the corpus.
    pub response_delays: Summary,
}

impl Census {
    fn new() -> Census {
        Census {
            items_total: 0,
            analyzed: 0,
            load_errors: 0,
            panics: 0,
            connections: 0,
            records: 0,
            best_fit: BTreeMap::new(),
            unidentified: 0,
            duplicates: 0,
            time_travel: 0,
            resequencing: 0,
            drop_evidence: 0,
            traces_with_calibration_errors: 0,
            response_delays: Summary::new(),
        }
    }

    fn absorb(&mut self, report: &ItemReport) {
        self.items_total += 1;
        match &report.outcome {
            ItemOutcome::LoadError(_) => self.load_errors += 1,
            ItemOutcome::Panicked(_) => self.panics += 1,
            ItemOutcome::Analyzed(s) => {
                self.analyzed += 1;
                self.connections += s.connections;
                self.records += s.records as u64;
                for fit in &s.best_fits {
                    match fit {
                        Some(name) => *self.best_fit.entry(name.clone()).or_insert(0) += 1,
                        None => self.unidentified += 1,
                    }
                }
                self.duplicates += s.duplicates;
                self.time_travel += s.time_travel;
                self.resequencing += s.resequencing;
                self.drop_evidence += s.drop_evidence;
                if s.has_calibration_errors() {
                    self.traces_with_calibration_errors += 1;
                }
                for &d in &s.response_delays {
                    self.response_delays.add(d);
                }
            }
        }
    }

    /// Items that did not produce an analysis.
    pub fn failed(&self) -> usize {
        self.load_errors + self.panics
    }
}

/// Everything a corpus run yields: ordered per-item reports + the census.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// One entry per input item, ordered by input index regardless of
    /// which worker finished when.
    pub items: Vec<ItemReport>,
    /// The merged census.
    pub census: Census,
}

impl CorpusReport {
    /// Renders the Table-1-style census plus a failure list. Deterministic:
    /// identical corpora yield byte-identical output whatever `jobs` was.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let c = &self.census;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== Corpus census: {} traces ({} analyzed, {} load errors, {} panics) ==",
            c.items_total, c.analyzed, c.load_errors, c.panics
        );
        let _ = writeln!(
            out,
            "  connections: {}   packets: {}",
            c.connections, c.records
        );
        let _ = writeln!(
            out,
            "  calibration: {} dup records removed, {} time travel, {} reseq, {} filter-drop evidence ({} traces affected)",
            c.duplicates, c.time_travel, c.resequencing, c.drop_evidence,
            c.traces_with_calibration_errors
        );
        let mut delays = c.response_delays.clone();
        if !delays.is_empty() {
            let _ = writeln!(
                out,
                "  best-fit response delays: p50 {} p90 {} max {} ({} samples)",
                delays.median().unwrap(),
                delays.percentile(90.0).unwrap(),
                delays.max().unwrap(),
                delays.count()
            );
        }
        let _ = writeln!(out, "  {:<26} best-fit connections", "implementation");
        let _ = writeln!(out, "  {}", "-".repeat(46));
        for (name, count) in &c.best_fit {
            let _ = writeln!(out, "  {name:<26} {count}");
        }
        if c.unidentified > 0 {
            let _ = writeln!(out, "  {:<26} {}", "(no close fit)", c.unidentified);
        }
        let failures: Vec<&ItemReport> = self
            .items
            .iter()
            .filter(|r| !matches!(r.outcome, ItemOutcome::Analyzed(_)))
            .collect();
        if !failures.is_empty() {
            let _ = writeln!(out, "  failed items:");
            for r in failures {
                let what = match &r.outcome {
                    ItemOutcome::LoadError(e) => format!("load error: {e}"),
                    ItemOutcome::Panicked(p) => format!("analyzer panic: {p}"),
                    ItemOutcome::Analyzed(_) => unreachable!(),
                };
                let _ = writeln!(out, "    [{:>4}] {}: {}", r.index, r.id, what);
            }
        }
        out
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Analyzes one loaded trace with a vantage-appropriate analyzer.
fn analyze_one(fixed: Option<&Analyzer>, trace: &Trace) -> ItemSummary {
    let report = match fixed {
        Some(analyzer) => analyzer.analyze(trace),
        None => Analyzer::auto(trace).analyze(trace),
    };
    distill(&report, trace.len())
}

struct Cursor<S> {
    source: S,
    next_index: usize,
}

/// Runs the corpus through `config.effective_jobs()` workers and merges
/// the results deterministically.
///
/// Workers pull items from the source behind a mutex (pulling is cheap;
/// loading and analysis happen outside the lock), analyze them with a
/// per-worker [`Analyzer`], and send `(index, outcome)` down a channel.
/// The caller's thread collects everything and restores input order, so
/// the returned [`CorpusReport`] — and its rendering — is byte-identical
/// to a `jobs = 1` run.
pub fn analyze_corpus<S: TraceSource>(source: S, config: &CorpusConfig) -> CorpusReport {
    let jobs = config.effective_jobs().max(1);
    let cursor = Mutex::new(Cursor {
        source,
        next_index: 0,
    });
    let (tx, rx) = mpsc::channel::<ItemReport>();

    let mut items = thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let cursor = &cursor;
            let vantage = config.vantage;
            scope.spawn(move || {
                // Per-worker analyzer: constructed once, reused for every
                // item this worker claims (auto-vantage has no fixed
                // analyzer; it must sniff each trace).
                let fixed = match vantage {
                    Vantage::Sender => Some(Analyzer::at_sender()),
                    Vantage::Receiver => Some(Analyzer::at_receiver()),
                    Vantage::Unknown => None,
                };
                loop {
                    let (index, item) = {
                        let mut cur = cursor.lock().expect("corpus source lock poisoned");
                        match cur.source.next_item() {
                            Some(item) => {
                                let index = cur.next_index;
                                cur.next_index += 1;
                                (index, item)
                            }
                            None => break,
                        }
                    };
                    let CorpusItem { id, input } = item;
                    let outcome = process_item(fixed.as_ref(), input);
                    if tx.send(ItemReport { index, id, outcome }).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        // Collect on this thread while workers run; order restored below.
        rx.into_iter().collect::<Vec<ItemReport>>()
    });

    items.sort_unstable_by_key(|r| r.index);
    let mut census = Census::new();
    for report in &items {
        census.absorb(report);
    }
    CorpusReport { items, census }
}

/// Loads and analyzes one item, converting panics into a reported outcome.
fn process_item(fixed: Option<&Analyzer>, input: TraceInput) -> ItemOutcome {
    match catch_unwind(AssertUnwindSafe(|| match input.load() {
        Ok(trace) => ItemOutcome::Analyzed(analyze_one(fixed, &trace)),
        Err(e) => ItemOutcome::LoadError(e),
    })) {
        Ok(outcome) => outcome,
        Err(payload) => ItemOutcome::Panicked(panic_message(payload)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpa_trace::source::MemorySource;

    #[test]
    fn empty_corpus_renders() {
        let report = analyze_corpus(MemorySource::default(), &CorpusConfig::default());
        assert_eq!(report.census.items_total, 0);
        assert!(report.render().contains("0 traces"));
    }

    #[test]
    fn effective_jobs_defaults_to_parallelism() {
        assert!(CorpusConfig::default().effective_jobs() >= 1);
        let one = CorpusConfig {
            jobs: 1,
            ..CorpusConfig::default()
        };
        assert_eq!(one.effective_jobs(), 1);
    }

    #[test]
    fn load_error_is_isolated() {
        let source = MemorySource::new(vec![tcpa_trace::CorpusItem::pcap(
            "/nonexistent/never.pcap",
        )]);
        let report = analyze_corpus(source, &CorpusConfig::default());
        assert_eq!(report.census.load_errors, 1);
        assert!(matches!(report.items[0].outcome, ItemOutcome::LoadError(_)));
        assert!(report.render().contains("load error"));
    }
}
