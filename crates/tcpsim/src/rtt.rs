//! RTT estimation and retransmission-timeout computation.
//!
//! Implements the Jacobson/Karn estimator with a coarse clock tick (the
//! BSD 500 ms slow timer), plus the broken Solaris variant (§8.6) and a
//! fixed-RTO scheme for primitive stacks.

use crate::config::{RtoScheme, TcpConfig};
use tcpa_trace::Duration;

/// Retransmission-timer state.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    scheme: RtoScheme,
    granularity: Duration,
    initial_rto: Duration,
    min_rto: Duration,
    max_rto: Duration,
    backoff_factor: f64,
    /// Smoothed RTT in nanoseconds (None until the first sample).
    srtt: Option<f64>,
    rttvar: f64,
    /// Current backoff multiplier applied on successive timeouts.
    backoff: f64,
    samples_taken: u64,
}

impl RttEstimator {
    /// Builds the estimator described by `cfg`.
    pub fn new(cfg: &TcpConfig) -> RttEstimator {
        RttEstimator {
            scheme: cfg.rto_scheme,
            granularity: cfg.rto_granularity,
            initial_rto: cfg.initial_rto,
            min_rto: cfg.min_rto,
            max_rto: cfg.max_rto,
            backoff_factor: cfg.rto_backoff,
            srtt: None,
            rttvar: 0.0,
            backoff: 1.0,
            samples_taken: 0,
        }
    }

    /// Quantizes a duration up to the clock granularity.
    fn quantize(&self, d: Duration) -> Duration {
        let g = self.granularity.as_nanos().max(1);
        let n = d.as_nanos().max(0);
        Duration((n + g - 1) / g * g)
    }

    /// Feeds one RTT measurement (Karn's rule — only call for segments
    /// sent exactly once).
    pub fn sample(&mut self, rtt: Duration) {
        if self.scheme == RtoScheme::Fixed {
            return;
        }
        self.samples_taken += 1;
        let m = self.quantize(rtt).as_nanos() as f64;
        match self.srtt {
            None => {
                self.srtt = Some(m);
                self.rttvar = m / 2.0;
            }
            Some(srtt) => {
                // Jacobson gains: 1/8 for srtt, 1/4 for rttvar.
                let err = m - srtt;
                self.srtt = Some(srtt + err / 8.0);
                self.rttvar += (err.abs() - self.rttvar) / 4.0;
            }
        }
        self.backoff = 1.0;
    }

    /// An ack arrived covering retransmitted data. Under the Solaris bug
    /// this *resets the estimator to its initial state*, erasing any
    /// adaptation (§8.6: "restored to its erroneously small value
    /// immediately upon an acknowledgement for a retransmitted packet").
    pub fn on_ack_of_retransmitted(&mut self) {
        if self.scheme == RtoScheme::SolarisBroken {
            self.srtt = None;
            self.rttvar = 0.0;
            self.backoff = 1.0;
        }
    }

    /// Successful ack of new (never-retransmitted) data clears backoff.
    pub fn on_clean_ack(&mut self) {
        self.backoff = 1.0;
    }

    /// A retransmission timeout fired: back off.
    pub fn on_timeout(&mut self) {
        self.backoff *= self.backoff_factor;
    }

    /// The current retransmission timeout.
    pub fn rto(&self) -> Duration {
        let base = match (self.scheme, self.srtt) {
            (RtoScheme::Fixed, _) | (_, None) => self.initial_rto,
            (_, Some(srtt)) => Duration((srtt + 4.0 * self.rttvar) as i64),
        };
        let backed = Duration((base.as_nanos() as f64 * self.backoff) as i64);
        let clamped = backed.clamp(self.min_rto, self.max_rto);
        self.quantize(clamped)
    }

    /// Number of samples incorporated (diagnostics).
    pub fn samples(&self) -> u64 {
        self.samples_taken
    }

    /// `true` once at least one sample has been incorporated.
    pub fn adapted(&self) -> bool {
        self.srtt.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TcpConfig;

    fn bsd() -> RttEstimator {
        RttEstimator::new(&TcpConfig::generic_reno())
    }

    fn solaris_cfg() -> TcpConfig {
        TcpConfig {
            rto_scheme: RtoScheme::SolarisBroken,
            initial_rto: Duration::from_millis(300),
            min_rto: Duration::from_millis(200),
            rto_granularity: Duration::from_millis(50),
            ..TcpConfig::generic_reno()
        }
    }

    #[test]
    fn initial_rto_before_samples() {
        let est = bsd();
        assert_eq!(est.rto(), Duration::from_millis(3000));
        assert!(!est.adapted());
    }

    #[test]
    fn first_sample_sets_srtt_and_var() {
        let mut est = bsd();
        est.sample(Duration::from_millis(400)); // quantized to 500ms
                                                // rto = srtt + 4*rttvar = 500 + 4*250 = 1500ms
        assert_eq!(est.rto(), Duration::from_millis(1500));
    }

    #[test]
    fn rto_adapts_upwards_with_high_rtt() {
        let mut est = bsd();
        for _ in 0..20 {
            est.sample(Duration::from_millis(2600));
        }
        assert!(
            est.rto() >= Duration::from_millis(3000),
            "rto = {}",
            est.rto()
        );
    }

    #[test]
    fn backoff_doubles_and_clears_on_sample() {
        let mut est = bsd();
        est.sample(Duration::from_millis(100)); // srtt 500ms tick
        let base = est.rto();
        est.on_timeout();
        assert_eq!(est.rto(), est.quantize(base * 2));
        est.on_timeout();
        assert_eq!(est.rto(), est.quantize(base * 4));
        est.sample(Duration::from_millis(100));
        assert_eq!(est.rto(), base);
    }

    #[test]
    fn rto_clamped_to_max() {
        let mut est = bsd();
        for _ in 0..20 {
            est.on_timeout();
        }
        assert_eq!(est.rto(), Duration::from_secs(64));
    }

    #[test]
    fn solaris_initial_rto_is_low() {
        let est = RttEstimator::new(&solaris_cfg());
        assert_eq!(est.rto(), Duration::from_millis(300));
    }

    #[test]
    fn solaris_reset_erases_adaptation() {
        let mut est = RttEstimator::new(&solaris_cfg());
        for _ in 0..10 {
            est.sample(Duration::from_millis(700));
        }
        assert!(est.rto() >= Duration::from_millis(700), "adapted upward");
        est.on_ack_of_retransmitted();
        assert_eq!(
            est.rto(),
            Duration::from_millis(300),
            "reset to the erroneously small initial value"
        );
    }

    #[test]
    fn jacobson_estimator_ignores_retransmit_ack_reset() {
        let mut est = bsd();
        est.sample(Duration::from_millis(2600));
        let adapted = est.rto();
        est.on_ack_of_retransmitted();
        assert_eq!(est.rto(), adapted, "only Solaris resets");
    }

    #[test]
    fn fixed_scheme_never_adapts() {
        let cfg = TcpConfig {
            rto_scheme: RtoScheme::Fixed,
            initial_rto: Duration::from_millis(1000),
            min_rto: Duration::from_millis(1000),
            rto_granularity: Duration::from_millis(100),
            ..TcpConfig::generic_reno()
        };
        let mut est = RttEstimator::new(&cfg);
        est.sample(Duration::from_millis(5000));
        assert_eq!(est.rto(), Duration::from_millis(1000));
        assert_eq!(est.samples(), 0);
    }

    #[test]
    fn sub_granularity_backoff_still_grows() {
        // Linux 1.0's partial backoff (factor < 2) must still increase.
        let cfg = TcpConfig {
            rto_backoff: 1.5,
            ..TcpConfig::generic_reno()
        };
        let mut est = RttEstimator::new(&cfg);
        let base = est.rto();
        est.on_timeout();
        assert!(est.rto() > base);
        assert!(est.rto() < base * 2);
    }
}
