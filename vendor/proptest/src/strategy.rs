//! The [`Strategy`] trait and its combinators.

use crate::test_runner::Rng;
use std::ops::{Range, RangeInclusive};

/// How many times a filtered strategy retries locally before giving up
/// and rejecting the whole case.
const FILTER_RETRIES: usize = 64;

/// A recipe for generating values of one type.
///
/// `generate` returns `None` when the strategy could not produce a value
/// (a `prop_filter` predicate kept failing); the runner treats that as a
/// rejected case and retries with a fresh seed.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `keep`. `whence` labels the filter in
    /// rejection diagnostics.
    fn prop_filter<F>(self, whence: &'static str, keep: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            keep,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut Rng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    keep: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut Rng) -> Option<S::Value> {
        for _ in 0..FILTER_RETRIES {
            match self.inner.generate(rng) {
                Some(v) if (self.keep)(&v) => return Some(v),
                Some(_) | None => continue,
            }
        }
        // Give up; the runner logs `whence` only implicitly (retry), but
        // keeping the label makes rejection loops debuggable.
        let _ = self.whence;
        None
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut Rng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Object-safe face of [`Strategy`], used by `prop_oneof!` to mix
/// heterogeneous strategies yielding the same value type.
pub trait DynStrategy<T> {
    /// Draws one value.
    fn generate_dyn(&self, rng: &mut Rng) -> Option<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut Rng) -> Option<S::Value> {
        self.generate(rng)
    }
}

/// A weighted choice between strategies; built by `prop_oneof!`.
pub struct Union<T> {
    variants: Vec<(u32, Box<dyn DynStrategy<T>>)>,
    total: u64,
}

impl<T> Union<T> {
    /// A union over `variants`; every weight must be nonzero.
    pub fn new(variants: Vec<(u32, Box<dyn DynStrategy<T>>)>) -> Union<T> {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        let total = variants.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { variants, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> Option<T> {
        let mut pick = rng.below(self.total);
        for (weight, strategy) in &self.variants {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.generate_dyn(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> Option<$t> {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range used as a strategy");
                let span = (hi - lo) as u128;
                let offset = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                Some((lo + offset as i128) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> Option<$t> {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range used as a strategy");
                let span = (hi - lo) as u128 + 1;
                let offset = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                Some((lo + offset as i128) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> Option<f64> {
        assert!(self.start < self.end, "empty range used as a strategy");
        Some(self.start + rng.next_f64() * (self.end - self.start))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut Rng) -> Option<f32> {
        assert!(self.start < self.end, "empty range used as a strategy");
        Some(self.start + (rng.next_f64() as f32) * (self.end - self.start))
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10, L 11)
}
