//! Ablations: switch each of the analyzer's design choices off in turn
//! and show the misdiagnosis it was preventing.
//!
//! The paper frames these choices as hard-won (§4: one-pass and generic
//! analysis both failed; §3.1.2: duplicates must be removed; §3.2:
//! vantage ambiguity must be tolerated; §6.2: implicit state must be
//! inferred). Each row here is one of those choices, the scenario that
//! needs it, and the analyzer's verdict with the choice on vs off.

use crate::{Section, TextTable};
use tcpa_filter::{apply, FilterConfig};
use tcpa_tcpsim::harness::{run_transfer, run_transfer_with, Extras, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::{Connection, Duration, Time, Trace};
use tcpanaly::calibrate::Calibrator;
use tcpanaly::fingerprint::{classify, FitClass};
use tcpanaly::sender::{analyze_sender_with, ReplayOptions};

fn conn_of(trace: &Trace) -> Connection {
    Connection::split(trace).remove(0)
}

struct Ablation {
    name: &'static str,
    with_class: FitClass,
    with_issues: usize,
    without_class: FitClass,
    without_issues: usize,
}

fn class_of(
    conn: &Connection,
    cfg: &tcpa_tcpsim::TcpConfig,
    opts: &ReplayOptions,
) -> (FitClass, usize) {
    let a = analyze_sender_with(conn, cfg, opts).expect("analyzable");
    (classify(&a), a.hard_issues())
}

fn run_ablations() -> Vec<Ablation> {
    let mut rows = Vec::new();
    let on = ReplayOptions::default();

    // --- look-behind (§3.2 / Figure 2) -------------------------------
    {
        let mut path = PathSpec::default();
        path.rate_bps = 6_000_000;
        path.one_way_delay = Duration::from_millis(40);
        path.proc_delay = Duration::from_millis(6);
        let out = run_transfer(
            profiles::solaris_2_4(),
            profiles::linux_2_0(),
            &path,
            100 * 1024,
            201,
        );
        let conn = conn_of(&out.sender_trace());
        let cfg = profiles::solaris_2_4();
        let off = ReplayOptions {
            lookbehind: Duration::ZERO,
            ..ReplayOptions::default()
        };
        let (wc, wi) = class_of(&conn, &cfg, &on);
        let (oc, oi) = class_of(&conn, &cfg, &off);
        rows.push(Ablation {
            name: "look-behind (§3.2 vantage ambiguity)",
            with_class: wc,
            with_issues: wi,
            without_class: oc,
            without_issues: oi,
        });
    }

    // --- ε look-ahead cure (§3.1.3) -----------------------------------
    {
        let mut path = PathSpec::default();
        path.one_way_delay = Duration::from_millis(5);
        path.proc_delay = Duration::from_micros(50);
        let out = run_transfer(profiles::reno(), profiles::reno(), &path, 100 * 1024, 202);
        let (measured, _) = apply(&out.sender_tap, &FilterConfig::solaris_resequencing(), 202);
        let (clean, _) = Calibrator::at_sender().calibrate(&measured);
        let conn = conn_of(&clean);
        let cfg = profiles::reno();
        let off = ReplayOptions {
            epsilon: Duration::ZERO,
            ..ReplayOptions::default()
        };
        let (wc, wi) = class_of(&conn, &cfg, &on);
        let (oc, oi) = class_of(&conn, &cfg, &off);
        rows.push(Ablation {
            name: "ε look-ahead cure (§3.1.3 resequencing)",
            with_class: wc,
            with_issues: wi,
            without_class: oc,
            without_issues: oi,
        });
    }

    // --- duplicate removal (§3.1.2 / Figure 1) ------------------------
    {
        let out = run_transfer(
            profiles::irix(),
            profiles::reno(),
            &PathSpec::default(),
            100 * 1024,
            203,
        );
        let (measured, _) = apply(&out.sender_tap, &FilterConfig::irix_duplicating(), 203);
        let (clean, _) = Calibrator::at_sender().calibrate(&measured);
        let cfg = profiles::irix();
        // "Without": analyze the duplicated trace directly.
        let (wc, wi) = class_of(&conn_of(&clean), &cfg, &on);
        let (oc, oi) = class_of(&conn_of(&measured), &cfg, &on);
        rows.push(Ablation {
            name: "measurement-duplicate removal (§3.1.2)",
            with_class: wc,
            with_issues: wi,
            without_class: oc,
            without_issues: oi,
        });
    }

    // --- source-quench inference (§6.2) -------------------------------
    {
        let mut path = PathSpec::default();
        path.one_way_delay = Duration::from_millis(50);
        let extras = Extras {
            quench_at: vec![Time::from_millis(700)],
            horizon: None,
            sender_pause: None,
        };
        let out = run_transfer_with(
            profiles::reno(),
            profiles::reno(),
            &path,
            100 * 1024,
            204,
            &extras,
        );
        let conn = conn_of(&out.sender_trace());
        let cfg = profiles::reno();
        let off = ReplayOptions {
            infer_quench: false,
            ..ReplayOptions::default()
        };
        let (wc, wi) = class_of(&conn, &cfg, &on);
        let (oc, oi) = class_of(&conn, &cfg, &off);
        rows.push(Ablation {
            name: "source-quench inference (§6.2)",
            with_class: wc,
            with_issues: wi,
            without_class: oc,
            without_issues: oi,
        });
    }

    // --- sender-window inference (§6.2) -------------------------------
    {
        let mut cfg = profiles::reno();
        cfg.send_buffer = 8 * 1024;
        let mut path = PathSpec::default();
        path.one_way_delay = Duration::from_millis(100);
        let out = run_transfer(cfg.clone(), profiles::reno(), &path, 100 * 1024, 205);
        let conn = conn_of(&out.sender_trace());
        let off = ReplayOptions {
            infer_sender_window: false,
            infer_quench: false, // so the quench heuristic can't mask it
            ..ReplayOptions::default()
        };
        let on_no_quench = ReplayOptions {
            infer_quench: false,
            ..ReplayOptions::default()
        };
        let (wc, wi) = class_of(&conn, &cfg, &on_no_quench);
        let (oc, oi) = class_of(&conn, &cfg, &off);
        rows.push(Ablation {
            name: "sender-window inference (§6.2)",
            with_class: wc,
            with_issues: wi,
            without_class: oc,
            without_issues: oi,
        });
    }

    rows
}

/// Runs the ablation matrix.
pub fn run() -> Section {
    let rows = run_ablations();
    let mut table = TextTable::new(&["design choice", "with", "without"]);
    let mut ok = true;
    for r in &rows {
        if r.with_class != FitClass::Close {
            ok = false; // the full analyzer must handle every scenario
        }
        if r.without_class == FitClass::Close && r.without_issues == r.with_issues {
            ok = false; // the ablation must visibly matter
        }
        table.row(vec![
            r.name.into(),
            format!("{} ({} issues)", r.with_class, r.with_issues),
            format!("{} ({} issues)", r.without_class, r.without_issues),
        ]);
    }
    Section {
        id: "Ablations".into(),
        title: "Each analyzer design choice, switched off".into(),
        paper_claim: "§4 recounts the design dead-ends: one-pass analysis foundered on \
                      vantage ambiguity, generic analysis on behavioral diversity; §3 \
                      demands calibration before inference; §6.2 demands implicit-state \
                      inference. Removing any of these should visibly break analysis."
            .into(),
        params: "The scenario that exercises each mechanism, analyzed by the true \
                 profile with the mechanism on vs off"
            .into(),
        body: table.render(),
        measured: vec![],
        verdict: if ok {
            "CONFIRMED: every mechanism is load-bearing — with it the true profile fits closely; without it the same trace is misdiagnosed.".into()
        } else {
            "PARTIAL: see table".into()
        },
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn ablations_confirm_each_mechanism() {
        let s = super::run();
        assert!(
            s.verdict.starts_with("CONFIRMED"),
            "{}\n{}",
            s.verdict,
            s.body
        );
    }
}
