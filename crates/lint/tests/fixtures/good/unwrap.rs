// Good: degrading instead of dying, and test code keeps its panics.
fn analyzer_path(records: &[u8], i: usize, j: usize) -> Option<u8> {
    let first = records.first()?;
    let second = records.get(1).copied().unwrap_or(0);
    let window = records.get(i..j)?;
    let span = u8::try_from(window.len()).unwrap_or(u8::MAX);
    Some(*first + second + span)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Vec<u8> = vec![1, 2];
        assert_eq!(v.first().unwrap(), &1);
        if v.len() > 9 {
            panic!("impossible");
        }
    }
}
