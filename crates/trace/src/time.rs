//! Nanosecond time types.
//!
//! [`Time`] is an instant on a *trace clock* — whatever clock the packet
//! filter stamped records with. It is signed and totally ordered, but
//! nothing guarantees that successive records have non-decreasing stamps:
//! detecting violations of that ("time travel", §3.1.4) is one of the
//! analyzer's calibration jobs, so the type must be able to represent them.
//!
//! [`Duration`] is a signed difference of two `Time`s. Negative durations
//! are meaningful (a response that *appears* to precede its stimulus is the
//! signature of filter resequencing, §3.1.3).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An instant in nanoseconds on a trace clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub i64);

/// A signed span of time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub i64);

impl Time {
    /// The zero instant (trace epoch).
    pub const ZERO: Time = Time(0);

    /// Builds an instant from whole seconds since the trace epoch.
    pub const fn from_secs(s: i64) -> Time {
        Time(s * 1_000_000_000)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(ms: i64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Builds an instant from microseconds.
    pub const fn from_micros(us: i64) -> Time {
        Time(us * 1_000)
    }

    /// Seconds since the trace epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds since the trace epoch.
    pub const fn as_nanos(self) -> i64 {
        self.0
    }
}

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration(0);

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: i64) -> Duration {
        Duration(s * 1_000_000_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: i64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: i64) -> Duration {
        Duration(us * 1_000)
    }

    /// The duration as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration as fractional milliseconds (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Nanoseconds.
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// `true` when the span is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Absolute value.
    pub const fn abs(self) -> Duration {
        Duration(self.0.abs())
    }

    /// The time it takes to transmit `bytes` at `rate_bps` bits per second
    /// (rounded to the nearest nanosecond). Used throughout the link
    /// simulator.
    pub fn transmission(bytes: u64, rate_bps: u64) -> Duration {
        assert!(rate_bps > 0, "link rate must be positive");
        let bits = bytes as u128 * 8;
        Duration(((bits * 1_000_000_000 + u128::from(rate_bps) / 2) / u128::from(rate_bps)) as i64)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Neg for Duration {
    type Output = Duration;
    fn neg(self) -> Duration {
        Duration(-self.0)
    }
}

impl Mul<i64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: i64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<i64> for Duration {
    type Output = Duration;
    fn div(self, rhs: i64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let abs = self.0.abs();
        if abs >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if abs >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if abs >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = Time::from_millis(1500);
        let d = Duration::from_micros(250);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        assert_eq!(t - (t + d), -d);
    }

    #[test]
    fn negative_durations_representable() {
        let earlier = Time::from_secs(10);
        let later = Time::from_secs(11);
        let d = earlier - later;
        assert!(d.is_negative());
        assert_eq!(d.abs(), Duration::from_secs(1));
    }

    #[test]
    fn transmission_time_examples() {
        // 1500 bytes at 10 Mb/s = 1.2 ms.
        assert_eq!(
            Duration::transmission(1500, 10_000_000),
            Duration::from_micros(1200)
        );
        // 512 bytes at 64 kb/s = 64 ms.
        assert_eq!(
            Duration::transmission(512, 64_000),
            Duration::from_millis(64)
        );
        assert_eq!(Duration::transmission(0, 1), Duration::ZERO);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Duration::from_secs(2).to_string(), "2.000s");
        assert_eq!(Duration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(Duration::from_micros(7).to_string(), "7.000us");
        assert_eq!(Duration(42).to_string(), "42ns");
        assert_eq!(Duration::from_millis(-3).to_string(), "-3.000ms");
    }

    #[test]
    fn scaling_operators() {
        assert_eq!(Duration::from_millis(10) * 3, Duration::from_millis(30));
        assert_eq!(Duration::from_millis(30) / 3, Duration::from_millis(10));
    }
}
