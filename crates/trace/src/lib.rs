#![warn(missing_docs)]

//! `tcpa-trace` — the packet-trace data model shared by the simulators and
//! the analyzer.
//!
//! A [`Trace`] is the sequence of packets one
//! *measurement point* (a packet filter at some vantage point) recorded for
//! one or more TCP connections. This crate provides:
//!
//! * [`time`] — nanosecond [`Time`]/[`Duration`] newtypes. Signed, because
//!   packet-filter clocks really do run backwards (§3.1.4 "time travel").
//! * [`record`] — [`TraceRecord`], one captured TCP/IP packet, plus
//!   [`Trace`].
//! * [`conn`] — splitting a trace into [`Connection`]s and orienting each
//!   packet as data-sender → receiver or the reverse.
//! * [`stats`] — small summary-statistics helpers used throughout the
//!   analyzer (response-delay summaries, ack-delay histograms).
//! * [`plot`] — time/sequence-number plot extraction and ASCII rendering,
//!   the reproduction's stand-in for the paper's sequence plots.
//! * [`pcap_io`] — conversion between [`Trace`] and libpcap capture files,
//!   including salvage-mode ingest of damaged captures.
//! * [`mangle`] — seeded fault injection into capture bytes (the §3 error
//!   taxonomy at file level), for testing graceful degradation.
//! * [`source`] — corpus trace sources ([`TraceSource`]) feeding the
//!   batch-analysis pipeline in `tcpanaly`.

pub mod conn;
pub mod connstats;
pub mod mangle;
pub mod pcap_io;
pub mod plot;
pub mod record;
pub mod source;
pub mod stats;
pub mod time;

pub use conn::{ConnKey, Connection, Dir, Endpoint};
pub use connstats::ConnStats;
pub use mangle::{FaultKind, InjectedFault, MangleSpec};
pub use pcap_io::IngestReport;
pub use record::{Trace, TraceRecord};
pub use source::{CorpusItem, LoadError, LoadMode, Loaded, MemorySource, TraceInput, TraceSource};
pub use stats::{Histogram, Summary};
pub use time::{Duration, Time};
