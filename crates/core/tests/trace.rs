//! Span-tree tracing contract tests, driven through the `tcpanaly`
//! binary: schema validity of the Chrome trace_event export, parent /
//! child invariants across the watchdog boundary, canonical-form
//! determinism across worker counts, wall-clock coverage, and the typed
//! write-error surface of `--trace-out` / `--metrics-out` /
//! `--audit-dir`.

use std::process::Command;
use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::pcap_io;
use tcpa_wire::TsResolution;
use tcpanaly::obs::{json, trace};

fn tcpanaly_code(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_tcpanaly"))
        .args(args)
        .output()
        .expect("run tcpanaly");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

/// A temp directory of `n` generated pcaps; with `with_mangled`, the
/// committed damaged fixtures ride along so fault instants appear.
fn corpus_dir(tag: &str, n: usize, with_mangled: bool) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tcpanaly_trace_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    for i in 0..n {
        let out = run_transfer(
            profiles::reno(),
            profiles::reno(),
            &PathSpec::default(),
            8 * 1024,
            900 + i as u64,
        );
        let file = std::fs::File::create(dir.join(format!("t{i}.pcap"))).unwrap();
        pcap_io::write_pcap(&out.sender_trace(), file, TsResolution::Micro, 0).unwrap();
    }
    if with_mangled {
        let mangled = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/fixtures/mangled");
        for name in ["corrupt-timestamp.pcap", "oversized-length.pcap"] {
            std::fs::copy(mangled.join(name), dir.join(format!("zz-{name}"))).unwrap();
        }
    }
    dir
}

/// `--trace-out` over the fixture-style corpus: the document is
/// schema-valid trace_event JSON, the span tree has no orphans, every
/// expected stage appears, and salvage instants show up for the damaged
/// items.
#[test]
fn trace_out_is_schema_valid_with_connected_tree() {
    let dir = corpus_dir("schema", 3, true);
    // Clean run, default policy: the strict reader's ingest.read span
    // and the full per-connection stage set appear.
    let clean = dir.join("trace-clean.json");
    let (stdout, stderr, code) = tcpanaly_code(&[
        "--jobs",
        "2",
        "--trace-out",
        clean.to_str().unwrap(),
        dir.join("t0.pcap").to_str().unwrap(),
        dir.join("t1.pcap").to_str().unwrap(),
        dir.join("t2.pcap").to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stdout}\n{stderr}");
    let text = std::fs::read_to_string(&clean).expect("trace file");
    trace::validate_trace(&text).expect("schema-valid trace");
    trace::check_tree_invariants(&text).expect("no orphan or unclosed spans");
    for name in [
        "\"corpus.item\"",
        "\"ingest.read\"",
        "\"stage.calibrate\"",
        "\"stage.split\"",
        "\"stage.fingerprint\"",
        "\"stage.receiver\"",
        "\"stage.handshake\"",
        "\"stage.stats\"",
        "\"detail.sender_replay\"",
        "\"analyze.total\"",
    ] {
        assert!(text.contains(name), "expected {name} in trace: missing");
    }
    // Worker lanes are named in the metadata.
    assert!(text.contains("worker-0"), "lane metadata expected");
    // Per-connection spans carry the connection key.
    assert!(text.contains(" -> "), "connection key in args expected");

    // Degraded run over the whole dir (mangled fixtures included):
    // salvage instants and the salvage reader's span appear.
    let out = dir.join("trace-salvage.json");
    let (stdout, stderr, code) = tcpanaly_code(&[
        "--jobs",
        "2",
        "--degrade=salvage",
        "--trace-out",
        out.to_str().unwrap(),
        dir.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stdout}\n{stderr}");
    let text = std::fs::read_to_string(&out).expect("trace file");
    trace::validate_trace(&text).expect("schema-valid trace");
    trace::check_tree_invariants(&text).expect("no orphan or unclosed spans");
    assert!(text.contains("\"ingest.salvage\""), "salvage span expected");
    assert!(text.contains("\"salvage\""), "salvage instant expected");
    assert!(text.contains("\"ph\": \"i\""), "instant phase expected");
    let _ = std::fs::remove_dir_all(dir);
}

/// The determinism contract: canonical forms (timestamps, durations,
/// and lane assignment stripped; sorted by item and span id) are
/// byte-identical at `--jobs 1`, `4`, and `8`.
#[test]
fn trace_canonical_form_deterministic_across_worker_counts() {
    let dir = corpus_dir("determinism", 4, true);
    let mut canon = Vec::new();
    for jobs in ["1", "4", "8"] {
        let out = dir.join(format!("trace-{jobs}.json"));
        let (stdout, stderr, code) = tcpanaly_code(&[
            "--jobs",
            jobs,
            "--degrade=salvage",
            "--trace-out",
            out.to_str().unwrap(),
            dir.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{stdout}\n{stderr}");
        let text = std::fs::read_to_string(&out).expect("trace file");
        trace::check_tree_invariants(&text).expect("tree invariants at every worker count");
        canon.push(trace::canonicalize(&text).expect("canonicalize"));
    }
    assert_eq!(
        canon[0], canon[1],
        "canonical trace must not depend on worker count"
    );
    assert_eq!(canon[1], canon[2]);
    let _ = std::fs::remove_dir_all(dir);
}

/// The watchdog boundary: with `--timeout-secs` active, analysis spans
/// run on the watchdog lane yet still parent under the worker's
/// `corpus.item` root — the handoff keeps the tree connected.
#[test]
fn watchdog_spans_stay_attached_to_item_tree() {
    let dir = corpus_dir("watchdog", 2, false);
    let out = dir.join("trace.json");
    let (stdout, stderr, code) = tcpanaly_code(&[
        "--jobs",
        "1",
        "--timeout-secs",
        "600",
        "--trace-out",
        out.to_str().unwrap(),
        dir.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stdout}\n{stderr}");
    let text = std::fs::read_to_string(&out).expect("trace file");
    trace::check_tree_invariants(&text).expect("watchdog spans must not orphan");
    assert!(text.contains("\"watchdog\""), "watchdog lane expected");
    assert!(text.contains("\"analyze.total\""), "{text}");

    // Spot-check one cross-lane edge: an analyze.total span on the
    // watchdog lane whose parent is the worker's corpus.item span.
    let doc = json::Value::parse(&text).expect("parse");
    let events = doc
        .get("traceEvents")
        .and_then(json::Value::as_arr)
        .expect("events");
    let analyze = events
        .iter()
        .find(|e| e.get("name").and_then(json::Value::as_str) == Some("analyze.total"))
        .expect("analyze.total event");
    let parent = analyze
        .get("args")
        .and_then(|a| a.get("parent"))
        .and_then(json::Value::as_u64)
        .expect("analyze.total has a parent under the watchdog");
    let item = analyze
        .get("args")
        .and_then(|a| a.get("item"))
        .and_then(json::Value::as_u64)
        .expect("item index");
    let root = events
        .iter()
        .find(|e| {
            e.get("name").and_then(json::Value::as_str) == Some("corpus.item")
                && e.get("args")
                    .and_then(|a| a.get("item"))
                    .and_then(json::Value::as_u64)
                    == Some(item)
        })
        .expect("corpus.item root for the same item");
    assert_eq!(
        root.get("args")
            .and_then(|a| a.get("id"))
            .and_then(json::Value::as_u64),
        Some(parent),
        "watchdog analysis parents under the worker's root span"
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// ≥95% of `analyze.total` wall clock is covered by `stage.*` spans in
/// the exported trace — the causal view has no large blind spots.
#[test]
fn trace_spans_cover_analysis_wall_clock() {
    let dir = corpus_dir("coverage", 1, false);
    // One big transfer so the stage durations dominate rounding noise.
    let out_tr = run_transfer(
        profiles::solaris_2_4(),
        profiles::reno(),
        &PathSpec::default(),
        200 * 1024,
        910,
    );
    let file = std::fs::File::create(dir.join("big.pcap")).unwrap();
    pcap_io::write_pcap(&out_tr.sender_trace(), file, TsResolution::Micro, 0).unwrap();
    let out = dir.join("trace.json");
    let (stdout, stderr, code) = tcpanaly_code(&[
        "--jobs",
        "1",
        "--trace-out",
        out.to_str().unwrap(),
        dir.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stdout}\n{stderr}");
    let text = std::fs::read_to_string(&out).expect("trace file");
    let doc = json::Value::parse(&text).expect("parse");
    let events = doc
        .get("traceEvents")
        .and_then(json::Value::as_arr)
        .expect("events");
    let dur_of = |pred: &dyn Fn(&str) -> bool| -> f64 {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
            .filter(|e| {
                e.get("name")
                    .and_then(json::Value::as_str)
                    .map(pred)
                    .unwrap_or(false)
            })
            .filter_map(|e| e.get("dur").and_then(json::Value::as_f64))
            .sum()
    };
    let total = dur_of(&|n| n == "analyze.total");
    assert!(total > 0.0, "analyze.total span expected in the export");
    let staged = dur_of(&|n| n.starts_with("stage."));
    assert!(
        staged >= 0.95 * total,
        "stage.* spans cover {staged} of {total} µs ({:.1}%)",
        100.0 * staged / total
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// Satellite bugfix contract: `--metrics-out`, `--trace-out`, and
/// `--audit-dir` create missing parent directories; an unwritable
/// target surfaces the typed error (which step, which path) instead of
/// a bare io::Error, with exit code 2.
#[test]
fn sink_flags_create_parents_and_surface_typed_errors() {
    let dir = corpus_dir("sinks", 1, false);
    let metrics = dir.join("made/up/metrics.json");
    let trace_out = dir.join("also/new/trace.json");
    let audit = dir.join("deep/audit");
    let (stdout, stderr, code) = tcpanaly_code(&[
        "--jobs",
        "1",
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--trace-out",
        trace_out.to_str().unwrap(),
        "--audit-dir",
        audit.to_str().unwrap(),
        dir.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stdout}\n{stderr}");
    assert!(metrics.is_file(), "metrics parents created");
    assert!(trace_out.is_file(), "trace parents created");
    assert!(
        audit
            .join("00000-t0.pcap")
            .with_extension("json")
            .parent()
            .unwrap()
            .is_dir()
            || audit.is_dir(),
        "audit dir created"
    );

    // A file where the parent directory must go forces the typed error.
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, "").unwrap();
    let bad = blocker.join("x/metrics.json");
    let (_, stderr, code) = tcpanaly_code(&[
        "--jobs",
        "1",
        "--metrics-out",
        bad.to_str().unwrap(),
        dir.to_str().unwrap(),
    ]);
    assert_eq!(code, 2, "metrics write failure is a hard error");
    assert!(
        stderr.contains("cannot create directory"),
        "typed error names the failing step: {stderr}"
    );
    assert!(
        stderr.contains("blocker"),
        "typed error names the path: {stderr}"
    );

    let bad_trace = blocker.join("y/trace.json");
    let (_, stderr, code) = tcpanaly_code(&[
        "--jobs",
        "1",
        "--trace-out",
        bad_trace.to_str().unwrap(),
        dir.to_str().unwrap(),
    ]);
    assert_eq!(code, 2, "trace write failure is a hard error");
    assert!(stderr.contains("cannot create directory"), "{stderr}");
    let _ = std::fs::remove_dir_all(dir);
}
