//! Fault injection for capture files — the mangler.
//!
//! The paper's premise (§3) is that real measurement data is damaged:
//! packet filters drop, duplicate, resequence and mis-time records. The
//! *file-level* analogue is a capture that has been truncated, spliced,
//! or bit-rotted in transit — and an unattended corpus run must survive
//! it. This module deterministically injects that damage so the salvage
//! reader ([`crate::pcap_io::read_pcap_salvage`]) can be tested class by
//! class: every fault is tagged with a [`FaultKind`] and the byte offset
//! where it was applied.
//!
//! All injection is seeded and pure: the same input bytes, fault kind and
//! seed produce the same mangled bytes, so fixtures and property tests
//! are reproducible.

pub use tcpa_wire::pcap::FaultKind;
use tcpa_wire::pcap::{TsResolution, MAX_INCL_LEN};

/// One fault the mangler applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The error class injected.
    pub kind: FaultKind,
    /// Byte offset (in the *mangled* output) where the damage starts.
    pub offset: u64,
}

/// Deterministic split-mix generator (the de-facto standard seeding PRNG;
/// self-contained so this crate stays dependency-free).
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }
}

/// Endianness + resolution of a clean capture, for in-place field edits.
#[derive(Clone, Copy)]
struct Layout {
    swapped: bool,
    resolution: TsResolution,
}

impl Layout {
    fn put_u32(&self, buf: &mut [u8], value: u32) {
        let bytes = if self.swapped {
            value.to_be_bytes()
        } else {
            value.to_le_bytes()
        };
        buf.copy_from_slice(&bytes);
    }
}

/// Byte extent of one record in a clean capture.
#[derive(Debug, Clone, Copy)]
struct Span {
    /// Offset of the 16-byte record header.
    offset: usize,
    /// Captured data length.
    data_len: usize,
}

impl Span {
    fn data_offset(&self) -> usize {
        self.offset + 16
    }
}

/// Parses the record layout of a *well-formed* capture. Returns `None`
/// when the input is not a clean little-or-big-endian classic pcap —
/// the mangler only damages intact files.
fn parse_spans(bytes: &[u8]) -> Option<(Layout, Vec<Span>)> {
    if bytes.len() < 24 {
        return None;
    }
    let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let layout = match magic {
        0xa1b2_c3d4 => Layout {
            swapped: false,
            resolution: TsResolution::Micro,
        },
        0xd4c3_b2a1 => Layout {
            swapped: true,
            resolution: TsResolution::Micro,
        },
        0xa1b2_3c4d => Layout {
            swapped: false,
            resolution: TsResolution::Nano,
        },
        0x4d3c_b2a1 => Layout {
            swapped: true,
            resolution: TsResolution::Nano,
        },
        _ => return None,
    };
    let read_u32 = |b: &[u8]| {
        let arr = [b[0], b[1], b[2], b[3]];
        if layout.swapped {
            u32::from_be_bytes(arr)
        } else {
            u32::from_le_bytes(arr)
        }
    };
    let mut spans = Vec::new();
    let mut pos = 24usize;
    while pos < bytes.len() {
        if bytes.len() - pos < 16 {
            return None;
        }
        let incl_len = read_u32(&bytes[pos + 8..pos + 12]) as usize;
        if bytes.len() - pos - 16 < incl_len {
            return None;
        }
        spans.push(Span {
            offset: pos,
            data_len: incl_len,
        });
        pos += 16 + incl_len;
    }
    Some((layout, spans))
}

/// `true` for fault kinds that cut the file short (at most one such fault
/// is meaningful per file, and it must be the last damage applied).
fn is_truncating(kind: FaultKind) -> bool {
    matches!(
        kind,
        FaultKind::TruncatedGlobalHeader
            | FaultKind::TruncatedRecordHeader
            | FaultKind::MidRecordEof
    )
}

/// Applies one `kind` fault to `buf` targeting record `span`, drawing any
/// free parameters (cut point, garbage length) from `rng`. Returns the
/// fault actually applied, or `None` when the record cannot host it
/// (e.g. a mid-record cut in an empty record).
fn apply(
    buf: &mut Vec<u8>,
    layout: Layout,
    span: Span,
    kind: FaultKind,
    rng: &mut SplitMix64,
) -> Option<InjectedFault> {
    let offset = match kind {
        FaultKind::TruncatedGlobalHeader => {
            let keep = 4 + rng.below(20) as usize; // magic survives, rest cut
            buf.truncate(keep);
            keep as u64
        }
        FaultKind::BadMagic => {
            layout.put_u32(&mut buf[0..4], 0x0bad_f00d);
            0
        }
        FaultKind::TruncatedRecordHeader => {
            let cut = span.offset + 1 + rng.below(15) as usize;
            buf.truncate(cut);
            span.offset as u64
        }
        FaultKind::MidRecordEof => {
            if span.data_len < 2 {
                return None;
            }
            let cut = span.data_offset() + 1 + rng.below(span.data_len as u64 - 1) as usize;
            buf.truncate(cut);
            span.offset as u64
        }
        FaultKind::GarbageSplice => {
            let len = 16 + rng.below(240) as usize;
            let garbage: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
            let at = span.offset;
            buf.splice(at..at, garbage);
            at as u64
        }
        FaultKind::ZeroLength => {
            if span.data_len == 0 {
                return None;
            }
            let at = span.offset + 8;
            layout.put_u32(&mut buf[at..at + 4], 0);
            span.offset as u64
        }
        FaultKind::OversizedLength => {
            let at = span.offset + 8;
            let bogus = MAX_INCL_LEN + 1 + rng.below(0x1000) as u32;
            layout.put_u32(&mut buf[at..at + 4], bogus);
            span.offset as u64
        }
        FaultKind::CorruptTimestamp => {
            let units = layout.resolution.units_per_sec();
            let room = u64::from(u32::MAX) - units;
            let bogus = (units + 1 + rng.below(room)) as u32;
            let at = span.offset + 4;
            layout.put_u32(&mut buf[at..at + 4], bogus);
            span.offset as u64
        }
    };
    Some(InjectedFault { kind, offset })
}

/// Injects exactly one fault of `kind` into a clean capture, choosing the
/// target record and free parameters deterministically from `seed`.
///
/// Returns `None` when `bytes` is not a well-formed capture or has no
/// record able to host the fault.
pub fn inject(bytes: &[u8], kind: FaultKind, seed: u64) -> Option<(Vec<u8>, InjectedFault)> {
    let (layout, spans) = parse_spans(bytes)?;
    if spans.is_empty() {
        return None;
    }
    let mut rng = SplitMix64::new(seed ^ (kind as u64).wrapping_mul(0x9e37_79b9));
    // Target a mid-corpus record so damage sits between good records
    // (truncations naturally target wherever they cut).
    let span = spans[rng.below(spans.len() as u64) as usize];
    let mut out = bytes.to_vec();
    let fault = apply(&mut out, layout, span, kind, &mut rng)?;
    Some((out, fault))
}

/// How to mangle a capture: which classes, how many faults, which seed.
#[derive(Debug, Clone)]
pub struct MangleSpec {
    /// Seed for every random choice (target records, cut points, garbage).
    pub seed: u64,
    /// Number of faults to inject (best effort: faults that cannot be
    /// hosted are skipped, and at most one truncating fault applies).
    pub faults: usize,
    /// The classes to draw from.
    pub kinds: Vec<FaultKind>,
}

impl Default for MangleSpec {
    fn default() -> MangleSpec {
        MangleSpec {
            seed: 0x7c9a_0001,
            faults: 1,
            kinds: FaultKind::ALL.to_vec(),
        }
    }
}

/// Injects up to `spec.faults` faults into a clean capture.
///
/// Non-truncating faults target distinct records, applied back-to-front so
/// earlier offsets stay valid; at most one truncating fault is kept and it
/// is applied at the highest-offset target, so every reported
/// [`InjectedFault`] survives into the returned bytes. Returns the input
/// unchanged (no faults) when it is not a well-formed capture.
pub fn mangle(bytes: &[u8], spec: &MangleSpec) -> (Vec<u8>, Vec<InjectedFault>) {
    let Some((layout, spans)) = parse_spans(bytes) else {
        return (bytes.to_vec(), Vec::new());
    };
    if spans.is_empty() || spec.kinds.is_empty() || spec.faults == 0 {
        return (bytes.to_vec(), Vec::new());
    }
    let mut rng = SplitMix64::new(spec.seed);

    // Draw kinds; keep at most one truncating fault.
    let mut truncating: Option<FaultKind> = None;
    let mut in_place: Vec<FaultKind> = Vec::new();
    for _ in 0..spec.faults {
        let kind = spec.kinds[rng.below(spec.kinds.len() as u64) as usize];
        if is_truncating(kind) {
            truncating.get_or_insert(kind);
        } else {
            in_place.push(kind);
        }
    }

    // Assign distinct target records: a Fisher-Yates shuffle of indices.
    let mut order: Vec<usize> = (0..spans.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.below(i as u64 + 1) as usize);
    }
    in_place.truncate(
        order
            .len()
            .saturating_sub(usize::from(truncating.is_some())),
    );

    // Plan: truncation targets the last record; in-place faults target
    // shuffled earlier records. Apply in descending offset order.
    let mut plan: Vec<(Span, FaultKind)> = Vec::new();
    if let Some(kind) = truncating {
        let span = if kind == FaultKind::TruncatedGlobalHeader {
            spans[0] // ignored by apply; header damage has no record target
        } else {
            spans[spans.len() - 1]
        };
        plan.push((span, kind));
    }
    let reserved = usize::from(truncating.is_some());
    for (kind, &idx) in in_place.iter().zip(
        order
            .iter()
            .filter(|&&i| i + reserved < spans.len() || reserved == 0),
    ) {
        plan.push((spans[idx], *kind));
    }
    plan.sort_by_key(|p| std::cmp::Reverse(p.0.offset));

    let mut out = bytes.to_vec();
    let mut faults: Vec<InjectedFault> = Vec::new();
    for (span, kind) in plan {
        // A global-header truncation wipes the whole record stream; it is
        // only applied alone.
        if kind == FaultKind::TruncatedGlobalHeader && !faults.is_empty() {
            continue;
        }
        let before = out.len();
        if let Some(fault) = apply(&mut out, layout, span, kind, &mut rng) {
            // A splice inserts bytes at its offset, shifting every fault
            // already applied (they all sit at higher offsets).
            let inserted = out.len().saturating_sub(before) as u64;
            if inserted > 0 {
                for prior in &mut faults {
                    if prior.offset > fault.offset {
                        prior.offset += inserted;
                    }
                }
            }
            faults.push(fault);
            if kind == FaultKind::TruncatedGlobalHeader {
                break;
            }
        }
    }
    faults.sort_by_key(|f| f.offset);
    (out, faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap_io::write_pcap;
    use crate::record::test_util::rec;
    use crate::record::Trace;
    use tcpa_wire::pcap::salvage_records;
    use tcpa_wire::TcpFlags;

    fn clean_capture() -> Vec<u8> {
        let trace: Trace = vec![
            rec(0, 1, 2, TcpFlags::SYN, 100, 0, 0),
            rec(5, 2, 1, TcpFlags::SYN | TcpFlags::ACK, 900, 0, 101),
            rec(10, 1, 2, TcpFlags::ACK | TcpFlags::PSH, 101, 512, 901),
            rec(15, 1, 2, TcpFlags::ACK | TcpFlags::PSH, 613, 512, 901),
            rec(20, 2, 1, TcpFlags::ACK, 901, 0, 1125),
        ]
        .into_iter()
        .collect();
        write_pcap(&trace, Vec::new(), TsResolution::Micro, 0).expect("vec write")
    }

    #[test]
    fn inject_is_deterministic() {
        let clean = clean_capture();
        for kind in FaultKind::ALL {
            let a = inject(&clean, kind, 42).expect("fault applies");
            let b = inject(&clean, kind, 42).expect("fault applies");
            assert_eq!(a, b, "{kind}: same seed must give same bytes");
        }
    }

    #[test]
    fn every_kind_damages_the_file() {
        let clean = clean_capture();
        let (clean_recs, clean_summary) = salvage_records(&clean);
        assert!(clean_summary.is_clean());
        for kind in FaultKind::ALL {
            let (mangled, fault) = inject(&clean, kind, 7).expect("fault applies");
            assert_eq!(fault.kind, kind);
            assert_ne!(mangled, clean, "{kind}: output must differ");
            let (recs, summary) = salvage_records(&mangled);
            assert!(
                !summary.is_clean(),
                "{kind}: salvage must notice the damage"
            );
            assert!(
                recs.len() <= clean_recs.len() + 1,
                "{kind}: salvage must not invent records"
            );
        }
    }

    #[test]
    fn mangle_reports_offsets_into_the_output() {
        let clean = clean_capture();
        let spec = MangleSpec {
            seed: 99,
            faults: 3,
            kinds: vec![
                FaultKind::GarbageSplice,
                FaultKind::CorruptTimestamp,
                FaultKind::ZeroLength,
            ],
        };
        let (mangled, faults) = mangle(&clean, &spec);
        assert!(!faults.is_empty());
        for f in &faults {
            assert!(
                (f.offset as usize) < mangled.len(),
                "{f:?} points outside the output"
            );
        }
        // Deterministic for the same spec.
        let (mangled2, faults2) = mangle(&clean, &spec);
        assert_eq!(mangled, mangled2);
        assert_eq!(faults, faults2);
    }

    #[test]
    fn mangle_on_garbage_input_is_a_no_op() {
        let garbage = vec![1u8, 2, 3, 4, 5];
        let (out, faults) = mangle(&garbage, &MangleSpec::default());
        assert_eq!(out, garbage);
        assert!(faults.is_empty());
    }
}
