#![warn(missing_docs)]

//! `tcpa-obs` — the workspace's observability layer.
//!
//! The paper's tcpanaly "shows its work": every verdict comes with the
//! calibration findings and replay evidence behind it. The corpus
//! pipeline needs the same property at production scale — where did the
//! wall-clock go, which items were retried or salvaged, what did each
//! stage conclude — without taking on any external crate (CI is
//! offline). This crate provides exactly that, in four always-cheap
//! pieces:
//!
//! * **Stage spans + registry** ([`span`], [`registry`]) — RAII timers
//!   that record into a global, thread-safe registry of counters and
//!   log-scale duration histograms. Bucketed histograms merge by
//!   addition, so the aggregated output is independent of worker count
//!   and completion order.
//! * **Metrics exposition** ([`metrics`]) — a versioned, stable JSON
//!   schema (`tcpa-metrics/v1`). Everything outside the top-level
//!   `wall_clock` object is deterministic: same corpus, same counters,
//!   byte-identical, whatever `--jobs` was.
//! * **Per-trace audit trail** ([`audit`]) — one JSON event log per
//!   analyzed trace (schema `tcpa-audit/v1`) recording each stage's
//!   duration, retries, errors, and the final verdict.
//! * **Operator surface** ([`progress`], [`log`]) — a periodic stderr
//!   status line for long corpus runs and a leveled logger, both strictly
//!   on stderr so machine output on stdout never interleaves.
//!
//! Everything is `std`-only; JSON reading/writing lives in [`json`].

pub mod audit;
pub mod hist;
pub mod json;
pub mod log;
pub mod metrics;
pub mod progress;
pub mod registry;
pub mod span;
pub mod trace;
pub mod write;

pub use hist::LogHistogram;
pub use metrics::MetricsSnapshot;
pub use registry::Registry;
pub use span::Span;

/// Starts a stage span recording into the global registry on drop.
pub fn span(name: &'static str) -> Span {
    Span::start(name)
}

/// Times a closure as a stage span.
pub fn time<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let _span = Span::start(name);
    f()
}

/// Times a closure as a stage span carrying a human-readable note
/// (surfaced in the audit trail and the trace `args.detail`).
pub fn time_noted<R>(name: &'static str, detail: &str, f: impl FnOnce() -> R) -> R {
    let mut span = Span::start(name);
    span.note(detail);
    f()
}

/// Adds to a counter in the global registry.
pub fn add(name: &'static str, n: u64) {
    registry::global().add(name, n);
}
