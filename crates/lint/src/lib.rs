//! `tcpa-lint` — the workspace's own static-analysis pass.
//!
//! The paper's core promise is that tcpanaly's verdicts are
//! *reproducible*: the same trace always yields the same calibration and
//! fingerprint, and this workspace extends that to a byte-identical
//! census and `tcpa-metrics/v1` document across any `--jobs` setting.
//! The rules here prove the supporting invariants statically on every
//! commit — no unordered maps feeding output, no stray prints around the
//! census writer, no panics on salvage paths, no lossy casts in the
//! byte decoders, no threads that dodge the corpus watchdog.
//!
//! Deliberately zero dependencies: a hand-rolled lexer
//! ([`lexer`]), token-sequence rules ([`rules`]), a `Lint.toml` subset
//! parser ([`config`]), justified inline allows ([`suppress`]), and
//! deterministic human/JSON reporters ([`report`]). Run it as
//! `cargo run -p tcpa-lint -- check`.

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;
pub mod suppress;
pub mod walker;

use std::fs;
use std::io;
use std::path::Path;

pub use config::Config;
pub use report::LintReport;
pub use rules::{Finding, RULE_NAMES};

/// Lints one file's source, accumulating into `out`. `path` is the
/// workspace-relative `/`-separated path used for scoping and reporting.
pub fn check_source(path: &str, src: &str, config: &Config, out: &mut LintReport) {
    let lexed = lexer::lex(src);
    let tests = scope::detect(&lexed.tokens);
    let ctx = rules::FileCtx {
        path,
        tokens: &lexed.tokens,
        tests: &tests,
        file_is_test: scope::path_is_test(path),
    };
    let mut findings = rules::run_all(&ctx, |rule| config.scope(rule));
    let (allows, mut malformed) = suppress::parse(path, &lexed.comments, &lexed.tokens);
    findings.append(&mut malformed);
    report::apply_allows(findings, &allows, out);
    out.files_checked += 1;
}

/// Lints every `.rs` file under `root` (minus the config's walk
/// excludes) and returns the finalized, deterministically-ordered
/// report.
pub fn check_dir(root: &Path, config: &Config) -> io::Result<LintReport> {
    let mut out = LintReport::default();
    for rel in walker::rust_files(root, &config.walk_exclude)? {
        let bytes = fs::read(root.join(&rel))?;
        let src = String::from_utf8_lossy(&bytes);
        check_source(&rel, &src, config, &mut out);
    }
    out.finalize();
    Ok(out)
}

/// Loads `Lint.toml` from `root` and runs [`check_dir`]. This is the
/// whole CLI `check` subcommand, kept in the library so tests can run
/// the gate in-process.
pub fn check_workspace(root: &Path) -> Result<LintReport, String> {
    let config_path = root.join("Lint.toml");
    let src = fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
    let config = Config::parse(&src, RULE_NAMES)?;
    check_dir(root, &config).map_err(|e| format!("walk failed under {}: {e}", root.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_source_applies_allows() {
        let config = Config::default();
        let mut report = LintReport::default();
        let src = "fn f() {\n    x.unwrap(); // tcpa-lint: allow(no-unwrap-in-analyzer) -- test scaffolding only\n    y.unwrap();\n}\n";
        check_source("m.rs", src, &config, &mut report);
        report.finalize();
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 3);
        assert_eq!(report.allowed.len(), 1);
        assert_eq!(report.files_checked, 1);
    }

    #[test]
    fn malformed_suppression_is_a_finding() {
        let config = Config::default();
        let mut report = LintReport::default();
        check_source(
            "m.rs",
            "fn f() {} // tcpa-lint: allow(nope) -- x\n",
            &config,
            &mut report,
        );
        report.finalize();
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, rules::MALFORMED_RULE);
    }
}
