//! CLI entry point: `tcpa-lint check [--root DIR] [--format human|json]`.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or configuration error.
//! This file is the one place in the crate that reads `std::env` and
//! prints — `Lint.toml` scopes the `env` sub-check and the
//! `no-raw-eprintln` rule away from it accordingly.

use std::path::PathBuf;
use std::process::ExitCode;

use tcpa_lint::check_workspace;

const USAGE: &str = "usage: tcpa-lint check [--root DIR] [--format human|json]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("tcpa-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Parses args, runs the check, prints the report. Returns whether the
/// tree was clean.
fn run(args: &[String]) -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut format = "human".to_string();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some(other) => return Err(format!("unknown subcommand {other:?}\n{USAGE}")),
        None => return Err(USAGE.to_string()),
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or(format!("--root needs a value\n{USAGE}"))?)
            }
            "--format" => {
                format = it
                    .next()
                    .ok_or(format!("--format needs a value\n{USAGE}"))?
                    .clone();
                if format != "human" && format != "json" {
                    return Err(format!("unknown format {format:?}\n{USAGE}"));
                }
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    let report = check_workspace(&root)?;
    let rendered = if format == "json" {
        report.render_json()
    } else {
        report.render_human()
    };
    print!("{rendered}");
    Ok(report.is_clean())
}
