//! Property-based tests of the filter pipeline: whatever error processes
//! are enabled, the measured trace is an accountable transformation of
//! the wire events.

use proptest::prelude::*;
use tcpa_filter::{apply, ClockModel, DropModel, DupModel, FilterConfig, ReseqModel};
use tcpa_netsim::{Packet, TapDir, TapEvent};
use tcpa_trace::{Duration, Time};
use tcpa_wire::{Ipv4Addr, SeqNum, TcpFlags, TcpRepr};

fn arb_events() -> impl Strategy<Value = Vec<TapEvent>> {
    proptest::collection::vec(
        (0i64..5_000_000, any::<bool>(), any::<u16>(), 0u32..1460),
        0..80,
    )
    .prop_map(|specs| {
        let mut t = 0i64;
        specs
            .into_iter()
            .map(|(gap_us, outbound, ident, len)| {
                t += gap_us;
                let (src, dst) = if outbound { (1, 2) } else { (2, 1) };
                let mut tcp = TcpRepr::new(1000 + src as u16, 1000 + dst as u16);
                tcp.flags = TcpFlags::ACK;
                tcp.seq = SeqNum(u32::from(ident) * 1460);
                let t_wire = Time::from_micros(t);
                TapEvent {
                    t_wire,
                    t_stack: outbound.then(|| t_wire - Duration::from_micros(900)),
                    dir: if outbound { TapDir::Out } else { TapDir::In },
                    pkt: Packet::tcp(
                        Ipv4Addr::from_host_id(src),
                        Ipv4Addr::from_host_id(dst),
                        ident,
                        tcp,
                        len,
                    ),
                }
            })
            .collect()
    })
}

fn arb_config() -> impl Strategy<Value = FilterConfig> {
    (
        prop_oneof![
            2 => Just(DropModel::None),
            1 => (0.0f64..0.5).prop_map(DropModel::Bernoulli),
            1 => (0usize..60, 0usize..20).prop_map(|(start, len)| DropModel::Burst { start, len }),
            1 => proptest::collection::vec(0usize..80, 0..10).prop_map(DropModel::List),
        ],
        any::<bool>(),
        any::<bool>(),
        (-400.0f64..400.0, 0i64..100),
        any::<bool>(),
    )
        .prop_map(
            |(drops, dup, reseq, (ppm, offset_ms), headers_only)| FilterConfig {
                drops,
                duplication: dup.then(DupModel::default),
                resequencing: reseq.then(ReseqModel::default),
                clock: ClockModel {
                    offset: Duration::from_millis(offset_ms),
                    skew_ppm: ppm,
                    adjustments: vec![],
                },
                headers_only,
            },
        )
}

proptest! {
    /// Record accounting: measured = events − drops + duplicates, exactly.
    #[test]
    fn record_conservation(events in arb_events(), cfg in arb_config(), seed in any::<u64>()) {
        let (trace, report) = apply(&events, &cfg, seed);
        prop_assert_eq!(
            trace.len(),
            events.len() - report.dropped_indices.len() + report.duplicates_added
        );
    }

    /// Filter write order is processing-time order: with a skew-only
    /// clock (no steps), timestamps never decrease.
    #[test]
    fn monotone_without_steps(events in arb_events(), cfg in arb_config(), seed in any::<u64>()) {
        prop_assume!((-1000.0..1000.0).contains(&cfg.clock.skew_ppm));
        let (trace, _) = apply(&events, &cfg, seed);
        for w in trace.records.windows(2) {
            prop_assert!(w[1].ts >= w[0].ts, "{} then {}", w[0].ts, w[1].ts);
        }
    }

    /// Headers-only capture hides every checksum; full capture hides none.
    #[test]
    fn checksum_visibility(events in arb_events(), mut cfg in arb_config(), seed in any::<u64>()) {
        cfg.headers_only = true;
        let (trace, _) = apply(&events, &cfg, seed);
        prop_assert!(trace.iter().all(|r| r.checksum_ok.is_none()));
        cfg.headers_only = false;
        let (trace, _) = apply(&events, &cfg, seed);
        prop_assert!(trace.iter().all(|r| r.checksum_ok.is_some()));
    }

    /// The same seed reproduces the same measured trace.
    #[test]
    fn filter_is_deterministic(events in arb_events(), cfg in arb_config(), seed in any::<u64>()) {
        let (a, ra) = apply(&events, &cfg, seed);
        let (b, rb) = apply(&events, &cfg, seed);
        prop_assert_eq!(a, b);
        prop_assert_eq!(ra.dropped_indices, rb.dropped_indices);
        prop_assert_eq!(ra.duplicates_added, rb.duplicates_added);
    }

    /// Without drops or duplication, every wire packet's headers survive
    /// measurement unchanged (timestamps aside).
    #[test]
    fn headers_survive_measurement(events in arb_events(), seed in any::<u64>()) {
        let cfg = FilterConfig::solaris_resequencing();
        let (trace, _) = apply(&events, &cfg, seed);
        prop_assert_eq!(trace.len(), events.len());
        // Same multiset of (ident, seq) on both sides.
        let mut want: Vec<(u16, u32)> = events
            .iter()
            .map(|e| (e.pkt.ident, match &e.pkt.kind {
                tcpa_netsim::PacketKind::Tcp { tcp, .. } => tcp.seq.0,
                _ => 0,
            }))
            .collect();
        let mut got: Vec<(u16, u32)> = trace.iter().map(|r| (r.ip.ident, r.tcp.seq.0)).collect();
        want.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(want, got);
    }
}
