//! One-call bulk-transfer harness.
//!
//! Everything downstream — the analyzer's tests, the figure regenerators,
//! the Table 1 corpus builder — runs the same experiment shape the paper's
//! measurement framework did: a 100 KB (by default) unidirectional bulk
//! transfer between two hosts across a bottlenecked wide-area path, with
//! packet taps at both endpoints.

use crate::config::TcpConfig;
use crate::endpoint::{EndpointStats, Role, TcpEndpoint};
use tcpa_netsim::{perfect_trace, GroundTruth, LinkParams, LossModel, NetBuilder, Stack, TapEvent};
use tcpa_trace::{Duration, Time, Trace};
use tcpa_wire::Ipv4Addr;

/// The wide-area path between the two endpoint LANs.
#[derive(Debug, Clone)]
pub struct PathSpec {
    /// Bottleneck rate in each direction, bits/second.
    pub rate_bps: u64,
    /// One-way propagation delay of the WAN hop.
    pub one_way_delay: Duration,
    /// Router queue capacity, packets.
    pub queue_cap: usize,
    /// Loss on the data direction (sender → receiver).
    pub loss_data: LossModel,
    /// Loss on the ack direction.
    pub loss_ack: LossModel,
    /// Corruption on the data direction (delivered but discarded by the
    /// receiving TCP, §7).
    pub corrupt_data: LossModel,
    /// Endpoint NIC → stack processing delay (drives §3.2 vantage-point
    /// ambiguity).
    pub proc_delay: Duration,
}

impl Default for PathSpec {
    fn default() -> PathSpec {
        // A mid-90s cross-country path: T1 bottleneck, ~30 ms one way.
        PathSpec {
            rate_bps: 1_544_000,
            one_way_delay: Duration::from_millis(30),
            queue_cap: 20,
            loss_data: LossModel::None,
            loss_ack: LossModel::None,
            corrupt_data: LossModel::None,
            proc_delay: Duration::from_micros(300),
        }
    }
}

impl PathSpec {
    /// Round-trip propagation (ignoring serialization/queueing).
    pub fn base_rtt(&self) -> Duration {
        // Two WAN crossings plus four LAN crossings of ~50 µs each.
        self.one_way_delay * 2 + Duration::from_micros(200)
    }
}

/// Everything a finished transfer yields.
pub struct TransferOutcome {
    /// Tap events at the data sender's LAN.
    pub sender_tap: Vec<TapEvent>,
    /// Tap events at the receiver's LAN.
    pub receiver_tap: Vec<TapEvent>,
    /// Sender endpoint counters.
    pub sender_stats: EndpointStats,
    /// Receiver endpoint counters.
    pub receiver_stats: EndpointStats,
    /// Network ground truth.
    pub truth: GroundTruth,
    /// Simulated completion time (last event processed).
    pub finished_at: Time,
    /// `true` if the transfer completed (both FINs exchanged) within the
    /// horizon.
    pub completed: bool,
}

impl TransferOutcome {
    /// The perfect-filter trace at the sender (what an error-free tcpdump
    /// on the sender's LAN would record).
    pub fn sender_trace(&self) -> Trace {
        perfect_trace(&self.sender_tap)
    }

    /// The perfect-filter trace at the receiver.
    pub fn receiver_trace(&self) -> Trace {
        perfect_trace(&self.receiver_tap)
    }
}

/// Addresses/ports the harness always uses (sender is host id 1).
pub const SENDER_ADDR: Ipv4Addr = Ipv4Addr::from_host_id(1);
/// Receiver address.
pub const RECEIVER_ADDR: Ipv4Addr = Ipv4Addr::from_host_id(2);
/// Sender's ephemeral port.
pub const SENDER_PORT: u16 = 33_000;
/// Receiver's service port.
pub const RECEIVER_PORT: u16 = 9_000;

/// Optional extras injected into a run.
#[derive(Debug, Clone, Default)]
pub struct Extras {
    /// Times at which an ICMP source quench is delivered to the sender
    /// (§6.2), as if emitted by the first-hop router.
    pub quench_at: Vec<Time>,
    /// Simulation horizon; default 600 s.
    pub horizon: Option<Time>,
    /// Sending application pauses for the given duration once this many
    /// bytes are written — creates the idle period that exercises
    /// keep-alives.
    pub sender_pause: Option<(u64, Duration)>,
}

/// Runs one bulk transfer and returns the taps, stats and ground truth.
pub fn run_transfer(
    sender_cfg: TcpConfig,
    receiver_cfg: TcpConfig,
    path: &PathSpec,
    bytes: u64,
    seed: u64,
) -> TransferOutcome {
    run_transfer_with(
        sender_cfg,
        receiver_cfg,
        path,
        bytes,
        seed,
        &Extras::default(),
    )
}

/// [`run_transfer`] with injection extras.
pub fn run_transfer_with(
    sender_cfg: TcpConfig,
    receiver_cfg: TcpConfig,
    path: &PathSpec,
    bytes: u64,
    seed: u64,
    extras: &Extras,
) -> TransferOutcome {
    let wan_ab = LinkParams::wan(path.rate_bps, path.one_way_delay, path.queue_cap)
        .with_loss(path.loss_data.clone())
        .with_corruption(path.corrupt_data.clone());
    let wan_ba = LinkParams::wan(path.rate_bps, path.one_way_delay, path.queue_cap)
        .with_loss(path.loss_ack.clone());
    let (nb, a, b) =
        NetBuilder::two_endpoint_path(SENDER_ADDR, RECEIVER_ADDR, path.proc_delay, wan_ab, wan_ba);
    let mut sender = TcpEndpoint::new(
        sender_cfg,
        SENDER_ADDR,
        SENDER_PORT,
        RECEIVER_ADDR,
        RECEIVER_PORT,
        Role::ActiveSender { total_bytes: bytes },
    );
    if let Some((after, dur)) = extras.sender_pause {
        sender = sender.with_app_pause(after, dur);
    }
    let receiver = TcpEndpoint::new(
        receiver_cfg,
        RECEIVER_ADDR,
        RECEIVER_PORT,
        SENDER_ADDR,
        SENDER_PORT,
        Role::PassiveReceiver,
    );
    let mut engine = nb.build(vec![(a, Box::new(sender)), (b, Box::new(receiver))], seed);
    engine.enable_tap(a);
    engine.enable_tap(b);
    for &t in &extras.quench_at {
        engine.inject(
            t,
            a,
            tcpa_netsim::Packet::source_quench(Ipv4Addr::new(10, 0, 0, 1), SENDER_ADDR),
        );
    }
    let finished_at = engine.run_until(extras.horizon.unwrap_or(Time::from_secs(600)));

    let completed = {
        let s = downcast(engine.stack(a).expect("sender stack"));
        let r = downcast(engine.stack(b).expect("receiver stack"));
        s.done() && r.done() && !s.failed() && !r.failed()
    };
    let results = engine.into_results();
    let sender_stats = downcast(results.stacks[a].as_deref().unwrap())
        .stats
        .clone();
    let receiver_stats = downcast(results.stacks[b].as_deref().unwrap())
        .stats
        .clone();
    let mut taps = results.taps;
    TransferOutcome {
        receiver_tap: std::mem::take(&mut taps[b]),
        sender_tap: std::mem::take(&mut taps[a]),
        sender_stats,
        receiver_stats,
        truth: results.truth,
        finished_at,
        completed,
    }
}

fn downcast(stack: &dyn tcpa_netsim::Stack) -> &TcpEndpoint {
    stack
        .as_any()
        .downcast_ref::<TcpEndpoint>()
        .expect("stack is a TcpEndpoint")
}
