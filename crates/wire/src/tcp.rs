//! TCP headers, flags and options (RFC 793, RFC 1323, RFC 2018).
//!
//! The checksum covers the IPv4 pseudo-header, the TCP header (with its
//! options) and the payload; [`TcpRepr::emit`] fills it in and
//! [`TcpRepr::parse`] can optionally verify it — "optionally" because the
//! paper's packet filters frequently recorded only headers ("snap length"),
//! in which case the payload bytes needed for verification are missing and
//! corruption must instead be *inferred* from receiver behavior (§7).

use crate::checksum::Checksum;
use crate::ipv4::Ipv4Addr;
use crate::seq::SeqNum;
use crate::{Result, WireError};
use core::fmt;

/// TCP header flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN: sender is finished sending.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: synchronize sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH: push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK: the acknowledgment field is significant.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG: the urgent pointer is significant.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// Returns `true` if every bit of `other` is set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Convenience accessors for the individual bits.
    pub fn syn(self) -> bool {
        self.contains(Self::SYN)
    }
    /// FIN bit.
    pub fn fin(self) -> bool {
        self.contains(Self::FIN)
    }
    /// RST bit.
    pub fn rst(self) -> bool {
        self.contains(Self::RST)
    }
    /// ACK bit.
    pub fn ack(self) -> bool {
        self.contains(Self::ACK)
    }
    /// PSH bit.
    pub fn psh(self) -> bool {
        self.contains(Self::PSH)
    }
}

impl core::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for (bit, name) in [
            (Self::SYN, "S"),
            (Self::FIN, "F"),
            (Self::RST, "R"),
            (Self::PSH, "P"),
            (Self::ACK, "."),
            (Self::URG, "U"),
        ] {
            if self.contains(bit) {
                write!(f, "{name}")?;
                any = true;
            }
        }
        if !any {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// A single TCP option.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpOption {
    /// End of option list (kind 0).
    EndOfList,
    /// No-operation padding (kind 1).
    Nop,
    /// Maximum segment size (kind 2), SYN segments only.
    Mss(u16),
    /// Window scale shift count (kind 3, RFC 1323).
    WindowScale(u8),
    /// SACK permitted (kind 4, RFC 2018).
    SackPermitted,
    /// SACK blocks (kind 5, RFC 2018); each block is `[left, right)`.
    Sack(Vec<(SeqNum, SeqNum)>),
    /// Timestamps (kind 8, RFC 1323).
    Timestamps {
        /// Sender's timestamp value.
        tsval: u32,
        /// Echo of the peer's most recent timestamp.
        tsecr: u32,
    },
    /// Any option this crate does not interpret, preserved verbatim
    /// (kind, payload-after-length).
    Unknown(u8, Vec<u8>),
}

impl TcpOption {
    fn encoded_len(&self) -> usize {
        match self {
            TcpOption::EndOfList | TcpOption::Nop => 1,
            TcpOption::Mss(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 2,
            TcpOption::Sack(blocks) => 2 + 8 * blocks.len(),
            TcpOption::Timestamps { .. } => 10,
            TcpOption::Unknown(_, data) => 2 + data.len(),
        }
    }

    fn emit(&self, buf: &mut Vec<u8>) {
        match self {
            TcpOption::EndOfList => buf.push(0),
            TcpOption::Nop => buf.push(1),
            TcpOption::Mss(mss) => {
                buf.extend_from_slice(&[2, 4]);
                buf.extend_from_slice(&mss.to_be_bytes());
            }
            TcpOption::WindowScale(shift) => buf.extend_from_slice(&[3, 3, *shift]),
            TcpOption::SackPermitted => buf.extend_from_slice(&[4, 2]),
            TcpOption::Sack(blocks) => {
                buf.extend_from_slice(&[5, (2 + 8 * blocks.len()) as u8]);
                for (left, right) in blocks {
                    buf.extend_from_slice(&left.0.to_be_bytes());
                    buf.extend_from_slice(&right.0.to_be_bytes());
                }
            }
            TcpOption::Timestamps { tsval, tsecr } => {
                buf.extend_from_slice(&[8, 10]);
                buf.extend_from_slice(&tsval.to_be_bytes());
                buf.extend_from_slice(&tsecr.to_be_bytes());
            }
            TcpOption::Unknown(kind, data) => {
                buf.push(*kind);
                buf.push((2 + data.len()) as u8);
                buf.extend_from_slice(data);
            }
        }
    }

    /// Parses the option area of a TCP header.
    fn parse_all(mut area: &[u8]) -> Result<Vec<TcpOption>> {
        let mut options = Vec::new();
        while let Some(&kind) = area.first() {
            match kind {
                // End-of-list terminates parsing; it is padding rather than
                // a semantic option, so it is not recorded.
                0 => break,
                1 => {
                    options.push(TcpOption::Nop);
                    area = &area[1..];
                }
                _ => {
                    if area.len() < 2 {
                        return Err(WireError::Truncated);
                    }
                    let len = usize::from(area[1]);
                    if len < 2 || len > area.len() {
                        return Err(WireError::BadLength);
                    }
                    let body = &area[2..len];
                    options.push(match (kind, body.len()) {
                        (2, 2) => TcpOption::Mss(u16::from_be_bytes([body[0], body[1]])),
                        (3, 1) => TcpOption::WindowScale(body[0]),
                        (4, 0) => TcpOption::SackPermitted,
                        (5, n) if n % 8 == 0 => {
                            let blocks = body
                                .chunks_exact(8)
                                .map(|c| {
                                    (
                                        SeqNum(u32::from_be_bytes([c[0], c[1], c[2], c[3]])),
                                        SeqNum(u32::from_be_bytes([c[4], c[5], c[6], c[7]])),
                                    )
                                })
                                .collect();
                            TcpOption::Sack(blocks)
                        }
                        (8, 8) => TcpOption::Timestamps {
                            tsval: u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                            tsecr: u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                        },
                        _ => TcpOption::Unknown(kind, body.to_vec()),
                    });
                    area = &area[len..];
                }
            }
        }
        Ok(options)
    }
}

/// Length of an option-free TCP header in bytes.
pub const HEADER_LEN: usize = 20;

/// A decoded TCP header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: SeqNum,
    /// Acknowledgment number (meaningful when `flags.ack()`).
    pub ack: SeqNum,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised (offered) receive window, unscaled.
    pub window: u16,
    /// Urgent pointer (carried verbatim; the simulators never set URG).
    pub urgent: u16,
    /// Options in wire order.
    pub options: Vec<TcpOption>,
}

impl TcpRepr {
    /// A minimal header with the given ports; other fields zeroed.
    pub fn new(src_port: u16, dst_port: u16) -> TcpRepr {
        TcpRepr {
            src_port,
            dst_port,
            seq: SeqNum::ZERO,
            ack: SeqNum::ZERO,
            flags: TcpFlags::default(),
            window: 0,
            urgent: 0,
            options: Vec::new(),
        }
    }

    /// Returns the MSS option value if present.
    pub fn mss_option(&self) -> Option<u16> {
        self.options.iter().find_map(|o| match o {
            TcpOption::Mss(v) => Some(*v),
            _ => None,
        })
    }

    /// Header length including options, padded to a multiple of 4.
    ///
    /// The TCP data-offset field is four bits, capping the header at 60
    /// bytes (40 bytes of options); [`TcpRepr::emit`] asserts this.
    pub fn header_len(&self) -> usize {
        let opt_len: usize = self.options.iter().map(TcpOption::encoded_len).sum();
        HEADER_LEN + opt_len.div_ceil(4) * 4
    }

    /// Parses a TCP header from the front of `segment`, returning the
    /// header and the payload slice. The checksum is **not** verified here;
    /// use [`TcpRepr::verify_checksum`] when the full payload was captured.
    pub fn parse(segment: &[u8]) -> Result<(TcpRepr, &[u8])> {
        if segment.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let data_offset = usize::from(segment[12] >> 4) * 4;
        if data_offset < HEADER_LEN || data_offset > segment.len() {
            return Err(WireError::BadLength);
        }
        let repr = TcpRepr {
            src_port: u16::from_be_bytes([segment[0], segment[1]]),
            dst_port: u16::from_be_bytes([segment[2], segment[3]]),
            seq: SeqNum(u32::from_be_bytes([
                segment[4], segment[5], segment[6], segment[7],
            ])),
            ack: SeqNum(u32::from_be_bytes([
                segment[8],
                segment[9],
                segment[10],
                segment[11],
            ])),
            flags: TcpFlags(segment[13] & 0x3f),
            window: u16::from_be_bytes([segment[14], segment[15]]),
            urgent: u16::from_be_bytes([segment[18], segment[19]]),
            options: TcpOption::parse_all(&segment[HEADER_LEN..data_offset])?,
        };
        Ok((repr, &segment[data_offset..]))
    }

    /// Appends the encoded header (checksum filled in) and `payload` to
    /// `buf`. `src` and `dst` are the IPv4 addresses for the pseudo-header.
    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8], buf: &mut Vec<u8>) {
        let start = buf.len();
        let header_len = self.header_len();
        assert!(
            header_len <= 60,
            "TCP options exceed the 40-byte limit imposed by the 4-bit data offset"
        );
        buf.extend_from_slice(&self.src_port.to_be_bytes());
        buf.extend_from_slice(&self.dst_port.to_be_bytes());
        buf.extend_from_slice(&self.seq.0.to_be_bytes());
        buf.extend_from_slice(&self.ack.0.to_be_bytes());
        buf.push(((header_len / 4) as u8) << 4);
        buf.push(self.flags.0);
        buf.extend_from_slice(&self.window.to_be_bytes());
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(&self.urgent.to_be_bytes());
        for opt in &self.options {
            opt.emit(buf);
        }
        while buf.len() - start < header_len {
            buf.push(0); // EOL padding
        }
        buf.extend_from_slice(payload);
        let ck = Self::compute_checksum(src, dst, &buf[start..]);
        buf[start + 16..start + 18].copy_from_slice(&ck.to_be_bytes());
    }

    /// Computes the TCP checksum over pseudo-header + `segment` (whose
    /// checksum field must be zero, or whose existing checksum folds in to
    /// make a verification result).
    pub fn compute_checksum(src: Ipv4Addr, dst: Ipv4Addr, segment: &[u8]) -> u16 {
        let mut ck = Checksum::new();
        ck.add_u32(src.to_u32());
        ck.add_u32(dst.to_u32());
        ck.add_u16(6); // zero byte + protocol number
        ck.add_u16(segment.len() as u16);
        ck.add_bytes(segment);
        ck.finish()
    }

    /// Verifies the checksum of a complete captured segment.
    pub fn verify_checksum(src: Ipv4Addr, dst: Ipv4Addr, segment: &[u8]) -> bool {
        Self::compute_checksum(src, dst, segment) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::from_host_id(1), Ipv4Addr::from_host_id(2))
    }

    fn sample() -> TcpRepr {
        TcpRepr {
            src_port: 1025,
            dst_port: 9000,
            seq: SeqNum(0x0102_0304),
            ack: SeqNum(0x0a0b_0c0d),
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 8192,
            urgent: 0,
            options: Vec::new(),
        }
    }

    #[test]
    fn round_trip_no_options() {
        let (src, dst) = addrs();
        let repr = sample();
        let mut buf = Vec::new();
        repr.emit(src, dst, b"hello", &mut buf);
        assert!(TcpRepr::verify_checksum(src, dst, &buf));
        let (parsed, payload) = TcpRepr::parse(&buf).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn round_trip_all_options() {
        let (src, dst) = addrs();
        let mut repr = sample();
        repr.flags = TcpFlags::SYN;
        repr.options = vec![
            TcpOption::Mss(1460),
            TcpOption::Nop,
            TcpOption::WindowScale(3),
            TcpOption::SackPermitted,
            TcpOption::Timestamps {
                tsval: 12345,
                tsecr: 0,
            },
            TcpOption::Sack(vec![(SeqNum(100), SeqNum(200)), (SeqNum(300), SeqNum(400))]),
        ];
        let mut buf = Vec::new();
        repr.emit(src, dst, &[], &mut buf);
        assert!(TcpRepr::verify_checksum(src, dst, &buf));
        let (parsed, payload) = TcpRepr::parse(&buf).unwrap();
        assert!(payload.is_empty());
        assert_eq!(parsed.mss_option(), Some(1460));
        assert_eq!(parsed.options.len(), repr.options.len());
        assert_eq!(parsed.options, repr.options);
    }

    #[test]
    fn header_len_is_padded_to_word() {
        let mut repr = sample();
        repr.options = vec![TcpOption::WindowScale(2)]; // 3 bytes -> pads to 4
        assert_eq!(repr.header_len(), 24);
        let mut buf = Vec::new();
        let (src, dst) = addrs();
        repr.emit(src, dst, &[], &mut buf);
        assert_eq!(buf.len(), 24);
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let (src, dst) = addrs();
        let repr = sample();
        let mut buf = Vec::new();
        repr.emit(src, dst, b"payload bytes", &mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        assert!(!TcpRepr::verify_checksum(src, dst, &buf));
    }

    #[test]
    fn truncated_and_bad_offset_rejected() {
        assert_eq!(TcpRepr::parse(&[0; 10]).unwrap_err(), WireError::Truncated);
        let (src, dst) = addrs();
        let mut buf = Vec::new();
        sample().emit(src, dst, &[], &mut buf);
        buf[12] = 0x30; // data offset 12 bytes < 20
        assert_eq!(TcpRepr::parse(&buf).unwrap_err(), WireError::BadLength);
        buf[12] = 0xf0; // data offset 60 bytes > segment
        assert_eq!(TcpRepr::parse(&buf).unwrap_err(), WireError::BadLength);
    }

    #[test]
    fn unknown_option_preserved() {
        let (src, dst) = addrs();
        let mut repr = sample();
        repr.options = vec![TcpOption::Unknown(253, vec![1, 2, 3, 4, 5, 6])];
        let mut buf = Vec::new();
        repr.emit(src, dst, &[], &mut buf);
        let (parsed, _) = TcpRepr::parse(&buf).unwrap();
        assert_eq!(
            parsed.options[0],
            TcpOption::Unknown(253, vec![1, 2, 3, 4, 5, 6])
        );
    }

    #[test]
    fn flags_display() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).to_string(), "S.");
        assert_eq!(TcpFlags::default().to_string(), "-");
    }

    #[test]
    fn option_area_errors() {
        // Option with length 0 is malformed.
        let mut buf = Vec::new();
        let (src, dst) = addrs();
        let mut repr = sample();
        repr.options = vec![TcpOption::Nop; 4];
        repr.emit(src, dst, &[], &mut buf);
        buf[20] = 2; // MSS kind...
        buf[21] = 0; // ...with length 0
                     // restore checksum irrelevant; parse doesn't verify
        assert_eq!(TcpRepr::parse(&buf).unwrap_err(), WireError::BadLength);
    }
}
