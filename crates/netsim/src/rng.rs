//! A tiny deterministic PRNG.
//!
//! The simulator must be bit-for-bit reproducible from a seed so every
//! experiment in EXPERIMENTS.md can be regenerated exactly. SplitMix64 is
//! small, fast, well-distributed, and keeps this crate dependency-free.

/// SplitMix64 (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A float uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits → [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform integer in `[0, bound)`. `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Multiply-shift; bias is negligible for the simulator's purposes
        // (bounds far below 2^64).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..10_000 {
            assert!(rng.next_below(13) < 13);
        }
    }

    #[test]
    fn chance_rate_roughly_matches() {
        let mut rng = SplitMix64::new(1234);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate = {rate}");
    }
}
