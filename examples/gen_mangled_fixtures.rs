//! Regenerates the damaged fixture captures in `tests/fixtures/mangled/`.
//!
//! ```sh
//! cargo run --example gen_mangled_fixtures
//! ```
//!
//! One fixture per [`FaultKind`]: a clean simulated Reno transfer is
//! written to pcap bytes, then `tcpa_trace::mangle::inject` plants exactly
//! one seeded fault of that kind. Everything is deterministic (fixed
//! simulation seed, fixed injection seed), so a regeneration that changes
//! any committed byte signals a behavior change in the simulator, the
//! pcap writer, or the mangler — which is exactly what the golden
//! assertions in `tests/salvage.rs` are for.

use std::path::PathBuf;
use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::mangle::{inject, FaultKind};
use tcpa_trace::pcap_io;
use tcpa_wire::TsResolution;

/// Injection seed; `inject` mixes the kind in, so one constant serves all.
const SEED: u64 = 0x5eed_f00d;

fn main() {
    let out = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &PathSpec::default(),
        24 * 1024,
        1997,
    );
    let base = pcap_io::write_pcap(&out.sender_trace(), Vec::new(), TsResolution::Micro, 0)
        .expect("write base capture");
    println!("base capture: {} bytes", base.len());

    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mangled");
    std::fs::create_dir_all(&dir).expect("mkdir fixtures/mangled");

    for kind in FaultKind::ALL {
        let (bytes, fault) =
            inject(&base, kind, SEED).expect("every kind applies to a clean capture");
        let path = dir.join(format!("{}.pcap", kind.label()));
        std::fs::write(&path, &bytes).expect("write fixture");
        println!(
            "{:<28} {} bytes, fault at byte {}",
            path.file_name().unwrap().to_string_lossy(),
            bytes.len(),
            fault.offset
        );
        // Print the salvage report so golden assertions can be curated.
        let (trace, report) = pcap_io::read_pcap_salvage_bytes(&bytes);
        println!("    -> {} ({} usable frames)", report, trace.len());
    }
}
