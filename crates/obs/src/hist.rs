//! Fixed log-scale duration histograms.
//!
//! Bucket `i` holds values whose base-2 magnitude is `i` (i.e. the
//! half-open range `[2^i, 2^(i+1))`, with 0 landing in bucket 0). The
//! bucket layout never varies, so histograms merge by per-bucket
//! addition: a corpus analyzed by 8 workers produces the same merged
//! bucket counts as 1 worker, whatever the completion order. Percentiles
//! are read off the cumulative bucket counts and reported as the
//! covering bucket's inclusive upper bound, which keeps them
//! order-independent too (the raw `sum`/`max` remain exact).

/// Number of buckets: one per base-2 magnitude of a `u64` nanosecond count.
pub const BUCKETS: usize = 64;

/// A mergeable log₂-bucketed histogram of nanosecond durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

/// The bucket index covering `value`.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (u64::BITS - 1 - value.leading_zeros()) as usize
    }
}

/// The inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub const fn new() -> LogHistogram {
        LogHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value (a duration in nanoseconds).
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value, 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `p`-th percentile (0 < p ≤ 100) as the inclusive upper bound
    /// of the bucket where the cumulative count crosses `p`% — a
    /// deterministic over-estimate within a factor of 2. Returns 0 for
    /// an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Adds another histogram's contents into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The per-bucket difference `self - earlier`, for interval snapshots
    /// (`earlier` must be a prefix of this histogram's history; `max` is
    /// carried from `self` since a maximum cannot be un-recorded).
    pub fn since(&self, earlier: &LogHistogram) -> LogHistogram {
        let mut counts = [0u64; BUCKETS];
        for (i, slot) in counts.iter_mut().enumerate() {
            *slot = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        LogHistogram {
            counts,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_magnitudes() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(1), 3);
        assert_eq!(bucket_upper(63), u64::MAX);
    }

    #[test]
    fn percentiles_are_bucket_upper_bounds() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), 1024);
        // p50 → 5th value (16) → bucket 4 → upper 31.
        assert_eq!(h.percentile(50.0), 31);
        // p100 → last value (1024) → bucket 10 → upper 2047.
        assert_eq!(h.percentile(100.0), 2047);
        assert_eq!(LogHistogram::new().percentile(50.0), 0);
    }

    #[test]
    fn merge_is_order_independent() {
        let values = [3u64, 17, 99, 1000, 5, 123456, 7, 0];
        let mut whole = LogHistogram::new();
        for &v in &values {
            whole.record(v);
        }
        let (mut a, mut b) = (LogHistogram::new(), LogHistogram::new());
        for (i, &v) in values.iter().enumerate() {
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        let mut merged = b.clone();
        merged.merge(&a);
        assert_eq!(merged, whole);
        let mut other_order = a;
        other_order.merge(&b);
        assert_eq!(other_order, whole);
    }

    #[test]
    fn since_subtracts_a_prefix() {
        let mut h = LogHistogram::new();
        h.record(10);
        let early = h.clone();
        h.record(100);
        h.record(1000);
        let delta = h.since(&early);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum(), 1100);
        assert_eq!(h.since(&h).count(), 0);
    }
}
