//! Whole-pipeline integration: simulate → measure (faulty filter) →
//! serialize to pcap → re-read → calibrate → fingerprint, spanning every
//! crate in the workspace.

use std::io::Cursor;
use tcpa_filter::{apply, DropModel, FilterConfig};
use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::{pcap_io, Connection};
use tcpa_wire::TsResolution;
use tcpanaly::fingerprint::FitClass;
use tcpanaly::Analyzer;

#[test]
fn full_pipeline_through_pcap() {
    // 1. Simulate.
    let out = run_transfer(
        profiles::solaris_2_4(),
        profiles::reno(),
        &PathSpec::default(),
        100 * 1024,
        1,
    );
    // 2. Measure with an imperfect (but not pathological) filter.
    let (measured, _) = apply(&out.sender_tap, &FilterConfig::perfect(), 1);
    // 3. Serialize as tcpdump would and read back.
    let bytes = pcap_io::write_pcap(&measured, Vec::new(), TsResolution::Micro, 0).unwrap();
    let (reread, skipped) = pcap_io::read_pcap(Cursor::new(bytes)).unwrap();
    assert_eq!(skipped, 0);
    assert_eq!(reread.len(), measured.len());
    // 4. Analyze. Microsecond truncation must not change conclusions.
    let report = Analyzer::at_sender().analyze(&reread);
    assert!(report.calibration.is_clean(), "{:?}", report.calibration);
    // 2.3 and 2.4 differ only in receiver acking (§8.6); a *sender*
    // trace legitimately cannot split them — either sibling may rank
    // first, but both must be close and nothing else may outrank them.
    let best = report.connections[0].best_fit().expect("a close fit");
    assert!(best.starts_with("Solaris"), "best fit was {best}");
    let close: Vec<_> = report.connections[0]
        .fingerprint
        .iter()
        .filter(|r| r.fit == FitClass::Close)
        .map(|r| r.name)
        .collect();
    assert!(close.contains(&"Solaris 2.4"), "close fits: {close:?}");
}

#[test]
fn snap_length_pipeline_still_fingerprints() {
    let out = run_transfer(
        profiles::linux_1_0(),
        profiles::reno(),
        &PathSpec::default(),
        64 * 1024,
        2,
    );
    // Header-only capture (68-byte snap, the tcpdump classic).
    let bytes =
        pcap_io::write_pcap(&out.sender_trace(), Vec::new(), TsResolution::Micro, 68).unwrap();
    let (reread, _) = pcap_io::read_pcap(Cursor::new(bytes)).unwrap();
    assert!(reread.iter().any(|r| r.checksum_ok.is_none()));
    let report = Analyzer::at_sender().analyze(&reread);
    let conn = &report.connections[0];
    let lin = conn
        .fingerprint
        .iter()
        .find(|r| r.name == "Linux 1.0")
        .expect("Linux 1.0 among candidates");
    assert_eq!(
        lin.fit,
        FitClass::Close,
        "headers suffice for behavior analysis"
    );
}

#[test]
fn filter_drops_survive_pcap_round_trip_and_are_detected() {
    let out = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &PathSpec::default(),
        100 * 1024,
        3,
    );
    let cfg = FilterConfig {
        drops: DropModel::Burst { start: 50, len: 5 },
        ..FilterConfig::default()
    };
    let (measured, report) = apply(&out.sender_tap, &cfg, 3);
    assert_eq!(report.dropped_indices.len(), 5);
    let bytes = pcap_io::write_pcap(&measured, Vec::new(), TsResolution::Nano, 0).unwrap();
    let (reread, _) = pcap_io::read_pcap(Cursor::new(bytes)).unwrap();
    let analysis = Analyzer::at_sender().analyze(&reread);
    assert!(
        !analysis.calibration.drop_evidence.is_empty(),
        "filter drops must survive serialization and be diagnosed"
    );
}

#[test]
fn receiver_vantage_report_covers_ack_policy() {
    let out = run_transfer(
        profiles::reno(),
        profiles::solaris_2_4(),
        &PathSpec::default(),
        100 * 1024,
        4,
    );
    let report = Analyzer::at_receiver().analyze(&out.receiver_trace());
    let conn = &report.connections[0];
    assert!(
        conn.fingerprint.is_empty(),
        "no sender fingerprint from afar"
    );
    let rx = conn.receiver.as_ref().expect("receiver analysis");
    assert!(rx.count(tcpanaly::receiver::AckClass::Delayed) > 0);
    let rendered = report.render();
    assert!(rendered.contains("receiver:"));
}

#[test]
fn both_vantages_agree_on_transfer_shape() {
    let out = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &PathSpec::default(),
        100 * 1024,
        5,
    );
    let s = Connection::split(&out.sender_trace()).remove(0);
    let r = Connection::split(&out.receiver_trace()).remove(0);
    // No loss: both vantages see the same packet population.
    assert_eq!(
        s.packet_count(tcpa_trace::Dir::SenderToReceiver),
        r.packet_count(tcpa_trace::Dir::SenderToReceiver)
    );
    assert_eq!(
        s.payload_bytes(tcpa_trace::Dir::SenderToReceiver),
        r.payload_bytes(tcpa_trace::Dir::SenderToReceiver)
    );
    assert_eq!(s.negotiated_mss(), r.negotiated_mss());
}

#[test]
fn multiple_connections_in_one_trace_are_separated() {
    // Two transfers appended into one trace (different ports via seeds
    // won't differ — the harness pins ports — so shift one trace's ports).
    let out1 = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &PathSpec::default(),
        32 * 1024,
        6,
    );
    let out2 = run_transfer(
        profiles::tahoe(),
        profiles::reno(),
        &PathSpec::default(),
        32 * 1024,
        7,
    );
    let mut merged = out1.sender_trace();
    for mut rec in out2.sender_trace().records {
        let flip = |p: u16| if p == 33_000 { 44_000 } else { p };
        rec.tcp.src_port = flip(rec.tcp.src_port);
        rec.tcp.dst_port = flip(rec.tcp.dst_port);
        merged.push(rec);
    }
    let report = Analyzer::at_sender().analyze(&merged);
    assert_eq!(report.connections.len(), 2);
    for conn in &report.connections {
        assert!(conn.best_fit().is_some());
    }
}
