//! The discrete-event engine: hosts, routing, taps and ground truth.
//!
//! Time advances through a binary heap of events; ties are broken by
//! insertion order, so runs are fully deterministic. The standard topology
//! for reproduction experiments is a four-node path
//!
//! ```text
//!   A ——lan—— Ra ——wan (bottleneck, loss)—— Rb ——lan—— B
//! ```
//!
//! built by [`NetBuilder::two_endpoint_path`]. Taps sit on the endpoints'
//! LANs: an outbound packet is recorded when its LAN transmission
//! *completes* (its wire time; Ethernet serialization is what gives the
//! paper's Figure 1 its 1 MB/s slope), and an inbound packet when it
//! reaches the host's NIC. Queueing and loss on the WAN therefore happen
//! *after* the sender's tap and *before* the receiver's tap, matching
//! where the paper's measurement points sat.

use crate::link::{Enqueue, Link, LinkParams};
use crate::packet::Packet;
use crate::rng::SplitMix64;
use crate::stack::Stack;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use tcpa_trace::{Duration, Time};
use tcpa_wire::Ipv4Addr;

/// Index of a host within an [`Engine`].
pub type HostId = usize;

/// Direction of a tap event relative to the tapped host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapDir {
    /// The host transmitted this packet.
    Out,
    /// The host received this packet.
    In,
}

/// One perfectly-observed wire event at a tapped host.
///
/// `tcpa-filter` turns sequences of these into *imperfect* packet-filter
/// traces.
#[derive(Debug, Clone)]
pub struct TapEvent {
    /// The true wire time at the tap.
    pub t_wire: Time,
    /// For outbound packets: when the host's stack emitted the packet
    /// (before interface queueing and serialization). The IRIX 5.2/5.3
    /// duplication bug records packets at *both* times (§3.1.2).
    pub t_stack: Option<Time>,
    /// Direction relative to the tapped host.
    pub dir: TapDir,
    /// The packet.
    pub pkt: Packet,
}

/// What the network actually did — for validating the analyzer against
/// reality.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// (time, uid) of packets destroyed by a link loss model.
    pub wire_drops: Vec<(Time, u64)>,
    /// (time, uid) of packets dropped at a full queue.
    pub queue_drops: Vec<(Time, u64)>,
    /// Packets delivered to an endpoint stack.
    pub delivered: u64,
}

impl GroundTruth {
    /// Total packets the network dropped.
    pub fn total_drops(&self) -> usize {
        self.wire_drops.len() + self.queue_drops.len()
    }

    /// `true` if the packet with `uid` was dropped.
    pub fn was_dropped(&self, uid: u64) -> bool {
        self.wire_drops.iter().any(|&(_, u)| u == uid)
            || self.queue_drops.iter().any(|&(_, u)| u == uid)
    }
}

enum Ev {
    Start { host: HostId },
    TxDone { link: usize },
    Arrive { host: HostId, pkt: Packet },
    Process { host: HostId, pkt: Packet },
    Timer { host: HostId, gen: u64 },
}

struct EvEntry {
    t: Time,
    seq: u64,
    ev: Ev,
}

impl PartialEq for EvEntry {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for EvEntry {}
impl PartialOrd for EvEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EvEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.t, self.seq).cmp(&(other.t, other.seq))
    }
}

struct Host {
    addr: Ipv4Addr,
    stack: Option<Box<dyn Stack>>,
    proc_delay: Duration,
    timer_gen: u64,
    scheduled_timer: Option<Time>,
    tapped: bool,
    tap: Vec<TapEvent>,
}

/// Everything a finished simulation yields.
pub struct SimResults {
    /// Per-host tap events (empty for untapped hosts).
    pub taps: Vec<Vec<TapEvent>>,
    /// Per-host stacks (None for routers); downcast via
    /// [`Stack::as_any`] to recover concrete endpoint state.
    pub stacks: Vec<Option<Box<dyn Stack>>>,
    /// What the network really did.
    pub truth: GroundTruth,
}

/// Converts a tap's events into the trace a *perfect, error-free* packet
/// filter with a TCP-only pattern would have produced: every TCP packet,
/// timestamped at its true wire time, non-TCP packets excluded (the
/// paper's filters matched TCP only, which is why source quench must be
/// inferred, §6.2). `tcpa-filter` layers measurement errors on top.
pub fn perfect_trace(events: &[TapEvent]) -> tcpa_trace::Trace {
    let mut trace = tcpa_trace::Trace::new();
    for ev in events {
        if let crate::packet::PacketKind::Tcp {
            tcp,
            payload_len,
            corrupt,
        } = &ev.pkt.kind
        {
            trace.push(tcpa_trace::TraceRecord {
                ts: ev.t_wire,
                ip: ev.pkt.ip_repr(),
                tcp: tcp.clone(),
                payload_len: *payload_len,
                checksum_ok: Some(!corrupt),
            });
        }
    }
    trace
}

/// Declarative topology builder.
#[derive(Default)]
pub struct NetBuilder {
    hosts: Vec<(Ipv4Addr, Duration, bool)>, // addr, proc delay, is_endpoint
    links: Vec<(HostId, HostId, LinkParams)>,
}

impl NetBuilder {
    /// An empty topology.
    pub fn new() -> NetBuilder {
        NetBuilder::default()
    }

    /// Adds an endpoint host with the given address and stack processing
    /// delay (NIC → TCP). A stack must be supplied for it in
    /// [`NetBuilder::build`].
    pub fn host(&mut self, addr: Ipv4Addr, proc_delay: Duration) -> HostId {
        self.hosts.push((addr, proc_delay, true));
        self.hosts.len() - 1
    }

    /// Adds a store-and-forward router (no stack, no processing delay).
    pub fn router(&mut self, addr: Ipv4Addr) -> HostId {
        self.hosts.push((addr, Duration::ZERO, false));
        self.hosts.len() - 1
    }

    /// Adds a unidirectional link.
    pub fn link(&mut self, from: HostId, to: HostId, params: LinkParams) {
        self.links.push((from, to, params));
    }

    /// Adds a pair of links in both directions.
    pub fn biconnect(&mut self, a: HostId, b: HostId, ab: LinkParams, ba: LinkParams) {
        self.link(a, b, ab);
        self.link(b, a, ba);
    }

    /// Builds the engine. `stacks` pairs endpoint host ids with their
    /// stacks; every endpoint host must appear exactly once.
    pub fn build(self, stacks: Vec<(HostId, Box<dyn Stack>)>, seed: u64) -> Engine {
        let n = self.hosts.len();
        let mut hosts: Vec<Host> = self
            .hosts
            .iter()
            .map(|&(addr, proc_delay, _)| Host {
                addr,
                stack: None,
                proc_delay,
                timer_gen: 0,
                scheduled_timer: None,
                tapped: false,
                tap: Vec::new(),
            })
            .collect();
        for (id, stack) in stacks {
            assert!(
                self.hosts[id].2,
                "host {id} is a router and cannot take a stack"
            );
            assert!(hosts[id].stack.is_none(), "host {id} given two stacks");
            hosts[id].stack = Some(stack);
        }
        for (id, spec) in self.hosts.iter().enumerate() {
            assert!(
                !spec.2 || hosts[id].stack.is_some(),
                "endpoint host {id} has no stack"
            );
        }
        let links: Vec<Link> = self
            .links
            .into_iter()
            .map(|(from, to, params)| Link::new(from, to, params))
            .collect();

        // Next-hop routing by BFS over the directed link graph.
        let mut routes = vec![vec![None; n]; n];
        for (src, row) in routes.iter_mut().enumerate() {
            // BFS from src; first link on shortest path to each dst.
            let mut dist = vec![usize::MAX; n];
            let mut first_link = vec![None; n];
            let mut queue = std::collections::VecDeque::new();
            dist[src] = 0;
            queue.push_back(src);
            while let Some(u) = queue.pop_front() {
                for (li, link) in links.iter().enumerate() {
                    if link.src_host == u && dist[link.dst_host] == usize::MAX {
                        dist[link.dst_host] = dist[u] + 1;
                        first_link[link.dst_host] = if u == src { Some(li) } else { first_link[u] };
                        queue.push_back(link.dst_host);
                    }
                }
            }
            row.clone_from_slice(&first_link);
        }

        Engine {
            now: Time::ZERO,
            seq: 0,
            uid: 0,
            heap: BinaryHeap::new(),
            hosts,
            links,
            routes,
            pending_out: HashMap::new(),
            rng: SplitMix64::new(seed),
            truth: GroundTruth::default(),
            material: 0,
            started: false,
        }
    }

    /// Builds the standard reproduction topology: two endpoint hosts on
    /// 10 Mb/s Ethernets joined by a WAN whose two directions are given by
    /// `wan_ab` / `wan_ba`. Returns `(builder, a, b)`; the caller adds any
    /// extra pieces and calls [`NetBuilder::build`].
    pub fn two_endpoint_path(
        addr_a: Ipv4Addr,
        addr_b: Ipv4Addr,
        proc_delay: Duration,
        wan_ab: LinkParams,
        wan_ba: LinkParams,
    ) -> (NetBuilder, HostId, HostId) {
        let mut nb = NetBuilder::new();
        let a = nb.host(addr_a, proc_delay);
        let b = nb.host(addr_b, proc_delay);
        let ra = nb.router(Ipv4Addr::new(10, 0, 0, 1));
        let rb = nb.router(Ipv4Addr::new(10, 0, 0, 2));
        nb.biconnect(a, ra, LinkParams::ethernet(), LinkParams::ethernet());
        nb.biconnect(ra, rb, wan_ab, wan_ba);
        nb.biconnect(rb, b, LinkParams::ethernet(), LinkParams::ethernet());
        (nb, a, b)
    }
}

/// The discrete-event simulator.
pub struct Engine {
    now: Time,
    seq: u64,
    uid: u64,
    heap: BinaryHeap<Reverse<EvEntry>>,
    hosts: Vec<Host>,
    links: Vec<Link>,
    routes: Vec<Vec<Option<usize>>>,
    pending_out: HashMap<u64, Time>,
    rng: SplitMix64,
    truth: GroundTruth,
    /// Count of non-timer events in the heap; lets the engine stop early
    /// when every stack is done and nothing is in flight.
    material: u64,
    started: bool,
}

impl Engine {
    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Enables wire-event recording at a host.
    pub fn enable_tap(&mut self, host: HostId) {
        self.hosts[host].tapped = true;
    }

    /// The recorded tap events of a host, in wire-time order.
    pub fn tap_events(&self, host: HostId) -> &[TapEvent] {
        &self.hosts[host].tap
    }

    /// Consumes the engine, returning all taps, the ground truth, and the
    /// stacks (for downcasting to concrete endpoint types).
    pub fn into_results(self) -> SimResults {
        let mut taps = Vec::with_capacity(self.hosts.len());
        let mut stacks = Vec::with_capacity(self.hosts.len());
        for h in self.hosts {
            taps.push(h.tap);
            stacks.push(h.stack);
        }
        SimResults {
            taps,
            stacks,
            truth: self.truth,
        }
    }

    /// Borrow a host's stack (e.g. to inspect statistics mid-run).
    pub fn stack(&self, host: HostId) -> Option<&dyn Stack> {
        self.hosts[host].stack.as_deref()
    }

    /// The ground truth so far.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// Schedules delivery of an arbitrary packet to a host's stack at time
    /// `t` (used to inject ICMP source quench, §6.2).
    pub fn inject(&mut self, t: Time, host: HostId, pkt: Packet) {
        self.push(t, Ev::Arrive { host, pkt }, true);
    }

    fn push(&mut self, t: Time, ev: Ev, material: bool) {
        if material {
            self.material += 1;
        }
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(EvEntry { t, seq, ev }));
    }

    /// Runs until `t_end`, or until every stack reports done and nothing
    /// is in flight. Returns the time of the last processed event.
    pub fn run_until(&mut self, t_end: Time) -> Time {
        if !self.started {
            self.started = true;
            for id in 0..self.hosts.len() {
                if self.hosts[id].stack.is_some() {
                    self.push(Time::ZERO, Ev::Start { host: id }, true);
                }
            }
        }
        let mut last = self.now;
        while let Some(Reverse(entry)) = self.heap.peek() {
            if entry.t > t_end {
                break;
            }
            let Reverse(entry) = self.heap.pop().unwrap();
            debug_assert!(entry.t >= self.now, "event queue went backwards");
            self.now = entry.t;
            let material = !matches!(entry.ev, Ev::Timer { .. });
            if material {
                self.material -= 1;
            }
            self.dispatch(entry.ev);
            last = self.now;
            if self.material == 0 && self.all_done() {
                break;
            }
        }
        last
    }

    /// Runs with a generous default horizon (10 simulated minutes).
    pub fn run(&mut self) -> Time {
        self.run_until(Time::from_secs(600))
    }

    fn all_done(&self) -> bool {
        self.hosts
            .iter()
            .filter_map(|h| h.stack.as_deref())
            .all(|s| s.done())
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Start { host } => {
                let mut out = Vec::new();
                let now = self.now;
                if let Some(stack) = self.hosts[host].stack.as_deref_mut() {
                    stack.start(now, &mut out);
                }
                self.emit_all(host, out);
                self.sync_timer(host);
            }
            Ev::TxDone { link } => {
                let (pkt, dropped, more) = self.links[link].complete_tx(&mut self.rng);
                let src_host = self.links[link].src_host;
                let t_stack = self.pending_out.remove(&pkt.uid);
                if self.hosts[src_host].tapped {
                    self.hosts[src_host].tap.push(TapEvent {
                        t_wire: self.now,
                        t_stack,
                        dir: TapDir::Out,
                        pkt: pkt.clone(),
                    });
                }
                if more {
                    let t_done = self.now + self.links[link].current_tx_time();
                    self.push(t_done, Ev::TxDone { link }, true);
                }
                if dropped {
                    self.truth.wire_drops.push((self.now, pkt.uid));
                } else {
                    let dst = self.links[link].dst_host;
                    let t_arrive = self.links[link].arrival_time(self.now);
                    self.push(t_arrive, Ev::Arrive { host: dst, pkt }, true);
                }
            }
            Ev::Arrive { host, pkt } => {
                if self.hosts[host].tapped {
                    self.hosts[host].tap.push(TapEvent {
                        t_wire: self.now,
                        t_stack: None,
                        dir: TapDir::In,
                        pkt: pkt.clone(),
                    });
                }
                if pkt.dst == self.hosts[host].addr {
                    if self.hosts[host].stack.is_some() {
                        let t = self.now + self.hosts[host].proc_delay;
                        self.push(t, Ev::Process { host, pkt }, true);
                    }
                    // Packets addressed to a stackless router are dropped.
                } else {
                    // Forward towards the destination.
                    self.route_packet(host, pkt);
                }
            }
            Ev::Process { host, pkt } => {
                let mut out = Vec::new();
                let now = self.now;
                self.truth.delivered += 1;
                if let Some(stack) = self.hosts[host].stack.as_deref_mut() {
                    stack.on_packet(now, pkt, &mut out);
                }
                self.emit_all(host, out);
                self.sync_timer(host);
            }
            Ev::Timer { host, gen } => {
                if gen != self.hosts[host].timer_gen {
                    return; // superseded
                }
                self.hosts[host].scheduled_timer = None;
                let mut out = Vec::new();
                let now = self.now;
                if let Some(stack) = self.hosts[host].stack.as_deref_mut() {
                    stack.on_timer(now, &mut out);
                }
                self.emit_all(host, out);
                self.sync_timer(host);
            }
        }
    }

    fn emit_all(&mut self, host: HostId, out: Vec<Packet>) {
        for mut pkt in out {
            self.uid += 1;
            pkt.uid = self.uid;
            self.pending_out.insert(pkt.uid, self.now);
            self.route_packet(host, pkt);
        }
    }

    fn route_packet(&mut self, from: HostId, pkt: Packet) {
        let Some(dst_host) = self.hosts.iter().position(|h| h.addr == pkt.dst) else {
            return; // unroutable: silently discarded, like a real network
        };
        let Some(link_id) = self.routes[from][dst_host] else {
            return;
        };
        let uid = pkt.uid;
        match self.links[link_id].enqueue(pkt) {
            Enqueue::Accepted { starts_tx: true } => {
                let t_done = self.now + self.links[link_id].current_tx_time();
                self.push(t_done, Ev::TxDone { link: link_id }, true);
            }
            Enqueue::Accepted { starts_tx: false } => {}
            Enqueue::Overflow => {
                self.pending_out.remove(&uid);
                self.truth.queue_drops.push((self.now, uid));
            }
        }
    }

    fn sync_timer(&mut self, host: HostId) {
        let want = self.hosts[host]
            .stack
            .as_deref()
            .and_then(|s| s.next_timer());
        if self.hosts[host].scheduled_timer == want {
            return;
        }
        self.hosts[host].timer_gen += 1;
        self.hosts[host].scheduled_timer = want;
        if let Some(t) = want {
            let gen = self.hosts[host].timer_gen;
            let t = t.max(self.now);
            self.push(t, Ev::Timer { host, gen }, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use tcpa_wire::{TcpFlags, TcpRepr};

    /// Emits `count` packets, one per `interval`, and records acks.
    struct Blaster {
        src: Ipv4Addr,
        dst: Ipv4Addr,
        count: u32,
        sent: u32,
        interval: Duration,
        next_at: Option<Time>,
        acks_seen: Vec<Time>,
    }

    impl Blaster {
        fn new(src: Ipv4Addr, dst: Ipv4Addr, count: u32, interval: Duration) -> Blaster {
            Blaster {
                src,
                dst,
                count,
                sent: 0,
                interval,
                next_at: None,
                acks_seen: Vec::new(),
            }
        }

        fn emit(&mut self, out: &mut Vec<Packet>) {
            let mut tcp = TcpRepr::new(1000, 2000);
            tcp.flags = TcpFlags::ACK;
            tcp.seq = tcpa_wire::SeqNum(self.sent * 1000);
            out.push(Packet::tcp(self.src, self.dst, self.sent as u16, tcp, 1000));
            self.sent += 1;
        }
    }

    impl Stack for Blaster {
        fn start(&mut self, now: Time, out: &mut Vec<Packet>) {
            self.emit(out);
            if self.sent < self.count {
                self.next_at = Some(now + self.interval);
            }
        }
        fn on_packet(&mut self, now: Time, _pkt: Packet, _out: &mut Vec<Packet>) {
            self.acks_seen.push(now);
        }
        fn on_timer(&mut self, now: Time, out: &mut Vec<Packet>) {
            self.emit(out);
            self.next_at = if self.sent < self.count {
                Some(now + self.interval)
            } else {
                None
            };
        }
        fn next_timer(&self) -> Option<Time> {
            self.next_at
        }
        fn done(&self) -> bool {
            self.sent == self.count
        }
        fn as_any(&self) -> &dyn core::any::Any {
            self
        }
    }

    /// Replies to every data packet with a 0-length ack.
    struct Echo {
        src: Ipv4Addr,
        received: u32,
    }

    impl Stack for Echo {
        fn on_packet(&mut self, _now: Time, pkt: Packet, out: &mut Vec<Packet>) {
            if let PacketKind::Tcp { tcp, .. } = &pkt.kind {
                self.received += 1;
                let mut reply = TcpRepr::new(tcp.dst_port, tcp.src_port);
                reply.flags = TcpFlags::ACK;
                out.push(Packet::tcp(
                    self.src,
                    pkt.src,
                    self.received as u16,
                    reply,
                    0,
                ));
            }
        }
        fn on_timer(&mut self, _now: Time, _out: &mut Vec<Packet>) {}
        fn next_timer(&self) -> Option<Time> {
            None
        }
        fn done(&self) -> bool {
            true
        }
        fn as_any(&self) -> &dyn core::any::Any {
            self
        }
    }

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::from_host_id(1), Ipv4Addr::from_host_id(2))
    }

    fn build_path(count: u32, wan_ab: LinkParams, wan_ba: LinkParams) -> (Engine, HostId, HostId) {
        let (a_addr, b_addr) = addrs();
        let (nb, a, b) = NetBuilder::two_endpoint_path(
            a_addr,
            b_addr,
            Duration::from_micros(100),
            wan_ab,
            wan_ba,
        );
        let blaster = Blaster::new(a_addr, b_addr, count, Duration::from_millis(10));
        let echo = Echo {
            src: b_addr,
            received: 0,
        };
        let mut engine = nb.build(vec![(a, Box::new(blaster)), (b, Box::new(echo))], 7);
        engine.enable_tap(a);
        engine.enable_tap(b);
        (engine, a, b)
    }

    #[test]
    fn packets_cross_the_path_and_acks_return() {
        let wan = LinkParams::wan(1_000_000, Duration::from_millis(20), 20);
        let (mut engine, a, b) = build_path(5, wan.clone(), wan);
        engine.run();
        let a_out = engine
            .tap_events(a)
            .iter()
            .filter(|e| e.dir == TapDir::Out)
            .count();
        let a_in = engine
            .tap_events(a)
            .iter()
            .filter(|e| e.dir == TapDir::In)
            .count();
        assert_eq!(a_out, 5);
        assert_eq!(a_in, 5, "five acks should return");
        let b_in = engine
            .tap_events(b)
            .iter()
            .filter(|e| e.dir == TapDir::In)
            .count();
        assert_eq!(b_in, 5);
        assert_eq!(engine.ground_truth().total_drops(), 0);
    }

    #[test]
    fn tap_events_are_time_ordered_per_host() {
        let wan = LinkParams::wan(256_000, Duration::from_millis(35), 8);
        let (mut engine, a, _) = build_path(20, wan.clone(), wan);
        engine.run();
        let times: Vec<Time> = engine.tap_events(a).iter().map(|e| e.t_wire).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn rtt_matches_link_parameters() {
        // One packet; hand-computable latency.
        let wan = LinkParams::wan(1_000_000, Duration::from_millis(50), 10);
        let (mut engine, a, _) = build_path(1, wan.clone(), wan);
        engine.run();
        let out_t = engine.tap_events(a)[0].t_wire;
        let in_t = engine.tap_events(a)[1].t_wire;
        let rtt = in_t - out_t;
        // Expect > 2*50ms propagation plus serializations; < 120ms total.
        assert!(rtt > Duration::from_millis(100), "rtt = {rtt}");
        assert!(rtt < Duration::from_millis(120), "rtt = {rtt}");
    }

    #[test]
    fn wire_loss_recorded_and_packet_not_delivered() {
        let wan_ab = LinkParams::wan(1_000_000, Duration::from_millis(10), 20)
            .with_loss(crate::link::LossModel::DropList(vec![2]));
        let wan_ba = LinkParams::wan(1_000_000, Duration::from_millis(10), 20);
        let (mut engine, a, b) = build_path(6, wan_ab, wan_ba);
        engine.run();
        assert_eq!(engine.ground_truth().wire_drops.len(), 1);
        // Sender tap saw all 6; receiver tap saw 5.
        let a_out = engine
            .tap_events(a)
            .iter()
            .filter(|e| e.dir == TapDir::Out)
            .count();
        let b_in = engine
            .tap_events(b)
            .iter()
            .filter(|e| e.dir == TapDir::In)
            .count();
        assert_eq!(a_out, 6);
        assert_eq!(b_in, 5);
    }

    #[test]
    fn queue_overflow_drops_recorded() {
        // Slow WAN with a 2-packet queue; blaster sends 20 back-to-back
        // (interval shorter than serialization time).
        let (a_addr, b_addr) = addrs();
        let (nb, a, b) = NetBuilder::two_endpoint_path(
            a_addr,
            b_addr,
            Duration::ZERO,
            LinkParams::wan(64_000, Duration::from_millis(5), 2),
            LinkParams::wan(64_000, Duration::from_millis(5), 2),
        );
        let blaster = Blaster::new(a_addr, b_addr, 20, Duration::from_micros(10));
        let echo = Echo {
            src: b_addr,
            received: 0,
        };
        let mut engine = nb.build(vec![(a, Box::new(blaster)), (b, Box::new(echo))], 7);
        engine.enable_tap(b);
        engine.run();
        assert!(
            !engine.ground_truth().queue_drops.is_empty(),
            "2-packet queue must overflow"
        );
        let b_in = engine
            .tap_events(b)
            .iter()
            .filter(|e| e.dir == TapDir::In)
            .count();
        assert_eq!(
            b_in + engine.ground_truth().queue_drops.len(),
            20,
            "every packet either arrived or overflowed"
        );
    }

    #[test]
    fn outbound_tap_records_stack_emission_time() {
        let wan = LinkParams::wan(1_000_000, Duration::from_millis(10), 10);
        let (mut engine, a, _) = build_path(1, wan.clone(), wan);
        engine.run();
        let ev = &engine.tap_events(a)[0];
        let t_stack = ev.t_stack.expect("outbound event carries stack time");
        assert!(ev.t_wire > t_stack, "serialization takes time");
        // 1054 bytes at 10 Mb/s LAN = 843.2 µs.
        assert_eq!(
            ev.t_wire - t_stack,
            Duration::transmission(1054, 10_000_000)
        );
    }

    #[test]
    fn injected_source_quench_reaches_stack_but_not_tcp_tap_filters() {
        let wan = LinkParams::wan(1_000_000, Duration::from_millis(10), 10);
        let (mut engine, a, _) = build_path(2, wan.clone(), wan);
        let (a_addr, _) = addrs();
        engine.inject(
            Time::from_millis(1),
            a,
            Packet::source_quench(Ipv4Addr::new(10, 0, 0, 1), a_addr),
        );
        engine.run();
        // The tap itself records everything at the host; TCP-only
        // filtering is the *filter simulator's* job, so here we simply
        // check the quench arrived as an In event that is_tcp() == false.
        let quench_events: Vec<_> = engine
            .tap_events(a)
            .iter()
            .filter(|e| !e.pkt.is_tcp())
            .collect();
        assert_eq!(quench_events.len(), 1);
        assert_eq!(quench_events[0].dir, TapDir::In);
    }

    #[test]
    fn engine_stops_early_when_stacks_done() {
        let wan = LinkParams::wan(1_000_000, Duration::from_millis(10), 10);
        let (mut engine, _, _) = build_path(3, wan.clone(), wan);
        let end = engine.run_until(Time::from_secs(3600));
        assert!(end < Time::from_secs(1), "should stop long before horizon");
    }
}
