//! Randomized whole-stack properties: arbitrary implementation pairings
//! on arbitrary paths must complete reliably, conserve bytes, and stay
//! analyzable — the reproduction's fuzz harness over the full pipeline.

use proptest::prelude::*;
use tcpa_netsim::LossModel;
use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles::all_profiles;
use tcpa_trace::mangle::{mangle, MangleSpec};
use tcpa_trace::{pcap_io, Connection, CorpusItem, Dir, Duration, MemorySource};
use tcpa_wire::TsResolution;
use tcpanaly::calibrate::Calibrator;
use tcpanaly::corpus::{analyze_corpus, CorpusConfig, DegradePolicy};
use tcpanaly::sender::analyze_sender;

fn arb_path() -> impl Strategy<Value = PathSpec> {
    (
        prop_oneof![
            Just(64_000u64),
            Just(128_000u64),
            Just(256_000u64),
            Just(1_544_000u64),
            Just(10_000_000u64)
        ],
        1i64..250,
        2usize..40,
        prop_oneof![
            3 => Just(LossModel::None),
            1 => (0.001f64..0.04).prop_map(LossModel::Bernoulli),
            1 => (5u64..40).prop_map(LossModel::Periodic),
        ],
    )
        .prop_map(|(rate, delay, queue, loss)| PathSpec {
            rate_bps: rate,
            one_way_delay: Duration::from_millis(delay),
            queue_cap: queue,
            loss_data: loss,
            ..PathSpec::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reliability: every profile pair on every path delivers exactly the
    /// requested bytes (plus FIN), whatever the loss pattern.
    #[test]
    fn transfers_always_complete_and_conserve_bytes(
        path in arb_path(),
        si in 0usize..16,
        ri in 0usize..16,
        bytes in 4_096u64..80_000,
        seed in any::<u64>(),
    ) {
        let ps = all_profiles();
        let sender = ps[si % ps.len()].clone();
        let receiver = ps[ri % ps.len()].clone();
        let out = run_transfer(sender.clone(), receiver.clone(), &path, bytes, seed);
        prop_assert!(
            out.completed,
            "{} -> {} failed on {:?}", sender.name, receiver.name, path
        );
        prop_assert_eq!(out.sender_stats.bytes_acked, bytes + 1, "data + FIN");
        // The receiver-side trace carries at least the payload bytes.
        let conn = Connection::split(&out.receiver_trace()).remove(0);
        let delivered = conn.payload_bytes(Dir::SenderToReceiver);
        prop_assert!(delivered >= bytes, "delivered {delivered} < {bytes}");
    }

    /// Soundness: perfect-filter traces never produce calibration
    /// evidence, and the generating profile never draws hard issues,
    /// regardless of path or peer.
    #[test]
    fn analyzer_never_false_alarms_on_perfect_traces(
        path in arb_path(),
        si in 0usize..16,
        bytes in 8_192u64..60_000,
        seed in any::<u64>(),
    ) {
        let ps = all_profiles();
        let sender = ps[si % ps.len()].clone();
        let out = run_transfer(sender.clone(), tcpa_tcpsim::profiles::reno(), &path, bytes, seed);
        prop_assume!(out.completed);
        let trace = out.sender_trace();
        let (clean, cal) = Calibrator::at_sender().calibrate(&trace);
        prop_assert!(
            cal.drop_evidence.is_empty(),
            "{}: false drop evidence {:?}", sender.name, cal.drop_evidence.first()
        );
        prop_assert!(cal.duplicates.is_empty());
        prop_assert!(cal.time_travel.is_empty());
        let conn = Connection::split(&clean).remove(0);
        if let Some(a) = analyze_sender(&conn, &sender) {
            prop_assert_eq!(
                a.hard_issues(), 0,
                "{} self-fit issues: {:?}", sender.name,
                a.issues.iter().take(2).collect::<Vec<_>>()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Robustness at the pipeline level: a corpus where a random subset of
    /// captures is mangled never panics the batch engine under the
    /// salvage policy, every item is accounted for, and the merged census
    /// is byte-identical whatever the worker count.
    #[test]
    fn mangled_corpus_batch_never_panics_and_is_deterministic(
        seed in any::<u64>(),
        n_faults in 1usize..4,
    ) {
        let ps = all_profiles();
        let mut items = Vec::new();
        for i in 0..8usize {
            let out = run_transfer(
                ps[(seed as usize + i) % ps.len()].clone(),
                tcpa_tcpsim::profiles::reno(),
                &PathSpec::default(),
                8 * 1024,
                seed ^ i as u64,
            );
            let bytes = pcap_io::write_pcap(
                &out.sender_trace(), Vec::new(), TsResolution::Micro, 0,
            ).unwrap();
            // Mangle every third capture.
            let bytes = if i % 3 == 0 {
                let spec = MangleSpec { seed: seed ^ 0xfa17, faults: n_faults, ..MangleSpec::default() };
                mangle(&bytes, &spec).0
            } else {
                bytes
            };
            items.push(CorpusItem::pcap_bytes(format!("m{i}"), bytes));
        }
        let config = |jobs| CorpusConfig {
            jobs,
            degrade: DegradePolicy::Salvage,
            ..CorpusConfig::default()
        };
        let one = analyze_corpus(MemorySource::new(items.clone()), &config(1));
        let four = analyze_corpus(MemorySource::new(items), &config(4));
        prop_assert_eq!(one.census.items_total, 8);
        prop_assert_eq!(one.census.panics, 0, "salvage policy must not panic");
        prop_assert_eq!(one.census.analyzed + one.census.salvaged + one.census.failed(), 8);
        prop_assert!(!one.aborted);
        prop_assert_eq!(one.render(), four.render(), "census must not depend on jobs");
    }
}
