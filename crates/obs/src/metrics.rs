//! Metrics exposition — the versioned `tcpa-metrics/v1` JSON schema.
//!
//! The document has exactly two parts:
//!
//! ```json
//! {
//!   "schema": "tcpa-metrics/v1",
//!   "counters": { "<name>": <u64>, ... },
//!   "wall_clock": {
//!     "elapsed_secs": <float>,
//!     "stages": {
//!       "<stage>": { "count": n, "total_ns": ..., "p50_ns": ...,
//!                     "p90_ns": ..., "p99_ns": ..., "max_ns": ... },
//!       ...
//!     },
//!     "stages_summary": { "count": ..., "total_ns": ..., "p50_ns": ...,
//!                          "p90_ns": ..., "p99_ns": ..., "max_ns": ... }
//!   }
//! }
//! ```
//!
//! `stages_summary` pools every `stage.*` histogram (the per-connection
//! pipeline stages; `analyze.*`/`ingest.*`/`detail.*` aggregates are
//! excluded so totals are not double-counted) into one distribution —
//! the operator's "how long does a stage usually take" answer without
//! reading N objects. The field is additive; the schema stays v1.
//!
//! **Determinism contract:** everything *outside* the top-level
//! `wall_clock` member depends only on the corpus and configuration —
//! same input, byte-identical, whatever the worker count. Everything
//! timing-dependent (stage histograms included — their *counts* are
//! deterministic but their bucket contents are wall time) lives under
//! `wall_clock`. [`strip_wall_clock`] removes that member for
//! comparisons.

use crate::hist::LogHistogram;
use crate::json::{self, Value};
use std::collections::BTreeMap;

/// The metrics document schema identifier.
pub const METRICS_SCHEMA: &str = "tcpa-metrics/v1";

/// The audit-trail document schema identifier.
pub const AUDIT_SCHEMA: &str = "tcpa-audit/v1";

/// A point-in-time copy of a [`crate::Registry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Stage duration histograms by name.
    pub stages: BTreeMap<&'static str, LogHistogram>,
}

impl MetricsSnapshot {
    /// The difference `self - earlier`, for measuring one phase of a
    /// longer run (both must come from the same registry).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(&k, &v)| {
                (
                    k,
                    v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                )
            })
            .collect();
        let stages = self
            .stages
            .iter()
            .map(|(&k, h)| match earlier.stages.get(k) {
                Some(prev) => (k, h.since(prev)),
                None => (k, h.clone()),
            })
            .collect();
        MetricsSnapshot { counters, stages }
    }

    /// Sum of recorded nanoseconds across the given stage names.
    pub fn stage_total_ns(&self, names: &[&str]) -> u64 {
        names
            .iter()
            .filter_map(|n| self.stages.get(n))
            .map(LogHistogram::sum)
            .sum()
    }

    /// The `wall_clock.stages` object for this snapshot.
    fn stages_object(&self) -> Value {
        Value::Obj(
            self.stages
                .iter()
                .map(|(name, h)| (name.to_string(), hist_object(h)))
                .collect(),
        )
    }

    /// Every `stage.*` histogram pooled into one distribution.
    pub fn stages_summary(&self) -> LogHistogram {
        let mut pooled = LogHistogram::new();
        for (name, h) in &self.stages {
            if name.starts_with("stage.") {
                pooled.merge(h);
            }
        }
        pooled
    }

    /// One human-readable line over the pooled stage distribution, for
    /// `-v` output. Empty when no stages ran.
    pub fn human_summary(&self) -> Option<String> {
        let pooled = self.stages_summary();
        if pooled.count() == 0 {
            return None;
        }
        let ms = |ns: u64| ns as f64 / 1e6;
        Some(format!(
            "stages: {} spans, p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms, max {:.2} ms",
            pooled.count(),
            ms(pooled.percentile(50.0)),
            ms(pooled.percentile(90.0)),
            ms(pooled.percentile(99.0)),
            ms(pooled.max()),
        ))
    }

    /// Renders the full `tcpa-metrics/v1` document. `elapsed_secs` is
    /// the run's wall clock as measured by the caller.
    pub fn to_json(&self, elapsed_secs: f64) -> String {
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Str(METRICS_SCHEMA.into())),
            ("counters".into(), json::counters_object(&self.counters)),
            (
                "wall_clock".into(),
                Value::Obj(vec![
                    (
                        "elapsed_secs".into(),
                        Value::Num(format!("{elapsed_secs:.6}")),
                    ),
                    ("stages".into(), self.stages_object()),
                    ("stages_summary".into(), hist_object(&self.stages_summary())),
                ]),
            ),
        ]);
        doc.to_json()
    }
}

/// One histogram as its exposition object.
fn hist_object(h: &LogHistogram) -> Value {
    let num = |v: u64| Value::Num(v.to_string());
    Value::Obj(vec![
        ("count".into(), num(h.count())),
        ("total_ns".into(), num(h.sum())),
        ("p50_ns".into(), num(h.percentile(50.0))),
        ("p90_ns".into(), num(h.percentile(90.0))),
        ("p99_ns".into(), num(h.percentile(99.0))),
        ("max_ns".into(), num(h.max())),
    ])
}

/// Returns the document with the top-level `wall_clock` member removed —
/// the deterministic part of a metrics file, re-serialized canonically.
pub fn strip_wall_clock(metrics_json: &str) -> Result<String, String> {
    let doc = Value::parse(metrics_json)?;
    Ok(doc.without_key("wall_clock").to_json())
}

fn require<'a>(obj: &'a Value, key: &str, what: &str) -> Result<&'a Value, String> {
    obj.get(key)
        .ok_or_else(|| format!("{what}: missing {key:?}"))
}

fn require_u64(obj: &Value, key: &str, what: &str) -> Result<u64, String> {
    require(obj, key, what)?
        .as_u64()
        .ok_or_else(|| format!("{what}: {key:?} is not a non-negative integer"))
}

/// Validates a `tcpa-metrics/v1` document, returning the first problem.
pub fn validate_metrics(text: &str) -> Result<(), String> {
    let doc = Value::parse(text)?;
    match require(&doc, "schema", "metrics")?.as_str() {
        Some(METRICS_SCHEMA) => {}
        other => {
            return Err(format!(
                "metrics: schema {other:?}, want {METRICS_SCHEMA:?}"
            ))
        }
    }
    let counters = require(&doc, "counters", "metrics")?
        .as_obj()
        .ok_or("metrics: counters is not an object")?;
    for (name, value) in counters {
        value
            .as_u64()
            .ok_or_else(|| format!("metrics: counter {name:?} is not a non-negative integer"))?;
    }
    let wall = require(&doc, "wall_clock", "metrics")?;
    require(wall, "elapsed_secs", "metrics.wall_clock")?
        .as_f64()
        .ok_or("metrics: elapsed_secs is not a number")?;
    let stages = require(wall, "stages", "metrics.wall_clock")?
        .as_obj()
        .ok_or("metrics: stages is not an object")?;
    for (name, stage) in stages {
        let what = format!("metrics stage {name:?}");
        for field in ["count", "total_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns"] {
            require_u64(stage, field, &what)?;
        }
    }
    // Additive in-place on v1; tolerate its absence in older documents.
    if let Some(summary) = wall.get("stages_summary") {
        for field in ["count", "total_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns"] {
            require_u64(summary, field, "metrics.wall_clock.stages_summary")?;
        }
    }
    Ok(())
}

/// Validates a `tcpa-audit/v1` document, returning the first problem.
pub fn validate_audit(text: &str) -> Result<(), String> {
    let doc = Value::parse(text)?;
    match require(&doc, "schema", "audit")?.as_str() {
        Some(AUDIT_SCHEMA) => {}
        other => return Err(format!("audit: schema {other:?}, want {AUDIT_SCHEMA:?}")),
    }
    require(&doc, "trace", "audit")?
        .as_str()
        .ok_or("audit: trace is not a string")?;
    require_u64(&doc, "index", "audit")?;
    require(&doc, "outcome", "audit")?
        .as_str()
        .ok_or("audit: outcome is not a string")?;
    require_u64(&doc, "events_dropped", "audit")?;
    let wall = require(&doc, "wall_clock", "audit")?;
    require_u64(wall, "total_ns", "audit.wall_clock")?;
    let events = require(&doc, "events", "audit")?
        .as_arr()
        .ok_or("audit: events is not an array")?;
    for (i, event) in events.iter().enumerate() {
        let what = format!("audit event {i}");
        let seq = require_u64(event, "seq", &what)?;
        if seq != i as u64 {
            return Err(format!("{what}: seq {seq} out of order"));
        }
        match require(event, "kind", &what)?.as_str() {
            Some("stage" | "retry" | "error" | "verdict" | "info") => {}
            other => return Err(format!("{what}: unknown kind {other:?}")),
        }
        require(event, "name", &what)?
            .as_str()
            .ok_or_else(|| format!("{what}: name is not a string"))?;
        require(event, "detail", &what)?
            .as_str()
            .ok_or_else(|| format!("{what}: detail is not a string"))?;
        if let Some(dur) = event.get("dur_ns") {
            dur.as_u64()
                .ok_or_else(|| format!("{what}: dur_ns is not a non-negative integer"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use std::time::Duration;

    fn sample() -> MetricsSnapshot {
        let r = Registry::new();
        r.add("corpus.analyzed", 3);
        r.declare("corpus.io_retries");
        r.record("stage.calibrate", Duration::from_micros(120));
        r.record("stage.calibrate", Duration::from_micros(80));
        r.record("analyze.total", Duration::from_micros(250));
        r.snapshot()
    }

    #[test]
    fn exposition_validates_and_strips() {
        let json = sample().to_json(1.25);
        validate_metrics(&json).expect("valid metrics document");
        let stripped = strip_wall_clock(&json).expect("strip");
        assert!(stripped.contains("corpus.analyzed"));
        assert!(!stripped.contains("wall_clock"));
        assert!(!stripped.contains("elapsed_secs"));
        // Stripping is idempotent.
        assert_eq!(strip_wall_clock(&stripped).unwrap(), stripped);
    }

    #[test]
    fn validators_reject_wrong_schema_and_shape() {
        assert!(validate_metrics("{}").is_err());
        assert!(validate_metrics(r#"{"schema": "nope"}"#).is_err());
        let mut json = sample().to_json(0.0);
        json = json.replace("\"count\"", "\"qount\"");
        assert!(validate_metrics(&json).is_err());
        assert!(validate_audit(r#"{"schema": "tcpa-audit/v2"}"#).is_err());
    }

    #[test]
    fn since_isolates_a_phase() {
        let r = Registry::new();
        r.add("n", 1);
        r.record("stage.x", Duration::from_nanos(100));
        let early = r.snapshot();
        r.add("n", 4);
        r.record("stage.x", Duration::from_nanos(900));
        let delta = r.snapshot().since(&early);
        assert_eq!(delta.counters.get("n"), Some(&4));
        let h = delta.stages.get("stage.x").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 900);
    }

    #[test]
    fn stages_summary_pools_stage_histograms_only() {
        let snap = sample();
        let pooled = snap.stages_summary();
        // Two stage.calibrate samples; analyze.total is excluded.
        assert_eq!(pooled.count(), 2);
        assert_eq!(pooled.sum(), 200_000);
        let line = snap.human_summary().expect("stages ran");
        assert!(line.starts_with("stages: 2 spans"), "{line}");
        assert!(line.contains("p99"), "{line}");
        assert!(MetricsSnapshot::default().human_summary().is_none());
    }

    #[test]
    fn stage_total_sums_named_stages() {
        let snap = sample();
        let total = snap.stage_total_ns(&["stage.calibrate", "missing"]);
        assert_eq!(total, 200_000);
    }
}
