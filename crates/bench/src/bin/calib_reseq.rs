//! Regenerates one artifact of the paper; see DESIGN.md §5.
fn main() {
    print!(
        "{}",
        tcpa_bench::scenarios::calibration::resequencing().render()
    );
}
