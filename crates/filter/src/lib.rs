#![warn(missing_docs)]

//! `tcpa-filter` — the packet-filter *measurement* simulator.
//!
//! The paper's §3 is about a hard-won lesson: the trace is not the truth.
//! This crate manufactures realistic measurement error by transforming the
//! perfect per-host wire records (`tcpa-netsim` taps) into the trace an
//! imperfect packet filter would have written:
//!
//! * **drops** (§3.1.1) — records the filter failed to write, distinct
//!   from genuine network drops;
//! * **additions** (§3.1.2) — the IRIX 5.2/5.3 bug that records each
//!   outgoing packet twice, the first copy paced at the OS sourcing rate
//!   (~2.5 MB/s in Figure 1) and the second at the true Ethernet wire
//!   time;
//! * **resequencing** (§3.1.3) — the Solaris 2.3/2.4 two-code-path effect
//!   where inbound packets queue longer than outbound ones before being
//!   timestamped, scrambling cause and effect on sub-millisecond scales;
//! * **timing** (§3.1.4) — clock offset, skew, and step adjustments; a
//!   backward step yields "time travel" (timestamps that decrease);
//! * **snap length** — header-only capture, which removes the ability to
//!   verify TCP checksums (forcing §7's behavioral corruption inference).
//!
//! The output of [`apply`] is a [`Trace`](tcpa_trace::Trace) in *filter write order* with
//! *filter clock timestamps* — exactly what `tcpanaly` must calibrate.

pub mod clock;
pub mod model;

pub use clock::ClockModel;
pub use model::{apply, DropModel, DupModel, FilterConfig, FilterReport, ReseqModel};
