#![warn(missing_docs)]

//! `tcpa-tcpsim` — configurable TCP endpoint simulators.
//!
//! This crate is the stand-in for the real TCP kernels of the paper's
//! study (Table 1). A single state machine, [`TcpEndpoint`], implements
//! connection establishment, reliable transfer, congestion control, RTO
//! management and acknowledgment generation; a [`TcpConfig`] of behavior
//! flags selects between the catalogued per-implementation variants and
//! bugs:
//!
//! * §8.1/§8.2 — generic Tahoe and Reno congestion behavior (Eqn 1 vs the
//!   super-linear Eqn 2 increase, fast retransmit, fast recovery);
//! * §8.3 — the minor-variant matrix (header-prediction and fencepost
//!   bugs, MSS confusion, ssthresh rounding, slow-start boundary test,
//!   dup-ack bookkeeping bugs, cwnd initialized from the offered MSS);
//! * §8.4 — the Net/3 uninitialized-cwnd bug;
//! * §8.5 — Linux 1.0's broken retransmission (burst retransmission of
//!   everything in flight, retransmitting on the first duplicate ack, no
//!   fast retransmit, ssthresh initialized to one segment);
//! * §8.6 — Solaris 2.3/2.4's broken RTO (≈300 ms initial value, reset to
//!   that value on any ack covering retransmitted data) and its odd
//!   retransmit-next-after-ack behavior;
//! * §9 — receiver ack policies: the BSD 200 ms heartbeat, the Solaris
//!   50 ms per-packet timer, and Linux 1.0's ack-every-packet;
//! * §6.2 — the per-implementation responses to ICMP source quench;
//! * §10 — reconstructions of the contributed implementations (Linux 2.0,
//!   Windows 95, Trumpet/Winsock).
//!
//! The congestion arithmetic lives in [`congestion`] as *pure functions of
//! the config*, because the analyzer in the `tcpanaly` crate replays the
//! same rules against traces — one behavioral spec, two consumers.

pub mod config;
pub mod congestion;
pub mod endpoint;
pub mod harness;
pub mod profiles;
pub mod rtt;

pub use config::{
    AckPolicy, CwndIncrease, FastRecovery, Lineage, QuenchResponse, RtoScheme, TcpConfig,
};
pub use congestion::CcState;
pub use endpoint::{EndpointStats, Role, TcpEndpoint};
pub use harness::{run_transfer, run_transfer_with, Extras, PathSpec, TransferOutcome};
pub use profiles::{all_profiles, profile_by_name};
pub use rtt::RttEstimator;
