//! `gen_trace` — generate a pcap capture of a simulated TCP implementation,
//! for feeding to the `tcpanaly` CLI (or to Wireshark).
//!
//! ```text
//! gen_trace --impl "Linux 1.0" --bytes 102400 --rate 256000 \
//!           --delay-ms 60 --loss-every 20 --seed 7 --out linux.pcap
//! ```

use tcpa_netsim::LossModel;
use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles::{all_profiles, profile_by_name};
use tcpa_trace::{pcap_io, Duration};
use tcpa_wire::TsResolution;

const USAGE: &str = "usage: gen_trace [options]

options:
  --impl NAME       sending implementation (default: Generic Reno)
  --receiver NAME   receiving implementation (default: Generic Reno)
  --bytes N         transfer size (default: 102400)
  --rate BPS        bottleneck rate in bits/sec (default: 1544000)
  --delay-ms MS     one-way WAN delay (default: 30)
  --loss-every N    drop every Nth data packet (default: none)
  --seed N          simulation seed (default: 1)
  --vantage V       'sender' or 'receiver' tap (default: sender)
  --out FILE        output pcap (default: trace.pcap)
  --list-impls      list implementations and exit
";

fn main() {
    let mut sender = "Generic Reno".to_string();
    let mut receiver = "Generic Reno".to_string();
    let mut bytes: u64 = 102_400;
    let mut path = PathSpec::default();
    let mut seed: u64 = 1;
    let mut vantage = "sender".to_string();
    let mut out_file = "trace.pcap".to_string();

    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, what: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("gen_trace: {what} requires a value\n{USAGE}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--impl" => sender = next(&mut args, "--impl"),
            "--receiver" => receiver = next(&mut args, "--receiver"),
            "--bytes" => bytes = next(&mut args, "--bytes").parse().expect("--bytes"),
            "--rate" => path.rate_bps = next(&mut args, "--rate").parse().expect("--rate"),
            "--delay-ms" => {
                path.one_way_delay = Duration::from_millis(
                    next(&mut args, "--delay-ms").parse().expect("--delay-ms"),
                )
            }
            "--loss-every" => {
                path.loss_data = LossModel::Periodic(
                    next(&mut args, "--loss-every")
                        .parse()
                        .expect("--loss-every"),
                )
            }
            "--seed" => seed = next(&mut args, "--seed").parse().expect("--seed"),
            "--vantage" => vantage = next(&mut args, "--vantage"),
            "--out" => out_file = next(&mut args, "--out"),
            "--list-impls" => {
                for p in all_profiles() {
                    println!("{}", p.name);
                }
                return;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => {
                eprintln!("gen_trace: unknown option {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let lookup = |name: &str| {
        profile_by_name(name).unwrap_or_else(|| {
            eprintln!("gen_trace: unknown implementation {name:?} (try --list-impls)");
            std::process::exit(2);
        })
    };
    let out = run_transfer(lookup(&sender), lookup(&receiver), &path, bytes, seed);
    let trace = match vantage.as_str() {
        "sender" => out.sender_trace(),
        "receiver" => out.receiver_trace(),
        other => {
            eprintln!("gen_trace: vantage must be 'sender' or 'receiver', got {other}");
            std::process::exit(2);
        }
    };
    let file = std::fs::File::create(&out_file).expect("create output");
    pcap_io::write_pcap(&trace, file, TsResolution::Micro, 0).expect("write pcap");
    eprintln!(
        "wrote {} ({} records; {} data pkts, {} retransmissions, {} drops, completed: {})",
        out_file,
        trace.len(),
        out.sender_stats.data_packets_sent,
        out.sender_stats.retransmissions,
        out.truth.total_drops(),
        out.completed,
    );
}
