//! Property-based tests for the network simulator: packet conservation,
//! tap-ordering invariants, and determinism under arbitrary parameters.

use proptest::prelude::*;
use tcpa_netsim::{
    Engine, HostId, LinkParams, LossModel, NetBuilder, Packet, PacketKind, Stack, TapDir,
};
use tcpa_trace::{Duration, Time};
use tcpa_wire::{Ipv4Addr, SeqNum, TcpFlags, TcpRepr};

/// A stack that emits `count` packets, `per_tick` per timer tick.
struct Pump {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    remaining: u32,
    per_tick: u32,
    interval: Duration,
    next: Option<Time>,
    received: u32,
}

impl Pump {
    fn emit(&mut self, out: &mut Vec<Packet>) {
        for _ in 0..self.per_tick.min(self.remaining) {
            let mut tcp = TcpRepr::new(7, 8);
            tcp.flags = TcpFlags::ACK;
            tcp.seq = SeqNum(self.remaining * 100);
            out.push(Packet::tcp(
                self.src,
                self.dst,
                self.remaining as u16,
                tcp,
                512,
            ));
            self.remaining -= 1;
        }
    }
}

impl Stack for Pump {
    fn start(&mut self, now: Time, out: &mut Vec<Packet>) {
        self.emit(out);
        if self.remaining > 0 {
            self.next = Some(now + self.interval);
        }
    }
    fn on_packet(&mut self, _now: Time, _pkt: Packet, _out: &mut Vec<Packet>) {
        self.received += 1;
    }
    fn on_timer(&mut self, now: Time, out: &mut Vec<Packet>) {
        self.emit(out);
        self.next = if self.remaining > 0 {
            Some(now + self.interval)
        } else {
            None
        };
    }
    fn next_timer(&self) -> Option<Time> {
        self.next
    }
    fn done(&self) -> bool {
        self.remaining == 0
    }
    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
}

#[allow(clippy::too_many_arguments)]
fn build(
    count: u32,
    per_tick: u32,
    interval_us: i64,
    rate: u64,
    delay_ms: i64,
    queue: usize,
    loss: LossModel,
    seed: u64,
) -> (Engine, HostId, HostId) {
    let a_addr = Ipv4Addr::from_host_id(1);
    let b_addr = Ipv4Addr::from_host_id(2);
    let (nb, a, b) = NetBuilder::two_endpoint_path(
        a_addr,
        b_addr,
        Duration::from_micros(100),
        LinkParams::wan(rate, Duration::from_millis(delay_ms), queue).with_loss(loss),
        LinkParams::wan(rate, Duration::from_millis(delay_ms), queue),
    );
    let pump = Pump {
        src: a_addr,
        dst: b_addr,
        remaining: count,
        per_tick,
        interval: Duration::from_micros(interval_us),
        next: None,
        received: 0,
    };
    let sink = Pump {
        src: b_addr,
        dst: a_addr,
        remaining: 0,
        per_tick: 0,
        interval: Duration::from_micros(1),
        next: None,
        received: 0,
    };
    let mut engine = nb.build(vec![(a, Box::new(pump)), (b, Box::new(sink))], seed);
    engine.enable_tap(a);
    engine.enable_tap(b);
    (engine, a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every packet either arrives at the receiver's tap or appears in
    /// the ground-truth drop lists — none vanish, none duplicate.
    #[test]
    fn packet_conservation(
        count in 1u32..60,
        per_tick in 1u32..6,
        interval_us in 100i64..20_000,
        rate in 32_000u64..10_000_000,
        delay_ms in 1i64..200,
        queue in 1usize..30,
        p_loss in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        let (mut engine, a, b) = build(
            count, per_tick, interval_us, rate, delay_ms, queue,
            LossModel::Bernoulli(p_loss), seed,
        );
        engine.run_until(Time::from_secs(3600));
        let sent = engine
            .tap_events(a)
            .iter()
            .filter(|e| e.dir == TapDir::Out)
            .count();
        let received = engine
            .tap_events(b)
            .iter()
            .filter(|e| e.dir == TapDir::In)
            .count();
        let truth = engine.ground_truth();
        // Note: queue drops at the *sender's own LAN interface* never
        // reach the tap, so account from emissions.
        prop_assert_eq!(
            count as usize,
            received + truth.total_drops(),
            "emitted = delivered + dropped (sent at tap: {})", sent
        );
    }

    /// Tap events are non-decreasing in time and outbound stack
    /// timestamps never exceed wire timestamps.
    #[test]
    fn tap_invariants(
        count in 1u32..40,
        per_tick in 1u32..5,
        interval_us in 100i64..10_000,
        seed in any::<u64>(),
    ) {
        let (mut engine, a, _) = build(
            count, per_tick, interval_us, 1_000_000, 20, 50, LossModel::None, seed,
        );
        engine.run_until(Time::from_secs(3600));
        let events = engine.tap_events(a);
        for w in events.windows(2) {
            prop_assert!(w[0].t_wire <= w[1].t_wire);
        }
        for ev in events {
            if ev.dir == TapDir::Out {
                let t_stack = ev.t_stack.expect("outbound has stack time");
                prop_assert!(t_stack <= ev.t_wire);
            } else {
                prop_assert!(ev.t_stack.is_none());
            }
            let is_tcp = matches!(ev.pkt.kind, PacketKind::Tcp { .. });
            prop_assert!(is_tcp);
            prop_assert!(ev.pkt.uid != 0, "uid assigned before the wire");
        }
    }

    /// Identical seeds and parameters give bit-identical tap sequences.
    #[test]
    fn engine_is_deterministic(
        count in 1u32..40,
        p_loss in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        let run = |seed| {
            let (mut engine, a, _) = build(
                count, 2, 500, 256_000, 30, 10, LossModel::Bernoulli(p_loss), seed,
            );
            engine.run_until(Time::from_secs(3600));
            engine
                .tap_events(a)
                .iter()
                .map(|e| (e.t_wire, e.pkt.uid, e.dir == TapDir::Out))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
