#![warn(missing_docs)]

//! Umbrella crate for the tcpanaly reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so the examples and
//! cross-crate integration tests read naturally. Library users should
//! depend on the individual crates (`tcpanaly`, `tcpa-tcpsim`, …)
//! directly.

pub use tcpa_filter as filter;
pub use tcpa_netsim as netsim;
pub use tcpa_tcpsim as tcpsim;
pub use tcpa_trace as trace;
pub use tcpa_wire as wire;
pub use tcpanaly as analy;
