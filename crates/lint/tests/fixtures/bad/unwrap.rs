// Bad: every shape the no-unwrap-in-analyzer rule must catch.
fn analyzer_path(records: &[u8], i: usize, j: usize) -> u8 {
    let first = records.first().unwrap();
    let second = records.get(1).expect("second record");
    if i > j {
        panic!("bounds lied");
    }
    let _window = &records[i..j];
    *first + *second
}
