//! Property-based tests on the shared behavior rules: congestion-window
//! invariants under arbitrary event sequences, and RTO estimator bounds.

use proptest::prelude::*;
use tcpa_tcpsim::config::{RtoScheme, TcpConfig};
use tcpa_tcpsim::congestion::{CcState, HUGE_WINDOW};
use tcpa_tcpsim::profiles::all_profiles;
use tcpa_tcpsim::rtt::RttEstimator;
use tcpa_trace::Duration;
use tcpa_wire::SeqNum;

/// The congestion events a connection can experience.
#[derive(Debug, Clone, Copy)]
enum CcEvent {
    Ack,
    DupInflate,
    FastRetransmit(u32),
    Timeout(u32),
    Quench,
    ExitRecovery,
}

fn arb_event() -> impl Strategy<Value = CcEvent> {
    prop_oneof![
        5 => Just(CcEvent::Ack),
        1 => Just(CcEvent::DupInflate),
        1 => (1u32..64).prop_map(CcEvent::FastRetransmit),
        1 => (1u32..64).prop_map(CcEvent::Timeout),
        1 => Just(CcEvent::Quench),
        1 => Just(CcEvent::ExitRecovery),
    ]
}

fn apply(st: &mut CcState, cfg: &TcpConfig, mss: u32, ev: CcEvent) {
    match ev {
        CcEvent::Ack => {
            if st.in_recovery {
                st.exit_recovery(cfg, mss);
            } else {
                st.open_window(cfg, mss);
            }
        }
        CcEvent::DupInflate => {
            if st.in_recovery {
                st.recovery_inflate(mss);
            }
        }
        CcEvent::FastRetransmit(flight_segs) => {
            let flight = u64::from(flight_segs) * u64::from(mss);
            st.enter_fast_retransmit(cfg, mss, flight, SeqNum(flight_segs * mss));
        }
        CcEvent::Timeout(flight_segs) => {
            st.on_timeout(cfg, mss, u64::from(flight_segs) * u64::from(mss));
        }
        CcEvent::Quench => st.on_quench(cfg, mss),
        CcEvent::ExitRecovery => {
            if st.in_recovery {
                st.exit_recovery(cfg, mss);
            }
        }
    }
}

proptest! {
    /// Under any event sequence, for every profile: cwnd stays within
    /// [1 byte, HUGE_WINDOW], ssthresh respects its configured floor, and
    /// recovery state stays coherent.
    #[test]
    fn cwnd_invariants_hold_for_every_profile(
        profile_idx in 0usize..32,
        events in proptest::collection::vec(arb_event(), 0..200),
        peer_sent_mss in any::<bool>(),
    ) {
        let profiles = all_profiles();
        let cfg = &profiles[profile_idx % profiles.len()];
        let mss = cfg.cwnd_mss(if peer_sent_mss { Some(1460) } else { None });
        let mut st = CcState::at_establishment(cfg, mss, peer_sent_mss);
        let floor = u64::from(cfg.min_ssthresh_segs) * u64::from(mss);
        for ev in events {
            let was_retx_cut = matches!(ev, CcEvent::FastRetransmit(_) | CcEvent::Timeout(_));
            apply(&mut st, cfg, mss, ev);
            prop_assert!(st.cwnd >= 1, "{}: cwnd reached 0", cfg.name);
            prop_assert!(st.cwnd <= HUGE_WINDOW, "{}: cwnd overflow", cfg.name);
            // Retransmission cuts respect the configured floor; the quench
            // path has its own one-MSS floor (and Solaris *initializes*
            // ssthresh to one MSS), so the invariant holds per-event, not
            // globally.
            if was_retx_cut {
                prop_assert!(
                    st.ssthresh >= floor,
                    "{}: ssthresh {} under floor {} right after a cut",
                    cfg.name, st.ssthresh, floor
                );
            }
            prop_assert!(
                st.ssthresh >= u64::from(mss),
                "{}: ssthresh {} below one MSS", cfg.name, st.ssthresh
            );
            if st.in_recovery {
                prop_assert!(
                    cfg.fast_recovery == tcpa_tcpsim::config::FastRecovery::Reno,
                    "{}: recovery without Reno recovery", cfg.name
                );
            }
        }
    }

    /// The RTO always stays within the configured clamps, for arbitrary
    /// interleavings of samples, timeouts and retransmit-ack resets.
    #[test]
    fn rto_always_clamped(
        profile_idx in 0usize..32,
        ops in proptest::collection::vec((0u8..3, 1i64..20_000), 0..100),
    ) {
        let profiles = all_profiles();
        let cfg = &profiles[profile_idx % profiles.len()];
        let mut est = RttEstimator::new(cfg);
        // The initial RTO itself must respect the clamps up to
        // quantization.
        let g = cfg.rto_granularity;
        let upper = Duration(((cfg.max_rto.as_nanos() + g.as_nanos() - 1) / g.as_nanos()) * g.as_nanos());
        for (op, ms) in ops {
            match op {
                0 => est.sample(Duration::from_millis(ms)),
                1 => est.on_timeout(),
                _ => est.on_ack_of_retransmitted(),
            }
            let rto = est.rto();
            prop_assert!(rto >= cfg.min_rto, "{}: rto {} below min", cfg.name, rto);
            prop_assert!(rto <= upper, "{}: rto {} above max", cfg.name, rto);
        }
    }

    /// Fixed-scheme estimators never move off the initial value, whatever
    /// they observe (except clamped backoff).
    #[test]
    fn fixed_scheme_pins_rto(samples in proptest::collection::vec(1i64..60_000, 0..50)) {
        let cfg = TcpConfig {
            rto_scheme: RtoScheme::Fixed,
            ..TcpConfig::generic_reno()
        };
        let mut est = RttEstimator::new(&cfg);
        let initial = est.rto();
        for ms in samples {
            est.sample(Duration::from_millis(ms));
            prop_assert_eq!(est.rto(), initial);
        }
    }

    /// Solaris reset: after any history, one ack-of-retransmitted-data
    /// restores the initial RTO exactly.
    #[test]
    fn solaris_reset_is_total(samples in proptest::collection::vec(100i64..10_000, 1..40)) {
        let cfg = TcpConfig {
            rto_scheme: RtoScheme::SolarisBroken,
            initial_rto: Duration::from_millis(300),
            min_rto: Duration::from_millis(200),
            rto_granularity: Duration::from_millis(50),
            ..TcpConfig::generic_reno()
        };
        let mut est = RttEstimator::new(&cfg);
        let virgin = est.rto();
        for ms in samples {
            est.sample(Duration::from_millis(ms));
        }
        est.on_ack_of_retransmitted();
        prop_assert_eq!(est.rto(), virgin);
    }
}
