//! Scenario builders — one per table/figure of the paper (DESIGN.md §5).

pub mod ablation;
pub mod calibration;
pub mod conformance;
pub mod corpus;
pub mod figures;
pub mod fingerprints;
pub mod policy;
pub mod robustness;
pub mod table1;
pub mod variants;

use crate::Section;

/// Every scenario in paper order, for `repro_all`.
pub fn all() -> Vec<Section> {
    vec![
        table1::run(),
        figures::fig1(),
        figures::fig2(),
        figures::fig3(),
        figures::fig4(),
        figures::fig5(),
        calibration::drops(),
        calibration::resequencing(),
        calibration::time_travel(),
        calibration::quench(),
        fingerprints::confusion_matrix(),
        policy::ack_policy(),
        policy::response_delay(),
        variants::run(),
        conformance::run(),
        ablation::run(),
        corpus::run(),
        robustness::run(),
    ]
}
