//! Robustness properties: whatever a packet filter does to a trace —
//! sheds records, duplicates them, scrambles their order, warps their
//! clock, truncates their payloads — the analyzer must neither panic nor
//! blame the TCP for the filter's sins when told about the filter.

use proptest::prelude::*;
use tcpa_filter::{apply, ClockModel, DropModel, DupModel, FilterConfig, ReseqModel};
use tcpa_netsim::LossModel;
use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles::all_profiles;
use tcpa_trace::{Connection, Duration, Time};
use tcpanaly::calibrate::Calibrator;
use tcpanaly::receiver::analyze_receiver;
use tcpanaly::sender::analyze_sender;
use tcpanaly::Analyzer;

fn arb_filter() -> impl Strategy<Value = FilterConfig> {
    (
        prop_oneof![
            3 => Just(DropModel::None),
            1 => (0.0f64..0.2).prop_map(DropModel::Bernoulli),
            1 => (0usize..80, 1usize..20)
                .prop_map(|(start, len)| DropModel::Burst { start, len }),
        ],
        any::<bool>(),
        any::<bool>(),
        prop_oneof![
            2 => Just(ClockModel::perfect()),
            1 => (-500.0f64..500.0, 1i64..5, 1i64..200).prop_map(|(ppm, period, step)| {
                ClockModel::fast_with_periodic_sync(
                    ppm,
                    Duration::from_secs(period),
                    Duration::from_millis(step),
                    Time::from_secs(120),
                )
            }),
        ],
        any::<bool>(),
    )
        .prop_map(|(drops, dup, reseq, clock, headers_only)| FilterConfig {
            drops,
            duplication: dup.then(DupModel::default),
            resequencing: reseq.then(ReseqModel::default),
            clock,
            headers_only,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full pipeline digests any filter-mangled trace of any
    /// implementation without panicking, and the report renders.
    #[test]
    fn analyzer_never_panics_on_mangled_traces(
        profile_idx in 0usize..32,
        filter in arb_filter(),
        loss in prop_oneof![2 => Just(LossModel::None), 1 => (10u64..40).prop_map(LossModel::Periodic)],
        seed in any::<u64>(),
    ) {
        let profiles = all_profiles();
        let cfg = profiles[profile_idx % profiles.len()].clone();
        let path = PathSpec {
            loss_data: loss,
            ..PathSpec::default()
        };
        let out = run_transfer(cfg.clone(), profiles[0].clone(), &path, 48 * 1024, seed);
        let (measured, _) = apply(&out.sender_tap, &filter, seed);

        // Calibrate + full façade from both vantages.
        let _ = Calibrator::at_sender().calibrate(&measured);
        let report = Analyzer::at_sender().analyze(&measured);
        let _ = report.render();
        let report = Analyzer::at_receiver().analyze(&measured);
        let _ = report.render();

        // And direct module entry points on whatever connections remain.
        let (clean, _) = Calibrator::new().calibrate(&measured);
        for conn in Connection::split(&clean) {
            let _ = analyze_sender(&conn, &cfg);
            let _ = analyze_receiver(&conn);
            let _ = tcpanaly::handshake::analyze_handshake(&conn);
            let _ = tcpanaly::fingerprint::fingerprint_receiver(&conn);
        }
    }

    /// With a *clean* filter, the generating profile never collects hard
    /// issues, whatever the path loss or the peer.
    #[test]
    fn self_fit_is_loss_invariant(
        profile_idx in 0usize..32,
        peer_idx in 0usize..32,
        every in 8u64..40,
        seed in any::<u64>(),
    ) {
        let profiles = all_profiles();
        let cfg = profiles[profile_idx % profiles.len()].clone();
        let peer = profiles[peer_idx % profiles.len()].clone();
        let path = PathSpec {
            loss_data: LossModel::Periodic(every),
            ..PathSpec::default()
        };
        let out = run_transfer(cfg.clone(), peer, &path, 48 * 1024, seed);
        prop_assume!(out.completed);
        let conn = Connection::split(&out.sender_trace()).remove(0);
        if let Some(a) = analyze_sender(&conn, &cfg) {
            prop_assert_eq!(
                a.hard_issues(),
                0,
                "{} issues: {:?}",
                cfg.name,
                a.issues.iter().take(2).collect::<Vec<_>>()
            );
        }
    }
}
