//! Inline suppressions.
//!
//! A finding is silenced by a comment on the same line, or on a
//! comment-only line directly above, of the form
//!
//! ```text
//! // tcpa-lint: allow(no-unwrap-in-analyzer) -- bounds proven by the split loop above
//! ```
//!
//! The justification after `--` is mandatory: an allow without a reason
//! is itself reported (as `malformed-suppression`), so every exemption
//! in the tree documents *why* the contract does not apply. Unknown rule
//! names are likewise malformed — a typo must not silently disable
//! nothing.

use crate::lexer::{Comment, Tok};
use crate::rules::{Finding, MALFORMED_RULE, RULE_NAMES};

/// One parsed, well-formed allow.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule being allowed.
    pub rule: String,
    /// Mandatory justification text.
    pub justification: String,
    /// Line the comment sits on.
    pub comment_line: u32,
    /// Line the allow applies to (same line, or the next code line when
    /// the comment stands alone).
    pub target_line: u32,
}

/// The marker that makes a comment a suppression attempt.
const MARKER: &str = "tcpa-lint:";

/// Extracts allows from a file's comments. Comments that contain the
/// marker but do not parse become `malformed-suppression` findings.
pub fn parse(path: &str, comments: &[Comment], tokens: &[Tok]) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for c in comments {
        let Some(at) = c.text.find(MARKER) else {
            continue;
        };
        let rest = c.text[at + MARKER.len()..].trim();
        match parse_allow(rest) {
            Ok((rule, justification)) => {
                let target_line = target_of(c.line, tokens);
                allows.push(Allow {
                    rule,
                    justification,
                    comment_line: c.line,
                    target_line,
                });
            }
            Err(why) => malformed.push(Finding {
                path: path.to_string(),
                line: c.line,
                col: 1,
                rule: MALFORMED_RULE.to_string(),
                message: format!("unparseable `tcpa-lint:` comment: {why}"),
            }),
        }
    }
    (allows, malformed)
}

fn parse_allow(rest: &str) -> Result<(String, String), String> {
    let body = rest
        .strip_prefix("allow(")
        .ok_or("expected `allow(<rule>)` after the marker")?;
    let close = body.find(')').ok_or("missing `)` after the rule name")?;
    let rule = body[..close].trim();
    if !RULE_NAMES.contains(&rule) {
        return Err(format!(
            "unknown rule {rule:?} (known: {})",
            RULE_NAMES.join(", ")
        ));
    }
    let after = body[close + 1..].trim_start();
    let justification = after
        .strip_prefix("--")
        .ok_or("missing ` -- <justification>` after the rule")?
        .trim();
    if justification.is_empty() {
        return Err("empty justification: say why the contract does not apply here".into());
    }
    Ok((rule.to_string(), justification.to_string()))
}

/// A `//` comment is always the last thing on its line, so any code
/// token sharing the line means same-line targeting; otherwise the allow
/// points at the next line that has code.
fn target_of(comment_line: u32, tokens: &[Tok]) -> u32 {
    if tokens.iter().any(|t| t.line == comment_line) {
        return comment_line;
    }
    tokens
        .iter()
        .map(|t| t.line)
        .filter(|&l| l > comment_line)
        .min()
        .unwrap_or(comment_line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> (Vec<Allow>, Vec<Finding>) {
        let lexed = lex(src);
        parse("a.rs", &lexed.comments, &lexed.tokens)
    }

    #[test]
    fn same_line_allow() {
        let src = "x.unwrap(); // tcpa-lint: allow(no-unwrap-in-analyzer) -- poisoned on purpose\n";
        let (allows, bad) = run(src);
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "no-unwrap-in-analyzer");
        assert_eq!(allows[0].target_line, 1);
        assert_eq!(allows[0].justification, "poisoned on purpose");
    }

    #[test]
    fn line_above_allow_targets_next_code_line() {
        let src = "\n// tcpa-lint: allow(thread-spawn-audit) -- progress ticker, joined on drop\n\nstd::thread::spawn(f);\n";
        let (allows, bad) = run(src);
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(allows[0].comment_line, 2);
        assert_eq!(allows[0].target_line, 4);
    }

    #[test]
    fn missing_justification_is_malformed() {
        let src = "x(); // tcpa-lint: allow(no-raw-eprintln)\n";
        let (allows, bad) = run(src);
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, MALFORMED_RULE);
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let src = "x(); // tcpa-lint: allow(no-such-rule) -- because\n";
        let (_, bad) = run(src);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("unknown rule"));
    }

    #[test]
    fn ordinary_comments_ignored() {
        let (allows, bad) = run("// run tcpa-lint before pushing\nx();\n");
        assert!(allows.is_empty() && bad.is_empty());
    }
}
