//! Packet-filter resequencing detection (§3.1.3).
//!
//! The Solaris 2.3/2.4 filters copy inbound and outbound packets to the
//! filter along different code paths; the inbound path is slower, so an
//! ack can be *recorded* just after the data packet it liberated, even
//! though it *arrived* just before. The paper's detector looks for three
//! situations, all of the shape "an effect appears in the trace
//! immediately before its only plausible cause":
//!
//! 1. a data packet sent after a lengthy lull, followed very shortly by
//!    an ack;
//! 2. a data packet violating the offered (or congestion) window, shortly
//!    followed by an ack that cures the violation;
//! 3. an ack for data that has not yet arrived in the trace, with the
//!    data following very shortly after.

use tcpa_trace::{Connection, Dir, Duration, Time};
use tcpa_wire::SeqNum;

/// Which of the three situations was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReseqKind {
    /// Situation (i): lull, data, then the liberating ack ≤ ε later.
    LullThenAck,
    /// Situation (ii): offered-window violation cured by an ack ≤ ε later.
    WindowViolationCured,
    /// Situation (iii): an ack for data that only arrives ≤ ε later.
    AckBeforeData,
}

/// One piece of resequencing evidence.
#[derive(Debug, Clone)]
pub struct ReseqEvidence {
    /// Kind of situation.
    pub kind: ReseqKind,
    /// Index (within the connection's records) of the *effect* record.
    pub index: usize,
    /// The out-of-order margin: how soon after the effect the cause was
    /// recorded.
    pub margin: Duration,
}

/// Maximum effect→cause spacing to count as resequencing rather than a
/// genuine anomaly. Filter path-length skews are a few hundred µs.
const EPSILON: Duration = Duration::from_millis(2);
/// "Lengthy lull" threshold for situation (i).
const LULL: Duration = Duration::from_millis(100);

/// Scans one connection for the three situations.
pub fn detect_resequencing(conn: &Connection) -> Vec<ReseqEvidence> {
    let recs = &conn.records;
    let mut evidence = Vec::new();

    let mut max_ack: Option<SeqNum> = None; // highest receiver ack seen
    let mut offered: Option<u32> = None; // receiver's last offered window
    let mut highest_data_hi: Option<SeqNum> = None; // highest data seq seen
    let mut last_send: Option<Time> = None;

    for (i, (dir, rec)) in recs.iter().enumerate() {
        match dir {
            Dir::SenderToReceiver if rec.is_data() => {
                let hi = rec.seq_hi();

                // (i) lull, data, then a liberating ack within ε.
                if let Some(prev) = last_send {
                    if rec.ts - prev > LULL {
                        if let Some(margin) = liberating_ack_within(recs, i, rec.ts, max_ack) {
                            evidence.push(ReseqEvidence {
                                kind: ReseqKind::LullThenAck,
                                index: i,
                                margin,
                            });
                        }
                    }
                }

                // (ii) offered-window violation cured within ε.
                if let (Some(ack), Some(win)) = (max_ack, offered) {
                    let usage = hi - ack;
                    if usage > i64::from(win) {
                        if let Some(margin) = curing_ack_within(recs, i, rec.ts, hi) {
                            evidence.push(ReseqEvidence {
                                kind: ReseqKind::WindowViolationCured,
                                index: i,
                                margin,
                            });
                        }
                    }
                }

                last_send = Some(rec.ts);
                highest_data_hi = Some(match highest_data_hi {
                    Some(h) => h.max(hi),
                    None => hi,
                });
            }
            Dir::ReceiverToSender if rec.tcp.flags.ack() && !rec.tcp.flags.syn() => {
                // (iii) ack for data not yet in the trace.
                let unseen = match highest_data_hi {
                    Some(h) => rec.tcp.ack.after(h),
                    None => rec.tcp.ack.after(SeqNum::ZERO) && rec.is_pure_ack(),
                };
                if unseen && highest_data_hi.is_some() {
                    if let Some(margin) = data_within(recs, i, rec.ts, rec.tcp.ack) {
                        evidence.push(ReseqEvidence {
                            kind: ReseqKind::AckBeforeData,
                            index: i,
                            margin,
                        });
                    }
                }
                max_ack = Some(match max_ack {
                    Some(a) => a.max(rec.tcp.ack),
                    None => rec.tcp.ack,
                });
                offered = Some(u32::from(rec.tcp.window));
            }
            _ => {}
        }
    }
    evidence
}

/// Looks ahead from `i` for a *new* receiver ack within ε of `t`.
fn liberating_ack_within(
    recs: &[(Dir, tcpa_trace::TraceRecord)],
    i: usize,
    t: Time,
    max_ack: Option<SeqNum>,
) -> Option<Duration> {
    for (dir, rec) in recs.iter().skip(i + 1) {
        if rec.ts - t > EPSILON {
            break;
        }
        if *dir == Dir::ReceiverToSender && rec.tcp.flags.ack() {
            let advances = match max_ack {
                Some(a) => rec.tcp.ack.after(a),
                None => true,
            };
            if advances {
                return Some(rec.ts - t);
            }
        }
    }
    None
}

/// Looks ahead from `i` for a receiver ack that makes `hi` fit within the
/// window it carries.
fn curing_ack_within(
    recs: &[(Dir, tcpa_trace::TraceRecord)],
    i: usize,
    t: Time,
    hi: SeqNum,
) -> Option<Duration> {
    for (dir, rec) in recs.iter().skip(i + 1) {
        if rec.ts - t > EPSILON {
            break;
        }
        if *dir == Dir::ReceiverToSender && rec.tcp.flags.ack() {
            let usage = hi - rec.tcp.ack;
            if usage <= i64::from(rec.tcp.window) {
                return Some(rec.ts - t);
            }
        }
    }
    None
}

/// Looks ahead from `i` for a data record reaching `ack` within ε of `t`.
fn data_within(
    recs: &[(Dir, tcpa_trace::TraceRecord)],
    i: usize,
    t: Time,
    ack: SeqNum,
) -> Option<Duration> {
    for (dir, rec) in recs.iter().skip(i + 1) {
        if rec.ts - t > EPSILON {
            break;
        }
        if *dir == Dir::SenderToReceiver && rec.is_data() && rec.seq_hi().at_or_after(ack) {
            return Some(rec.ts - t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpa_trace::{Trace, TraceRecord};
    use tcpa_wire::{IpProtocol, Ipv4Addr, Ipv4Repr, TcpFlags, TcpRepr};

    #[allow(clippy::too_many_arguments)]
    fn rec(
        ts_us: i64,
        src: u8,
        dst: u8,
        flags: TcpFlags,
        seq: u32,
        len: u32,
        ack: u32,
        win: u16,
    ) -> TraceRecord {
        TraceRecord {
            ts: Time::from_micros(ts_us),
            ip: Ipv4Repr {
                src: Ipv4Addr::from_host_id(src),
                dst: Ipv4Addr::from_host_id(dst),
                protocol: IpProtocol::Tcp,
                ttl: 64,
                ident: 0,
                payload_len: 20 + len as usize,
            },
            tcp: TcpRepr {
                seq: SeqNum(seq),
                ack: SeqNum(ack),
                flags,
                window: win,
                ..TcpRepr::new(5000 + u16::from(src), 5000 + u16::from(dst))
            },
            payload_len: len,
            checksum_ok: Some(true),
        }
    }

    fn conn(records: Vec<TraceRecord>) -> Connection {
        let trace: Trace = records.into_iter().collect();
        Connection::split(&trace).remove(0)
    }

    const A: TcpFlags = TcpFlags::ACK;

    #[test]
    fn clean_ordering_yields_no_evidence() {
        // ack arrives, then data goes out (normal cause→effect).
        let c = conn(vec![
            rec(0, 1, 2, A, 1, 512, 1, 8192),
            rec(100_000, 2, 1, A, 1, 0, 513, 8192),
            rec(100_300, 1, 2, A, 513, 512, 1, 8192),
        ]);
        assert!(detect_resequencing(&c).is_empty());
    }

    #[test]
    fn lull_then_ack_detected() {
        let c = conn(vec![
            rec(0, 1, 2, A, 1, 512, 1, 8192),
            rec(1000, 2, 1, A, 1, 0, 513, 8192),
            // long lull (window-limited), then data *before* the ack that
            // liberated it...
            rec(300_000, 1, 2, A, 513, 512, 1, 8192),
            // ...which is recorded 400 µs later.
            rec(300_400, 2, 1, A, 1, 0, 1025, 8192),
        ]);
        let ev = detect_resequencing(&c);
        assert!(
            ev.iter()
                .any(|e| e.kind == ReseqKind::LullThenAck && e.index == 2),
            "{ev:?}"
        );
    }

    #[test]
    fn lull_with_distant_ack_not_flagged() {
        // Same shape but the next ack is 50 ms later: a genuine RTO
        // retransmission pattern, not resequencing.
        let c = conn(vec![
            rec(0, 1, 2, A, 1, 512, 1, 8192),
            rec(1000, 2, 1, A, 1, 0, 513, 8192),
            rec(300_000, 1, 2, A, 513, 512, 1, 8192),
            rec(350_000, 2, 1, A, 1, 0, 1025, 8192),
        ]);
        assert!(detect_resequencing(&c)
            .iter()
            .all(|e| e.kind != ReseqKind::LullThenAck));
    }

    #[test]
    fn offered_window_violation_cured_detected() {
        // Offered window 1024; sender appears to have 1536 in flight, but
        // an ack recorded 300 µs later makes it legal.
        let c = conn(vec![
            rec(0, 1, 2, A, 1, 512, 1, 1024),
            rec(1000, 2, 1, A, 1, 0, 513, 1024),
            rec(2000, 1, 2, A, 513, 512, 1, 1024),
            rec(3000, 1, 2, A, 1025, 512, 1, 1024), // 1537-513=1024 OK… next violates
            rec(4000, 1, 2, A, 1537, 512, 1, 1024), // usage 1536 > 1024
            rec(4300, 2, 1, A, 1, 0, 1025, 1024),   // cures: 2049-1025=1024
        ]);
        let ev = detect_resequencing(&c);
        assert!(
            ev.iter()
                .any(|e| e.kind == ReseqKind::WindowViolationCured && e.index == 4),
            "{ev:?}"
        );
    }

    #[test]
    fn ack_before_data_detected_at_receiver_vantage() {
        // Receiver-side trace: the receiver's ack for 1025 is recorded
        // 200 µs before the data that provoked it.
        let c = conn(vec![
            rec(0, 1, 2, A, 1, 512, 1, 8192),
            rec(500, 2, 1, A, 1, 0, 513, 8192),
            rec(10_000, 2, 1, A, 1, 0, 1025, 8192), // ack for unseen data
            rec(10_200, 1, 2, A, 513, 512, 1, 8192), // the data, recorded late
        ]);
        let ev = detect_resequencing(&c);
        assert!(
            ev.iter()
                .any(|e| e.kind == ReseqKind::AckBeforeData && e.index == 2),
            "{ev:?}"
        );
    }

    #[test]
    fn ack_of_never_arriving_data_is_not_resequencing() {
        // The same ack, but the data never shows: that is drop evidence
        // (§3.1.1), not resequencing.
        let c = conn(vec![
            rec(0, 1, 2, A, 1, 512, 1, 8192),
            rec(500, 2, 1, A, 1, 0, 513, 8192),
            rec(10_000, 2, 1, A, 1, 0, 1025, 8192),
            rec(400_000, 1, 2, A, 1025, 512, 1, 8192),
        ]);
        assert!(detect_resequencing(&c)
            .iter()
            .all(|e| e.kind != ReseqKind::AckBeforeData));
    }
}
