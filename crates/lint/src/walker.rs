//! Deterministic workspace walk.
//!
//! Collects every `.rs` file under the root in sorted order —
//! directory entries are sorted by name at each level, so the walk (and
//! therefore the report) is byte-stable regardless of filesystem
//! readdir order. `target/`, `.git/`, and the `Lint.toml` workspace
//! excludes are pruned before descent.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into, independent of config.
const ALWAYS_SKIP: &[&str] = &["target", ".git"];

/// Walks `root`, returning workspace-relative `/`-separated paths of all
/// `.rs` files, sorted, minus the `exclude` prefixes.
pub fn rust_files(root: &Path, exclude: &[String]) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk(root, root, exclude, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, exclude: &[String], out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue; // non-UTF-8 names cannot be workspace source
        };
        let rel = relative(root, &path);
        if path.is_dir() {
            if ALWAYS_SKIP.contains(&name) || is_excluded(&format!("{rel}/"), exclude) {
                continue;
            }
            walk(root, &path, exclude, out)?;
        } else if name.ends_with(".rs") && !is_excluded(&rel, exclude) {
            out.push(rel);
        }
    }
    Ok(())
}

fn is_excluded(rel: &str, exclude: &[String]) -> bool {
    exclude.iter().any(|p| rel.starts_with(p.as_str()))
}

fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_is_sorted_and_prunes() {
        let dir = std::env::temp_dir().join(format!("tcpa-lint-walk-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("b/src")).unwrap();
        fs::create_dir_all(dir.join("a")).unwrap();
        fs::create_dir_all(dir.join("target")).unwrap();
        fs::create_dir_all(dir.join("skipme")).unwrap();
        fs::write(dir.join("b/src/z.rs"), "").unwrap();
        fs::write(dir.join("a/m.rs"), "").unwrap();
        fs::write(dir.join("a/notes.txt"), "").unwrap();
        fs::write(dir.join("target/gen.rs"), "").unwrap();
        fs::write(dir.join("skipme/x.rs"), "").unwrap();

        let files = rust_files(&dir, &["skipme/".to_string()]).unwrap();
        assert_eq!(files, vec!["a/m.rs", "b/src/z.rs"]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
