//! Quickstart: simulate a bulk transfer, round-trip the trace through a
//! pcap file, and run the full tcpanaly pipeline on it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::pcap_io;
use tcpa_wire::TsResolution;
use tcpanaly::Analyzer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate: a 100 KB transfer from a Reno sender to a Reno
    //    receiver across a T1-grade path, tapped at the sender's LAN.
    let out = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &PathSpec::default(),
        100 * 1024,
        1,
    );
    println!(
        "simulated transfer: {} data packets, {} retransmissions, done at {}",
        out.sender_stats.data_packets_sent, out.sender_stats.retransmissions, out.finished_at
    );

    // 2. Round-trip through the on-disk format tcpdump uses.
    let path = std::env::temp_dir().join("tcpanaly_quickstart.pcap");
    let trace = out.sender_trace();
    pcap_io::write_pcap(
        &trace,
        std::fs::File::create(&path)?,
        TsResolution::Micro,
        0,
    )?;
    let (reread, skipped) = pcap_io::read_pcap(std::fs::File::open(&path)?)?;
    println!(
        "wrote and re-read {} ({} records, {} skipped)",
        path.display(),
        reread.len(),
        skipped
    );

    // 3. Analyze: calibrate the trace, fingerprint the sender against
    //    every implementation tcpanaly knows, and summarize the receiver.
    let report = Analyzer::at_sender().analyze(&reread);
    println!("\n{}", report.render());

    let best = report.connections[0].best_fit().unwrap_or("(no close fit)");
    println!("=> best-fitting implementation: {best}");
    Ok(())
}
