//! Corpus trace sources — the supply side of batch analysis.
//!
//! The paper's catalogues were built from ~40,000 traces; anything at that
//! scale needs a uniform way to enumerate work without loading every
//! capture up front. A [`TraceSource`] hands out [`CorpusItem`]s one at a
//! time; each item carries a stable label and a [`TraceInput`] that is
//! *loaded by the worker that claims it*, so file I/O and pcap decoding
//! parallelize along with the analysis itself.

use crate::pcap_io::{self, IngestReport};
use crate::record::Trace;
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One unit of corpus work: a labelled, possibly not-yet-loaded trace.
#[derive(Debug, Clone)]
pub struct CorpusItem {
    /// Stable label (file path or synthetic name) used in reports.
    pub id: String,
    /// Where the trace bytes come from.
    pub input: TraceInput,
}

/// Where a corpus item's packets come from.
#[derive(Debug, Clone)]
pub enum TraceInput {
    /// An already-loaded trace (simulated corpora, tests).
    Memory(Trace),
    /// A pcap file, opened and decoded by the worker that claims the item.
    PcapFile(PathBuf),
    /// In-memory capture bytes, decoded by the worker that claims the
    /// item (mangled-corpus tests, network-received captures). `Arc`'d so
    /// cloning an item does not copy the capture.
    PcapBytes(Arc<Vec<u8>>),
    /// Fault injection: panics on load. Exists so the pipeline's
    /// panic-isolation guarantee (one poisoned trace must cost one item,
    /// not the whole run) stays testable without a real analyzer bug.
    Poison,
    /// Fault injection: the first `remaining` loads fail with a
    /// *transient* I/O error (interrupted), after which the trace loads
    /// normally. Exists so the pipeline's retry path — and its retry
    /// accounting — stays testable without real flaky storage. Clones
    /// share the countdown.
    Flaky {
        /// Failures left to inject; decremented per load attempt.
        remaining: Arc<std::sync::atomic::AtomicU32>,
        /// The trace yielded once the failures are exhausted.
        trace: Trace,
    },
}

impl CorpusItem {
    /// An item wrapping an in-memory trace.
    pub fn memory(id: impl Into<String>, trace: Trace) -> CorpusItem {
        CorpusItem {
            id: id.into(),
            input: TraceInput::Memory(trace),
        }
    }

    /// An item naming a pcap file; the path doubles as the label.
    pub fn pcap(path: impl Into<PathBuf>) -> CorpusItem {
        let path = path.into();
        CorpusItem {
            id: path.display().to_string(),
            input: TraceInput::PcapFile(path),
        }
    }

    /// An item over raw capture bytes already in memory.
    pub fn pcap_bytes(id: impl Into<String>, bytes: Vec<u8>) -> CorpusItem {
        CorpusItem {
            id: id.into(),
            input: TraceInput::PcapBytes(Arc::new(bytes)),
        }
    }

    /// A poisoned item whose load panics (fault injection for tests).
    pub fn poison(id: impl Into<String>) -> CorpusItem {
        CorpusItem {
            id: id.into(),
            input: TraceInput::Poison,
        }
    }

    /// An item whose first `failures` loads fail transiently before the
    /// trace loads (fault injection for retry-path tests).
    pub fn flaky(id: impl Into<String>, trace: Trace, failures: u32) -> CorpusItem {
        CorpusItem {
            id: id.into(),
            input: TraceInput::Flaky {
                remaining: Arc::new(std::sync::atomic::AtomicU32::new(failures)),
                trace,
            },
        }
    }
}

/// How [`TraceInput::load_mode`] treats a damaged capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// The first malformed byte fails the load ([`LoadError::Malformed`]).
    Strict,
    /// Damaged regions are skipped and accounted for in an
    /// [`IngestReport`]; only genuine I/O failure fails the load.
    Salvage,
}

/// Why a trace could not be loaded. `Io` and `Malformed` are distinct on
/// purpose: an I/O error may be transient (worth retrying), while
/// malformed bytes never fix themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The underlying read failed.
    Io {
        /// The OS error class, for retry decisions.
        kind: ErrorKind,
        /// Human-readable description including the path.
        detail: String,
    },
    /// The capture bytes are malformed (strict mode only).
    Malformed {
        /// Human-readable description including the path and byte offset.
        detail: String,
    },
}

impl LoadError {
    /// `true` when retrying the load could plausibly succeed.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            LoadError::Io {
                kind: ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut,
                ..
            }
        )
    }
}

impl core::fmt::Display for LoadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LoadError::Io { detail, .. } => write!(f, "{detail}"),
            LoadError::Malformed { detail } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// A successfully loaded trace, with the degradation ledger when salvage
/// mode had to skip damage (`None` for in-memory traces and clean files).
#[derive(Debug, Clone)]
pub struct Loaded {
    /// The decoded trace.
    pub trace: Trace,
    /// Salvage accounting, present only for pcap inputs read in
    /// [`LoadMode::Salvage`].
    pub salvage: Option<IngestReport>,
}

impl TraceInput {
    /// Materializes the trace, doing any file I/O and pcap decoding on the
    /// calling thread. Takes `&self` so a caller can retry transient I/O
    /// failures without re-claiming the item.
    pub fn load_mode(&self, mode: LoadMode) -> Result<Loaded, LoadError> {
        match self {
            TraceInput::Memory(trace) => Ok(Loaded {
                trace: trace.clone(),
                salvage: None,
            }),
            TraceInput::PcapFile(path) => {
                let bytes = std::fs::read(path).map_err(|e| LoadError::Io {
                    kind: e.kind(),
                    detail: format!("{}: {e}", path.display()),
                })?;
                decode_bytes(&bytes, mode, &path.display().to_string())
            }
            TraceInput::PcapBytes(bytes) => decode_bytes(bytes, mode, "<memory capture>"),
            // tcpa-lint: allow(no-unwrap-in-analyzer) -- Poison exists to panic: it is the fault-injection probe the corpus watchdog test rig loads on purpose
            TraceInput::Poison => panic!("poisoned corpus item loaded"),
            TraceInput::Flaky { remaining, trace } => {
                use std::sync::atomic::Ordering;
                let injected = remaining
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                    .is_ok();
                if injected {
                    Err(LoadError::Io {
                        kind: ErrorKind::Interrupted,
                        detail: "injected transient i/o failure".into(),
                    })
                } else {
                    Ok(Loaded {
                        trace: trace.clone(),
                        salvage: None,
                    })
                }
            }
        }
    }

    /// Strict-mode load with stringly errors — the original corpus-item
    /// contract, kept for callers that do not care about the taxonomy.
    pub fn load(self) -> Result<Trace, String> {
        self.load_mode(LoadMode::Strict)
            .map(|loaded| loaded.trace)
            .map_err(|e| e.to_string())
    }
}

/// Decodes capture bytes under the requested degradation mode.
fn decode_bytes(bytes: &[u8], mode: LoadMode, label: &str) -> Result<Loaded, LoadError> {
    match mode {
        LoadMode::Strict => pcap_io::read_pcap(std::io::Cursor::new(bytes))
            .map(|(trace, _skipped)| Loaded {
                trace,
                salvage: None,
            })
            .map_err(|e| match e {
                tcpa_wire::pcap::PcapError::Io(io) => LoadError::Io {
                    kind: io.kind(),
                    detail: format!("{label}: {io}"),
                },
                other => LoadError::Malformed {
                    detail: format!("{label}: {other}"),
                },
            }),
        LoadMode::Salvage => {
            let (trace, report) = pcap_io::read_pcap_salvage_bytes(bytes);
            Ok(Loaded {
                trace,
                salvage: Some(report),
            })
        }
    }
}

/// A pull-based supply of corpus items.
///
/// Implementations must be `Send`: the batch pipeline moves the source
/// behind a mutex shared by its workers. `next_item` should be cheap —
/// return paths or handles and let [`TraceInput::load`] do the heavy
/// lifting on the claiming worker.
pub trait TraceSource: Send {
    /// Total number of items, when known up front (sizes progress output).
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// The next item, or `None` when the corpus is exhausted.
    fn next_item(&mut self) -> Option<CorpusItem>;
}

/// A source over a pre-built list of items.
#[derive(Debug, Default)]
pub struct MemorySource {
    items: VecDeque<CorpusItem>,
}

impl MemorySource {
    /// A source yielding `items` in order.
    pub fn new(items: Vec<CorpusItem>) -> MemorySource {
        MemorySource {
            items: items.into(),
        }
    }

    /// A source over explicit pcap paths, in the order given.
    pub fn from_pcap_files<P: Into<PathBuf>>(paths: Vec<P>) -> MemorySource {
        MemorySource::new(paths.into_iter().map(CorpusItem::pcap).collect())
    }

    /// A source over every `*.pcap` in `dir` (non-recursive), sorted by
    /// file name so corpus order — and therefore the merged report — is
    /// independent of directory-listing order.
    pub fn from_pcap_dir(dir: impl AsRef<Path>) -> std::io::Result<MemorySource> {
        let dir = dir.as_ref();
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_file() && p.extension().map(|e| e == "pcap").unwrap_or(false))
            .collect();
        paths.sort();
        Ok(MemorySource::from_pcap_files(paths))
    }
}

impl TraceSource for MemorySource {
    fn len_hint(&self) -> Option<usize> {
        Some(self.items.len())
    }

    fn next_item(&mut self) -> Option<CorpusItem> {
        self.items.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_source_yields_in_order() {
        let mut src = MemorySource::new(vec![
            CorpusItem::memory("a", Trace::new()),
            CorpusItem::memory("b", Trace::new()),
        ]);
        assert_eq!(src.len_hint(), Some(2));
        assert_eq!(src.next_item().unwrap().id, "a");
        assert_eq!(src.next_item().unwrap().id, "b");
        assert!(src.next_item().is_none());
    }

    #[test]
    fn missing_pcap_is_a_load_error_not_a_panic() {
        let item = CorpusItem::pcap("/nonexistent/never.pcap");
        assert!(item.input.load().is_err());
    }

    #[test]
    fn missing_pcap_is_io_in_both_modes_and_not_transient() {
        let item = CorpusItem::pcap("/nonexistent/never.pcap");
        for mode in [LoadMode::Strict, LoadMode::Salvage] {
            match item.input.load_mode(mode) {
                Err(e @ LoadError::Io { kind, .. }) => {
                    assert_eq!(kind, ErrorKind::NotFound);
                    assert!(!e.is_transient());
                }
                other => panic!("expected Io error, got {other:?}"),
            }
        }
    }

    #[test]
    fn garbage_bytes_strict_vs_salvage() {
        let item = CorpusItem::pcap_bytes("soup", vec![0u8; 64]);
        match item.input.load_mode(LoadMode::Strict) {
            Err(LoadError::Malformed { detail }) => {
                assert!(detail.contains("magic"), "{detail}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        let loaded = item.input.load_mode(LoadMode::Salvage).expect("salvage");
        let report = loaded.salvage.expect("pcap inputs carry a report");
        assert!(!report.is_clean());
        assert!(loaded.trace.is_empty() || loaded.trace.len() < 4);
    }

    #[test]
    #[should_panic(expected = "poisoned corpus item")]
    fn poison_panics_on_load() {
        let _ = CorpusItem::poison("bad").input.load();
    }

    #[test]
    fn flaky_fails_transiently_then_loads() {
        let item = CorpusItem::flaky("flaky", Trace::new(), 2);
        for _ in 0..2 {
            match item.input.load_mode(LoadMode::Strict) {
                Err(e @ LoadError::Io { kind, .. }) => {
                    assert_eq!(kind, ErrorKind::Interrupted);
                    assert!(e.is_transient());
                }
                other => panic!("expected transient Io error, got {other:?}"),
            }
        }
        assert!(item.input.load_mode(LoadMode::Strict).is_ok());
        assert!(item.input.load_mode(LoadMode::Salvage).is_ok());
    }

    #[test]
    fn dir_listing_is_sorted_and_filtered() {
        let dir = std::env::temp_dir().join(format!("tcpa_src_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["b.pcap", "a.pcap", "notes.txt"] {
            std::fs::write(dir.join(name), b"x").unwrap();
        }
        let mut src = MemorySource::from_pcap_dir(&dir).unwrap();
        assert_eq!(src.len_hint(), Some(2));
        assert!(src.next_item().unwrap().id.ends_with("a.pcap"));
        assert!(src.next_item().unwrap().id.ends_with("b.pcap"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
