#![warn(missing_docs)]
// Scenario builders configure PathSpec field-by-field from its default —
// deliberately, so each parameter deviation from the standard path reads
// as a single labelled line.
#![allow(clippy::field_reassign_with_default)]

//! `tcpa-bench` — the reproduction harness.
//!
//! One regenerator per table and figure of the paper's evaluation (see
//! DESIGN.md §5 for the index). Each scenario is a function returning a
//! [`Section`]; thin binaries in `src/bin/` print them, and
//! `repro_all` concatenates everything into the markdown that backs
//! EXPERIMENTS.md.
//!
//! Absolute numbers are not expected to match the paper — the substrate
//! is a simulator, not the authors' 1995 testbed — but each section
//! states the paper's claim, the measured result, and whether the *shape*
//! (who wins, what breaks, where the boundary lies) reproduces.

pub mod compare;
pub mod scenarios;
pub mod timing;

use std::fmt::Write as _;

/// One reproduced table/figure.
pub struct Section {
    /// Paper artifact id, e.g. `"Figure 4"`.
    pub id: String,
    /// Short title.
    pub title: String,
    /// What the paper reports.
    pub paper_claim: String,
    /// Workload / parameters used here.
    pub params: String,
    /// Preformatted body (plots, tables).
    pub body: String,
    /// Key measured values.
    pub measured: Vec<(String, String)>,
    /// One-line reproduction verdict.
    pub verdict: String,
}

impl Section {
    /// Renders the section as markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "*Paper:* {}\n", self.paper_claim);
        let _ = writeln!(out, "*Setup:* {}\n", self.params);
        if !self.body.is_empty() {
            let _ = writeln!(out, "```text\n{}```\n", self.body);
        }
        if !self.measured.is_empty() {
            let _ = writeln!(out, "| measured | value |");
            let _ = writeln!(out, "|---|---|");
            for (k, v) in &self.measured {
                let _ = writeln!(out, "| {k} | {v} |");
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "**{}**\n", self.verdict);
        out
    }
}

/// Formats a rate in bytes/second the way the paper's figures discuss
/// slopes ("2.5 MB/sec").
pub fn fmt_rate(bytes_per_sec: f64) -> String {
    if bytes_per_sec >= 1e6 {
        format!("{:.2} MB/s", bytes_per_sec / 1e6)
    } else if bytes_per_sec >= 1e3 {
        format!("{:.1} KB/s", bytes_per_sec / 1e3)
    } else {
        format!("{bytes_per_sec:.0} B/s")
    }
}

/// Simple fixed-width table builder for terminal/markdown-code output.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..ncol {
                let _ = write!(line, "{:<w$}  ", cells[i], w = widths[i]);
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_renders_markdown() {
        let s = Section {
            id: "Figure 9".into(),
            title: "test".into(),
            paper_claim: "claim".into(),
            params: "params".into(),
            body: "plot\n".into(),
            measured: vec![("x".into(), "1".into())],
            verdict: "REPRODUCED".into(),
        };
        let md = s.render();
        assert!(md.contains("## Figure 9"));
        assert!(md.contains("| x | 1 |"));
        assert!(md.contains("**REPRODUCED**"));
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(2_500_000.0), "2.50 MB/s");
        assert_eq!(fmt_rate(64_000.0), "64.0 KB/s");
        assert_eq!(fmt_rate(12.0), "12 B/s");
    }

    #[test]
    fn table_renders_padded() {
        let mut t = TextTable::new(&["name", "n"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
    }
}
