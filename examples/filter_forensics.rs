// PathSpec scenarios are configured field-by-field from the default so
// each deviation reads as one labelled line.
#![allow(clippy::field_reassign_with_default)]

//! The §3 forensics tour: push one perfectly-recorded connection through
//! each faulty packet-filter model and show what calibration finds.
//!
//! ```sh
//! cargo run --example filter_forensics
//! ```

use tcpa_filter::{apply, ClockModel, DropModel, FilterConfig};
use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::{Duration, Time};
use tcpanaly::calibrate::Calibrator;

fn main() {
    // One ground-truth connection, tapped at the sender.
    let mut path = PathSpec::default();
    path.rate_bps = 256_000;
    let out = run_transfer(profiles::reno(), profiles::reno(), &path, 100 * 1024, 99);
    println!(
        "ground truth: {} wire events at the sender tap\n",
        out.sender_tap.len()
    );

    let filters: Vec<(&str, FilterConfig)> = vec![
        ("perfect kernel filter", FilterConfig::perfect()),
        (
            "user-level filter shedding 5% of records (§3.1.1)",
            FilterConfig::lossy(0.05),
        ),
        (
            "filter falling behind: 8-record burst shed (§3.1.1)",
            FilterConfig {
                drops: DropModel::Burst { start: 30, len: 8 },
                ..FilterConfig::default()
            },
        ),
        (
            "IRIX 5.2 duplicating filter (§3.1.2, Figure 1)",
            FilterConfig::irix_duplicating(),
        ),
        (
            "Solaris two-path resequencing filter (§3.1.3)",
            FilterConfig::solaris_resequencing(),
        ),
        (
            "BSDI-style fast clock yanked back 150 ms every second (§3.1.4)",
            FilterConfig {
                clock: ClockModel::fast_with_periodic_sync(
                    300.0,
                    Duration::from_secs(1),
                    Duration::from_millis(150),
                    Time::from_secs(60),
                ),
                ..FilterConfig::default()
            },
        ),
        (
            "header-only capture (snap length, §7)",
            FilterConfig {
                headers_only: true,
                ..FilterConfig::default()
            },
        ),
    ];

    for (name, cfg) in filters {
        let (measured, report) = apply(&out.sender_tap, &cfg, 99);
        let (_, cal) = Calibrator::at_sender().calibrate(&measured);
        println!("== {name}");
        println!(
            "   filter wrote {} records (shed {}, duplicated {}, inverted {})",
            measured.len(),
            report.dropped_indices.len(),
            report.duplicates_added,
            report.inversions
        );
        println!(
            "   calibration: {} duplicates removed, {} time-travel, {} resequencing, {} drop-evidence{}",
            cal.duplicates.len(),
            cal.time_travel.len(),
            cal.resequencing.len(),
            cal.drop_evidence.len(),
            if cal.ordering_untrustworthy() {
                " — ordering untrustworthy!"
            } else {
                ""
            }
        );
        for ev in cal.drop_evidence.iter().take(2) {
            println!("     e.g. {:?}: {}", ev.check, ev.detail);
        }
        println!();
    }
}
