//! The TCP endpoint state machine.
//!
//! One struct, [`TcpEndpoint`], plays either role of a bulk transfer
//! (§1: "traces of the TCP sending and receiving bulk data transfers"):
//! the *active sender* opens the connection, ships `total_bytes`, then
//! closes; the *passive receiver* accepts, acknowledges per its configured
//! policy, and closes after the sender's FIN.
//!
//! All behavioral variation is driven by the [`TcpConfig`] — the endpoint
//! code itself has no per-implementation branches beyond reading flags, so
//! each profile's pathology is an *emergent* property of its flags (e.g.
//! Figure 5's retransmission storm emerges from `initial_rto = 300 ms` +
//! `SolarisBroken` + Karn's rule; it is not scripted).

use crate::config::{AckPolicy, TcpConfig};
use crate::congestion::CcState;
use crate::rtt::RttEstimator;
use tcpa_netsim::{Packet, PacketKind, Stack};
use tcpa_trace::{Duration, Time};
use tcpa_wire::{Ipv4Addr, SeqNum, TcpFlags, TcpOption, TcpRepr};

/// Which side of the bulk transfer this endpoint plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Actively opens the connection and sends `total_bytes` of data.
    ActiveSender {
        /// Application bytes to transfer.
        total_bytes: u64,
    },
    /// Passively accepts and consumes the transfer.
    PassiveReceiver,
}

/// Counters exposed for tests and the reproduction harness.
#[derive(Debug, Clone, Default)]
pub struct EndpointStats {
    /// Data-bearing packets transmitted (retransmissions included).
    pub data_packets_sent: u64,
    /// Data-bearing packets that were retransmissions.
    pub retransmissions: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Fast retransmits triggered.
    pub fast_retransmits: u64,
    /// Pure acks transmitted.
    pub acks_sent: u64,
    /// New data bytes cumulatively acknowledged by the peer.
    pub bytes_acked: u64,
    /// ICMP source quench messages processed.
    pub quenches_received: u64,
    /// Segments discarded on arrival as corrupt.
    pub corrupt_discarded: u64,
    /// Data packets received (receiver side).
    pub data_packets_received: u64,
    /// Zero-window probes sent (persist timer fired).
    pub zero_window_probes: u64,
    /// Window-update acks sent (receiver side).
    pub window_updates_sent: u64,
    /// Arrivals discarded because they exceeded the advertised window.
    pub window_rejected: u64,
    /// RST segments sent.
    pub rsts_sent: u64,
    /// Keep-alive probes sent.
    pub keepalives_sent: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed,
    SynSent,
    Listen,
    SynRcvd,
    Established,
    /// SYN retries exhausted, or the retransmission limit was reached
    /// mid-connection.
    Failed,
}

/// One past the last data byte for a transfer starting at `iss`.
fn data_end_of(iss: SeqNum, total_bytes: u64) -> SeqNum {
    iss + 1 + (total_bytes as u32)
}

/// A simulated TCP endpoint; plugs into `tcpa-netsim` as a [`Stack`].
pub struct TcpEndpoint {
    cfg: TcpConfig,
    role: Role,
    local_addr: Ipv4Addr,
    local_port: u16,
    remote_addr: Ipv4Addr,
    remote_port: u16,
    state: State,
    ident: u16,

    // ---- sender ----
    iss: SeqNum,
    snd_una: SeqNum,
    snd_nxt: SeqNum,
    snd_max: SeqNum,
    cc: CcState,
    rtt: RttEstimator,
    peer_window: u32,
    peer_mss: Option<u16>,
    peer_sent_mss: bool,
    eff_mss: u32,
    cwnd_mss: u32,
    total_bytes: u64,
    our_fin_sent: bool,
    our_fin_acked: bool,
    want_close: bool,
    any_retransmitted: bool,
    retx_high: SeqNum,
    rtt_timing: Option<(SeqNum, Time)>,
    rtx_deadline: Option<Time>,
    /// Consecutive RTO firings without an intervening liberating ack.
    consecutive_timeouts: u32,
    syn_deadline: Option<Time>,
    syn_retries: u32,
    liberating_acks: u64,

    // ---- zero-window probing (sender side) ----
    persist_deadline: Option<Time>,
    persist_backoff: Duration,

    // ---- application write pause (sender side) ----
    /// The application stops producing at this sequence for a while.
    pause_boundary: Option<(SeqNum, Duration)>,
    pause_until: Option<Time>,

    // ---- keep-alive ----
    last_activity: Time,
    keepalive_deadline: Option<Time>,

    // ---- receiver ----
    irs: SeqNum,
    rcv_nxt: SeqNum,
    ooo: Vec<(SeqNum, u32)>,
    peer_fin_received: bool,
    ack_pending_bytes: u32,
    delack_deadline: Option<Time>,
    acks_sent_idx: usize,
    /// In-order bytes delivered but not yet read by the application.
    unconsumed: u64,
    last_consume: Time,
    /// Window value carried by our most recent ack.
    last_advertised_win: u32,

    /// Public counters.
    pub stats: EndpointStats,
}

impl TcpEndpoint {
    /// Creates an endpoint. Active senders transition out of `Closed` when
    /// the engine calls [`Stack::start`]; passive receivers listen.
    pub fn new(
        cfg: TcpConfig,
        local_addr: Ipv4Addr,
        local_port: u16,
        remote_addr: Ipv4Addr,
        remote_port: u16,
        role: Role,
    ) -> TcpEndpoint {
        let total_bytes = match role {
            Role::ActiveSender { total_bytes } => total_bytes,
            Role::PassiveReceiver => 0,
        };
        // Deterministic ISS derived from the port pair: reproducible yet
        // distinct per connection.
        let iss = SeqNum(u32::from(local_port) << 16 | 0x1000);
        let rtt = RttEstimator::new(&cfg);
        let state = match role {
            Role::ActiveSender { .. } => State::Closed,
            Role::PassiveReceiver => State::Listen,
        };
        TcpEndpoint {
            rtt,
            role,
            local_addr,
            local_port,
            remote_addr,
            remote_port,
            state,
            ident: 1,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_max: iss,
            cc: CcState {
                cwnd: 0,
                ssthresh: 0,
                dup_acks: 0,
                in_recovery: false,
                recover: SeqNum::ZERO,
            },
            peer_window: 0,
            peer_mss: None,
            peer_sent_mss: false,
            eff_mss: u32::from(cfg.default_peer_mss),
            cwnd_mss: u32::from(cfg.default_peer_mss),
            total_bytes,
            our_fin_sent: false,
            our_fin_acked: false,
            want_close: false,
            any_retransmitted: false,
            retx_high: iss,
            rtt_timing: None,
            rtx_deadline: None,
            consecutive_timeouts: 0,
            syn_deadline: None,
            syn_retries: 0,
            liberating_acks: 0,
            persist_deadline: None,
            persist_backoff: cfg.persist_initial,
            pause_boundary: None,
            pause_until: None,
            last_activity: Time::ZERO,
            keepalive_deadline: None,
            irs: SeqNum::ZERO,
            rcv_nxt: SeqNum::ZERO,
            ooo: Vec::new(),
            peer_fin_received: false,
            ack_pending_bytes: 0,
            delack_deadline: None,
            acks_sent_idx: 0,
            unconsumed: 0,
            last_consume: Time::ZERO,
            last_advertised_win: 0,
            stats: EndpointStats::default(),
            cfg,
        }
    }

    /// Makes the sending application pause for `dur` once `after_bytes`
    /// of the transfer have been handed to TCP — the idle period that
    /// exercises keep-alive probing.
    pub fn with_app_pause(mut self, after_bytes: u64, dur: Duration) -> TcpEndpoint {
        let boundary = self.iss + 1 + (after_bytes.min(self.total_bytes) as u32);
        self.pause_boundary = Some((boundary, dur));
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// Congestion-control snapshot (tests/diagnostics).
    pub fn cc(&self) -> &CcState {
        &self.cc
    }

    /// `true` once the three-way handshake completed.
    pub fn established(&self) -> bool {
        self.state == State::Established
    }

    /// `true` if connection setup gave up.
    pub fn failed(&self) -> bool {
        self.state == State::Failed
    }

    // ------------------------------------------------------------------
    // Packet construction
    // ------------------------------------------------------------------

    fn base_tcp(&self) -> TcpRepr {
        let mut t = TcpRepr::new(self.local_port, self.remote_port);
        t.window = self.offered_window() as u16;
        t
    }

    fn mk_packet(&mut self, tcp: TcpRepr, payload_len: u32) -> Packet {
        let ident = self.ident;
        self.ident = self.ident.wrapping_add(1);
        Packet::tcp(self.local_addr, self.remote_addr, ident, tcp, payload_len)
    }

    fn send_syn(&mut self, out: &mut Vec<Packet>) {
        let mut t = self.base_tcp();
        t.seq = self.iss;
        t.flags = TcpFlags::SYN;
        if self.cfg.send_mss_option {
            t.options.push(TcpOption::Mss(self.cfg.mss));
        }
        let pkt = self.mk_packet(t, 0);
        out.push(pkt);
    }

    fn send_syn_ack(&mut self, out: &mut Vec<Packet>) {
        let mut t = self.base_tcp();
        t.seq = self.iss;
        t.ack = self.rcv_nxt;
        t.flags = TcpFlags::SYN | TcpFlags::ACK;
        if self.cfg.send_mss_option {
            t.options.push(TcpOption::Mss(self.cfg.mss));
        }
        let pkt = self.mk_packet(t, 0);
        out.push(pkt);
    }

    fn send_ack(&mut self, out: &mut Vec<Packet>) {
        let mut t = self.base_tcp();
        t.seq = self.snd_nxt;
        t.ack = self.rcv_nxt;
        t.flags = TcpFlags::ACK;
        self.last_advertised_win = u32::from(t.window);
        let pkt = self.mk_packet(t, 0);
        out.push(pkt);
        self.stats.acks_sent += 1;
        self.acks_sent_idx += 1;
        self.ack_pending_bytes = 0;
        self.delack_deadline = None;
    }

    /// Emits one data (or FIN) segment. `seq` must lie in
    /// `[snd_una, data_end]`; `len == 0` means the FIN segment.
    fn send_segment(
        &mut self,
        now: Time,
        seq: SeqNum,
        len: u32,
        is_retx: bool,
        out: &mut Vec<Packet>,
    ) {
        let mut t = self.base_tcp();
        t.seq = seq;
        t.ack = self.rcv_nxt;
        t.flags = TcpFlags::ACK;
        let data_end = self.data_end();
        if len == 0 {
            debug_assert_eq!(seq, data_end, "zero-length segment must be the FIN");
            t.flags = t.flags | TcpFlags::FIN;
        } else if (seq + len) == data_end {
            t.flags = t.flags | TcpFlags::PSH;
        }
        let pkt = self.mk_packet(t, len);
        out.push(pkt);
        if len > 0 {
            self.stats.data_packets_sent += 1;
        }
        if is_retx {
            self.stats.retransmissions += 1;
            self.any_retransmitted = true;
            let hi = seq + len.max(1);
            if hi.after(self.retx_high) {
                self.retx_high = hi;
            }
        } else if self.rtt_timing.is_none() && len > 0 {
            // Time exactly one segment at a time (Karn).
            self.rtt_timing = Some((seq + len, now));
        }
        if self.rtx_deadline.is_none() {
            self.rtx_deadline = Some(now + self.rtt.rto());
        }
    }

    // ------------------------------------------------------------------
    // Sender machinery
    // ------------------------------------------------------------------

    /// One past the last application data byte.
    fn data_end(&self) -> SeqNum {
        data_end_of(self.iss, self.total_bytes)
    }

    fn usable_window(&self) -> u64 {
        let cwnd = if self.cfg.no_congestion_window {
            u64::MAX
        } else {
            self.cc.cwnd
        };
        cwnd.min(u64::from(self.peer_window))
            .min(u64::from(self.cfg.send_buffer))
    }

    /// Sends whatever the windows currently permit (the *liberation* act
    /// tcpanaly reconstructs, §6.1).
    fn try_output(&mut self, now: Time, out: &mut Vec<Packet>) {
        if self.state != State::Established {
            return;
        }
        let wnd = self.usable_window();
        let data_end = match (self.pause_boundary, self.pause_until) {
            // Paused right now: nothing beyond the boundary is available.
            (Some((boundary, _)), Some(until)) if now < until => boundary,
            // Pause pending: it begins when the boundary is reached.
            (Some((boundary, dur)), None) => {
                if !self.snd_nxt.before(boundary) {
                    self.pause_until = Some(now + dur);
                    boundary
                } else {
                    boundary.min(data_end_of(self.iss, self.total_bytes))
                }
            }
            // Pause over.
            (Some(_), Some(_)) => {
                self.pause_boundary = None;
                self.data_end()
            }
            (None, _) => self.data_end(),
        };
        let mut all_data_sent = false;
        loop {
            let in_flight = (self.snd_nxt - self.snd_una).max(0) as u64;
            if in_flight >= wnd {
                break; // window exhausted
            }
            let room = (wnd - in_flight).min(u64::from(u32::MAX)) as u32;
            let rem = (data_end - self.snd_nxt).max(0) as u32;
            if rem == 0 {
                all_data_sent = true;
                break;
            }
            let len = self.eff_mss.min(rem).min(room);
            if len < self.eff_mss && len < rem {
                break; // sender-side SWS avoidance: wait for more window
            }
            let is_retx = self.snd_nxt.before(self.snd_max);
            let seq = self.snd_nxt;
            self.send_segment(now, seq, len, is_retx, out);
            self.snd_nxt += len;
            if self.snd_nxt.after(self.snd_max) {
                self.snd_max = self.snd_nxt;
            }
        }
        // All data sent: emit FIN if the application is closing.
        let closing = match self.role {
            Role::ActiveSender { .. } => true,
            Role::PassiveReceiver => self.want_close,
        };
        if all_data_sent
            && closing
            && !self.our_fin_sent
            && self.pause_boundary.is_none()
            && self.snd_nxt == data_end
        {
            let in_flight = (self.snd_nxt - self.snd_una).max(0) as u64;
            if in_flight < wnd || wnd == 0 {
                self.send_segment(now, data_end, 0, false, out);
                self.our_fin_sent = true;
                self.snd_nxt += 1;
                if self.snd_nxt.after(self.snd_max) {
                    self.snd_max = self.snd_nxt;
                }
            }
        }
        self.manage_persist(now);
    }

    /// `true` when data is pending but the offered window is too small to
    /// send any of it and (at most probe bytes) are outstanding — the
    /// condition under which BSD's tcp_output hands the connection to the
    /// persist timer.
    fn window_stuck(&self) -> bool {
        let rem = (self.data_end() - self.snd_nxt).max(0) as u64;
        if rem == 0 {
            return false;
        }
        let in_flight = (self.snd_nxt - self.snd_una).max(0) as u64;
        let needed = u64::from(self.eff_mss).min(rem);
        let wnd = self.usable_window();
        wnd.saturating_sub(in_flight) < needed && in_flight <= 4
    }

    fn manage_persist(&mut self, now: Time) {
        if self.window_stuck() {
            if self.persist_deadline.is_none() {
                self.persist_deadline = Some(now + self.persist_backoff);
            }
        } else {
            self.persist_deadline = None;
            self.persist_backoff = self.cfg.persist_initial;
        }
    }

    /// Retransmits starting at `snd_una`: one segment, or — under the
    /// Linux 1.0 bug — everything in flight as a single burst (§8.5).
    fn retransmit(&mut self, now: Time, burst: bool, out: &mut Vec<Packet>) {
        let data_end = self.data_end();
        let mut seq = self.snd_una;
        loop {
            if seq == data_end && self.our_fin_sent {
                self.send_segment(now, seq, 0, true, out);
                seq += 1;
            } else {
                let rem = (data_end - seq).max(0) as u32;
                if rem == 0 {
                    break;
                }
                let len = self.eff_mss.min(rem);
                self.send_segment(now, seq, len, true, out);
                seq += len;
            }
            if !burst || seq.at_or_after(self.snd_max) {
                break;
            }
        }
        // Karn: the timed segment is being retransmitted; discard the
        // pending measurement if it falls in the re-sent range.
        if let Some((timed_hi, _)) = self.rtt_timing {
            if timed_hi.after(self.snd_una) && timed_hi.at_or_before(seq) {
                self.rtt_timing = None;
            }
        }
        if !burst {
            // Go-back-N: continue from just after the retransmitted piece.
            self.snd_nxt = seq;
        }
    }

    /// Persist timer fired: send a one-byte window probe into the closed
    /// window and back the timer off.
    fn on_persist_timeout(&mut self, now: Time, out: &mut Vec<Packet>) {
        self.persist_deadline = None;
        if self.state != State::Established || !self.window_stuck() {
            return;
        }
        let seq = self.snd_nxt;
        self.send_segment(now, seq, 1, false, out);
        self.stats.zero_window_probes += 1;
        self.snd_nxt += 1;
        if self.snd_nxt.after(self.snd_max) {
            self.snd_max = self.snd_nxt;
        }
        self.persist_backoff = (self.persist_backoff * 2).min(self.cfg.persist_max);
        self.persist_deadline = Some(now + self.persist_backoff);
    }

    /// Sends a keep-alive probe: a zero-length segment one byte *below*
    /// the expected sequence, provoking a duplicate ack from a live peer
    /// (the classic BSD garbage-probe).
    fn on_keepalive(&mut self, _now: Time, out: &mut Vec<Packet>) {
        self.keepalive_deadline = None;
        if self.state != State::Established {
            return;
        }
        let mut t = self.base_tcp();
        t.seq = self.snd_una - 1;
        t.ack = self.rcv_nxt;
        t.flags = TcpFlags::ACK;
        let pkt = self.mk_packet(t, 0);
        out.push(pkt);
        self.stats.keepalives_sent += 1;
    }

    fn arm_keepalive(&mut self) {
        if let Some(interval) = self.cfg.keepalive_interval {
            if self.state == State::Established {
                self.keepalive_deadline = Some(self.last_activity + interval);
            }
        }
    }

    fn on_rtx_timeout(&mut self, now: Time, out: &mut Vec<Packet>) {
        if self.snd_una == self.snd_max {
            self.rtx_deadline = None;
            return;
        }
        if self.window_stuck() {
            // Only probe bytes are outstanding against a too-small window;
            // the persist timer owns them.
            self.rtx_deadline = None;
            return;
        }
        self.stats.timeouts += 1;
        self.consecutive_timeouts += 1;
        if self.consecutive_timeouts > self.cfg.max_retransmits {
            // Give up. A correct TCP tears the connection down with a
            // RST; [DJM97] found implementations that just go silent.
            if self.cfg.rst_on_give_up {
                let mut t = self.base_tcp();
                t.seq = self.snd_nxt;
                t.ack = self.rcv_nxt;
                t.flags = TcpFlags::RST | TcpFlags::ACK;
                let pkt = self.mk_packet(t, 0);
                out.push(pkt);
                self.stats.rsts_sent += 1;
            }
            self.state = State::Failed;
            self.rtx_deadline = None;
            self.persist_deadline = None;
            self.delack_deadline = None;
            return;
        }
        self.rtt.on_timeout();
        let flight = self.usable_window().max(u64::from(self.cwnd_mss));
        self.cc.on_timeout(&self.cfg, self.cwnd_mss, flight);
        self.rtx_deadline = None; // send_segment re-arms
        self.retransmit(now, self.cfg.burst_retransmit, out);
        self.rtx_deadline = Some(now + self.rtt.rto());
    }

    fn process_ack(&mut self, now: Time, tcp: &TcpRepr, payload_len: u32, out: &mut Vec<Packet>) {
        let ack = tcp.ack;
        if ack.after(self.snd_max) {
            return; // acks data never sent: ignore
        }
        if ack.after(self.snd_una) {
            let newly = (ack - self.snd_una) as u64;
            self.stats.bytes_acked += newly;
            let ambiguous = self.any_retransmitted && ack.at_or_before(self.retx_high);
            if ambiguous {
                self.rtt.on_ack_of_retransmitted();
            } else {
                self.rtt.on_clean_ack();
            }
            if let Some((timed_hi, t0)) = self.rtt_timing {
                if ack.at_or_after(timed_hi) {
                    let retransmitted =
                        self.any_retransmitted && timed_hi.at_or_before(self.retx_high);
                    if !retransmitted {
                        self.rtt.sample(now - t0);
                    }
                    self.rtt_timing = None;
                }
            }
            if self.cc.in_recovery {
                // Plain Reno: any ack of new data deflates and exits.
                self.cc.exit_recovery(&self.cfg, self.cwnd_mss);
            } else {
                self.cc.open_window(&self.cfg, self.cwnd_mss);
            }
            self.cc.dup_acks = 0;
            self.consecutive_timeouts = 0;
            self.snd_una = ack;
            if self.snd_nxt.before(self.snd_una) {
                self.snd_nxt = self.snd_una;
            }
            self.peer_window = u32::from(tcp.window);
            if self.our_fin_sent && ack == self.data_end() + 1 {
                self.our_fin_acked = true;
            }
            self.rtx_deadline = if self.snd_una == self.snd_max {
                None
            } else {
                Some(now + self.rtt.rto())
            };
            self.liberating_acks += 1;
            let period = u64::from(self.cfg.retransmit_after_ack_period);
            if period > 0
                && self.liberating_acks.is_multiple_of(period)
                && self.snd_una.before(self.snd_max)
                && self.snd_una.before(self.data_end())
            {
                // §8.6 Solaris oddity: burn this liberation on a needless
                // retransmission of the segment just above the ack. The
                // congestion state is deliberately untouched.
                let rem = (self.data_end() - self.snd_una).max(0) as u32;
                let len = self.eff_mss.min(rem);
                let seq = self.snd_una;
                self.send_segment(now, seq, len, true, out);
                return;
            }
            self.try_output(now, out);
        } else if ack == self.snd_una {
            let window_changed = u32::from(tcp.window) != self.peer_window;
            let outstanding = self.snd_una.before(self.snd_max);
            let is_dup = payload_len == 0
                && !tcp.flags.syn()
                && !tcp.flags.fin()
                && !window_changed
                && outstanding;
            if !is_dup {
                self.peer_window = u32::from(tcp.window);
                self.try_output(now, out);
                return;
            }
            self.cc.dup_acks += 1;
            if self.cfg.dupack_updates_cwnd {
                // §8.3 rarely-manifested bug.
                self.cc.open_window(&self.cfg, self.cwnd_mss);
            }
            if self.cfg.retransmit_on_first_dupack && self.cc.dup_acks == 1 {
                // §8.5 Linux 1.0: "apparently spurs the TCP to retransmit
                // every packet it has in flight" — without cutting cwnd
                // (the figure's caption notes that a proper cut would have
                // prevented the following flood).
                self.retransmit(now, self.cfg.burst_retransmit, out);
                if self.cfg.burst_retransmit {
                    self.snd_nxt = self.snd_max;
                }
                return;
            }
            if self.cfg.fast_retransmit && self.cc.dup_acks == self.cfg.dupack_threshold {
                self.stats.fast_retransmits += 1;
                let flight = self.usable_window().max(u64::from(self.cwnd_mss));
                let entered =
                    self.cc
                        .enter_fast_retransmit(&self.cfg, self.cwnd_mss, flight, self.snd_max);
                self.retransmit(now, false, out);
                if entered {
                    // Reno keeps snd_nxt where it was.
                    self.snd_nxt = self.snd_max;
                } // Tahoe: retransmit() left snd_nxt just past the re-sent
                  // segment; slow start refills from there.
                self.rtx_deadline = Some(now + self.rtt.rto());
                return;
            }
            if self.cc.in_recovery && self.cc.dup_acks > self.cfg.dupack_threshold {
                self.cc.recovery_inflate(self.cwnd_mss);
                self.try_output(now, out);
            }
        }
        // ack before snd_una: old duplicate; nothing to do.
    }

    // ------------------------------------------------------------------
    // Receiver machinery
    // ------------------------------------------------------------------

    fn offered_window(&self) -> u32 {
        // Out-of-order data in the reassembly queue is deliberately NOT
        // subtracted: the advertised window tracks in-sequence buffer
        // space, so duplicate acks are bit-identical — which is exactly
        // what the peer's fast-retransmit dup-ack test ("no data, window
        // unchanged") requires.
        let base = if self.cfg.recv_window_schedule.is_empty() {
            self.cfg.recv_window
        } else {
            let idx = self
                .acks_sent_idx
                .min(self.cfg.recv_window_schedule.len() - 1);
            self.cfg.recv_window_schedule[idx]
        };
        // A slow application leaves data sitting in the socket buffer,
        // shrinking what can be advertised — down to a closed window.
        let backlog = u32::try_from(self.unconsumed).unwrap_or(u32::MAX);
        base.saturating_sub(backlog).min(65_535)
    }

    /// Advances the application's reads and, when the window has reopened
    /// substantially since we last advertised it, emits a window update
    /// (the receiver-side half of zero-window probing).
    fn consume(&mut self, now: Time, out: &mut Vec<Packet>) {
        let Some(rate) = self.cfg.app_read_rate else {
            return;
        };
        let elapsed = now - self.last_consume;
        if elapsed.as_nanos() <= 0 {
            return;
        }
        let bytes = (elapsed.as_nanos() as u128 * rate as u128 / 1_000_000_000) as u64;
        if bytes == 0 {
            return;
        }
        self.last_consume = now;
        self.unconsumed = self.unconsumed.saturating_sub(bytes);
        // BSD window-update duty: advertise when the window has opened by
        // two segments or half the buffer since the last advertisement.
        let now_win = self.offered_window();
        let opened = now_win.saturating_sub(self.last_advertised_win);
        let threshold = (2 * self.rcv_seg()).min(self.cfg.recv_window / 2).max(1);
        if self.state == State::Established && opened >= threshold {
            self.send_ack(out);
            self.stats.window_updates_sent += 1;
        }
    }

    /// When the app is a slow reader, the engine must wake us to consume
    /// and re-advertise.
    fn next_consume_wakeup(&self) -> Option<Time> {
        let rate = self.cfg.app_read_rate?;
        if self.unconsumed == 0 || rate == 0 {
            return None;
        }
        // Wake when roughly two segments' worth will have drained.
        let target = u64::from(2 * self.rcv_seg()).min(self.unconsumed).max(1);
        let nanos = (target as u128 * 1_000_000_000 / rate as u128) as i64;
        Some(self.last_consume + Duration(nanos.max(1_000_000)))
    }

    /// Receiver's segment-size yardstick for the every-two-segments rule.
    fn rcv_seg(&self) -> u32 {
        self.cfg.effective_send_mss(self.peer_mss)
    }

    fn insert_ooo(&mut self, seq: SeqNum, len: u32) {
        // Store, merge overlaps, keep sorted by wrap ordering.
        self.ooo.push((seq, len));
        self.ooo.sort_by(|a, b| {
            if a.0.before(b.0) {
                core::cmp::Ordering::Less
            } else if a.0 == b.0 {
                core::cmp::Ordering::Equal
            } else {
                core::cmp::Ordering::Greater
            }
        });
        let mut merged: Vec<(SeqNum, u32)> = Vec::with_capacity(self.ooo.len());
        for &(seq, len) in &self.ooo {
            if let Some(last) = merged.last_mut() {
                let last_end = last.0 + last.1;
                if seq.at_or_before(last_end) {
                    let end = seq + len;
                    if end.after(last_end) {
                        last.1 = (end - last.0) as u32;
                    }
                    continue;
                }
            }
            merged.push((seq, len));
        }
        self.ooo = merged;
    }

    /// Advances `rcv_nxt` over any out-of-order data that now fits.
    /// Returns `true` if a hole was filled from the reassembly queue.
    fn drain_ooo(&mut self) -> bool {
        let mut filled = false;
        while let Some(&(seq, len)) = self.ooo.first() {
            if seq.at_or_before(self.rcv_nxt) {
                let end = seq + len;
                if end.after(self.rcv_nxt) {
                    self.rcv_nxt = end;
                    filled = true;
                }
                self.ooo.remove(0);
            } else {
                break;
            }
        }
        filled
    }

    fn arm_delayed_ack(&mut self, now: Time) {
        match self.cfg.ack_policy {
            AckPolicy::Heartbeat { interval } => {
                if self.delack_deadline.is_none() {
                    let t = interval.as_nanos();
                    let next = (now.as_nanos() / t + 1) * t;
                    self.delack_deadline = Some(Time(next));
                }
            }
            AckPolicy::PerPacketTimer { delay } => {
                // Scheduled upon the arrival of each packet (§9.1).
                self.delack_deadline = Some(now + delay);
            }
            AckPolicy::EveryPacket => unreachable!("EveryPacket never delays"),
        }
    }

    fn process_data(&mut self, now: Time, tcp: &TcpRepr, payload_len: u32, out: &mut Vec<Packet>) {
        let seq = tcp.seq;
        let fin = tcp.flags.fin();
        if payload_len > 0 {
            self.stats.data_packets_received += 1;
        }
        let seq_end = seq + payload_len + u32::from(fin);

        if seq_end.at_or_before(self.rcv_nxt) {
            // Entirely old data (a needless retransmission): mandatory
            // duplicate ack (§7).
            self.send_ack(out);
            return;
        }
        // Data beyond the advertised window — e.g. a zero-window probe —
        // is discarded; the mandatory ack restates the current window.
        let acceptable_hi = self.rcv_nxt + self.offered_window();
        if seq_end.after(acceptable_hi) {
            self.stats.window_rejected += 1;
            self.send_ack(out);
            return;
        }
        if seq.after(self.rcv_nxt) {
            // Above a sequence hole: buffer and send a mandatory dup ack.
            if payload_len > 0 {
                self.insert_ooo(seq, payload_len);
            }
            // (A FIN above a hole is reprocessed when retransmitted.)
            self.send_ack(out);
            return;
        }

        // In sequence (possibly overlapping the left edge).
        let new_hi = seq + payload_len;
        if new_hi.after(self.rcv_nxt) {
            let fresh = (new_hi - self.rcv_nxt) as u32;
            self.ack_pending_bytes += fresh;
            if self.cfg.app_read_rate.is_some() {
                self.unconsumed += u64::from(fresh);
            }
            self.rcv_nxt = new_hi;
        }
        let filled_hole = self.drain_ooo();
        if fin && (seq + payload_len).at_or_before(self.rcv_nxt) && !self.peer_fin_received {
            // FIN is in order once all its data is consumed.
            if self.ooo.is_empty() && (seq + payload_len) == self.rcv_nxt {
                self.rcv_nxt += 1;
                self.peer_fin_received = true;
            }
        }

        if self.peer_fin_received && matches!(self.role, Role::PassiveReceiver) {
            // Application closes in turn.
            self.want_close = true;
        }

        let gratuitous =
            self.cfg.gratuitous_ack_bug && self.stats.data_packets_received.is_multiple_of(32);

        if self.peer_fin_received || filled_hole {
            // Mandatory: ack the FIN / the newly completed sequence run.
            self.send_ack(out);
        } else {
            let in_initial_phase =
                self.stats.data_packets_received <= u64::from(self.cfg.initial_ack_every_packet);
            let every_packet = matches!(self.cfg.ack_policy, AckPolicy::EveryPacket);
            let threshold = self.cfg.ack_every_n * self.rcv_seg();
            if every_packet || in_initial_phase || self.ack_pending_bytes >= threshold {
                self.send_ack(out);
            } else if self.ack_pending_bytes > 0 {
                self.arm_delayed_ack(now);
            }
        }
        if gratuitous {
            // §8.6: the Solaris 2.3 acking-policy bug — an extra ack with
            // no obligation behind it.
            self.send_ack(out);
        }

        // Sending our own FIN (passive close) rides the normal path.
        self.try_output(now, out);
    }

    // ------------------------------------------------------------------
    // Establishment
    // ------------------------------------------------------------------

    fn establish(&mut self) {
        self.eff_mss = self.cfg.effective_send_mss(self.peer_mss);
        self.cwnd_mss = self.cfg.cwnd_mss(self.peer_mss);
        self.cc = CcState::at_establishment(&self.cfg, self.cwnd_mss, self.peer_sent_mss);
        self.snd_una = self.iss + 1;
        self.snd_nxt = self.snd_una;
        self.snd_max = self.snd_una;
        self.retx_high = self.snd_una;
        self.state = State::Established;
        self.syn_deadline = None;
    }

    fn handle_segment(&mut self, now: Time, tcp: TcpRepr, payload_len: u32, out: &mut Vec<Packet>) {
        match self.state {
            State::Closed | State::Failed => {}
            State::SynSent => {
                if tcp.flags.syn() && tcp.flags.ack() && tcp.ack == self.iss + 1 {
                    self.irs = tcp.seq;
                    self.rcv_nxt = self.irs + 1;
                    self.peer_mss = tcp.mss_option();
                    self.peer_sent_mss = self.peer_mss.is_some();
                    self.peer_window = u32::from(tcp.window);
                    self.establish();
                    self.send_ack(out);
                    self.try_output(now, out);
                }
            }
            State::Listen => {
                if tcp.flags.syn() && !tcp.flags.ack() {
                    self.irs = tcp.seq;
                    self.rcv_nxt = self.irs + 1;
                    self.peer_mss = tcp.mss_option();
                    self.peer_sent_mss = self.peer_mss.is_some();
                    self.peer_window = u32::from(tcp.window);
                    self.state = State::SynRcvd;
                    self.send_syn_ack(out);
                    self.syn_deadline = Some(now + self.cfg.syn_rto);
                }
            }
            State::SynRcvd => {
                if tcp.flags.syn() && !tcp.flags.ack() {
                    // Duplicate SYN: repeat the SYN-ack.
                    self.send_syn_ack(out);
                    return;
                }
                if tcp.flags.ack() && tcp.ack == self.iss + 1 {
                    self.establish();
                    if payload_len > 0 || tcp.flags.fin() {
                        self.process_data(now, &tcp, payload_len, out);
                    }
                }
            }
            State::Established => {
                if tcp.flags.rst() {
                    // Peer tore the connection down.
                    self.state = State::Failed;
                    self.rtx_deadline = None;
                    self.persist_deadline = None;
                    self.delack_deadline = None;
                    return;
                }
                if tcp.flags.syn() && tcp.flags.ack() {
                    // Duplicate SYN-ack: re-ack it.
                    self.send_ack(out);
                    return;
                }
                if tcp.flags.ack() {
                    self.process_ack(now, &tcp, payload_len, out);
                }
                if payload_len > 0 || tcp.flags.fin() {
                    self.process_data(now, &tcp, payload_len, out);
                }
            }
        }
    }

    fn on_syn_timeout(&mut self, now: Time, out: &mut Vec<Packet>) {
        self.syn_retries += 1;
        if self.syn_retries > 5 {
            self.state = State::Failed;
            self.syn_deadline = None;
            return;
        }
        let backoff = if self.cfg.syn_backoff_flat {
            // §2 ([St96]): "some remote TCPs did not correctly back off
            // their connection-establishment retry timer".
            self.cfg.syn_rto
        } else {
            self.cfg.syn_rto * (1 << self.syn_retries.min(4))
        };
        match self.state {
            State::SynSent => {
                self.send_syn(out);
                self.syn_deadline = Some(now + backoff);
            }
            State::SynRcvd => {
                self.send_syn_ack(out);
                self.syn_deadline = Some(now + backoff);
            }
            _ => self.syn_deadline = None,
        }
    }
}

impl Stack for TcpEndpoint {
    fn start(&mut self, now: Time, out: &mut Vec<Packet>) {
        if matches!(self.role, Role::ActiveSender { .. }) {
            self.state = State::SynSent;
            self.send_syn(out);
            self.syn_deadline = Some(now + self.cfg.syn_rto);
        }
    }

    fn on_packet(&mut self, now: Time, pkt: Packet, out: &mut Vec<Packet>) {
        self.consume(now, out);
        self.last_activity = now;
        self.arm_keepalive();
        match pkt.kind {
            PacketKind::SourceQuench => {
                self.stats.quenches_received += 1;
                if self.state == State::Established {
                    self.cc.on_quench(&self.cfg, self.cwnd_mss);
                }
            }
            PacketKind::Tcp {
                tcp,
                payload_len,
                corrupt,
            } => {
                if corrupt {
                    // The checksum fails; the segment is discarded before
                    // TCP sees it (§7).
                    self.stats.corrupt_discarded += 1;
                    return;
                }
                self.handle_segment(now, tcp, payload_len, out);
            }
        }
    }

    fn on_timer(&mut self, now: Time, out: &mut Vec<Packet>) {
        self.consume(now, out);
        if let Some(t) = self.syn_deadline {
            if t <= now {
                self.on_syn_timeout(now, out);
            }
        }
        if let Some(t) = self.persist_deadline {
            if t <= now {
                self.on_persist_timeout(now, out);
            }
        }
        if let Some(t) = self.rtx_deadline {
            if t <= now {
                self.on_rtx_timeout(now, out);
            }
        }
        if let Some(t) = self.delack_deadline {
            if t <= now {
                self.delack_deadline = None;
                if self.ack_pending_bytes > 0 {
                    self.send_ack(out);
                }
            }
        }
        if let Some(t) = self.pause_until {
            if t <= now {
                // The application resumed writing.
                self.pause_boundary = None;
                self.pause_until = None;
                self.try_output(now, out);
            }
        }
        if let Some(t) = self.keepalive_deadline {
            if t <= now {
                self.on_keepalive(now, out);
            }
        }
        if !out.is_empty() {
            self.last_activity = now;
        }
        self.arm_keepalive();
    }

    fn next_timer(&self) -> Option<Time> {
        [
            self.syn_deadline,
            self.rtx_deadline,
            self.delack_deadline,
            self.persist_deadline,
            self.pause_until,
            self.keepalive_deadline,
            self.next_consume_wakeup(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    fn done(&self) -> bool {
        match self.state {
            State::Failed => true,
            State::Established => self.our_fin_acked && self.peer_fin_received,
            _ => false,
        }
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
}
