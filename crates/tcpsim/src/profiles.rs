//! Named per-implementation behavior profiles (Table 1 + §10).
//!
//! Each profile is expressed as a delta from a base — the same methodology
//! the paper uses when coding a new implementation into tcpanaly as a C++
//! subclass of its closest relative (§5).
//!
//! Where the paper text leaves a variant unspecified (it summarizes §8.3
//! "qualitatively for purposes of brevity"), the assignment of minor
//! variants to implementations here is a *reconstruction*: each catalogued
//! variant is given to at least one implementation so the full matrix is
//! exercised, and the major, explicitly-attributed behaviors (§8.4–§8.6,
//! §9.1, §10) follow the paper exactly. DESIGN.md carries the inventory.

use crate::config::{
    AckPolicy, CwndIncrease, FastRecovery, Lineage, QuenchResponse, RtoScheme, TcpConfig,
};
use tcpa_trace::Duration;

/// Generic Tahoe (§8.1).
pub fn tahoe() -> TcpConfig {
    TcpConfig::generic_tahoe()
}

/// Generic Reno (§8.2).
pub fn reno() -> TcpConfig {
    TcpConfig::generic_reno()
}

/// Net/3 (TCP Lite): generic Reno plus the uninitialized-cwnd bug (§8.4)
/// and the \[BP95\] header-prediction/fencepost/MSS problems.
pub fn net3() -> TcpConfig {
    TcpConfig {
        name: "Net/3",
        uninit_cwnd_bug: true,
        header_prediction_bug: true,
        ..reno()
    }
}

/// BSDI 1.1: early Reno-derived; header-prediction bug, Eqn 2.
pub fn bsdi_1_1() -> TcpConfig {
    TcpConfig {
        name: "BSDI 1.1",
        header_prediction_bug: true,
        ..reno()
    }
}

/// BSDI 2.0: incorporated Net/3 changes, inheriting the uninitialized-cwnd
/// bug — "more bugs with later versions" (§8.3).
pub fn bsdi_2_0() -> TcpConfig {
    TcpConfig {
        name: "BSDI 2.0",
        uninit_cwnd_bug: true,
        header_prediction_bug: true,
        fencepost_bug: true,
        ..reno()
    }
}

/// BSDI 2.1: as 2.0, plus the rarely-manifested dup-ack-updates-cwnd slip
/// (§8.3's "more bugs with later versions" at work).
pub fn bsdi_2_1() -> TcpConfig {
    TcpConfig {
        name: "BSDI 2.1",
        dupack_updates_cwnd: true,
        ..bsdi_2_0()
    }
}

/// DEC OSF/1 2.0: early Reno derivative, still on the plain Eqn 1
/// increase.
pub fn osf1_2_0() -> TcpConfig {
    TcpConfig {
        name: "DEC OSF/1 2.0",
        cwnd_increase: CwndIncrease::Linear,
        ..reno()
    }
}

/// DEC OSF/1 3.2: Reno-derived; carries the MSS-confusion problem (§8.3).
pub fn osf1() -> TcpConfig {
    TcpConfig {
        name: "DEC OSF/1 3.2",
        mss_includes_options: true,
        ..reno()
    }
}

/// HP/UX 9.05: Reno-derived; uses the plain Eqn 1 increase and rounds
/// ssthresh down to a segment multiple when cutting (§8.3 variants).
pub fn hpux() -> TcpConfig {
    TcpConfig {
        name: "HP/UX 9.05",
        cwnd_increase: CwndIncrease::Linear,
        ssthresh_round_down: true,
        ..reno()
    }
}

/// IRIX 4.0: the oldest Reno derivative in the study — plain Eqn 1, no
/// later accretions.
pub fn irix_4_0() -> TcpConfig {
    TcpConfig {
        name: "IRIX 4.0",
        cwnd_increase: CwndIncrease::Linear,
        ..reno()
    }
}

/// IRIX 5.x: Reno-derived; initializes cwnd from the initially offered
/// MSS rather than the negotiated one, and uses the strict slow-start
/// boundary test (§8.3 variants). (The IRIX *packet filter* duplication
/// bug of §3.1.2 belongs to `tcpa-filter`, not the TCP.)
pub fn irix() -> TcpConfig {
    TcpConfig {
        name: "IRIX 5.2",
        cwnd_init_from_offered_mss: true,
        ss_test_strict: true,
        ..reno()
    }
}

/// IRIX 6.2: the 5.x line plus the fencepost and dup-ack-counter slips —
/// §8.3's observation that later versions accrete bugs.
pub fn irix_6_2() -> TcpConfig {
    TcpConfig {
        name: "IRIX 6.2",
        fencepost_bug: true,
        clear_dupacks_on_timeout: false,
        ..irix()
    }
}

/// HP/UX 10.00: the 9.05 line with the ssthresh rounding fixed but the
/// Eqn 2 super-linear increase adopted.
pub fn hpux_10() -> TcpConfig {
    TcpConfig {
        name: "HP/UX 10.00",
        cwnd_increase: CwndIncrease::SuperLinear,
        ssthresh_round_down: false,
        ..hpux()
    }
}

/// NetBSD 1.0: Net/3-based.
pub fn netbsd() -> TcpConfig {
    TcpConfig {
        name: "NetBSD 1.0",
        uninit_cwnd_bug: true,
        header_prediction_bug: true,
        fencepost_bug: true,
        ..reno()
    }
}

/// SunOS 4.1: the study's Tahoe derivative (§8.1, Table 1); also carries
/// the rarely-manifested dup-ack bookkeeping bugs of §8.3.
pub fn sunos_4_1() -> TcpConfig {
    TcpConfig {
        name: "SunOS 4.1.3",
        clear_dupacks_on_timeout: false,
        dupack_updates_cwnd: true,
        ..tahoe()
    }
}

fn solaris_base() -> TcpConfig {
    TcpConfig {
        name: "Solaris 2.x",
        lineage: Lineage::Independent,
        // §8.6: initializes ssthresh to one MSS — conservative but slow.
        initial_ssthresh_segs: Some(1),
        // Footnote: a later Solaris release adopted the Eqn 2 term; the
        // 2.3/2.4 releases studied use Eqn 1 behavior… but the paper lists
        // Solaris among Eqn-2 users, so keep Eqn 2.
        cwnd_increase: CwndIncrease::SuperLinear,
        ss_test_strict: true,
        // §8.6: fast-recovery code present but effectively never runs.
        fast_recovery: FastRecovery::RareBuggy,
        // §8.6: the broken retransmission timer.
        rto_scheme: RtoScheme::SolarisBroken,
        initial_rto: Duration::from_millis(300),
        min_rto: Duration::from_millis(200),
        max_rto: Duration::from_secs(60),
        rto_granularity: Duration::from_millis(50),
        // §8.6: occasionally retransmits the packet just after the ack.
        retransmit_after_ack_period: 8,
        // §9.1: 50 ms interval timer scheduled per packet; acks every
        // packet during the initial slow-start sequence.
        ack_policy: AckPolicy::PerPacketTimer {
            delay: Duration::from_millis(50),
        },
        initial_ack_every_packet: 8,
        // §6.2: slow start plus ssthresh cut on source quench.
        quench_response: QuenchResponse::SlowStartCutSsthresh,
        ..reno()
    }
}

/// Solaris 2.3 (§8.6), including the acking-policy bug 2.4 fixed.
pub fn solaris_2_3() -> TcpConfig {
    TcpConfig {
        name: "Solaris 2.3",
        gratuitous_ack_bug: true,
        ..solaris_base()
    }
}

/// Solaris 2.4 (§8.6).
pub fn solaris_2_4() -> TcpConfig {
    TcpConfig {
        name: "Solaris 2.4",
        ..solaris_base()
    }
}

/// Linux 1.0 (§8.5): broken retransmission — bursts of every unacked
/// packet, triggered far too early; no fast retransmit; ssthresh starts at
/// one segment; acks every packet.
pub fn linux_1_0() -> TcpConfig {
    TcpConfig {
        name: "Linux 1.0",
        lineage: Lineage::Independent,
        initial_ssthresh_segs: Some(1),
        fast_retransmit: false,
        burst_retransmit: true,
        retransmit_on_first_dupack: true,
        // "the timeout is not fully doubling as it backs off"
        rto_backoff: 1.5,
        initial_rto: Duration::from_millis(1000),
        min_rto: Duration::from_millis(300),
        rto_granularity: Duration::from_millis(100),
        // Historically a much shorter connection retry than BSD's 6 s.
        syn_rto: Duration::from_secs(1),
        ack_policy: AckPolicy::EveryPacket,
        quench_response: QuenchResponse::CwndDownOneSegment,
        ..reno()
    }
}

/// Linux 2.0 (§10): the broken retransmission fixed; still acks every
/// packet.
pub fn linux_2_0() -> TcpConfig {
    TcpConfig {
        name: "Linux 2.0.30",
        lineage: Lineage::Independent,
        fast_retransmit: true,
        burst_retransmit: false,
        retransmit_on_first_dupack: false,
        initial_ssthresh_segs: None,
        rto_backoff: 2.0,
        initial_rto: Duration::from_millis(1000),
        min_rto: Duration::from_millis(200),
        rto_granularity: Duration::from_millis(100),
        ack_policy: AckPolicy::EveryPacket,
        quench_response: QuenchResponse::SlowStart,
        ..reno()
    }
}

/// Windows 95 (§10): independently written but broadly Reno-like;
/// reconstruction uses the plain Eqn 1 increase and a 100 ms heartbeat.
pub fn windows_95() -> TcpConfig {
    TcpConfig {
        name: "Windows 95",
        lineage: Lineage::Independent,
        cwnd_increase: CwndIncrease::Linear,
        ack_policy: AckPolicy::Heartbeat {
            interval: Duration::from_millis(100),
        },
        ..reno()
    }
}

/// Windows NT (§10): shares the Windows 95 stack lineage; reconstruction
/// differs in its stretch-ack tendency (one ack per ~3 segments).
pub fn windows_nt() -> TcpConfig {
    TcpConfig {
        name: "Windows NT",
        ack_every_n: 3,
        ..windows_95()
    }
}

/// Trumpet/Winsock (§10): "severe deficiencies". Reconstruction per the
/// abstract's "would devastate Internet performance": no congestion
/// window at all, a fixed unadaptive RTO, burst retransmission, and an
/// ack for every packet.
pub fn trumpet_winsock() -> TcpConfig {
    TcpConfig {
        name: "Trumpet/Winsock 2.0b",
        lineage: Lineage::Independent,
        no_congestion_window: true,
        burst_retransmit: true,
        fast_retransmit: false,
        rto_scheme: RtoScheme::Fixed,
        initial_rto: Duration::from_millis(1000),
        min_rto: Duration::from_millis(1000),
        max_rto: Duration::from_secs(16),
        rto_granularity: Duration::from_millis(100),
        // §2's broken clients: constant-interval connection retries.
        syn_rto: Duration::from_secs(2),
        syn_backoff_flat: true,
        ack_policy: AckPolicy::EveryPacket,
        quench_response: QuenchResponse::Ignore,
        ..reno()
    }
}

/// Every profile tcpanaly knows, in Table 1 order (main study first, then
/// the contributed implementations of §10, then the generics).
pub fn all_profiles() -> Vec<TcpConfig> {
    vec![
        bsdi_1_1(),
        bsdi_2_0(),
        bsdi_2_1(),
        osf1_2_0(),
        osf1(),
        hpux(),
        hpux_10(),
        irix_4_0(),
        irix(),
        irix_6_2(),
        linux_1_0(),
        netbsd(),
        solaris_2_3(),
        solaris_2_4(),
        sunos_4_1(),
        linux_2_0(),
        trumpet_winsock(),
        windows_95(),
        windows_nt(),
        net3(),
        tahoe(),
        reno(),
    ]
}

/// Looks a profile up by its exact name.
pub fn profile_by_name(name: &str) -> Option<TcpConfig> {
    all_profiles().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_have_unique_names() {
        let profiles = all_profiles();
        let mut names: Vec<&str> = profiles.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), profiles.len());
    }

    #[test]
    fn lookup_by_name_round_trips() {
        for p in all_profiles() {
            let found = profile_by_name(p.name).expect("lookup");
            assert_eq!(found.name, p.name);
        }
        assert!(profile_by_name("4.5BSD").is_none());
    }

    #[test]
    fn lineages_match_table_1() {
        assert_eq!(profile_by_name("BSDI 1.1").unwrap().lineage, Lineage::Reno);
        assert_eq!(
            profile_by_name("SunOS 4.1.3").unwrap().lineage,
            Lineage::Tahoe
        );
        for indep in ["Solaris 2.3", "Solaris 2.4", "Linux 1.0", "Windows 95"] {
            assert_eq!(
                profile_by_name(indep).unwrap().lineage,
                Lineage::Independent,
                "{indep}"
            );
        }
    }

    #[test]
    fn headline_pathologies_present() {
        assert!(net3().uninit_cwnd_bug);
        let lin = linux_1_0();
        assert!(lin.burst_retransmit && lin.retransmit_on_first_dupack);
        assert!(!lin.fast_retransmit);
        let sol = solaris_2_4();
        assert_eq!(sol.rto_scheme, RtoScheme::SolarisBroken);
        assert_eq!(sol.initial_rto, Duration::from_millis(300));
        assert!(trumpet_winsock().no_congestion_window);
    }

    #[test]
    fn solaris_23_vs_24_differ_only_in_acking_bug() {
        let a = solaris_2_3();
        let b = solaris_2_4();
        assert!(a.gratuitous_ack_bug && !b.gratuitous_ack_bug);
        assert_eq!(a.rto_scheme, b.rto_scheme);
        assert_eq!(a.ack_policy, b.ack_policy);
    }

    #[test]
    fn every_catalogued_variant_is_exercised_by_some_profile() {
        let ps = all_profiles();
        assert!(ps.iter().any(|p| p.mss_includes_options));
        assert!(ps.iter().any(|p| p.cwnd_init_from_offered_mss));
        assert!(ps.iter().any(|p| p.ss_test_strict));
        assert!(ps.iter().any(|p| p.ssthresh_round_down));
        assert!(ps.iter().any(|p| !p.clear_dupacks_on_timeout));
        assert!(ps.iter().any(|p| p.dupack_updates_cwnd));
        assert!(ps.iter().any(|p| p.fencepost_bug));
        assert!(ps.iter().any(|p| p.header_prediction_bug));
        assert!(ps.iter().any(|p| p.gratuitous_ack_bug));
        assert!(ps.iter().any(|p| p.cwnd_increase == CwndIncrease::Linear));
    }
}
