//! Edge cases of the engine: unroutable packets, stackless routers,
//! timer rescheduling, and horizon clamping.

use tcpa_netsim::stack::NullStack;
use tcpa_netsim::{Engine, LinkParams, NetBuilder, Packet, Stack, TapDir};
use tcpa_trace::{Duration, Time};
use tcpa_wire::{Ipv4Addr, TcpFlags, TcpRepr};

fn tcp_packet(src: Ipv4Addr, dst: Ipv4Addr) -> Packet {
    let mut tcp = TcpRepr::new(1, 2);
    tcp.flags = TcpFlags::ACK;
    Packet::tcp(src, dst, 0, tcp, 100)
}

/// Sends one packet to a configurable destination at start.
struct OneShot {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    got: usize,
}

impl Stack for OneShot {
    fn start(&mut self, _now: Time, out: &mut Vec<Packet>) {
        out.push(tcp_packet(self.src, self.dst));
    }
    fn on_packet(&mut self, _now: Time, _pkt: Packet, _out: &mut Vec<Packet>) {
        self.got += 1;
    }
    fn on_timer(&mut self, _now: Time, _out: &mut Vec<Packet>) {}
    fn next_timer(&self) -> Option<Time> {
        None
    }
    fn done(&self) -> bool {
        true
    }
    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
}

fn two_hosts(dst_for_a: Ipv4Addr) -> (Engine, usize, usize) {
    let a_addr = Ipv4Addr::from_host_id(1);
    let b_addr = Ipv4Addr::from_host_id(2);
    let (nb, a, b) = NetBuilder::two_endpoint_path(
        a_addr,
        b_addr,
        Duration::from_micros(100),
        LinkParams::wan(1_000_000, Duration::from_millis(10), 10),
        LinkParams::wan(1_000_000, Duration::from_millis(10), 10),
    );
    let shooter = OneShot {
        src: a_addr,
        dst: dst_for_a,
        got: 0,
    };
    let mut engine = nb.build(vec![(a, Box::new(shooter)), (b, Box::new(NullStack))], 1);
    engine.enable_tap(a);
    engine.enable_tap(b);
    (engine, a, b)
}

#[test]
fn unroutable_packet_silently_discarded() {
    // Host A addresses a host that does not exist anywhere.
    let (mut engine, a, b) = two_hosts(Ipv4Addr::new(203, 0, 113, 7));
    engine.run();
    assert!(engine.tap_events(a).is_empty(), "never reached any link");
    assert!(engine.tap_events(b).is_empty());
    assert_eq!(engine.ground_truth().total_drops(), 0);
}

#[test]
fn packet_addressed_to_router_is_dropped_there() {
    // The standard path's first router is 10.0.0.1 (stackless).
    let (mut engine, a, b) = two_hosts(Ipv4Addr::new(10, 0, 0, 1));
    engine.run();
    // It crossed A's LAN (tap sees it leave) but goes no further.
    let out = engine
        .tap_events(a)
        .iter()
        .filter(|e| e.dir == TapDir::Out)
        .count();
    assert_eq!(out, 1);
    assert!(engine.tap_events(b).is_empty());
}

#[test]
fn run_until_respects_horizon() {
    /// A stack that ticks forever.
    struct Ticker {
        ticks: u64,
        next: Time,
    }
    impl Stack for Ticker {
        fn start(&mut self, now: Time, _out: &mut Vec<Packet>) {
            self.next = now + Duration::from_millis(100);
        }
        fn on_packet(&mut self, _now: Time, _pkt: Packet, _out: &mut Vec<Packet>) {}
        fn on_timer(&mut self, now: Time, _out: &mut Vec<Packet>) {
            self.ticks += 1;
            self.next = now + Duration::from_millis(100);
        }
        fn next_timer(&self) -> Option<Time> {
            Some(self.next)
        }
        fn as_any(&self) -> &dyn core::any::Any {
            self
        }
    }
    let mut nb = NetBuilder::new();
    let h = nb.host(Ipv4Addr::from_host_id(1), Duration::ZERO);
    let mut engine = nb.build(
        vec![(
            h,
            Box::new(Ticker {
                ticks: 0,
                next: Time::ZERO,
            }),
        )],
        1,
    );
    let end = engine.run_until(Time::from_secs(1));
    assert!(end <= Time::from_secs(1));
    let results = engine.into_results();
    let ticker = results.stacks[h]
        .as_deref()
        .unwrap()
        .as_any()
        .downcast_ref::<Ticker>()
        .unwrap();
    // ~10 ticks in one second; never runs past the horizon.
    assert!((8..=11).contains(&ticker.ticks), "{}", ticker.ticks);
}
