//! Regenerates one artifact of the paper; see DESIGN.md §5.
fn main() {
    print!(
        "{}",
        tcpa_bench::scenarios::policy::response_delay().render()
    );
}
