// PathSpec scenarios are configured field-by-field from the default so
// each deviation reads as one labelled line.
#![allow(clippy::field_reassign_with_default)]

//! The §8 zoo: run the paper's three devastating TCP pathologies side by
//! side — the Net/3 uninitialized-cwnd burst, the Linux 1.0 retransmission
//! storm, and the Solaris premature-RTO flood — each next to a well-behaved
//! control, with ASCII sequence plots.
//!
//! ```sh
//! cargo run --example broken_tcp_zoo
//! ```

use tcpa_netsim::LossModel;
use tcpa_tcpsim::harness::{run_transfer, PathSpec, TransferOutcome};
use tcpa_tcpsim::profiles;
use tcpa_tcpsim::TcpConfig;
use tcpa_trace::plot::SeqPlot;
use tcpa_trace::{Connection, Duration};

fn show(title: &str, out: &TransferOutcome) {
    let conn = Connection::split(&out.sender_trace()).remove(0);
    let plot = SeqPlot::extract(&conn);
    println!("--- {title} ---");
    println!("{}", plot.render_ascii(70, 14));
    println!(
        "packets {}  retransmissions {}  network drops {}  finished {}\n",
        out.sender_stats.data_packets_sent,
        out.sender_stats.retransmissions,
        out.truth.total_drops(),
        out.finished_at,
    );
}

fn main() {
    // §8.4 — Net/3 uninitialized cwnd: receiver omits the MSS option.
    let mut no_mss_receiver: TcpConfig = profiles::reno();
    no_mss_receiver.send_mss_option = false;
    let mut path = PathSpec::default();
    path.one_way_delay = Duration::from_millis(100);
    path.queue_cap = 16;
    show(
        "Net/3: 30-packet blast into a cold window (Figure 3)",
        &run_transfer(
            profiles::net3(),
            no_mss_receiver.clone(),
            &path,
            100 * 1024,
            1,
        ),
    );
    show(
        "control: generic Reno against the same receiver",
        &run_transfer(profiles::reno(), no_mss_receiver, &path, 100 * 1024, 1),
    );

    // §8.5 — Linux 1.0 burst retransmission on a lossy path.
    let mut path = PathSpec::default();
    path.rate_bps = 256_000;
    path.queue_cap = 8;
    path.one_way_delay = Duration::from_millis(60);
    path.loss_data = LossModel::Periodic(20);
    show(
        "Linux 1.0: retransmission storm (Figure 4)",
        &run_transfer(
            profiles::linux_1_0(),
            profiles::linux_1_0(),
            &path,
            100 * 1024,
            2,
        ),
    );
    show(
        "control: Linux 2.0 on the same lossy path",
        &run_transfer(
            profiles::linux_2_0(),
            profiles::linux_2_0(),
            &path,
            100 * 1024,
            2,
        ),
    );

    // §8.6 — Solaris premature RTO on a long path.
    let mut path = PathSpec::default();
    path.one_way_delay = Duration::from_millis(335);
    show(
        "Solaris 2.4: needless retransmissions at 680 ms RTT (Figure 5)",
        &run_transfer(
            profiles::solaris_2_4(),
            profiles::reno(),
            &path,
            100 * 1024,
            3,
        ),
    );
    show(
        "control: Reno on the same long path",
        &run_transfer(profiles::reno(), profiles::reno(), &path, 100 * 1024, 3),
    );
}
