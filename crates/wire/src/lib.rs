#![warn(missing_docs)]

//! `tcpa-wire` — wire-format codecs for the tcpanaly reproduction.
//!
//! This crate implements, from scratch, every on-the-wire format the
//! analyzer and simulators need:
//!
//! * [`ethernet`] — Ethernet II framing,
//! * [`ipv4`] — IPv4 headers with RFC 1071 checksums,
//! * [`tcp`] — TCP headers, flags and options (MSS, window scale,
//!   timestamps, SACK), with pseudo-header checksums,
//! * [`icmp`] — the small ICMP subset the paper needs (source quench,
//!   echo),
//! * [`pcap`] — the classic libpcap capture file format (µs and ns
//!   timestamp variants, both endiannesses), reader and writer,
//! * [`seq`] — wrap-safe 32-bit TCP sequence-number arithmetic.
//!
//! The design follows the smoltcp idiom: each protocol has a *packet view*
//! over a byte slice for zero-copy decoding plus a plain-old-data `*Repr`
//! struct for construction and emission. No allocation is required to parse;
//! emission writes into caller-provided buffers or appends to a `Vec<u8>`.
//!
//! Nothing in this crate knows about simulation or analysis; it is a pure
//! codec layer.

pub mod checksum;
pub mod ethernet;
pub mod icmp;
pub mod ipv4;
pub mod pcap;
pub mod seq;
pub mod tcp;

pub use ethernet::{EtherType, EthernetRepr, MacAddr};
pub use icmp::IcmpRepr;
pub use ipv4::{IpProtocol, Ipv4Addr, Ipv4Repr};
pub use pcap::{
    salvage_records, DamageRegion, FaultKind, PcapError, PcapReader, PcapRecord, PcapWriter,
    SalvageSummary, TsResolution,
};
pub use seq::SeqNum;
pub use tcp::{TcpFlags, TcpOption, TcpRepr};

/// Errors produced when decoding any wire format in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header of the format.
    Truncated,
    /// A length field is inconsistent with the buffer (e.g. IHL too small,
    /// TCP data offset pointing past the segment end).
    BadLength,
    /// A checksum failed verification.
    BadChecksum,
    /// A field holds a value the decoder does not understand
    /// (e.g. an unsupported IP version).
    BadValue,
    /// A capture file's magic number is unrecognized.
    BadMagic,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::BadLength => write!(f, "inconsistent length field"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::BadValue => write!(f, "unsupported field value"),
            WireError::BadMagic => write!(f, "unrecognized capture magic"),
        }
    }
}

impl std::error::Error for WireError {}

/// Crate-wide decode result.
pub type Result<T> = core::result::Result<T, WireError>;
