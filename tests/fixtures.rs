//! Tests over the checked-in fixture captures in `tests/fixtures/`.
//!
//! The fixtures were generated with `gen_trace` (seeds 11–13) and are
//! committed so the analyzer and the corpus pipeline can be exercised on
//! real pcap bytes without a simulator in the loop — the same contract a
//! user's tcpdump file gets.

use std::path::PathBuf;
use tcpa_trace::{pcap_io, MemorySource, TraceSource as _};
use tcpanaly::calibrate::Vantage;
use tcpanaly::corpus::{analyze_corpus, CorpusConfig, ItemOutcome};
use tcpanaly::Analyzer;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixture_reno_clean_fingerprints() {
    let path = fixture_dir().join("reno_clean.pcap");
    let (trace, skipped) =
        pcap_io::read_pcap(std::fs::File::open(&path).expect("fixture present")).unwrap();
    assert_eq!(skipped, 0);
    let report = Analyzer::at_sender().analyze(&trace);
    assert_eq!(report.connections.len(), 1);
    assert!(
        report.connections[0].best_fit().is_some(),
        "clean Reno fixture must have a close fit"
    );
}

#[test]
fn fixture_tahoe_loss_sees_retransmissions() {
    let path = fixture_dir().join("tahoe_loss.pcap");
    let (trace, _) = pcap_io::read_pcap(std::fs::File::open(&path).unwrap()).unwrap();
    let report = Analyzer::at_sender().analyze(&trace);
    let conn = &report.connections[0];
    // The trace was generated with --loss-every 8; a Tahoe-lineage
    // profile must still fit closely through the recovery.
    assert!(conn.best_fit().is_some(), "{}", report.render());
}

#[test]
fn fixture_dir_drives_the_corpus_pipeline() {
    let source = MemorySource::from_pcap_dir(fixture_dir()).unwrap();
    assert_eq!(
        source.len_hint(),
        Some(3),
        "expected the 3 checked-in pcaps"
    );
    // Vantage differs per fixture (solaris_receiver is a receiver tap),
    // so batch with auto-detection.
    let config = CorpusConfig {
        jobs: 2,
        vantage: Vantage::Unknown,
        ..CorpusConfig::default()
    };
    let report = analyze_corpus(source, &config);
    assert_eq!(report.census.items_total, 3);
    assert_eq!(report.census.failed(), 0, "{}", report.render());
    for item in &report.items {
        assert!(
            matches!(item.outcome, ItemOutcome::Analyzed(_)),
            "{}",
            item.id
        );
    }
    // Every fixture holds exactly one connection.
    assert_eq!(report.census.connections, 3);
    // File-name order: reno_clean, solaris_receiver, tahoe_loss.
    assert!(report.items[0].id.ends_with("reno_clean.pcap"));
    assert!(report.items[1].id.ends_with("solaris_receiver.pcap"));
    assert!(report.items[2].id.ends_with("tahoe_loss.pcap"));
}
