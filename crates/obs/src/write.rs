//! Typed filesystem-write errors for observability outputs.
//!
//! `--metrics-out`, `--audit-dir`, and `--trace-out` all end in "write
//! a JSON document somewhere the operator pointed at". A raw
//! `io::Error` bubble loses the one thing the operator needs: *which*
//! path failed and at *which* step (creating the parent directory vs.
//! writing the file). [`WriteError`] keeps both, and
//! [`write_with_parents`] creates missing parent directories instead of
//! failing on them.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// A failed observability-output write, with the path and step attached.
#[derive(Debug)]
pub enum WriteError {
    /// Creating a missing parent (or target) directory failed.
    CreateDir {
        /// The directory that could not be created.
        dir: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// Writing the file itself failed.
    Write {
        /// The file that could not be written.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
}

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteError::CreateDir { dir, source } => {
                write!(f, "cannot create directory {}: {source}", dir.display())
            }
            WriteError::Write { path, source } => {
                write!(f, "cannot write {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for WriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WriteError::CreateDir { source, .. } | WriteError::Write { source, .. } => Some(source),
        }
    }
}

/// Creates `dir` (and any missing ancestors), reporting the failing
/// directory on error.
pub fn ensure_dir(dir: &Path) -> Result<(), WriteError> {
    std::fs::create_dir_all(dir).map_err(|source| WriteError::CreateDir {
        dir: dir.to_path_buf(),
        source,
    })
}

/// Writes `contents` to `path`, creating missing parent directories
/// first. `--metrics-out out/run7/metrics.json` should create
/// `out/run7/`, not fail with `No such file or directory`.
pub fn write_with_parents(path: &Path, contents: &str) -> Result<(), WriteError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            ensure_dir(parent)?;
        }
    }
    std::fs::write(path, contents).map_err(|source| WriteError::Write {
        path: path.to_path_buf(),
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tcpa-obs-write-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn creates_missing_parents() {
        let root = temp_dir("parents");
        let path = root.join("deep/nested/metrics.json");
        write_with_parents(&path, "{}\n").expect("creates parents and writes");
        assert_eq!(std::fs::read_to_string(&path).expect("readable"), "{}\n");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn reports_failing_path() {
        let root = temp_dir("blocked");
        std::fs::create_dir_all(&root).expect("mk root");
        // A file where a directory must go makes create_dir_all fail.
        let blocker = root.join("blocker");
        std::fs::write(&blocker, "").expect("mk blocker");
        let err = write_with_parents(&blocker.join("x/y.json"), "{}")
            .expect_err("cannot create dir under a file");
        let msg = err.to_string();
        assert!(msg.contains("cannot create directory"), "{msg}");
        assert!(msg.contains("blocker"), "{msg}");
        assert!(std::error::Error::source(&err).is_some());
        let _ = std::fs::remove_dir_all(&root);
    }
}
