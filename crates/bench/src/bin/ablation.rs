//! Regenerates the analyzer design-choice ablation matrix.
fn main() {
    print!("{}", tcpa_bench::scenarios::ablation::run().render());
}
