//! An offline, dependency-free stand-in for the subset of the
//! [`proptest`](https://crates.io/crates/proptest) API this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot
//! be resolved. This crate keeps the workspace's property-based tests
//! compiling and *running* by reimplementing the pieces they touch:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_filter`, implemented
//!   for integer and float ranges, tuples, [`Just`](strategy::Just) and
//!   [`any`](arbitrary::any);
//! * [`collection::vec`] and [`sample::Index`];
//! * the `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`
//!   and `prop_assume!` macros;
//! * a deterministic [`TestRunner`](test_runner::TestRunner) (seeded per
//!   test name; `PROPTEST_SEED` perturbs it, `PROPTEST_CASES` resizes it).
//!
//! Differences from the real crate: no shrinking (a failure reports the
//! case seed instead of a minimized input), and no persistence of
//! regression files. Generation quality is plain uniform sampling.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

mod macros;
