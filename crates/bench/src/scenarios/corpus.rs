//! Corpus pipeline — serial vs. parallel batch analysis at paper scale.
//!
//! The paper's catalogues were distilled from ~40,000 traces (§2). This
//! scenario simulates a ~1,000-trace corpus across every implementation,
//! then analyzes it twice through `tcpanaly::corpus` — once on one worker,
//! once on one worker per CPU — and checks the pipeline's two contracts:
//! the merged census must be **byte-identical** regardless of worker
//! count, and parallel throughput should scale with the host's cores.

use crate::{Section, TextTable};
use std::time::Instant;
use tcpa_netsim::rng::SplitMix64;
use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles::all_profiles;
use tcpa_trace::{CorpusItem, Duration, MemorySource};
use tcpanaly::calibrate::Vantage;
use tcpanaly::corpus::{analyze_corpus, CorpusConfig, CorpusReport};

/// Corpus size for the full `repro_all` run.
pub const CORPUS_SIZE: usize = 1000;

/// Generates `n` sender-side traces cycling over every implementation and
/// a spread of seeded paths.
fn simulate_corpus(n: usize) -> Vec<CorpusItem> {
    let profiles = all_profiles();
    let mut rng = SplitMix64::new(0xc0_9b05);
    let rates = [256_000u64, 1_544_000, 10_000_000];
    let delays = [10i64, 30, 80];
    let mut items = Vec::with_capacity(n);
    for i in 0..n {
        let cfg = profiles[i % profiles.len()].clone();
        let mut path = PathSpec::default();
        path.rate_bps = rates[rng.next_below(rates.len() as u64) as usize];
        path.one_way_delay =
            Duration::from_millis(delays[rng.next_below(delays.len() as u64) as usize]);
        if rng.chance(0.3) {
            path.loss_data = tcpa_netsim::LossModel::Periodic(9);
        }
        let out = run_transfer(
            cfg.clone(),
            tcpa_tcpsim::profiles::reno(),
            &path,
            16 * 1024,
            0x5eed + i as u64,
        );
        items.push(CorpusItem::memory(
            format!("sim/{i:04}-{}", cfg.name),
            out.sender_trace(),
        ));
    }
    items
}

fn timed_run(items: Vec<CorpusItem>, jobs: usize) -> (CorpusReport, f64) {
    let config = CorpusConfig {
        jobs,
        vantage: Vantage::Sender,
        ..CorpusConfig::default()
    };
    // tcpa-lint: allow(determinism-hazards) -- the scenario reports end-to-end wall-clock including span overhead, so it cannot itself run under a span
    let start = Instant::now();
    let report = analyze_corpus(MemorySource::new(items), &config);
    (report, start.elapsed().as_secs_f64())
}

/// Runs the scenario on an `n`-trace corpus (tests use a small `n`; the
/// `repro_all` entry point uses [`CORPUS_SIZE`]).
pub fn run_with(n: usize) -> Section {
    let items = simulate_corpus(n);
    let jobs = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let (serial, serial_secs) = timed_run(items.clone(), 1);
    let (parallel, parallel_secs) = timed_run(items, jobs);

    let identical = serial.render() == parallel.render();
    let speedup = serial_secs / parallel_secs.max(1e-9);

    let mut table = TextTable::new(&["pipeline", "workers", "secs", "traces/sec"]);
    table.row(vec![
        "serial".into(),
        "1".into(),
        format!("{serial_secs:.2}"),
        format!("{:.0}", n as f64 / serial_secs.max(1e-9)),
    ]);
    table.row(vec![
        "parallel".into(),
        jobs.to_string(),
        format!("{parallel_secs:.2}"),
        format!("{:.0}", n as f64 / parallel_secs.max(1e-9)),
    ]);
    let mut body = table.render();
    body.push('\n');
    body.push_str(&parallel.render());

    // Speedup is only a meaningful claim when the host has the cores;
    // byte-identity must hold everywhere.
    let scaling_ok = jobs < 8 || speedup >= 3.0;
    Section {
        id: "Corpus".into(),
        title: "parallel batch analysis of a simulated corpus".into(),
        paper_claim: "tcpanaly analyzed the measurement corpus (~40,000 traces) \
                      in batch; conclusions are per-trace and order-independent."
            .into(),
        params: format!(
            "{n} simulated sender-side traces (16 KiB transfers, every \
             implementation, seeded paths), analyzed serially and with \
             {jobs} workers"
        ),
        body,
        measured: vec![
            (
                "census byte-identical (1 vs N workers)".into(),
                identical.to_string(),
            ),
            ("failed items".into(), parallel.census.failed().to_string()),
            ("speedup".into(), format!("{speedup:.2}x")),
        ],
        verdict: if identical && parallel.census.failed() == 0 && scaling_ok {
            if jobs >= 8 {
                format!(
                    "REPRODUCED: deterministic census, {speedup:.1}x speedup on {jobs} workers."
                )
            } else {
                format!(
                    "REPRODUCED: deterministic census; host has only {jobs} core(s), \
                     speedup check not applicable ({speedup:.2}x measured)."
                )
            }
        } else if !identical {
            "FAILED: parallel census differs from serial".into()
        } else if parallel.census.failed() > 0 {
            format!("FAILED: {} corpus items failed", parallel.census.failed())
        } else {
            format!("PARTIAL: deterministic but only {speedup:.2}x speedup on {jobs} workers")
        },
    }
}

/// The `repro_all` entry point at full corpus size.
pub fn run() -> Section {
    run_with(CORPUS_SIZE)
}

#[cfg(test)]
mod tests {
    #[test]
    fn corpus_scenario_reproduces_small() {
        let s = super::run_with(60);
        assert!(
            s.verdict.starts_with("REPRODUCED"),
            "{}\n{}",
            s.verdict,
            s.body
        );
    }
}
