// Good: a justified allow silences the finding and lands in the report's
// allowed list.
fn sentinel(x: Option<u8>) -> u8 {
    // tcpa-lint: allow(no-unwrap-in-analyzer) -- fixture sentinel: the Option is constructed Some three lines up
    x.unwrap()
}
