//! `tcpa-bench` — bench-document tooling. Currently one subcommand:
//!
//! ```text
//! tcpa-bench compare [--threshold-pct N] [--floor-ms N] OLD.json NEW.json
//! ```
//!
//! Diffs two `tcpa-bench/v1` stage-timing documents (the committed
//! `BENCH_stage_timings.json` baseline vs. a fresh `repro_all` run),
//! prints the per-scenario delta table on stdout, and exits 1 when any
//! scenario regressed beyond the thresholds — the CI perf gate.
//!
//! Exit codes: 0 no regression, 1 regression, 2 usage/parse error.

use std::process::ExitCode;
use tcpa_bench::compare::{compare, CompareConfig};

const USAGE: &str = "usage: tcpa-bench compare [options] OLD.json NEW.json

Diff two tcpa-bench/v1 stage-timing documents and fail on regressions.

options:
  --threshold-pct N   regression threshold as percent of the baseline
                      wall clock (default 25)
  --floor-ms N        ignore deltas under N milliseconds, whatever the
                      percentage (default 1.0)

exit codes: 0 no regression, 1 regression, 2 usage or parse error
";

fn fail_usage(msg: &str) -> ExitCode {
    eprintln!("tcpa-bench: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => run_compare(&args[1..]),
        Some("--help") | Some("-h") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail_usage(&format!("unknown subcommand {other:?}")),
        None => fail_usage("no subcommand given"),
    }
}

fn run_compare(args: &[String]) -> ExitCode {
    let mut config = CompareConfig::default();
    let mut files: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let parse_f64 = |flag: &str, value: Option<&String>| -> Result<f64, String> {
            let v = value.ok_or_else(|| format!("{flag} requires a number"))?;
            v.parse()
                .map_err(|_| format!("{flag}: invalid number {v:?}"))
        };
        match arg.as_str() {
            "--threshold-pct" => match parse_f64("--threshold-pct", it.next()) {
                Ok(v) => config.threshold_pct = v,
                Err(e) => return fail_usage(&e),
            },
            "--floor-ms" => match parse_f64("--floor-ms", it.next()) {
                Ok(v) => config.floor_ms = v,
                Err(e) => return fail_usage(&e),
            },
            other if other.starts_with("--threshold-pct=") => {
                let v = other.strip_prefix("--threshold-pct=").unwrap_or_default();
                match v.parse() {
                    Ok(v) => config.threshold_pct = v,
                    Err(_) => return fail_usage(&format!("--threshold-pct: invalid number {v:?}")),
                }
            }
            other if other.starts_with("--floor-ms=") => {
                let v = other.strip_prefix("--floor-ms=").unwrap_or_default();
                match v.parse() {
                    Ok(v) => config.floor_ms = v,
                    Err(_) => return fail_usage(&format!("--floor-ms: invalid number {v:?}")),
                }
            }
            other if other.starts_with('-') => {
                return fail_usage(&format!("unknown option {other}"))
            }
            file => files.push(file),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        return fail_usage("compare takes exactly two documents: OLD.json NEW.json");
    };
    let read = |path: &str| -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    };
    let (old_text, new_text) = match (read(old_path), read(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => return fail_usage(&e),
    };
    match compare(&old_text, &new_text, config) {
        Ok(report) => {
            print!("{}", report.render());
            if report.has_regressions() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => fail_usage(&e),
    }
}
