//! CLI contract tests for `tcpa-bench compare`: golden delta-table
//! output (byte-stable across runs), the regression exit code, the
//! threshold/floor knobs, and usage errors.

use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_str()
        .unwrap()
        .to_string()
}

fn run(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_tcpa-bench"))
        .args(args)
        .output()
        .expect("run tcpa-bench");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

/// A ≥25% regression in one scenario: golden table, exit 1.
#[test]
fn regression_fixture_matches_golden_and_exits_one() {
    let (stdout, stderr, code) = run(&[
        "compare",
        &fixture("bench_old.json"),
        &fixture("bench_new_regressed.json"),
    ]);
    assert_eq!(code, 1, "regression must gate\n{stdout}\n{stderr}");
    let golden = std::fs::read_to_string(fixture("compare_regressed.golden")).unwrap();
    assert_eq!(stdout, golden, "delta table must be byte-stable");
    assert!(stdout.contains("REGRESSED"));
    assert!(stdout.contains("stage.fingerprint +600.0 ms"));
}

/// Noise-level drift on every scenario: golden table, exit 0.
#[test]
fn no_change_fixture_matches_golden_and_exits_zero() {
    let (stdout, stderr, code) = run(&[
        "compare",
        &fixture("bench_old.json"),
        &fixture("bench_new_same.json"),
    ]);
    assert_eq!(code, 0, "noise must not gate\n{stdout}\n{stderr}");
    let golden = std::fs::read_to_string(fixture("compare_same.golden")).unwrap();
    assert_eq!(stdout, golden);
    assert!(stdout.contains("0 regressed"));
}

/// Raising the threshold above the regression lets it pass; shrinking
/// the floor to zero still respects the percentage gate.
#[test]
fn threshold_and_floor_knobs_move_the_gate() {
    let (stdout, _, code) = run(&[
        "compare",
        "--threshold-pct",
        "60",
        &fixture("bench_old.json"),
        &fixture("bench_new_regressed.json"),
    ]);
    assert_eq!(code, 0, "50% slide passes a 60% threshold\n{stdout}");
    assert!(stdout.contains("threshold 60%"), "{stdout}");

    let (stdout, _, code) = run(&[
        "compare",
        "--threshold-pct=1",
        "--floor-ms=0",
        &fixture("bench_old.json"),
        &fixture("bench_new_same.json"),
    ]);
    assert_eq!(
        code, 1,
        "2% drift fails a 1% threshold with no floor\n{stdout}"
    );
}

/// Identical documents: all ok, exit 0.
#[test]
fn identical_documents_exit_zero() {
    let (stdout, _, code) = run(&[
        "compare",
        &fixture("bench_old.json"),
        &fixture("bench_old.json"),
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("3 scenarios, 0 regressed"), "{stdout}");
}

/// The committed BENCH_stage_timings.json baseline is itself a valid
/// compare input — the CI gate's contract.
#[test]
fn committed_baseline_is_comparable() {
    let baseline = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_stage_timings.json");
    let baseline = baseline.to_str().unwrap();
    let (stdout, stderr, code) = run(&["compare", baseline, baseline]);
    assert_eq!(code, 0, "{stdout}\n{stderr}");
    assert!(stdout.contains("0 regressed"), "{stdout}");
}

/// Usage and parse problems exit 2, not 1 — a broken gate must not
/// masquerade as a perf verdict.
#[test]
fn usage_and_parse_errors_exit_two() {
    let (_, stderr, code) = run(&["compare", &fixture("bench_old.json")]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage"), "{stderr}");

    let (_, stderr, code) = run(&["compare", "/nonexistent.json", &fixture("bench_old.json")]);
    assert_eq!(code, 2);
    assert!(stderr.contains("nonexistent"), "{stderr}");

    let (_, stderr, code) = run(&["frobnicate"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown subcommand"), "{stderr}");

    let (_, stderr, code) = run(&[
        "compare",
        "--threshold-pct",
        "abc",
        &fixture("bench_old.json"),
        &fixture("bench_new_same.json"),
    ]);
    assert_eq!(code, 2);
    assert!(stderr.contains("invalid number"), "{stderr}");
}
