//! Table 1 — the corpus of TCP implementations studied.
//!
//! The paper's counts (3,394 BSDI sender traces, …) inventory a 1995
//! measurement campaign; here we *generate* a scaled corpus — N sender-
//! side and N receiver-side traces per implementation over randomized
//! paths — and verify that every trace is analyzable and self-consistent
//! (completes, and its sender trace fits its own profile), reproducing
//! the table's structure: implementation × #sender × #receiver × lineage.

use crate::{Section, TextTable};
use tcpa_netsim::rng::SplitMix64;
use tcpa_netsim::LossModel;
use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles::all_profiles;
use tcpa_trace::{Connection, Duration};
use tcpanaly::fingerprint::{fingerprint_one, FitClass};

/// Traces generated per implementation per direction. The paper's corpus
/// is ~40,000 traces; the default here keeps `repro_all` quick while
/// exercising every implementation on varied paths.
pub const TRACES_PER_IMPL: usize = 6;

/// A randomized mid-90s path drawn from a seeded generator.
fn random_path(rng: &mut SplitMix64) -> PathSpec {
    let rates = [64_000u64, 128_000, 256_000, 1_544_000, 10_000_000];
    let delays = [5i64, 15, 30, 60, 120];
    let mut path = PathSpec::default();
    path.rate_bps = rates[rng.next_below(rates.len() as u64) as usize];
    path.one_way_delay =
        Duration::from_millis(delays[rng.next_below(delays.len() as u64) as usize]);
    path.queue_cap = 8 + rng.next_below(24) as usize;
    if rng.chance(0.3) {
        path.loss_data = LossModel::Bernoulli(0.005 + rng.next_f64() * 0.02);
    }
    path
}

/// Generates the corpus and renders the table.
pub fn run() -> Section {
    let mut rng = SplitMix64::new(0x7ab1e1);
    let mut table = TextTable::new(&[
        "Implementation",
        "# Sender",
        "# Receiver",
        "Lineage",
        "self-fit",
    ]);
    let mut total_sender = 0usize;
    let mut total_receiver = 0usize;
    let mut total_selffit = 0usize;
    let mut total_analyzed = 0usize;

    for cfg in all_profiles() {
        let mut sender_ok = 0;
        let mut receiver_ok = 0;
        let mut selffit = 0;
        for k in 0..TRACES_PER_IMPL {
            let path = random_path(&mut rng);
            let seed = 0x1000 + k as u64;
            // Sender-side trace: this implementation ships the data.
            let out = run_transfer(
                cfg.clone(),
                tcpa_tcpsim::profiles::reno(),
                &path,
                64 * 1024,
                seed,
            );
            if out.completed {
                sender_ok += 1;
                let conn = Connection::split(&out.sender_trace()).remove(0);
                total_analyzed += 1;
                if let Some(fit) = fingerprint_one(&conn, &cfg) {
                    if fit.fit == FitClass::Close {
                        selffit += 1;
                    }
                }
            }
            // Receiver-side trace: this implementation consumes the data.
            let out = run_transfer(
                tcpa_tcpsim::profiles::reno(),
                cfg.clone(),
                &path,
                64 * 1024,
                seed + 7,
            );
            if out.completed {
                receiver_ok += 1;
            }
        }
        total_sender += sender_ok;
        total_receiver += receiver_ok;
        total_selffit += selffit;
        table.row(vec![
            cfg.name.to_string(),
            sender_ok.to_string(),
            receiver_ok.to_string(),
            cfg.lineage.to_string(),
            format!("{selffit}/{sender_ok}"),
        ]);
    }
    table.row(vec![
        "Total".into(),
        total_sender.to_string(),
        total_receiver.to_string(),
        String::new(),
        format!("{total_selffit}"),
    ]);

    let n_impls = all_profiles().len();
    Section {
        id: "Table 1".into(),
        title: "TCP implementations studied".into(),
        paper_claim: "8 main implementations (plus contributed Windows 95/NT, \
                      Trumpet/Winsock, Linux 2.0), 20,034 sender and 20,043 \
                      receiver traces; lineages Tahoe / Reno / independent."
            .into(),
        params: format!(
            "{TRACES_PER_IMPL} sender + {TRACES_PER_IMPL} receiver traces per \
             implementation ({n_impls} implementations) over seeded random paths \
             (64 kb/s – 10 Mb/s, 10–240 ms RTT, optional loss)"
        ),
        body: table.render(),
        measured: vec![
            ("total sender traces".into(), total_sender.to_string()),
            ("total receiver traces".into(), total_receiver.to_string()),
            (
                "sender traces self-fitting their profile".into(),
                format!("{total_selffit}/{total_analyzed}"),
            ),
        ],
        verdict: if total_sender == n_impls * TRACES_PER_IMPL
            && total_selffit as f64 >= 0.9 * total_analyzed as f64
        {
            "REPRODUCED: full implementation × direction × lineage corpus; sender traces overwhelmingly self-fit.".into()
        } else {
            format!(
                "PARTIAL: {total_sender} sender traces, {total_selffit}/{total_analyzed} self-fit"
            )
        },
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_reproduces() {
        let s = super::run();
        assert!(
            s.verdict.starts_with("REPRODUCED"),
            "{}\n{}",
            s.verdict,
            s.body
        );
    }
}
