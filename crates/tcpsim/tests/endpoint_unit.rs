//! Direct unit tests of the endpoint state machine: drive the [`Stack`]
//! interface by hand, packet by packet, without the network simulator.

use tcpa_netsim::{Packet, PacketKind, Stack};
use tcpa_tcpsim::profiles;
use tcpa_tcpsim::{Role, TcpEndpoint};
use tcpa_trace::{Duration, Time};
use tcpa_wire::{Ipv4Addr, SeqNum, TcpFlags, TcpOption, TcpRepr};

const A: Ipv4Addr = Ipv4Addr::from_host_id(1);
const B: Ipv4Addr = Ipv4Addr::from_host_id(2);

fn sender(bytes: u64) -> TcpEndpoint {
    TcpEndpoint::new(
        profiles::reno(),
        A,
        1000,
        B,
        2000,
        Role::ActiveSender { total_bytes: bytes },
    )
}

fn receiver() -> TcpEndpoint {
    TcpEndpoint::new(profiles::reno(), B, 2000, A, 1000, Role::PassiveReceiver)
}

/// Extracts (tcp, payload_len) from an emitted packet.
fn tcp_of(pkt: &Packet) -> (&TcpRepr, u32) {
    match &pkt.kind {
        PacketKind::Tcp {
            tcp, payload_len, ..
        } => (tcp, *payload_len),
        _ => panic!("expected TCP"),
    }
}

/// Builds a reply packet from `from` to the endpoint under test.
fn mk(from: Ipv4Addr, to: Ipv4Addr, tcp: TcpRepr, len: u32) -> Packet {
    Packet::tcp(from, to, 0, tcp, len)
}

#[test]
fn active_open_emits_syn_with_mss() {
    let mut s = sender(1000);
    let mut out = Vec::new();
    s.start(Time::ZERO, &mut out);
    assert_eq!(out.len(), 1);
    let (tcp, len) = tcp_of(&out[0]);
    assert!(tcp.flags.syn() && !tcp.flags.ack());
    assert_eq!(len, 0);
    assert_eq!(tcp.mss_option(), Some(1460));
    assert!(!s.established());
}

#[test]
fn handshake_completes_and_data_flows() {
    let mut s = sender(2920);
    let mut out = Vec::new();
    s.start(Time::ZERO, &mut out);
    let (syn, _) = tcp_of(&out[0]);
    let iss = syn.seq;

    // SYN-ack from the peer.
    let mut synack = TcpRepr::new(2000, 1000);
    synack.flags = TcpFlags::SYN | TcpFlags::ACK;
    synack.seq = SeqNum(5000);
    synack.ack = iss + 1;
    synack.window = 16_384;
    synack.options.push(TcpOption::Mss(1460));
    let mut out = Vec::new();
    s.on_packet(Time::from_millis(50), mk(B, A, synack, 0), &mut out);
    assert!(s.established());
    // Handshake ack plus the first data segment (cwnd = 1 MSS).
    assert_eq!(out.len(), 2);
    let (ack, len0) = tcp_of(&out[0]);
    assert!(ack.flags.ack() && !ack.flags.syn());
    assert_eq!(len0, 0);
    let (data, len1) = tcp_of(&out[1]);
    assert_eq!(data.seq, iss + 1);
    assert_eq!(len1, 1460);
}

#[test]
fn passive_open_replies_syn_ack_and_repeats_on_dup_syn() {
    let mut r = receiver();
    let mut syn = TcpRepr::new(1000, 2000);
    syn.flags = TcpFlags::SYN;
    syn.seq = SeqNum(100);
    syn.options.push(TcpOption::Mss(1460));
    let mut out = Vec::new();
    r.on_packet(Time::ZERO, mk(A, B, syn.clone(), 0), &mut out);
    assert_eq!(out.len(), 1);
    let (synack, _) = tcp_of(&out[0]);
    assert!(synack.flags.syn() && synack.flags.ack());
    assert_eq!(synack.ack, SeqNum(101));

    // A duplicated SYN must elicit the same SYN-ack again, not confusion.
    let mut out = Vec::new();
    r.on_packet(Time::from_millis(10), mk(A, B, syn, 0), &mut out);
    assert_eq!(out.len(), 1);
    let (synack2, _) = tcp_of(&out[0]);
    assert!(synack2.flags.syn() && synack2.flags.ack());
}

#[test]
fn syn_timer_retries_and_eventually_fails() {
    let mut s = sender(1000);
    let mut out = Vec::new();
    s.start(Time::ZERO, &mut out);
    let mut syns = 1;
    // Never answer; pump the timer until the endpoint gives up.
    for _ in 0..10 {
        let Some(t) = s.next_timer() else { break };
        let mut out = Vec::new();
        s.on_timer(t, &mut out);
        syns += out.iter().filter(|p| tcp_of(p).0.flags.syn()).count();
    }
    assert!(s.failed(), "connection attempt must give up");
    assert!(s.done());
    assert!((4..=7).contains(&syns), "bounded retries, got {syns} SYNs");
}

#[test]
fn corrupt_segment_discarded_without_ack() {
    let mut r = receiver();
    // Establish.
    let mut syn = TcpRepr::new(1000, 2000);
    syn.flags = TcpFlags::SYN;
    syn.seq = SeqNum(100);
    let mut out = Vec::new();
    r.on_packet(Time::ZERO, mk(A, B, syn, 0), &mut out);
    let mut ack = TcpRepr::new(1000, 2000);
    ack.flags = TcpFlags::ACK;
    ack.seq = SeqNum(101);
    let (synack, _) = tcp_of(&out[0]);
    ack.ack = synack.seq + 1;
    let mut out = Vec::new();
    r.on_packet(Time::from_millis(1), mk(A, B, ack, 0), &mut out);
    assert!(r.established());

    // A corrupt data segment arrives: silence.
    let mut data = TcpRepr::new(1000, 2000);
    data.flags = TcpFlags::ACK;
    data.seq = SeqNum(101);
    let mut pkt = mk(A, B, data, 512);
    if let PacketKind::Tcp { corrupt, .. } = &mut pkt.kind {
        *corrupt = true;
    }
    let mut out = Vec::new();
    r.on_packet(Time::from_millis(5), pkt, &mut out);
    assert!(out.is_empty(), "checksum failure: dropped before TCP");
    assert_eq!(r.stats.corrupt_discarded, 1);
    assert_eq!(r.stats.data_packets_received, 0);
}

#[test]
fn ip_ident_increments_per_packet() {
    let mut s = sender(8 * 1460);
    let mut out = Vec::new();
    s.start(Time::ZERO, &mut out);
    let mut idents = vec![out[0].ident];
    let (syn, _) = tcp_of(&out[0]);
    let iss = syn.seq;
    let mut synack = TcpRepr::new(2000, 1000);
    synack.flags = TcpFlags::SYN | TcpFlags::ACK;
    synack.seq = SeqNum(9000);
    synack.ack = iss + 1;
    synack.window = 65_535;
    synack.options.push(TcpOption::Mss(1460));
    let mut out = Vec::new();
    s.on_packet(Time::from_millis(10), mk(B, A, synack, 0), &mut out);
    idents.extend(out.iter().map(|p| p.ident));
    assert!(
        idents.windows(2).all(|w| w[1] == w[0] + 1),
        "monotone ident counter: {idents:?}"
    );
}

#[test]
fn delayed_ack_waits_for_heartbeat() {
    let mut r = receiver();
    let mut syn = TcpRepr::new(1000, 2000);
    syn.flags = TcpFlags::SYN;
    syn.seq = SeqNum(100);
    syn.options.push(TcpOption::Mss(1460));
    let mut out = Vec::new();
    r.on_packet(Time::ZERO, mk(A, B, syn, 0), &mut out);
    let (synack, _) = tcp_of(&out[0]);
    let mut ack = TcpRepr::new(1000, 2000);
    ack.flags = TcpFlags::ACK;
    ack.seq = SeqNum(101);
    ack.ack = synack.seq + 1;
    let mut out = Vec::new();
    r.on_packet(Time::from_millis(1), mk(A, B, ack, 0), &mut out);

    // One lone segment arrives mid-heartbeat-interval.
    let mut data = TcpRepr::new(1000, 2000);
    data.flags = TcpFlags::ACK;
    data.seq = SeqNum(101);
    data.ack = synack.seq + 1;
    let mut out = Vec::new();
    r.on_packet(Time::from_millis(250), mk(A, B, data, 1460), &mut out);
    assert!(out.is_empty(), "single segment: ack is delayed");
    // The delayed-ack timer is the next heartbeat boundary (400 ms).
    let t = r.next_timer().expect("delack armed");
    assert_eq!(t, Time::from_millis(400));
    let mut out = Vec::new();
    r.on_timer(t, &mut out);
    assert_eq!(out.len(), 1);
    let (dack, _) = tcp_of(&out[0]);
    assert_eq!(dack.ack, SeqNum(101 + 1460));
}

#[test]
fn fin_retransmitted_when_unacked() {
    let mut s = sender(0); // empty transfer: SYN, then FIN immediately
    let mut out = Vec::new();
    s.start(Time::ZERO, &mut out);
    let (syn, _) = tcp_of(&out[0]);
    let iss = syn.seq;
    let mut synack = TcpRepr::new(2000, 1000);
    synack.flags = TcpFlags::SYN | TcpFlags::ACK;
    synack.seq = SeqNum(7000);
    synack.ack = iss + 1;
    synack.window = 16_384;
    synack.options.push(TcpOption::Mss(1460));
    let mut out = Vec::new();
    s.on_packet(Time::from_millis(10), mk(B, A, synack, 0), &mut out);
    let fin = out
        .iter()
        .find(|p| tcp_of(p).0.flags.fin())
        .expect("FIN emitted at once for an empty transfer");
    let (fin_tcp, _) = tcp_of(fin);
    assert_eq!(fin_tcp.seq, iss + 1);

    // Never ack it; the retransmission timer must re-send the FIN.
    let t = s.next_timer().expect("rtx timer armed for the FIN");
    assert!(t - Time::from_millis(10) >= Duration::from_secs(1));
    let mut out = Vec::new();
    s.on_timer(t, &mut out);
    assert_eq!(out.len(), 1);
    assert!(tcp_of(&out[0]).0.flags.fin(), "FIN retransmitted");
    assert_eq!(s.stats.retransmissions, 1);
}

#[test]
fn source_quench_collapses_cwnd() {
    let mut s = sender(65_536);
    let mut out = Vec::new();
    s.start(Time::ZERO, &mut out);
    let (syn, _) = tcp_of(&out[0]);
    let iss = syn.seq;
    let mut synack = TcpRepr::new(2000, 1000);
    synack.flags = TcpFlags::SYN | TcpFlags::ACK;
    synack.seq = SeqNum(7000);
    synack.ack = iss + 1;
    synack.window = 65_535;
    synack.options.push(TcpOption::Mss(1460));
    let mut out = Vec::new();
    s.on_packet(Time::from_millis(10), mk(B, A, synack, 0), &mut out);
    // Grow the window with a few acks.
    let mut una = iss + 1;
    for k in 0..3 {
        una += 1460;
        let mut ack = TcpRepr::new(2000, 1000);
        ack.flags = TcpFlags::ACK;
        ack.seq = SeqNum(7001);
        ack.ack = una;
        ack.window = 65_535;
        let mut out = Vec::new();
        s.on_packet(Time::from_millis(100 + k), mk(B, A, ack, 0), &mut out);
    }
    let before = s.cc().cwnd;
    assert!(before > 1460);
    let mut out = Vec::new();
    s.on_packet(
        Time::from_millis(200),
        Packet::source_quench(Ipv4Addr::new(10, 0, 0, 1), A),
        &mut out,
    );
    assert_eq!(s.cc().cwnd, 1460, "BSD quench response: slow start");
    assert_eq!(s.stats.quenches_received, 1);
}

#[test]
fn give_up_sends_rst_after_max_retransmits() {
    let mut cfg = profiles::reno();
    cfg.max_retransmits = 3;
    let mut s = TcpEndpoint::new(
        cfg,
        A,
        1000,
        B,
        2000,
        Role::ActiveSender { total_bytes: 4096 },
    );
    let mut out = Vec::new();
    s.start(Time::ZERO, &mut out);
    let (syn, _) = tcp_of(&out[0]);
    let iss = syn.seq;
    let mut synack = TcpRepr::new(2000, 1000);
    synack.flags = TcpFlags::SYN | TcpFlags::ACK;
    synack.seq = SeqNum(7000);
    synack.ack = iss + 1;
    synack.window = 16_384;
    synack.options.push(TcpOption::Mss(1460));
    let mut out = Vec::new();
    s.on_packet(Time::from_millis(10), mk(B, A, synack, 0), &mut out);
    assert!(s.established());

    // Never ack anything: pump the retransmission timer until give-up.
    let mut rst_seen = false;
    for _ in 0..12 {
        let Some(t) = s.next_timer() else { break };
        let mut out = Vec::new();
        s.on_timer(t, &mut out);
        rst_seen |= out.iter().any(|p| tcp_of(p).0.flags.rst());
    }
    assert!(s.failed(), "connection must be abandoned");
    assert!(rst_seen, "a correct TCP announces the abort with a RST");
    assert_eq!(s.stats.rsts_sent, 1);
    assert_eq!(s.stats.timeouts, 4, "3 retries + the give-up firing");
}

#[test]
fn broken_tcp_goes_silent_instead_of_rst() {
    // The [DJM97] finding: no RST on give-up.
    let mut cfg = profiles::reno();
    cfg.max_retransmits = 2;
    cfg.rst_on_give_up = false;
    let mut s = TcpEndpoint::new(
        cfg,
        A,
        1000,
        B,
        2000,
        Role::ActiveSender { total_bytes: 4096 },
    );
    let mut out = Vec::new();
    s.start(Time::ZERO, &mut out);
    let (syn, _) = tcp_of(&out[0]);
    let iss = syn.seq;
    let mut synack = TcpRepr::new(2000, 1000);
    synack.flags = TcpFlags::SYN | TcpFlags::ACK;
    synack.seq = SeqNum(7000);
    synack.ack = iss + 1;
    synack.window = 16_384;
    synack.options.push(TcpOption::Mss(1460));
    let mut out = Vec::new();
    s.on_packet(Time::from_millis(10), mk(B, A, synack, 0), &mut out);
    for _ in 0..12 {
        let Some(t) = s.next_timer() else { break };
        let mut out = Vec::new();
        s.on_timer(t, &mut out);
        assert!(
            out.iter().all(|p| !tcp_of(p).0.flags.rst()),
            "this TCP never says goodbye"
        );
    }
    assert!(s.failed());
    assert_eq!(s.stats.rsts_sent, 0);
}

#[test]
fn receiver_tears_down_on_rst() {
    let mut r = receiver();
    let mut syn = TcpRepr::new(1000, 2000);
    syn.flags = TcpFlags::SYN;
    syn.seq = SeqNum(100);
    let mut out = Vec::new();
    r.on_packet(Time::ZERO, mk(A, B, syn, 0), &mut out);
    let (synack, _) = tcp_of(&out[0]);
    let mut ack = TcpRepr::new(1000, 2000);
    ack.flags = TcpFlags::ACK;
    ack.seq = SeqNum(101);
    ack.ack = synack.seq + 1;
    let mut out = Vec::new();
    r.on_packet(Time::from_millis(1), mk(A, B, ack, 0), &mut out);
    assert!(r.established());

    let mut rst = TcpRepr::new(1000, 2000);
    rst.flags = TcpFlags::RST | TcpFlags::ACK;
    rst.seq = SeqNum(101);
    let mut out = Vec::new();
    r.on_packet(Time::from_millis(5), mk(A, B, rst, 0), &mut out);
    assert!(out.is_empty());
    assert!(r.failed());
    assert!(r.done());
}
