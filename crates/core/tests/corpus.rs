//! Integration tests for the parallel corpus pipeline: determinism
//! (parallel output byte-identical to serial), panic isolation, and
//! pcap-backed sources.

use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::mangle::{inject, FaultKind};
use tcpa_trace::{pcap_io, CorpusItem, MemorySource, Trace};
use tcpa_wire::TsResolution;
use tcpanaly::calibrate::Vantage;
use tcpanaly::corpus::{analyze_corpus, AnalysisError, CorpusConfig, DegradePolicy, ItemOutcome};

/// A 50-trace simulated corpus mixing implementations, sizes and seeds.
fn build_corpus() -> Vec<CorpusItem> {
    let senders = [
        profiles::reno(),
        profiles::tahoe(),
        profiles::solaris_2_4(),
        profiles::linux_1_0(),
        profiles::windows_95(),
    ];
    let mut items = Vec::new();
    for i in 0..50u64 {
        let cfg = senders[(i % senders.len() as u64) as usize].clone();
        let out = run_transfer(
            cfg,
            profiles::reno(),
            &PathSpec::default(),
            8 * 1024 + 512 * i,
            900 + i,
        );
        items.push(CorpusItem::memory(format!("t{i:02}"), out.sender_trace()));
    }
    items
}

fn config(jobs: usize) -> CorpusConfig {
    CorpusConfig {
        jobs,
        vantage: Vantage::Sender,
        ..CorpusConfig::default()
    }
}

#[test]
fn parallel_census_is_byte_identical_to_serial() {
    let items = build_corpus();
    let serial = analyze_corpus(MemorySource::new(items.clone()), &config(1));
    let parallel = analyze_corpus(MemorySource::new(items), &config(4));
    // Structural equality of every per-item result, in input order...
    assert_eq!(serial.items, parallel.items);
    // ...and the rendered census must match byte for byte.
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.census.analyzed, 50);
    assert_eq!(serial.census.failed(), 0);
}

#[test]
fn items_come_back_in_input_order_regardless_of_workers() {
    let items = build_corpus();
    let report = analyze_corpus(MemorySource::new(items), &config(8));
    let ids: Vec<&str> = report.items.iter().map(|r| r.id.as_str()).collect();
    let expected: Vec<String> = (0..50).map(|i| format!("t{i:02}")).collect();
    assert_eq!(ids, expected.iter().map(String::as_str).collect::<Vec<_>>());
    for (i, item) in report.items.iter().enumerate() {
        assert_eq!(item.index, i);
    }
}

#[test]
fn one_poisoned_trace_costs_one_item_not_the_pipeline() {
    // Silence the default panic hook: the poison's panic is expected and
    // its backtrace would only clutter test output.
    let prior = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut items = build_corpus();
    items[17] = CorpusItem::poison("t17");
    let report = analyze_corpus(MemorySource::new(items), &config(4));
    std::panic::set_hook(prior);

    assert_eq!(report.census.panics, 1);
    assert_eq!(report.census.analyzed, 49);
    assert!(matches!(
        &report.items[17].outcome,
        ItemOutcome::Failed(AnalysisError::Panicked { message })
            if message.contains("poisoned corpus item")
    ));
    for (i, item) in report.items.iter().enumerate() {
        if i != 17 {
            assert!(
                matches!(item.outcome, ItemOutcome::Analyzed(_)),
                "item {i} should have survived the poison at 17"
            );
        }
    }
    assert!(report.render().contains("analyzer panic"));
}

#[test]
fn load_errors_and_empty_traces_are_reported_not_fatal() {
    let items = vec![
        CorpusItem::memory("empty", Trace::new()),
        CorpusItem::pcap("/nonexistent/never.pcap"),
    ];
    let report = analyze_corpus(MemorySource::new(items), &config(2));
    assert_eq!(report.census.items_total, 2);
    assert_eq!(report.census.io_errors, 1);
    // An empty trace analyzes to zero connections rather than failing.
    assert!(matches!(report.items[0].outcome, ItemOutcome::Analyzed(_)));
    assert_eq!(report.census.connections, 0);
}

/// A 12-item corpus of pcap-bytes items where every third capture has a
/// seeded fault injected (≥ the acceptance floor of 10% faulted).
fn mangled_corpus() -> (Vec<CorpusItem>, usize) {
    let kinds = [
        FaultKind::CorruptTimestamp,
        FaultKind::OversizedLength,
        FaultKind::GarbageSplice,
        FaultKind::ZeroLength,
    ];
    let mut items = Vec::new();
    let mut damaged = 0;
    for i in 0..12u64 {
        let out = run_transfer(
            profiles::reno(),
            profiles::reno(),
            &PathSpec::default(),
            8 * 1024,
            7000 + i,
        );
        let bytes =
            pcap_io::write_pcap(&out.sender_trace(), Vec::new(), TsResolution::Micro, 0).unwrap();
        let bytes = if i % 3 == 0 {
            damaged += 1;
            let kind = kinds[(i / 3) as usize % kinds.len()];
            inject(&bytes, kind, 0xdead + i).expect("injectable").0
        } else {
            bytes
        };
        items.push(CorpusItem::pcap_bytes(format!("mc{i:02}"), bytes));
    }
    (items, damaged)
}

#[test]
fn salvage_policy_degrades_damaged_items_instead_of_failing() {
    let (items, damaged) = mangled_corpus();
    let salvage = CorpusConfig {
        jobs: 4,
        vantage: Vantage::Sender,
        degrade: DegradePolicy::Salvage,
        ..CorpusConfig::default()
    };
    let report = analyze_corpus(MemorySource::new(items.clone()), &salvage);
    assert!(!report.aborted);
    assert_eq!(report.census.failed(), 0, "{}", report.render());
    assert_eq!(report.census.salvaged, damaged);
    assert_eq!(report.census.analyzed, 12 - damaged);
    assert!(report.census.bytes_skipped > 0);
    assert!(report.render().contains("salvage:"), "{}", report.render());

    // Deterministic for any worker count.
    let serial = analyze_corpus(
        MemorySource::new(items.clone()),
        &CorpusConfig {
            jobs: 1,
            ..salvage.clone()
        },
    );
    assert_eq!(serial.render(), report.render());

    // Skip (default) policy: the same damage becomes typed failures, and
    // the probe reports what salvage would have recovered.
    let skip = CorpusConfig {
        jobs: 4,
        vantage: Vantage::Sender,
        ..CorpusConfig::default()
    };
    let report = analyze_corpus(MemorySource::new(items.clone()), &skip);
    assert!(!report.aborted);
    assert_eq!(report.census.malformed, damaged, "{}", report.render());
    assert!(report
        .items
        .iter()
        .any(|r| matches!(&r.outcome, ItemOutcome::Failed(AnalysisError::Salvaged { report }) if report.records > 0)));

    // Strict policy: the run aborts and says so.
    let strict = CorpusConfig {
        jobs: 4,
        vantage: Vantage::Sender,
        degrade: DegradePolicy::Strict,
        ..CorpusConfig::default()
    };
    let report = analyze_corpus(MemorySource::new(items), &strict);
    assert!(report.aborted);
    assert!(report.first_failure().is_some());
    assert!(report.render().contains("RUN ABORTED"));
}

#[test]
fn watchdog_census_is_identical_to_inline_census() {
    let items = build_corpus();
    let inline = analyze_corpus(MemorySource::new(items.clone()), &config(4));
    let guarded = analyze_corpus(
        MemorySource::new(items),
        &CorpusConfig {
            timeout: Some(std::time::Duration::from_secs(120)),
            ..config(4)
        },
    );
    // A generous watchdog changes nothing about the results.
    assert_eq!(inline.render(), guarded.render());
    assert_eq!(guarded.census.timeouts, 0);
}

#[test]
fn auto_vantage_batch_matches_fixed_vantage_on_sender_traces() {
    let items = build_corpus();
    let fixed = analyze_corpus(MemorySource::new(items.clone()), &config(2));
    let auto = analyze_corpus(
        MemorySource::new(items),
        &CorpusConfig {
            jobs: 2,
            vantage: Vantage::Unknown,
            ..CorpusConfig::default()
        },
    );
    // Auto-detection must land on Sender for these traces, so the merged
    // census agrees with the explicitly-configured run.
    assert_eq!(fixed.render(), auto.render());
}
