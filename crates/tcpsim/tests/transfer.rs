//! End-to-end bulk-transfer tests: the endpoint simulators must complete
//! realistic transfers, and each headline pathology of the paper must
//! *emerge* from its profile's flags.

use tcpa_netsim::LossModel;
use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::{Connection, Dir, Duration};

const KB100: u64 = 100 * 1024;

fn default_path() -> PathSpec {
    PathSpec::default()
}

#[test]
fn reno_completes_clean_transfer() {
    let out = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &default_path(),
        KB100,
        1,
    );
    assert!(out.completed, "transfer must complete");
    assert_eq!(out.sender_stats.bytes_acked, KB100 + 1, "data + FIN acked");
    assert_eq!(
        out.sender_stats.retransmissions, 0,
        "no loss, no retransmissions"
    );
    assert_eq!(out.truth.total_drops(), 0);
}

#[test]
fn every_profile_completes_a_clean_transfer() {
    for cfg in profiles::all_profiles() {
        let name = cfg.name;
        let out = run_transfer(cfg, profiles::reno(), &default_path(), 32 * 1024, 2);
        assert!(out.completed, "{name} failed to complete");
        assert_eq!(
            out.sender_stats.bytes_acked,
            32 * 1024 + 1,
            "{name} acked bytes"
        );
    }
}

#[test]
fn every_profile_completes_as_receiver() {
    for cfg in profiles::all_profiles() {
        let name = cfg.name;
        let out = run_transfer(profiles::reno(), cfg, &default_path(), 32 * 1024, 3);
        assert!(out.completed, "receiver {name} failed to complete");
    }
}

#[test]
fn transfer_recovers_from_data_loss() {
    let mut path = default_path();
    path.loss_data = LossModel::Periodic(25);
    let out = run_transfer(profiles::reno(), profiles::reno(), &path, KB100, 4);
    assert!(out.completed, "reliable despite loss");
    assert!(out.truth.total_drops() > 0, "losses actually occurred");
    assert!(
        out.sender_stats.retransmissions >= out.truth.total_drops() as u64,
        "each loss repaired"
    );
}

#[test]
fn transfer_recovers_from_ack_loss() {
    let mut path = default_path();
    path.loss_ack = LossModel::Periodic(10);
    let out = run_transfer(profiles::reno(), profiles::reno(), &path, KB100, 5);
    assert!(out.completed, "cumulative acks tolerate ack loss");
}

#[test]
fn tahoe_and_reno_both_survive_heavy_loss() {
    let mut path = default_path();
    path.loss_data = LossModel::Bernoulli(0.05);
    for cfg in [profiles::tahoe(), profiles::reno()] {
        let name = cfg.name;
        let out = run_transfer(cfg, profiles::reno(), &path, KB100, 6);
        assert!(out.completed, "{name} under 5% loss");
    }
}

#[test]
fn slow_start_doubles_flights() {
    // With a long-delay path, the first flights are cleanly separated:
    // 1, 2, 4, ... packets.
    let mut path = default_path();
    path.one_way_delay = Duration::from_millis(200);
    let out = run_transfer(profiles::reno(), profiles::reno(), &path, KB100, 7);
    let trace = out.sender_trace();
    let conns = Connection::split(&trace);
    let conn = &conns[0];
    let data: Vec<_> = conn
        .in_dir(Dir::SenderToReceiver)
        .filter(|r| r.is_data())
        .collect();
    // Group data packets into flights separated by > 150 ms gaps.
    let mut flights = vec![0u32];
    for pair in data.windows(2) {
        if pair[1].ts - pair[0].ts > Duration::from_millis(150) {
            flights.push(0);
        }
        *flights.last_mut().unwrap() += 1;
    }
    *flights.first_mut().unwrap() += 1; // count the first packet
    assert!(
        flights.len() >= 3,
        "expect multiple distinct flights, got {flights:?}"
    );
    assert_eq!(flights[0], 1, "slow start begins with one segment");
    assert!(
        flights[1] == 2,
        "second flight has two segments, got {flights:?}"
    );
    assert!(
        flights[2] >= 3 && flights[2] <= 5,
        "third flight roughly doubles, got {flights:?}"
    );
}

#[test]
fn receiver_acks_every_other_packet_bsd() {
    let out = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &default_path(),
        KB100,
        8,
    );
    let acks = out.receiver_stats.acks_sent;
    let data = out.sender_stats.data_packets_sent;
    assert!(
        acks <= data * 3 / 4,
        "BSD delayed acks: {acks} acks for {data} data packets"
    );
}

#[test]
fn linux_receiver_acks_every_packet() {
    let out = run_transfer(
        profiles::reno(),
        profiles::linux_1_0(),
        &default_path(),
        KB100,
        9,
    );
    // One ack per data packet (plus handshake/FIN bookkeeping).
    assert!(
        out.receiver_stats.acks_sent >= out.receiver_stats.data_packets_received,
        "{} acks for {} data packets",
        out.receiver_stats.acks_sent,
        out.receiver_stats.data_packets_received
    );
}

// ---------------------------------------------------------------------
// Headline pathologies (Figures 3, 4, 5)
// ---------------------------------------------------------------------

#[test]
fn fig3_net3_uninit_cwnd_bursts_into_the_window() {
    // Receiver that omits the MSS option and offers a growing window.
    let mut receiver = profiles::reno();
    receiver.send_mss_option = false;
    receiver.recv_window = 16_384;
    receiver.recv_window_schedule = vec![16_384, 32_768, 32_768];

    let mut path = default_path();
    path.one_way_delay = Duration::from_millis(100);
    path.queue_cap = 16;

    let net3 = run_transfer(profiles::net3(), receiver.clone(), &path, KB100, 10);
    // MSS defaults to 536 without the option; the initial 16 KB window
    // admits ~30 segments in the very first flight (§8.4's "total of 30
    // packets").
    let trace = net3.sender_trace();
    let conns = Connection::split(&trace);
    let data: Vec<_> = conns[0]
        .in_dir(Dir::SenderToReceiver)
        .filter(|r| r.is_data())
        .take(40)
        .collect();
    // Count packets in the first 150 ms burst.
    let t0 = data[0].ts;
    let burst = data
        .iter()
        .filter(|r| r.ts - t0 < Duration::from_millis(150))
        .count();
    assert!(
        burst >= 25,
        "Net/3 should blast ~30 packets instantly, got {burst}"
    );
    assert!(
        !net3.truth.queue_drops.is_empty(),
        "the burst should overflow the bottleneck queue"
    );

    // Control: a correct Reno sender against the same receiver slow-starts.
    let reno = run_transfer(profiles::reno(), receiver, &path, KB100, 10);
    let trace = reno.sender_trace();
    let conns = Connection::split(&trace);
    let data: Vec<_> = conns[0]
        .in_dir(Dir::SenderToReceiver)
        .filter(|r| r.is_data())
        .take(40)
        .collect();
    let t0 = data[0].ts;
    let burst = data
        .iter()
        .filter(|r| r.ts - t0 < Duration::from_millis(150))
        .count();
    assert!(burst <= 4, "correct TCP starts with 1 segment, got {burst}");
}

#[test]
fn fig4_linux_burst_retransmission_storm() {
    let mut path = default_path();
    path.rate_bps = 256_000;
    path.queue_cap = 8;
    path.one_way_delay = Duration::from_millis(60);
    path.loss_data = LossModel::Periodic(20);
    let out = run_transfer(
        profiles::linux_1_0(),
        profiles::linux_1_0(),
        &path,
        KB100,
        11,
    );
    assert!(out.completed);
    let retx_frac =
        out.sender_stats.retransmissions as f64 / out.sender_stats.data_packets_sent as f64;
    // §8.5: 317 packets, 117 retransmissions ≈ 37%. Demand a storm.
    assert!(
        retx_frac > 0.2,
        "Linux 1.0 should storm: {} retx / {} pkts",
        out.sender_stats.retransmissions,
        out.sender_stats.data_packets_sent
    );

    // Control: Linux 2.0 on the identical path repairs losses frugally.
    let fixed = run_transfer(
        profiles::linux_2_0(),
        profiles::linux_2_0(),
        &path,
        KB100,
        11,
    );
    assert!(fixed.completed);
    let fixed_frac =
        fixed.sender_stats.retransmissions as f64 / fixed.sender_stats.data_packets_sent as f64;
    assert!(
        fixed_frac < retx_frac / 2.0,
        "Linux 2.0 ({fixed_frac:.2}) must retransmit far less than 1.0 ({retx_frac:.2})"
    );
}

#[test]
fn fig5_solaris_needless_retransmissions_on_long_path() {
    // California → Netherlands: RTT ≈ 680 ms ≫ the 300 ms initial RTO.
    let mut path = default_path();
    path.one_way_delay = Duration::from_millis(335);
    let out = run_transfer(profiles::solaris_2_4(), profiles::reno(), &path, KB100, 12);
    assert!(out.completed);
    assert_eq!(out.truth.total_drops(), 0, "no loss on this path");
    // Every retransmission is needless; there should be *many* (§8.6:
    // "almost as many retransmissions as new packets").
    let retx = out.sender_stats.retransmissions;
    let fresh = out.sender_stats.data_packets_sent - retx;
    assert!(
        retx as f64 > 0.3 * fresh as f64,
        "Solaris should retransmit needlessly: {retx} retx vs {fresh} fresh"
    );

    // Control: BSD Reno on the same path barely retransmits — its initial
    // RTO is above the RTT and its timer adapts.
    let reno = run_transfer(profiles::reno(), profiles::reno(), &path, KB100, 12);
    assert!(reno.completed);
    assert!(
        reno.sender_stats.retransmissions <= 2,
        "Reno retransmitted {} times needlessly",
        reno.sender_stats.retransmissions
    );
}

#[test]
fn solaris_rto_never_adapts_while_reno_does() {
    // On the long path the Solaris retransmissions continue deep into the
    // connection (the timer is reset by every ack of retransmitted data),
    // whereas a hypothetical fixed version would stop early. Check the
    // *last quarter* of the transfer still contains retransmissions.
    let mut path = default_path();
    path.one_way_delay = Duration::from_millis(335);
    let out = run_transfer(profiles::solaris_2_4(), profiles::reno(), &path, KB100, 13);
    let trace = out.sender_trace();
    let conns = Connection::split(&trace);
    let plot = tcpa_trace::plot::SeqPlot::extract(&conns[0]);
    let retx: Vec<_> = plot
        .points
        .iter()
        .filter(|p| p.kind == tcpa_trace::plot::PointKind::Retransmit)
        .collect();
    assert!(!retx.is_empty());
    let t_end = plot.points.iter().map(|p| p.t).max().unwrap();
    let t_start = plot.points.iter().map(|p| p.t).min().unwrap();
    let span = t_end - t_start;
    let late = retx
        .iter()
        .filter(|p| (p.t - t_start).as_nanos() > span.as_nanos() / 2)
        .count();
    assert!(
        late > 0,
        "retransmissions persist into the second half of the connection"
    );
}

#[test]
fn trumpet_fills_offered_window_instantly() {
    let mut path = default_path();
    path.queue_cap = 10;
    path.one_way_delay = Duration::from_millis(100);
    let out = run_transfer(
        profiles::trumpet_winsock(),
        profiles::reno(),
        &path,
        KB100,
        14,
    );
    let trace = out.sender_trace();
    let conns = Connection::split(&trace);
    let data: Vec<_> = conns[0]
        .in_dir(Dir::SenderToReceiver)
        .filter(|r| r.is_data())
        .take(20)
        .collect();
    let t0 = data[0].ts;
    let burst = data
        .iter()
        .filter(|r| r.ts - t0 < Duration::from_millis(150))
        .count();
    // 16 KB offered window / 1460 MSS ≈ 11 segments, all at once.
    assert!(
        burst >= 10,
        "no congestion window: first flight fills the offered window, got {burst}"
    );
}

#[test]
fn source_quench_throttles_bsd_sender() {
    use tcpa_tcpsim::harness::{run_transfer_with, Extras};
    use tcpa_trace::Time;
    let mut path = default_path();
    path.one_way_delay = Duration::from_millis(50);
    let quench_t = Time::from_millis(600);
    let extras = Extras {
        quench_at: vec![quench_t],
        horizon: None,
        sender_pause: None,
    };
    let out = run_transfer_with(
        profiles::reno(),
        profiles::reno(),
        &path,
        KB100,
        15,
        &extras,
    );
    assert!(out.completed);
    assert_eq!(out.sender_stats.quenches_received, 1);
    // The quench collapses cwnd to one segment while a full flight is
    // outstanding, so the sender stalls until the flight drains: there
    // must be an inter-packet gap after the quench much larger than any
    // before it.
    let trace = out.sender_trace();
    let conns = Connection::split(&trace);
    let data: Vec<_> = conns[0]
        .in_dir(Dir::SenderToReceiver)
        .filter(|r| r.is_data())
        .collect();
    let max_gap_after = data
        .windows(2)
        .filter(|p| p[0].ts >= quench_t)
        .map(|p| p[1].ts - p[0].ts)
        .max()
        .expect("data continues after the quench");
    assert!(
        max_gap_after > Duration::from_millis(80),
        "quench should open a window-limited stall, max gap {max_gap_after}"
    );
    // And the transfer as a whole takes longer than an unquenched run.
    let clean = run_transfer(profiles::reno(), profiles::reno(), &path, KB100, 15);
    assert!(out.finished_at > clean.finished_at);
}

#[test]
fn solaris_23_emits_gratuitous_acks() {
    let out23 = run_transfer(
        profiles::reno(),
        profiles::solaris_2_3(),
        &default_path(),
        KB100,
        16,
    );
    let out24 = run_transfer(
        profiles::reno(),
        profiles::solaris_2_4(),
        &default_path(),
        KB100,
        16,
    );
    assert!(
        out23.receiver_stats.acks_sent > out24.receiver_stats.acks_sent,
        "2.3's acking bug sends extra acks: {} vs {}",
        out23.receiver_stats.acks_sent,
        out24.receiver_stats.acks_sent
    );
}

#[test]
fn corrupted_segment_is_discarded_and_repaired() {
    // Corruption is injected by marking the WAN lossy... we model
    // corruption as loss-at-TCP: simplest check is that a lossy path's
    // drops are repaired; dedicated corruption-path tests live in the
    // analyzer crate where inference is exercised.
    let mut path = default_path();
    path.loss_data = LossModel::DropList(vec![10]);
    let out = run_transfer(profiles::reno(), profiles::reno(), &path, KB100, 17);
    assert!(out.completed);
    assert!(out.sender_stats.retransmissions >= 1);
}

#[test]
fn deterministic_given_seed() {
    let a = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &default_path(),
        KB100,
        42,
    );
    let b = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &default_path(),
        KB100,
        42,
    );
    let ta = a.sender_trace();
    let tb = b.sender_trace();
    assert_eq!(ta, tb, "identical seeds give identical traces");
}
