// PathSpec scenarios are configured field-by-field from the default so
// each deviation reads as one labelled line.
#![allow(clippy::field_reassign_with_default)]

//! End-to-end validation: traces produced by the TCP endpoint simulators
//! over the network simulator, measured by (perfect or faulty) packet
//! filters, must be correctly calibrated and fingerprinted by tcpanaly.
//!
//! This is the reproduction's equivalent of the paper's regression suite
//! (§5: "the importance of regression testing against the entire set of
//! available traces").

use tcpa_filter::{apply, DropModel, FilterConfig};
use tcpa_netsim::LossModel;
use tcpa_tcpsim::harness::{run_transfer, run_transfer_with, Extras, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::{Connection, Duration, Time};
use tcpanaly::calibrate::{Calibrator, DropCheck};
use tcpanaly::fingerprint::{fingerprint_one, FitClass};
use tcpanaly::receiver::{analyze_receiver, AckClass, PolicyGuess};
use tcpanaly::sender::analyze_sender;

const KB100: u64 = 100 * 1024;

fn sender_conn(out: &tcpa_tcpsim::harness::TransferOutcome) -> Connection {
    Connection::split(&out.sender_trace()).remove(0)
}

fn receiver_conn(out: &tcpa_tcpsim::harness::TransferOutcome) -> Connection {
    Connection::split(&out.receiver_trace()).remove(0)
}

// ---------------------------------------------------------------------
// Self-fit: every implementation's clean trace fits its own profile
// ---------------------------------------------------------------------

#[test]
fn every_profile_fits_its_own_clean_trace() {
    for cfg in profiles::all_profiles() {
        let name = cfg.name;
        let out = run_transfer(
            cfg.clone(),
            profiles::reno(),
            &PathSpec::default(),
            KB100,
            21,
        );
        assert!(out.completed, "{name}");
        let conn = sender_conn(&out);
        let fit = fingerprint_one(&conn, &cfg).expect("analyzable");
        assert_eq!(
            fit.fit,
            FitClass::Close,
            "{name} should fit its own trace: {:?} (delays mean {:?})",
            fit.analysis.issues.iter().take(3).collect::<Vec<_>>(),
            fit.analysis.response_delays.mean(),
        );
    }
}

#[test]
fn self_fit_survives_network_loss() {
    let mut path = PathSpec::default();
    path.loss_data = LossModel::Periodic(31);
    for cfg in [
        profiles::reno(),
        profiles::tahoe(),
        profiles::linux_1_0(),
        profiles::solaris_2_4(),
    ] {
        let name = cfg.name;
        let out = run_transfer(cfg.clone(), profiles::reno(), &path, KB100, 22);
        assert!(out.completed, "{name}");
        let conn = sender_conn(&out);
        let a = analyze_sender(&conn, &cfg).unwrap();
        assert_eq!(
            a.hard_issues(),
            0,
            "{name} under loss: {:?}",
            a.issues.iter().take(3).collect::<Vec<_>>()
        );
    }
}

// ---------------------------------------------------------------------
// Discrimination: grossly different implementations are rejected
// ---------------------------------------------------------------------

#[test]
fn reno_trace_rejects_linux_and_solaris_models() {
    let out = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &PathSpec::default(),
        KB100,
        23,
    );
    let conn = sender_conn(&out);
    for wrong in [profiles::linux_1_0(), profiles::solaris_2_4()] {
        let fit = fingerprint_one(&conn, &wrong).unwrap();
        assert_eq!(
            fit.fit,
            FitClass::ClearlyIncorrect,
            "{} must not explain a Reno trace",
            wrong.name
        );
    }
}

#[test]
fn linux_storm_trace_rejects_reno_model() {
    let mut path = PathSpec::default();
    path.loss_data = LossModel::Periodic(20);
    path.queue_cap = 8;
    let out = run_transfer(
        profiles::linux_1_0(),
        profiles::linux_1_0(),
        &path,
        KB100,
        24,
    );
    let conn = sender_conn(&out);
    let lin = fingerprint_one(&conn, &profiles::linux_1_0()).unwrap();
    assert_eq!(
        lin.fit,
        FitClass::Close,
        "{:?}",
        lin.analysis.issues.iter().take(3).collect::<Vec<_>>()
    );
    let reno = fingerprint_one(&conn, &profiles::reno()).unwrap();
    assert_eq!(
        reno.fit,
        FitClass::ClearlyIncorrect,
        "broken Linux retransmission cannot look like Reno"
    );
}

#[test]
fn solaris_premature_retx_trace_rejects_reno_model() {
    let mut path = PathSpec::default();
    path.one_way_delay = Duration::from_millis(335); // RTT ≈ 680 ms
    let out = run_transfer(profiles::solaris_2_4(), profiles::reno(), &path, KB100, 25);
    let conn = sender_conn(&out);
    let sol = fingerprint_one(&conn, &profiles::solaris_2_4()).unwrap();
    assert_eq!(
        sol.fit,
        FitClass::Close,
        "{:?}",
        sol.analysis.issues.iter().take(3).collect::<Vec<_>>()
    );
    let reno = fingerprint_one(&conn, &profiles::reno()).unwrap();
    assert_eq!(reno.fit, FitClass::ClearlyIncorrect);
}

#[test]
fn net3_burst_fits_net3_but_not_plain_reno() {
    // Receiver omits its MSS option: the §8.4 trigger.
    let mut receiver = profiles::reno();
    receiver.send_mss_option = false;
    receiver.recv_window = 16_384;
    let mut path = PathSpec::default();
    path.one_way_delay = Duration::from_millis(100);
    path.queue_cap = 64; // big enough that the burst survives
    let out = run_transfer(profiles::net3(), receiver, &path, KB100, 26);
    let conn = sender_conn(&out);
    let net3 = fingerprint_one(&conn, &profiles::net3()).unwrap();
    assert_eq!(
        net3.fit,
        FitClass::Close,
        "{:?}",
        net3.analysis.issues.iter().take(3).collect::<Vec<_>>()
    );
    let reno = fingerprint_one(&conn, &profiles::reno()).unwrap();
    assert_eq!(
        reno.fit,
        FitClass::ClearlyIncorrect,
        "a correct Reno cannot blast 30 packets from a cold start"
    );
}

#[test]
fn full_fingerprint_ranks_generator_close() {
    let out = run_transfer(
        profiles::solaris_2_4(),
        profiles::reno(),
        &PathSpec::default(),
        KB100,
        27,
    );
    let conn = sender_conn(&out);
    let results = tcpanaly::fingerprint::fingerprint(&conn);
    let close = tcpanaly::fingerprint::close_fits(&results);
    assert!(
        close.contains(&"Solaris 2.4"),
        "generator among close fits, got {close:?}"
    );
}

// ---------------------------------------------------------------------
// §6.2: implicit-state inference on simulated traces
// ---------------------------------------------------------------------

#[test]
fn sender_window_inferred_from_simulated_buffer_limit() {
    let mut cfg = profiles::reno();
    cfg.send_buffer = 8 * 1024; // 8 KB socket buffer ≪ 16 KB offered
    let mut path = PathSpec::default();
    path.one_way_delay = Duration::from_millis(100); // keep cwnd growing
    let out = run_transfer(cfg.clone(), profiles::reno(), &path, KB100, 28);
    let conn = sender_conn(&out);
    let a = analyze_sender(&conn, &cfg).unwrap();
    let inferred = a.inferred_sender_window.expect("sender window detected");
    assert!(
        (7 * 1024..=8 * 1024).contains(&inferred),
        "inferred {inferred} vs actual 8192"
    );
    assert_eq!(
        a.hard_issues(),
        0,
        "{:?}",
        a.issues.iter().take(3).collect::<Vec<_>>()
    );
}

#[test]
fn unseen_source_quench_inferred_from_simulated_trace() {
    let mut path = PathSpec::default();
    path.one_way_delay = Duration::from_millis(50);
    let extras = Extras {
        quench_at: vec![Time::from_millis(700)],
        horizon: None,
        sender_pause: None,
    };
    let out = run_transfer_with(
        profiles::reno(),
        profiles::reno(),
        &path,
        KB100,
        29,
        &extras,
    );
    assert_eq!(out.sender_stats.quenches_received, 1);
    let conn = sender_conn(&out);
    let a = analyze_sender(&conn, &profiles::reno()).unwrap();
    assert_eq!(
        a.inferred_quenches.len(),
        1,
        "quench inferred; issues {:?}",
        a.issues.iter().take(3).collect::<Vec<_>>()
    );
    assert_eq!(a.hard_issues(), 0);
}

// ---------------------------------------------------------------------
// §7/§9: receiver analysis on simulated traces
// ---------------------------------------------------------------------

#[test]
fn bsd_receiver_policy_identified_as_heartbeat() {
    // A slow path (48 kb/s, §9.1's sub-optimal band) so segments arrive
    // one at a time and sit until the 200 ms heartbeat.
    let mut path = PathSpec::default();
    path.rate_bps = 48_000;
    let out = run_transfer(profiles::reno(), profiles::reno(), &path, 48 * 1024, 30);
    let conn = receiver_conn(&out);
    let a = analyze_receiver(&conn).unwrap();
    match a.policy {
        PolicyGuess::Heartbeat { period_ms } => {
            assert!((120..=260).contains(&period_ms), "period {period_ms}");
        }
        other => panic!(
            "expected heartbeat, got {other:?} (delays mean {:?})",
            a.ack_delays.mean()
        ),
    }
    assert!(a.count(AckClass::Gratuitous) == 0);
}

#[test]
fn linux_receiver_policy_identified_as_every_packet() {
    let out = run_transfer(
        profiles::reno(),
        profiles::linux_1_0(),
        &PathSpec::default(),
        KB100,
        31,
    );
    let conn = receiver_conn(&out);
    let a = analyze_receiver(&conn).unwrap();
    assert_eq!(
        a.policy,
        PolicyGuess::EveryPacket,
        "{:?}",
        a.ack_delays.mean()
    );
}

#[test]
fn solaris_receiver_policy_identified_as_interval_timer() {
    // Slow path: single segments arrive > 50 ms apart, so every ack is a
    // 50 ms-delayed ack (§9.1's sub-optimality analysis).
    let mut path = PathSpec::default();
    path.rate_bps = 64_000;
    let out = run_transfer(
        profiles::reno(),
        profiles::solaris_2_4(),
        &path,
        48 * 1024,
        32,
    );
    let conn = receiver_conn(&out);
    let a = analyze_receiver(&conn).unwrap();
    match a.policy {
        PolicyGuess::IntervalTimer { delay_ms } => {
            assert!((35..=65).contains(&delay_ms), "delay {delay_ms}");
        }
        other => panic!(
            "expected interval timer, got {other:?} (mean {:?} / max {:?})",
            a.delayed_ack_delays.mean(),
            a.delayed_ack_delays.max()
        ),
    }
}

#[test]
fn solaris_23_gratuitous_acks_flagged() {
    let out = run_transfer(
        profiles::reno(),
        profiles::solaris_2_3(),
        &PathSpec::default(),
        KB100,
        33,
    );
    let conn = receiver_conn(&out);
    let a = analyze_receiver(&conn).unwrap();
    assert!(
        a.count(AckClass::Gratuitous) > 0,
        "2.3's acking bug produces gratuitous acks"
    );

    let out = run_transfer(
        profiles::reno(),
        profiles::solaris_2_4(),
        &PathSpec::default(),
        KB100,
        33,
    );
    let conn = receiver_conn(&out);
    let a = analyze_receiver(&conn).unwrap();
    assert_eq!(a.count(AckClass::Gratuitous), 0, "2.4 fixed it");
}

#[test]
fn corruption_inferred_from_receiver_behavior() {
    let mut path = PathSpec::default();
    path.corrupt_data = LossModel::DropList(vec![20]);
    let out = run_transfer(profiles::reno(), profiles::reno(), &path, KB100, 34);
    assert!(out.completed);
    assert_eq!(out.receiver_stats.corrupt_discarded, 1);
    // Header-only capture: strip checksum knowledge before analysis.
    let mut trace = out.receiver_trace();
    for rec in &mut trace.records {
        rec.checksum_ok = None;
    }
    let conn = Connection::split(&trace).remove(0);
    let a = analyze_receiver(&conn).unwrap();
    assert_eq!(
        a.corrupt_arrivals.len(),
        1,
        "exactly the corrupted arrival inferred"
    );
}

// ---------------------------------------------------------------------
// §3: calibration against simulated filter errors
// ---------------------------------------------------------------------

#[test]
fn perfect_filter_trace_is_clean() {
    let out = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &PathSpec::default(),
        KB100,
        35,
    );
    let (_, report) = Calibrator::at_sender().calibrate(&out.sender_trace());
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn genuine_network_loss_produces_no_drop_evidence() {
    // The crucial §3.1.1 distinction: network drops must NOT be mistaken
    // for filter drops.
    let mut path = PathSpec::default();
    path.loss_data = LossModel::Periodic(23);
    let out = run_transfer(profiles::reno(), profiles::reno(), &path, KB100, 36);
    assert!(out.truth.total_drops() > 0);
    let (_, report) = Calibrator::at_sender().calibrate(&out.sender_trace());
    assert!(
        report.drop_evidence.is_empty(),
        "network drops misdiagnosed: {:?}",
        report.drop_evidence.iter().take(3).collect::<Vec<_>>()
    );
}

#[test]
fn filter_drops_detected_at_sender_vantage() {
    let out = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &PathSpec::default(),
        KB100,
        37,
    );
    // Shed a burst of records from the sender-side filter.
    let cfg = FilterConfig {
        drops: DropModel::Burst { start: 40, len: 6 },
        ..FilterConfig::default()
    };
    let (measured, report) = apply(&out.sender_tap, &cfg, 99);
    assert_eq!(report.dropped_indices.len(), 6);
    let (_, cal) = Calibrator::at_sender().calibrate(&measured);
    assert!(
        !cal.drop_evidence.is_empty(),
        "burst of missing records must be noticed"
    );
    assert!(cal.drop_evidence.iter().any(|e| matches!(
        e.check,
        DropCheck::AckOfUnseenData | DropCheck::DataHoleSkipped | DropCheck::IdentSequenceGap
    )));
}

#[test]
fn irix_duplication_detected_and_removed() {
    let out = run_transfer(
        profiles::irix(),
        profiles::reno(),
        &PathSpec::default(),
        KB100,
        38,
    );
    let (measured, report) = apply(&out.sender_tap, &FilterConfig::irix_duplicating(), 7);
    assert!(report.duplicates_added > 0);
    let (clean, cal) = Calibrator::at_sender().calibrate(&measured);
    assert_eq!(
        cal.duplicates.len(),
        report.duplicates_added,
        "every filter duplicate found"
    );
    // After removal the trace matches the perfect trace in record count.
    assert_eq!(clean.len(), measured.len() - report.duplicates_added);
}

#[test]
fn solaris_resequencing_detected() {
    // Tight ack→data sequences on a fast path, measured by a Solaris
    // filter: ordering inversions must be flagged.
    let mut path = PathSpec::default();
    path.one_way_delay = Duration::from_millis(5);
    path.proc_delay = Duration::from_micros(50);
    let out = run_transfer(profiles::reno(), profiles::reno(), &path, KB100, 39);
    let (measured, report) = apply(&out.sender_tap, &FilterConfig::solaris_resequencing(), 11);
    assert!(report.inversions > 0, "model produced inversions");
    let (clean, cal) = Calibrator::at_sender().calibrate(&measured);
    // Resequencing surfaces either through the structural detectors
    // (§3.1.3's three situations) or as model-level violations cured by
    // an ack recorded ≤ ε later during sender analysis.
    let conn = Connection::split(&clean).remove(0);
    let a = analyze_sender(&conn, &profiles::reno()).unwrap();
    assert!(
        !cal.resequencing.is_empty() || a.reseq_cured_violations > 0,
        "resequencing must be detected ({} inversions; issues {:?})",
        report.inversions,
        a.issues.iter().take(3).collect::<Vec<_>>()
    );
}

#[test]
fn time_travel_detected() {
    // A slower path so the transfer outlasts the filter clock's sync
    // period and the backward steps land inside the trace.
    let mut path = PathSpec::default();
    path.rate_bps = 256_000;
    let out = run_transfer(profiles::reno(), profiles::reno(), &path, KB100, 40);
    // A fast clock stepped back 150 ms every second — larger than the
    // trace's widest inter-record gap, so every step is visible.
    let cfg = FilterConfig {
        clock: tcpa_filter::ClockModel::fast_with_periodic_sync(
            300.0,
            Duration::from_secs(1),
            Duration::from_millis(150),
            Time::from_secs(30),
        ),
        ..FilterConfig::default()
    };
    let (measured, _) = apply(&out.sender_tap, &cfg, 13);
    let (_, cal) = Calibrator::at_sender().calibrate(&measured);
    assert!(
        !cal.time_travel.is_empty(),
        "backward clock steps must be detected"
    );
}

#[test]
fn analyzer_facade_end_to_end() {
    let out = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &PathSpec::default(),
        KB100,
        41,
    );
    let report = tcpanaly::Analyzer::at_sender().analyze(&out.sender_trace());
    assert_eq!(report.connections.len(), 1);
    let conn = &report.connections[0];
    assert!(conn.best_fit().is_some(), "some profile must fit");
    let rendered = report.render();
    assert!(rendered.contains("Calibration"));
    assert!(rendered.contains("close"));
}

// ---------------------------------------------------------------------
// Zero-window probing (the [CL94] active-probing territory)
// ---------------------------------------------------------------------

#[test]
fn window_limited_transfer_still_self_fits() {
    // A slow-reading receiver shuts the window; the sender probes; the
    // analyzer must classify the probes rather than flag violations.
    let mut receiver = profiles::reno();
    receiver.app_read_rate = Some(512);
    receiver.recv_window = 4 * 1460;
    let out = run_transfer(
        profiles::reno(),
        receiver,
        &PathSpec::default(),
        16 * 1024,
        60,
    );
    assert!(out.completed);
    assert!(out.sender_stats.zero_window_probes > 0);
    let conn = sender_conn(&out);
    let a = analyze_sender(&conn, &profiles::reno()).unwrap();
    assert_eq!(
        a.hard_issues(),
        0,
        "{:?}",
        a.issues.iter().take(3).collect::<Vec<_>>()
    );
    assert!(a.zero_window_probes > 0, "probes recognized, not flagged");
    // The socket-buffer inference must not misfire on a *receiver*-window
    // limit (it is the offered window doing the limiting here).
    assert_eq!(a.inferred_sender_window, None);
}

#[test]
fn probe_rejections_not_mistaken_for_corruption() {
    let mut receiver = profiles::reno();
    receiver.app_read_rate = Some(0); // frozen application
    receiver.recv_window = 4 * 1460;
    let extras = Extras {
        quench_at: vec![],
        horizon: Some(Time::from_secs(120)),
        sender_pause: None,
    };
    let out = run_transfer_with(
        profiles::reno(),
        receiver,
        &PathSpec::default(),
        32 * 1024,
        61,
        &extras,
    );
    assert!(out.receiver_stats.window_rejected > 0);
    let conn = receiver_conn(&out);
    let a = analyze_receiver(&conn).unwrap();
    assert!(
        a.corrupt_arrivals.is_empty(),
        "rejected probes are flow control, not corruption: {:?}",
        a.corrupt_arrivals
    );
    assert_eq!(a.count(AckClass::Gratuitous), 0);
}

// ---------------------------------------------------------------------
// Connection establishment (§2's [CL94]/[St96] territory)
// ---------------------------------------------------------------------

#[test]
fn syn_retry_schedule_extracted_from_lossy_handshake() {
    use tcpanaly::handshake::{analyze_handshake, BackoffShape};
    // Lose the first SYN on the data path: the initiator must retry.
    let mut path = PathSpec::default();
    path.loss_data = LossModel::DropList(vec![0]);
    let out = run_transfer(profiles::reno(), profiles::reno(), &path, 16 * 1024, 70);
    assert!(out.completed, "retry rescues the handshake");
    let conn = sender_conn(&out);
    let h = analyze_handshake(&conn).expect("SYNs in trace");
    assert_eq!(h.retries(), 1);
    let rto = h.initial_rto.unwrap();
    assert!(
        (Duration::from_secs(5)..=Duration::from_secs(7)).contains(&rto),
        "BSD 6 s connection timer, got {rto}"
    );
    assert!(h.consistent_with(&profiles::reno()));
    assert_eq!(h.shape, BackoffShape::Unknown, "one gap: shape unknowable");
}

#[test]
fn syn_backoff_doubles_across_repeated_loss() {
    use tcpanaly::handshake::{analyze_handshake, BackoffShape};
    // Lose the first three SYNs (they are data-link tx 0, 1, 2).
    let mut path = PathSpec::default();
    path.loss_data = LossModel::DropList(vec![0, 1, 2]);
    let out = run_transfer(profiles::reno(), profiles::reno(), &path, 16 * 1024, 71);
    assert!(out.completed);
    let conn = sender_conn(&out);
    let h = analyze_handshake(&conn).expect("SYNs in trace");
    assert_eq!(h.retries(), 3);
    assert_eq!(h.shape, BackoffShape::Exponential);
    assert!(h.consistent_with(&profiles::reno()));
}

// ---------------------------------------------------------------------
// Receiver-side fingerprinting (splits Solaris 2.3 from 2.4)
// ---------------------------------------------------------------------

#[test]
fn receiver_fingerprint_splits_solaris_siblings() {
    use tcpanaly::fingerprint::fingerprint_receiver;
    let out = run_transfer(
        profiles::reno(),
        profiles::solaris_2_3(),
        &PathSpec::default(),
        100 * 1024,
        72,
    );
    let conn = receiver_conn(&out);
    let fits = fingerprint_receiver(&conn);
    let fit_of = |name: &str| fits.iter().find(|f| f.name == name).unwrap();
    assert!(
        fit_of("Solaris 2.3").consistent,
        "{:?}",
        fit_of("Solaris 2.3").contradictions
    );
    assert!(
        !fit_of("Solaris 2.4").consistent,
        "2.4 lacks the acking bug the trace exhibits"
    );
    // And the BSD heartbeat receivers are all inconsistent here.
    assert!(!fit_of("Generic Reno").consistent);
}

#[test]
fn receiver_fingerprint_identifies_policy_families() {
    use tcpanaly::fingerprint::fingerprint_receiver;
    let mut path = PathSpec::default();
    path.rate_bps = 64_000;
    let out = run_transfer(profiles::reno(), profiles::reno(), &path, 48 * 1024, 73);
    let conn = receiver_conn(&out);
    let fits = fingerprint_receiver(&conn);
    let fit_of = |name: &str| fits.iter().find(|f| f.name == name).unwrap();
    assert!(
        fit_of("Generic Reno").consistent,
        "{:?}",
        fit_of("Generic Reno").contradictions
    );
    assert!(
        !fit_of("Linux 1.0").consistent,
        "a heartbeat receiver is not an ack-every-packet receiver"
    );
    assert!(!fit_of("Solaris 2.4").consistent);
}

// ---------------------------------------------------------------------
// RFC 1122 acking-duty conformance (§7's quoted standard)
// ---------------------------------------------------------------------

#[test]
fn conforming_receivers_draw_no_rfc_violations() {
    for cfg in [
        profiles::reno(),
        profiles::linux_1_0(),
        profiles::solaris_2_4(),
    ] {
        let name = cfg.name;
        let mut path = PathSpec::default();
        path.rate_bps = 128_000;
        let out = run_transfer(profiles::reno(), cfg, &path, 64 * 1024, 80);
        let conn = receiver_conn(&out);
        let a = analyze_receiver(&conn).unwrap();
        assert!(
            a.rfc_violations.is_empty(),
            "{name}: {:?}",
            a.rfc_violations.first()
        );
    }
}

#[test]
fn lazy_acker_flagged_for_both_rfc_duties() {
    // A receiver with a 700 ms heartbeat and an ack-every-5-segments
    // rule breaks both the 500 ms cap and the two-segment rule.
    let mut lazy = profiles::reno();
    lazy.ack_policy = tcpa_tcpsim::AckPolicy::Heartbeat {
        interval: Duration::from_millis(700),
    };
    lazy.ack_every_n = 5;
    let mut path = PathSpec::default();
    path.rate_bps = 128_000;
    let out = run_transfer(profiles::reno(), lazy, &path, 64 * 1024, 81);
    assert!(out.completed);
    let conn = receiver_conn(&out);
    let a = analyze_receiver(&conn).unwrap();
    assert!(
        a.rfc_violations.iter().any(|v| v.detail.contains("500 ms")),
        "delay violations expected"
    );
    assert!(
        a.rfc_violations
            .iter()
            .any(|v| v.detail.contains("every two")),
        "two-segment violations expected: {:?}",
        a.rfc_violations.iter().take(3).collect::<Vec<_>>()
    );
}

// ---------------------------------------------------------------------
// Idle periods and keep-alives
// ---------------------------------------------------------------------

#[test]
fn keepalive_and_app_pause_analyzed_cleanly() {
    let mut sender = profiles::reno();
    sender.keepalive_interval = Some(Duration::from_secs(5));
    let extras = Extras {
        quench_at: vec![],
        horizon: None,
        sender_pause: Some((16 * 1024, Duration::from_secs(30))),
    };
    let out = run_transfer_with(
        sender.clone(),
        profiles::reno(),
        &PathSpec::default(),
        48 * 1024,
        92,
        &extras,
    );
    assert!(out.completed);
    assert!(out.sender_stats.keepalives_sent >= 3);
    let conn = sender_conn(&out);
    let a = analyze_sender(&conn, &sender).unwrap();
    assert_eq!(
        a.hard_issues(),
        0,
        "{:?}",
        a.issues.iter().take(3).collect::<Vec<_>>()
    );
    // Receiver analysis: keep-alive responses are mandated, not
    // gratuitous.
    let rconn = receiver_conn(&out);
    let ra = analyze_receiver(&rconn).unwrap();
    assert_eq!(ra.count(AckClass::Gratuitous), 0);
}

// ---------------------------------------------------------------------
// Partial traces (capture started mid-connection)
// ---------------------------------------------------------------------

#[test]
fn trace_without_handshake_is_still_analyzable() {
    let out = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &PathSpec::default(),
        100 * 1024,
        95,
    );
    let mut trace = out.sender_trace();
    // The filter started late: the handshake and the first flights are
    // missing.
    trace.records.drain(..10);
    let conn = Connection::split(&trace).remove(0);
    let a = analyze_sender(&conn, &profiles::reno()).expect("analyzable without SYN");
    // The replay cannot know the initial congestion state, so early
    // sends may not match — but it must not panic, and the bulk of the
    // steady-state transfer must still be explained.
    assert!(
        a.data_packets > 40,
        "most of the transfer analyzed: {}",
        a.data_packets
    );
    let receiver = analyze_receiver(&conn).expect("receiver analyzable too");
    assert!(receiver.acks.len() > 10);
    // And the facade runs end to end.
    let report = tcpanaly::Analyzer::at_sender().analyze(&trace);
    assert_eq!(report.connections.len(), 1);
}

#[test]
fn headers_only_trace_flows_through_facade() {
    let out = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &PathSpec::default(),
        64 * 1024,
        96,
    );
    let mut trace = out.sender_trace();
    for rec in &mut trace.records {
        rec.checksum_ok = None; // snap-length capture
    }
    let report = tcpanaly::Analyzer::at_sender().analyze(&trace);
    assert!(report.connections[0].best_fit().is_some());
}

// ---------------------------------------------------------------------
// Stretch-acking receivers (§9.1) and their fingerprint
// ---------------------------------------------------------------------

#[test]
fn stretch_acking_receiver_classified_and_fingerprinted() {
    use tcpanaly::fingerprint::fingerprint_receiver;
    // Windows NT reconstruction acks every ~3 segments.
    let out = run_transfer(
        profiles::reno(),
        tcpa_tcpsim::profiles::windows_nt(),
        &PathSpec::default(),
        100 * 1024,
        97,
    );
    let conn = receiver_conn(&out);
    let a = analyze_receiver(&conn).unwrap();
    assert!(
        a.count(AckClass::Stretch) > a.count(AckClass::Normal),
        "stretch acks dominate: {} stretch vs {} normal",
        a.count(AckClass::Stretch),
        a.count(AckClass::Normal)
    );
    let fits = fingerprint_receiver(&conn);
    let nt = fits.iter().find(|f| f.name == "Windows NT").unwrap();
    assert!(nt.consistent, "{:?}", nt.contradictions);
    let reno = fits.iter().find(|f| f.name == "Generic Reno").unwrap();
    assert!(
        !reno.consistent,
        "an every-two-segments receiver does not stretch-ack"
    );
}
