// Good: the spawn carries a justified allow.
fn background() {
    // tcpa-lint: allow(thread-spawn-audit) -- fixture ticker thread; joined immediately and touches no analysis state
    let handle = std::thread::spawn(|| {});
    let _ = handle.join();
}
