//! Scenario builders — one per table/figure of the paper (DESIGN.md §5).

pub mod ablation;
pub mod calibration;
pub mod conformance;
pub mod corpus;
pub mod figures;
pub mod fingerprints;
pub mod policy;
pub mod robustness;
pub mod static_analysis;
pub mod table1;
pub mod variants;

use crate::Section;

/// A scenario builder function, keyed by its stable slug in [`entries`].
pub type ScenarioFn = fn() -> Section;

/// Every scenario in paper order, as `(slug, builder)` pairs. The slug
/// is the stable key `repro_all` uses to label stage-timing rows in
/// `BENCH_stage_timings.json`.
pub fn entries() -> Vec<(&'static str, ScenarioFn)> {
    vec![
        ("table1", table1::run as ScenarioFn),
        ("fig1", figures::fig1),
        ("fig2", figures::fig2),
        ("fig3", figures::fig3),
        ("fig4", figures::fig4),
        ("fig5", figures::fig5),
        ("calibration_drops", calibration::drops),
        ("calibration_resequencing", calibration::resequencing),
        ("calibration_time_travel", calibration::time_travel),
        ("calibration_quench", calibration::quench),
        ("fingerprint_confusion", fingerprints::confusion_matrix),
        ("ack_policy", policy::ack_policy),
        ("response_delay", policy::response_delay),
        ("variants", variants::run),
        ("conformance", conformance::run),
        ("ablation", ablation::run),
        ("corpus", corpus::run),
        ("robustness", robustness::run),
        ("static_analysis", static_analysis::run),
    ]
}

/// Every scenario in paper order, for `repro_all`.
pub fn all() -> Vec<Section> {
    entries().into_iter().map(|(_, build)| build()).collect()
}
