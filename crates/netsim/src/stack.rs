//! The protocol-stack interface hosts run.
//!
//! `tcpa-tcpsim` implements this trait for its TCP endpoints; this crate
//! only defines the contract plus trivial stacks used in tests.

use crate::packet::Packet;
use tcpa_trace::Time;

/// A protocol stack attached to a simulated host.
///
/// The engine drives the stack with three entry points and polls
/// [`Stack::next_timer`] after each to (re)arm the host's timer event.
/// Emitted packets are appended to `out`; the engine routes them onto the
/// host's outgoing link.
pub trait Stack {
    /// Called once when the simulation starts (open a connection, start an
    /// application, arm timers).
    fn start(&mut self, _now: Time, _out: &mut Vec<Packet>) {}

    /// Called when a packet reaches this host's stack (after the host's
    /// processing delay).
    fn on_packet(&mut self, now: Time, pkt: Packet, out: &mut Vec<Packet>);

    /// Called when the timer most recently reported by
    /// [`Stack::next_timer`] fires.
    fn on_timer(&mut self, now: Time, out: &mut Vec<Packet>);

    /// The next instant at which this stack wants [`Stack::on_timer`]
    /// called, if any. Must be monotone with respect to the calls the
    /// engine has already delivered (never in the past).
    fn next_timer(&self) -> Option<Time>;

    /// `true` when the stack has finished its work; the engine may stop
    /// early once every stack is done and no packets are in flight.
    fn done(&self) -> bool {
        false
    }

    /// Downcast support so harnesses can recover concrete endpoint state
    /// (statistics, final windows) after a run.
    fn as_any(&self) -> &dyn core::any::Any;
}

/// A stack that discards everything. Useful as a traffic sink in tests.
#[derive(Debug, Default)]
pub struct NullStack;

impl Stack for NullStack {
    fn on_packet(&mut self, _now: Time, _pkt: Packet, _out: &mut Vec<Packet>) {}
    fn on_timer(&mut self, _now: Time, _out: &mut Vec<Packet>) {}
    fn next_timer(&self) -> Option<Time> {
        None
    }
    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
}
