//! Integration tests for the parallel corpus pipeline: determinism
//! (parallel output byte-identical to serial), panic isolation, and
//! pcap-backed sources.

use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::{CorpusItem, MemorySource, Trace};
use tcpanaly::calibrate::Vantage;
use tcpanaly::corpus::{analyze_corpus, CorpusConfig, ItemOutcome};

/// A 50-trace simulated corpus mixing implementations, sizes and seeds.
fn build_corpus() -> Vec<CorpusItem> {
    let senders = [
        profiles::reno(),
        profiles::tahoe(),
        profiles::solaris_2_4(),
        profiles::linux_1_0(),
        profiles::windows_95(),
    ];
    let mut items = Vec::new();
    for i in 0..50u64 {
        let cfg = senders[(i % senders.len() as u64) as usize].clone();
        let out = run_transfer(
            cfg,
            profiles::reno(),
            &PathSpec::default(),
            8 * 1024 + 512 * i,
            900 + i,
        );
        items.push(CorpusItem::memory(format!("t{i:02}"), out.sender_trace()));
    }
    items
}

fn config(jobs: usize) -> CorpusConfig {
    CorpusConfig {
        jobs,
        vantage: Vantage::Sender,
    }
}

#[test]
fn parallel_census_is_byte_identical_to_serial() {
    let items = build_corpus();
    let serial = analyze_corpus(MemorySource::new(items.clone()), &config(1));
    let parallel = analyze_corpus(MemorySource::new(items), &config(4));
    // Structural equality of every per-item result, in input order...
    assert_eq!(serial.items, parallel.items);
    // ...and the rendered census must match byte for byte.
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.census.analyzed, 50);
    assert_eq!(serial.census.failed(), 0);
}

#[test]
fn items_come_back_in_input_order_regardless_of_workers() {
    let items = build_corpus();
    let report = analyze_corpus(MemorySource::new(items), &config(8));
    let ids: Vec<&str> = report.items.iter().map(|r| r.id.as_str()).collect();
    let expected: Vec<String> = (0..50).map(|i| format!("t{i:02}")).collect();
    assert_eq!(ids, expected.iter().map(String::as_str).collect::<Vec<_>>());
    for (i, item) in report.items.iter().enumerate() {
        assert_eq!(item.index, i);
    }
}

#[test]
fn one_poisoned_trace_costs_one_item_not_the_pipeline() {
    // Silence the default panic hook: the poison's panic is expected and
    // its backtrace would only clutter test output.
    let prior = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut items = build_corpus();
    items[17] = CorpusItem::poison("t17");
    let report = analyze_corpus(MemorySource::new(items), &config(4));
    std::panic::set_hook(prior);

    assert_eq!(report.census.panics, 1);
    assert_eq!(report.census.analyzed, 49);
    assert!(matches!(
        &report.items[17].outcome,
        ItemOutcome::Panicked(msg) if msg.contains("poisoned corpus item")
    ));
    for (i, item) in report.items.iter().enumerate() {
        if i != 17 {
            assert!(
                matches!(item.outcome, ItemOutcome::Analyzed(_)),
                "item {i} should have survived the poison at 17"
            );
        }
    }
    assert!(report.render().contains("analyzer panic"));
}

#[test]
fn load_errors_and_empty_traces_are_reported_not_fatal() {
    let items = vec![
        CorpusItem::memory("empty", Trace::new()),
        CorpusItem::pcap("/nonexistent/never.pcap"),
    ];
    let report = analyze_corpus(MemorySource::new(items), &config(2));
    assert_eq!(report.census.items_total, 2);
    assert_eq!(report.census.load_errors, 1);
    // An empty trace analyzes to zero connections rather than failing.
    assert!(matches!(report.items[0].outcome, ItemOutcome::Analyzed(_)));
    assert_eq!(report.census.connections, 0);
}

#[test]
fn auto_vantage_batch_matches_fixed_vantage_on_sender_traces() {
    let items = build_corpus();
    let fixed = analyze_corpus(MemorySource::new(items.clone()), &config(2));
    let auto = analyze_corpus(
        MemorySource::new(items),
        &CorpusConfig {
            jobs: 2,
            vantage: Vantage::Unknown,
        },
    );
    // Auto-detection must land on Sender for these traces, so the merged
    // census agrees with the explicitly-configured run.
    assert_eq!(fixed.render(), auto.render());
}
