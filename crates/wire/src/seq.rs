//! Wrap-safe 32-bit TCP sequence-number arithmetic.
//!
//! TCP sequence numbers live on a 2³² circle; comparisons are only
//! meaningful between numbers less than 2³¹ apart (RFC 793 §3.3). This
//! module provides a [`SeqNum`] newtype whose ordering and distance
//! operations respect the wrap, so analysis code never writes a raw
//! `a < b` on sequence numbers.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A TCP sequence number (or acknowledgment number) on the 2³² circle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(pub u32);

impl SeqNum {
    /// The zero sequence number.
    pub const ZERO: SeqNum = SeqNum(0);

    /// Wrapping signed distance `self - other`, in the range
    /// `[-2³¹, 2³¹)`. Positive means `self` is ahead of `other`.
    pub fn dist(self, other: SeqNum) -> i64 {
        i64::from(self.0.wrapping_sub(other.0) as i32)
    }

    /// `true` if `self` is strictly after `other` on the circle.
    pub fn after(self, other: SeqNum) -> bool {
        self.dist(other) > 0
    }

    /// `true` if `self` is strictly before `other` on the circle.
    pub fn before(self, other: SeqNum) -> bool {
        self.dist(other) < 0
    }

    /// `true` if `self` is at or after `other`.
    pub fn at_or_after(self, other: SeqNum) -> bool {
        self.dist(other) >= 0
    }

    /// `true` if `self` is at or before `other`.
    pub fn at_or_before(self, other: SeqNum) -> bool {
        self.dist(other) <= 0
    }

    /// `true` if `self` lies in the half-open window `[lo, lo+len)`.
    pub fn in_window(self, lo: SeqNum, len: u32) -> bool {
        let d = self.dist(lo);
        d >= 0 && d < i64::from(len)
    }

    /// The larger of two sequence numbers under wrap ordering.
    pub fn max(self, other: SeqNum) -> SeqNum {
        if self.after(other) {
            self
        } else {
            other
        }
    }

    /// The smaller of two sequence numbers under wrap ordering.
    pub fn min(self, other: SeqNum) -> SeqNum {
        if self.before(other) {
            self
        } else {
            other
        }
    }
}

impl PartialOrd for SeqNum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.dist(*other).cmp(&0))
    }
}

impl Add<u32> for SeqNum {
    type Output = SeqNum;
    fn add(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(rhs))
    }
}

impl AddAssign<u32> for SeqNum {
    fn add_assign(&mut self, rhs: u32) {
        self.0 = self.0.wrapping_add(rhs);
    }
}

impl Sub<u32> for SeqNum {
    type Output = SeqNum;
    fn sub(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_sub(rhs))
    }
}

impl Sub<SeqNum> for SeqNum {
    type Output = i64;
    fn sub(self, rhs: SeqNum) -> i64 {
        self.dist(rhs)
    }
}

impl From<u32> for SeqNum {
    fn from(v: u32) -> Self {
        SeqNum(v)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_without_wrap() {
        let a = SeqNum(100);
        let b = SeqNum(200);
        assert!(a.before(b));
        assert!(b.after(a));
        assert!(a.at_or_before(a));
        assert!(a.at_or_after(a));
        assert_eq!(b - a, 100);
        assert_eq!(a - b, -100);
    }

    #[test]
    fn ordering_across_wrap() {
        let a = SeqNum(u32::MAX - 10);
        let b = a + 20; // wraps past zero
        assert_eq!(b.0, 9);
        assert!(a.before(b));
        assert!(b.after(a));
        assert_eq!(b - a, 20);
    }

    #[test]
    fn window_membership_across_wrap() {
        let lo = SeqNum(u32::MAX - 5);
        assert!(lo.in_window(lo, 1));
        assert!((lo + 9).in_window(lo, 10));
        assert!(!(lo + 10).in_window(lo, 10));
        assert!(!(lo - 1).in_window(lo, 10));
    }

    #[test]
    fn min_max_respect_wrap() {
        let a = SeqNum(u32::MAX - 1);
        let b = SeqNum(3);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = SeqNum(0x8000_0000);
        assert_eq!(a + 5 - 5, a);
        assert_eq!((a - 5) + 5, a);
    }
}
