//! Observability contract tests: metrics determinism across worker
//! counts, census/diagnostic stream separation, schema validity of the
//! `--metrics-out` / `--audit-dir` output, stage-timing coverage, and
//! verbosity flags.

use std::process::Command;
use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::pcap_io;
use tcpa_wire::TsResolution;
use tcpanaly::obs::{self, json, metrics};

fn tcpanaly_code(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_tcpanaly"))
        .args(args)
        .output()
        .expect("run tcpanaly");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

/// A temp directory holding `n` generated pcaps (plus, optionally, the
/// committed mangled fixtures for salvage-path coverage).
fn corpus_dir(tag: &str, n: usize, with_mangled: bool) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tcpanaly_obs_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    for i in 0..n {
        let out = run_transfer(
            profiles::reno(),
            profiles::reno(),
            &PathSpec::default(),
            8 * 1024,
            700 + i as u64,
        );
        let file = std::fs::File::create(dir.join(format!("t{i}.pcap"))).unwrap();
        pcap_io::write_pcap(&out.sender_trace(), file, TsResolution::Micro, 0).unwrap();
    }
    if with_mangled {
        for name in ["corrupt-timestamp.pcap", "oversized-length.pcap"] {
            std::fs::copy(mangled_dir().join(name), dir.join(format!("zz-{name}"))).unwrap();
        }
    }
    dir
}

fn mangled_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/mangled")
}

fn fixtures_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

fn counter(metrics_json: &str, name: &str) -> u64 {
    let doc = json::Value::parse(metrics_json).expect("parse metrics");
    doc.get("counters")
        .and_then(|c| c.get(name))
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("counter {name:?} missing from {metrics_json}"))
}

/// The deterministic part of a metrics file must be byte-identical
/// whatever the worker count — including a degraded corpus that
/// exercises the salvage counters.
#[test]
fn metrics_deterministic_across_worker_counts() {
    let dir = corpus_dir("determinism", 4, true);
    let dir_arg = dir.to_str().unwrap();
    let mut stripped = Vec::new();
    for jobs in ["1", "4", "8"] {
        let out = dir.join(format!("metrics-{jobs}.json"));
        let (stdout, stderr, code) = tcpanaly_code(&[
            "--jobs",
            jobs,
            "--degrade=salvage",
            "--metrics-out",
            out.to_str().unwrap(),
            dir_arg,
            "/nonexistent/never.pcap",
        ]);
        assert_eq!(code, 1, "one i/o failure expected\n{stdout}\n{stderr}");
        let text = std::fs::read_to_string(&out).expect("metrics file");
        metrics::validate_metrics(&text).expect("schema-valid metrics");
        assert_eq!(counter(&text, "corpus.items_total"), 7, "{text}");
        assert_eq!(counter(&text, "corpus.salvaged"), 2, "{text}");
        assert_eq!(counter(&text, "corpus.failed.io"), 1, "{text}");
        // The full failure vocabulary is declared even when untouched.
        assert_eq!(counter(&text, "corpus.io_retries"), 0, "{text}");
        assert_eq!(counter(&text, "corpus.failed.panic"), 0, "{text}");
        assert!(counter(&text, "corpus.salvage.bytes_skipped") > 0, "{text}");
        stripped.push(metrics::strip_wall_clock(&text).expect("strip"));
    }
    assert_eq!(
        stripped[0], stripped[1],
        "metrics (minus wall_clock) must not depend on worker count"
    );
    assert_eq!(stripped[1], stripped[2]);
    let _ = std::fs::remove_dir_all(dir);
}

/// `--progress` and the leveled logger write strictly to stderr: the
/// census on stdout stays byte-identical.
#[test]
fn progress_never_touches_stdout() {
    let dir = corpus_dir("streams", 3, false);
    let dir_arg = dir.to_str().unwrap();
    let (plain, _, code) = tcpanaly_code(&["--jobs", "2", dir_arg]);
    assert_eq!(code, 0);
    let (with_progress, stderr, code) =
        tcpanaly_code(&["--jobs", "2", "--progress", "-v", dir_arg]);
    assert_eq!(code, 0);
    assert_eq!(
        plain, with_progress,
        "census must be byte-identical with --progress active"
    );
    assert!(
        stderr.contains("progress 3/3 traces"),
        "final progress line expected on stderr: {stderr}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// `--metrics-out` + `--audit-dir` over the committed fixtures (clean
/// and mangled): every produced document validates against its schema.
#[test]
fn fixture_run_produces_schema_valid_documents() {
    let out_root = std::env::temp_dir().join(format!("tcpanaly_obs_schema_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out_root);
    std::fs::create_dir_all(&out_root).unwrap();
    let metrics_path = out_root.join("metrics.json");
    let audit_dir = out_root.join("audit");
    let (stdout, stderr, code) = tcpanaly_code(&[
        "--jobs",
        "2",
        "--degrade=salvage",
        "--metrics-out",
        metrics_path.to_str().unwrap(),
        "--audit-dir",
        audit_dir.to_str().unwrap(),
        fixtures_dir().to_str().unwrap(),
        mangled_dir().to_str().unwrap(),
    ]);
    // Some mangled fixtures recover nothing even under salvage → failed
    // items → exit 1; the run itself must still complete.
    assert!(code == 0 || code == 1, "{stdout}\n{stderr}");

    let text = std::fs::read_to_string(&metrics_path).expect("metrics file");
    metrics::validate_metrics(&text).expect("schema-valid metrics");
    let items = counter(&text, "corpus.items_total");
    assert!(items >= 11, "fixtures + mangled fixtures, got {items}");

    let mut audited = 0;
    for entry in std::fs::read_dir(&audit_dir).expect("audit dir") {
        let path = entry.unwrap().path();
        let trail = std::fs::read_to_string(&path).unwrap();
        metrics::validate_audit(&trail)
            .unwrap_or_else(|e| panic!("{}: {e}\n{trail}", path.display()));
        audited += 1;
    }
    assert_eq!(audited as u64, items, "one audit trail per corpus item");
    let _ = std::fs::remove_dir_all(out_root);
}

/// The per-stage histograms must account for ≥95% of the total analysis
/// wall clock — i.e. the instrumentation has no large blind spots.
#[test]
fn stage_histograms_cover_analysis_time() {
    let out = run_transfer(
        profiles::solaris_2_4(),
        profiles::reno(),
        &PathSpec::default(),
        200 * 1024,
        710,
    );
    let trace = out.sender_trace();
    let before = obs::registry::global().snapshot();
    let _report = tcpanaly::Analyzer::at_sender().analyze(&trace);
    let delta = obs::registry::global().snapshot().since(&before);

    let total = delta.stage_total_ns(&["analyze.total"]);
    assert!(total > 0, "analyze.total must be recorded");
    let staged: u64 = delta
        .stages
        .iter()
        .filter(|(name, _)| name.starts_with("stage."))
        .map(|(_, h)| h.sum())
        .sum();
    assert!(
        staged as f64 >= 0.95 * total as f64,
        "stage.* histograms cover {staged} of {total} ns ({:.1}%)",
        100.0 * staged as f64 / total as f64
    );
    // Nested detail must not be double-counted into coverage.
    assert!(delta.stages.contains_key("detail.sender_replay"));
}

/// Verbosity flags gate the stderr diagnostics; errors always print.
#[test]
fn verbosity_flags_gate_stderr() {
    let dir = corpus_dir("verbosity", 2, false);
    let dir_arg = dir.to_str().unwrap();
    let (_, stderr, code) = tcpanaly_code(&["--jobs", "1", dir_arg]);
    assert_eq!(code, 0);
    assert!(
        stderr.is_empty(),
        "healthy run must keep stderr clean: {stderr}"
    );
    let (_, stderr, code) = tcpanaly_code(&["--jobs", "1", "-v", dir_arg]);
    assert_eq!(code, 0);
    assert!(
        stderr.contains("batch mode: 2 traces"),
        "-v must echo configuration: {stderr}"
    );
    let (_, stderr, code) = tcpanaly_code(&["--quiet", "/nonexistent/never.pcap"]);
    assert_eq!(code, 1);
    assert!(
        stderr.contains("never.pcap"),
        "errors print even under --quiet: {stderr}"
    );
    let _ = std::fs::remove_dir_all(dir);
}
