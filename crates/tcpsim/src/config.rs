//! The behavior-flag configuration that selects a TCP implementation.
//!
//! Every knob corresponds to a behavior or bug the paper catalogues; the
//! named per-implementation settings live in [`crate::profiles`].

use tcpa_trace::Duration;

/// Code lineage, as in Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lineage {
    /// Derived from the 1988 BSD Tahoe release.
    Tahoe,
    /// Derived from the 1990 BSD Reno release (incl. Net/3).
    Reno,
    /// Written independently of the BSD code.
    Independent,
}

impl core::fmt::Display for Lineage {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Lineage::Tahoe => write!(f, "Tahoe"),
            Lineage::Reno => write!(f, "Reno"),
            Lineage::Independent => write!(f, "Indep."),
        }
    }
}

/// How the congestion window grows during congestion avoidance (§8.1–8.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CwndIncrease {
    /// Tahoe's Eqn 1: `cwnd += MSS*MSS/cwnd`.
    Linear,
    /// Reno's Eqn 2: `cwnd += MSS*MSS/cwnd + MSS/8` — the super-linear
    /// increase later judged too aggressive (\[BP95\], credited to S. Floyd).
    SuperLinear,
}

/// Fast-recovery behavior after a fast retransmit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastRecovery {
    /// Tahoe: none — slow start from one segment.
    None,
    /// Reno: inflate cwnd by one MSS per additional dup ack, deflate on
    /// the ack of new data.
    Reno,
    /// Solaris 2.3/2.4: the fast-recovery code exists but a logic bug
    /// keeps it from being exercised (§8.6); behaves as [`FastRecovery::None`].
    RareBuggy,
}

/// When a receiver acknowledges newly arrived in-sequence data (§9.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckPolicy {
    /// BSD: a free-running heartbeat timer; any pending un-acked
    /// in-sequence data is acked when the heartbeat fires. The phase is
    /// absolute, so measured delays are uniform on `[0, interval)`.
    Heartbeat {
        /// Heartbeat period (BSD: 200 ms).
        interval: Duration,
    },
    /// Solaris: a one-shot timer scheduled on packet arrival.
    PerPacketTimer {
        /// Timer delay (Solaris: 50 ms).
        delay: Duration,
    },
    /// Linux 1.0: acknowledge every packet immediately.
    EveryPacket,
}

/// Response to an ICMP source quench (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuenchResponse {
    /// BSD: enter slow start (cwnd = 1 MSS; ssthresh untouched).
    SlowStart,
    /// Solaris: enter slow start *and* halve ssthresh.
    SlowStartCutSsthresh,
    /// Linux 1.0: merely shrink cwnd by one segment.
    CwndDownOneSegment,
    /// Ignore it entirely.
    Ignore,
}

/// Retransmission-timeout estimation scheme (§8.6, \[DJM97\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtoScheme {
    /// Jacobson/Karn srtt + 4·rttvar with a coarse clock tick.
    Jacobson,
    /// Solaris: Jacobson arithmetic, but the RTO is *reset to its initial
    /// value* whenever an ack arrives for retransmitted data, so it never
    /// adapts on a lossy or retransmission-riddled connection.
    SolarisBroken,
    /// No estimation at all: a fixed RTO with multiplicative backoff
    /// (primitive stacks; our Trumpet/Winsock reconstruction).
    Fixed,
}

/// Full behavioral description of one TCP implementation.
///
/// Defaults (via [`TcpConfig::generic_reno`]) describe the paper's generic
/// Reno (§8.2); profiles adjust fields from there.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Human-readable implementation name, e.g. `"Solaris 2.4"`.
    pub name: &'static str,
    /// Code lineage (Table 1).
    pub lineage: Lineage,

    // ---- MSS handling -------------------------------------------------
    /// The MSS this endpoint offers in its SYN.
    pub mss: u16,
    /// Whether the SYN/SYN-ack carries an MSS option at all. Receivers
    /// that omit it trigger the Net/3 uninitialized-cwnd bug in peers
    /// (§8.4).
    pub send_mss_option: bool,
    /// MSS assumed for the peer when it offers no option (RFC 1122: 536).
    pub default_peer_mss: u16,
    /// MSS-confusion bug (\[BP95\], §8.3): congestion-window arithmetic uses
    /// the MSS *including* TCP option bytes.
    pub mss_includes_options: bool,
    /// §8.3 variant: cwnd is initialized from this side's *initially
    /// offered* MSS instead of the negotiated one.
    pub cwnd_init_from_offered_mss: bool,

    // ---- congestion windows -------------------------------------------
    /// Initial congestion window in segments (all studied TCPs: 1).
    pub initial_cwnd_segs: u32,
    /// Initial ssthresh in segments; `None` = effectively unbounded
    /// (65535 bytes). Linux 1.0 and Solaris use `Some(1)` (§8.5, §8.6).
    pub initial_ssthresh_segs: Option<u32>,
    /// Congestion-avoidance increase rule.
    pub cwnd_increase: CwndIncrease,
    /// §8.3 variant: slow start iff `cwnd < ssthresh` (strict) versus
    /// `cwnd <= ssthresh`.
    pub ss_test_strict: bool,
    /// Floor, in segments, below which ssthresh is never cut (Tahoe: 1;
    /// Reno: 2).
    pub min_ssthresh_segs: u32,
    /// §8.3 variant: when halving, round ssthresh down to a segment
    /// multiple.
    pub ssthresh_round_down: bool,
    /// Net/3 uninitialized-cwnd bug (§8.4): when the peer's SYN-ack omits
    /// the MSS option, cwnd and ssthresh come up huge instead of 1 MSS.
    pub uninit_cwnd_bug: bool,
    /// Header-prediction bug (\[BP95\]): exiting fast recovery through the
    /// fast path fails to deflate cwnd at all.
    pub header_prediction_bug: bool,
    /// Fencepost bug (\[BP95\]): recovery deflation leaves cwnd one segment
    /// above ssthresh.
    pub fencepost_bug: bool,
    /// Trumpet/Winsock reconstruction (§10): no congestion window at all —
    /// the sender fills the offered window regardless of congestion.
    pub no_congestion_window: bool,

    // ---- loss detection / retransmission ------------------------------
    /// Fast retransmit implemented (Linux 1.0: no, §8.5).
    pub fast_retransmit: bool,
    /// Duplicate acks needed to trigger fast retransmit (3).
    pub dupack_threshold: u32,
    /// Fast-recovery style.
    pub fast_recovery: FastRecovery,
    /// Rarely-manifested §8.3 bug when `false`: the duplicate-ack counter
    /// is not cleared on timeout.
    pub clear_dupacks_on_timeout: bool,
    /// Rarely-manifested §8.3 bug: duplicate acks also apply the
    /// congestion-avoidance cwnd increase.
    pub dupack_updates_cwnd: bool,
    /// Linux 1.0 (§8.5): every retransmission re-sends *all* unacked data
    /// in one burst.
    pub burst_retransmit: bool,
    /// Linux 1.0 (§8.5): the first duplicate ack already triggers
    /// retransmission ("decides to retransmit much too early").
    pub retransmit_on_first_dupack: bool,
    /// Solaris (§8.6): every `n`-th liberating ack provokes a needless
    /// retransmission of the segment just above the ack instead of new
    /// data; 0 disables.
    pub retransmit_after_ack_period: u32,

    // ---- RTO -----------------------------------------------------------
    /// Estimation scheme.
    pub rto_scheme: RtoScheme,
    /// RTO before any RTT sample exists (BSD ≈3 s; Solaris ≈300 ms).
    pub initial_rto: Duration,
    /// Lower clamp.
    pub min_rto: Duration,
    /// Upper clamp.
    pub max_rto: Duration,
    /// Clock tick: samples and RTOs are quantized up to this (BSD: 500 ms).
    pub rto_granularity: Duration,
    /// Backoff multiplier on timeout (2.0 standard; Linux 1.0 backs off
    /// less than fully, §8.5).
    pub rto_backoff: f64,
    /// RTO for SYN retransmission (a separate, fixed timer; Fig 5 notes
    /// the initial SYN "uses a different retransmission timer").
    pub syn_rto: Duration,
    /// Stevens's broken clients (§2): the connection-establishment retry
    /// timer does not back off — retries arrive at a constant interval.
    pub syn_backoff_flat: bool,
    /// Give up on a segment after this many consecutive retransmission
    /// timeouts (BSD: 12).
    pub max_retransmits: u32,
    /// Send a keep-alive probe after this much connection idle time
    /// (classically two hours; \[CL94\]/\[DJM97\] found wide variation).
    /// `None` disables keep-alives.
    pub keepalive_interval: Option<Duration>,
    /// Whether the connection is terminated with a RST when the maximum
    /// retransmission count is reached. \[DJM97\] found TCPs that do *not*
    /// "correctly terminate their connections with RST packets" — set
    /// `false` to model them.
    pub rst_on_give_up: bool,

    // ---- sender window --------------------------------------------------
    /// Socket send-buffer size in bytes — the *sender window* tcpanaly
    /// must infer (§6.2).
    pub send_buffer: u32,

    // ---- receiver -------------------------------------------------------
    /// Receive buffer / offered window in bytes.
    pub recv_window: u32,
    /// Optional schedule of offered-window values: the `k`-th ack
    /// advertises `schedule[min(k, len-1)]` (minus buffered out-of-order
    /// data). Reproduces Fig 3's growing offered window. Empty = always
    /// `recv_window`.
    pub recv_window_schedule: Vec<u32>,
    /// In-sequence acking policy.
    pub ack_policy: AckPolicy,
    /// Generate an ack once this many full segments are pending
    /// (standard: 2; larger values yield §9.1 "stretch acks").
    pub ack_every_n: u32,
    /// Solaris: ack every packet during the initial slow-start phase
    /// (first `n` data packets), then switch to the configured policy; 0
    /// disables.
    pub initial_ack_every_packet: u32,
    /// Solaris 2.3 acking-policy bug (§8.6, fixed in 2.4): every 32nd data
    /// packet elicits an extra, gratuitous ack.
    pub gratuitous_ack_bug: bool,
    /// Receiving application's consumption rate in bytes/second; `None`
    /// means the application drains instantly. A slow reader shrinks the
    /// offered window and, once it hits zero, exercises the peer's
    /// zero-window probing (the behavior \[CL94\]'s active probing study
    /// examined).
    pub app_read_rate: Option<u64>,

    // ---- zero-window probing ---------------------------------------------
    /// Initial persist-timer delay before probing a closed window
    /// (BSD: 5 s), backed off exponentially to [`TcpConfig::persist_max`].
    pub persist_initial: Duration,
    /// Persist-timer ceiling (BSD: 60 s).
    pub persist_max: Duration,

    // ---- misc -----------------------------------------------------------
    /// Response to ICMP source quench.
    pub quench_response: QuenchResponse,
}

impl TcpConfig {
    /// The paper's generic Reno (§8.2): the base from which profiles are
    /// expressed as deltas.
    pub fn generic_reno() -> TcpConfig {
        TcpConfig {
            name: "Generic Reno",
            lineage: Lineage::Reno,
            mss: 1460,
            send_mss_option: true,
            default_peer_mss: 536,
            mss_includes_options: false,
            cwnd_init_from_offered_mss: false,
            initial_cwnd_segs: 1,
            initial_ssthresh_segs: None,
            cwnd_increase: CwndIncrease::SuperLinear,
            ss_test_strict: false,
            min_ssthresh_segs: 2,
            ssthresh_round_down: false,
            uninit_cwnd_bug: false,
            header_prediction_bug: false,
            fencepost_bug: false,
            no_congestion_window: false,
            fast_retransmit: true,
            dupack_threshold: 3,
            fast_recovery: FastRecovery::Reno,
            clear_dupacks_on_timeout: true,
            dupack_updates_cwnd: false,
            burst_retransmit: false,
            retransmit_on_first_dupack: false,
            retransmit_after_ack_period: 0,
            rto_scheme: RtoScheme::Jacobson,
            initial_rto: Duration::from_millis(3000),
            min_rto: Duration::from_millis(1000),
            max_rto: Duration::from_secs(64),
            rto_granularity: Duration::from_millis(500),
            rto_backoff: 2.0,
            syn_rto: Duration::from_secs(6),
            syn_backoff_flat: false,
            max_retransmits: 12,
            rst_on_give_up: true,
            keepalive_interval: None,
            send_buffer: 65_535,
            recv_window: 16_384,
            recv_window_schedule: Vec::new(),
            ack_policy: AckPolicy::Heartbeat {
                interval: Duration::from_millis(200),
            },
            ack_every_n: 2,
            initial_ack_every_packet: 0,
            gratuitous_ack_bug: false,
            app_read_rate: None,
            persist_initial: Duration::from_secs(5),
            persist_max: Duration::from_secs(60),
            quench_response: QuenchResponse::SlowStart,
        }
    }

    /// The paper's generic Tahoe (§8.1).
    pub fn generic_tahoe() -> TcpConfig {
        TcpConfig {
            name: "Generic Tahoe",
            lineage: Lineage::Tahoe,
            cwnd_increase: CwndIncrease::Linear,
            fast_recovery: FastRecovery::None,
            min_ssthresh_segs: 1,
            header_prediction_bug: false,
            fencepost_bug: false,
            ..TcpConfig::generic_reno()
        }
    }

    /// The effective MSS used to size data packets, given what the peer
    /// offered (if anything).
    pub fn effective_send_mss(&self, peer_mss: Option<u16>) -> u32 {
        let peer = peer_mss.unwrap_or(self.default_peer_mss);
        u32::from(self.mss.min(peer))
    }

    /// The MSS value used in congestion-window arithmetic, applying the
    /// MSS-confusion and offered-MSS variants.
    pub fn cwnd_mss(&self, peer_mss: Option<u16>) -> u32 {
        let mut m = if self.cwnd_init_from_offered_mss {
            u32::from(self.mss)
        } else {
            self.effective_send_mss(peer_mss)
        };
        if self.mss_includes_options {
            // The confusion in [BP95]: counting option bytes into the MSS
            // used for window updates. The classic case is the timestamp
            // option's 12 bytes; these old stacks send plain headers, so
            // model the canonical +12.
            m += 12;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_tahoe_differs_from_reno_as_in_paper() {
        let tahoe = TcpConfig::generic_tahoe();
        let reno = TcpConfig::generic_reno();
        assert_eq!(tahoe.cwnd_increase, CwndIncrease::Linear);
        assert_eq!(reno.cwnd_increase, CwndIncrease::SuperLinear);
        assert_eq!(tahoe.fast_recovery, FastRecovery::None);
        assert_eq!(reno.fast_recovery, FastRecovery::Reno);
        assert!(tahoe.fast_retransmit && reno.fast_retransmit);
        assert_eq!(tahoe.min_ssthresh_segs, 1);
    }

    #[test]
    fn effective_mss_is_minimum_of_offers() {
        let cfg = TcpConfig::generic_reno();
        assert_eq!(cfg.effective_send_mss(Some(536)), 536);
        assert_eq!(cfg.effective_send_mss(Some(9000)), 1460);
        assert_eq!(cfg.effective_send_mss(None), 536);
    }

    #[test]
    fn cwnd_mss_variants() {
        let mut cfg = TcpConfig::generic_reno();
        assert_eq!(cfg.cwnd_mss(Some(536)), 536);
        cfg.cwnd_init_from_offered_mss = true;
        assert_eq!(cfg.cwnd_mss(Some(536)), 1460, "uses own offer");
        cfg.cwnd_init_from_offered_mss = false;
        cfg.mss_includes_options = true;
        assert_eq!(cfg.cwnd_mss(Some(536)), 548, "options counted in");
    }
}
