// Bad: raw prints around the census writer.
fn report(n: usize) {
    println!("census rows: {n}");
    eprintln!("warning: {n} rows");
    print!("partial");
}
