//! Time/sequence-number plots.
//!
//! The paper's figures are all *sequence plots*: time on the x-axis, the
//! upper sequence number of each data packet (solid squares) or ack
//! (outlined squares) on the y-axis. This module extracts those series
//! from a connection and renders a terminal-friendly ASCII version, which
//! is what the reproduction's figure binaries print.

use crate::conn::{Connection, Dir};
use crate::time::Time;
use tcpa_wire::SeqNum;

/// The kind of a plot point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointKind {
    /// A data packet (upper sequence number).
    Data,
    /// A data packet whose sequence range had been transmitted before —
    /// a retransmission, as judged purely from the trace.
    Retransmit,
    /// A pure acknowledgment (ack number).
    Ack,
}

/// One point of a sequence plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlotPoint {
    /// Timestamp.
    pub t: Time,
    /// Upper sequence number (data) or ack number (acks), relative to the
    /// connection's initial sequence number.
    pub seq: u64,
    /// Point kind.
    pub kind: PointKind,
}

/// A full sequence plot for one connection.
#[derive(Debug, Clone, Default)]
pub struct SeqPlot {
    /// Points in trace order.
    pub points: Vec<PlotPoint>,
}

impl SeqPlot {
    /// Extracts the sequence plot of `conn`, relative to the data sender's
    /// initial sequence number (the SYN's sequence number if captured,
    /// otherwise the lowest data sequence number seen).
    pub fn extract(conn: &Connection) -> SeqPlot {
        let isn = conn
            .in_dir(Dir::SenderToReceiver)
            .find(|r| r.tcp.flags.syn())
            .map(|r| r.tcp.seq)
            .or_else(|| {
                conn.in_dir(Dir::SenderToReceiver)
                    .filter(|r| r.is_data())
                    .map(|r| r.tcp.seq)
                    .min_by(|a, b| {
                        if a.before(*b) {
                            core::cmp::Ordering::Less
                        } else if a == b {
                            core::cmp::Ordering::Equal
                        } else {
                            core::cmp::Ordering::Greater
                        }
                    })
            })
            .unwrap_or(SeqNum::ZERO);

        let rel = |s: SeqNum| -> u64 { (s - isn).max(0) as u64 };

        let mut points = Vec::new();
        let mut highest_sent: Option<SeqNum> = None;
        for (dir, rec) in &conn.records {
            match dir {
                Dir::SenderToReceiver if rec.is_data() => {
                    let hi = rec.seq_hi();
                    let kind = match highest_sent {
                        Some(h) if !hi.after(h) => PointKind::Retransmit,
                        _ => PointKind::Data,
                    };
                    highest_sent = Some(match highest_sent {
                        Some(h) => h.max(hi),
                        None => hi,
                    });
                    points.push(PlotPoint {
                        t: rec.ts,
                        seq: rel(hi),
                        kind,
                    });
                }
                // SYN-acks are handshake traffic, not the ack series the
                // paper's plots show.
                Dir::ReceiverToSender if rec.tcp.flags.ack() && !rec.tcp.flags.syn() => {
                    points.push(PlotPoint {
                        t: rec.ts,
                        seq: rel(rec.tcp.ack),
                        kind: PointKind::Ack,
                    });
                }
                _ => {}
            }
        }
        SeqPlot { points }
    }

    /// Count of points of a given kind.
    pub fn count(&self, kind: PointKind) -> usize {
        self.points.iter().filter(|p| p.kind == kind).count()
    }

    /// Renders the plot as ASCII art: `#` data, `R` retransmission,
    /// `o` ack. `width`/`height` are the plot area in characters.
    pub fn render_ascii(&self, width: usize, height: usize) -> String {
        assert!(width >= 2 && height >= 2, "plot area too small");
        let (Some(t_min), Some(t_max), Some(s_hi)) = (
            self.points.iter().map(|p| p.t).min(),
            self.points.iter().map(|p| p.t).max(),
            self.points.iter().map(|p| p.seq).max(),
        ) else {
            return String::from("(empty plot)\n");
        };
        let s_max = s_hi.max(1);
        let t_span = (t_max - t_min).as_nanos().max(1) as f64;

        let mut grid = vec![vec![' '; width]; height];
        for p in &self.points {
            let x = (((p.t - t_min).as_nanos() as f64 / t_span) * (width - 1) as f64) as usize;
            let y = ((p.seq as f64 / s_max as f64) * (height - 1) as f64) as usize;
            let row = height - 1 - y.min(height - 1);
            let ch = match p.kind {
                PointKind::Data => '#',
                PointKind::Retransmit => 'R',
                PointKind::Ack => 'o',
            };
            let cell = &mut grid[row][x.min(width - 1)];
            // Retransmissions are the most interesting; never overwrite one.
            if *cell != 'R' {
                *cell = ch;
            }
        }

        let mut out = String::new();
        out.push_str(&format!(
            "seq 0..{}  time {:.3}s..{:.3}s  (# data, R retransmit, o ack)\n",
            s_max,
            t_min.as_secs_f64(),
            t_max.as_secs_f64()
        ));
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        out.push('+');
        out.push_str(&"-".repeat(width));
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_util::rec;
    use crate::record::Trace;
    use tcpa_wire::TcpFlags;

    fn bulk_conn() -> Connection {
        let trace: Trace = vec![
            rec(0, 1, 2, TcpFlags::SYN, 1000, 0, 0),
            rec(5, 2, 1, TcpFlags::SYN | TcpFlags::ACK, 5000, 0, 1001),
            rec(10, 1, 2, TcpFlags::ACK, 1001, 512, 5001),
            rec(20, 1, 2, TcpFlags::ACK, 1513, 512, 5001),
            rec(30, 2, 1, TcpFlags::ACK, 5001, 0, 2025),
            rec(40, 1, 2, TcpFlags::ACK, 1001, 512, 5001), // retransmit
        ]
        .into_iter()
        .collect();
        Connection::split(&trace).remove(0)
    }

    #[test]
    fn extract_classifies_points() {
        let plot = SeqPlot::extract(&bulk_conn());
        assert_eq!(plot.count(PointKind::Data), 2);
        assert_eq!(plot.count(PointKind::Retransmit), 1);
        assert_eq!(plot.count(PointKind::Ack), 1);
    }

    #[test]
    fn seq_is_relative_to_isn() {
        let plot = SeqPlot::extract(&bulk_conn());
        // First data packet: seq 1001 len 512, relative hi = 1513-1000 = 513.
        let first_data = plot
            .points
            .iter()
            .find(|p| p.kind == PointKind::Data)
            .unwrap();
        assert_eq!(first_data.seq, 513);
    }

    #[test]
    fn render_contains_markers() {
        let art = SeqPlot::extract(&bulk_conn()).render_ascii(40, 10);
        assert!(art.contains('#'));
        assert!(art.contains('R'));
        assert!(art.contains('o'));
        assert_eq!(art.lines().count(), 12); // header + 10 rows + axis
    }

    #[test]
    fn empty_plot_renders_placeholder() {
        let plot = SeqPlot { points: vec![] };
        assert_eq!(plot.render_ascii(10, 5), "(empty plot)\n");
    }

    #[test]
    fn isn_fallback_without_syn() {
        // No SYN captured: relative to lowest data seq.
        let trace: Trace = vec![
            rec(0, 1, 2, TcpFlags::ACK, 9000, 100, 1),
            rec(1, 1, 2, TcpFlags::ACK, 9100, 100, 1),
        ]
        .into_iter()
        .collect();
        let conn = Connection::split(&trace).remove(0);
        let plot = SeqPlot::extract(&conn);
        assert_eq!(plot.points[0].seq, 100);
        assert_eq!(plot.points[1].seq, 200);
    }
}
