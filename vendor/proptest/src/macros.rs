//! The user-facing macros: `proptest!`, `prop_oneof!`, `prop_assert!`,
//! `prop_assert_eq!` and `prop_assume!`.

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]`-attributed function that runs the body over
/// generated inputs. An optional leading
/// `#![proptest_config(ProptestConfig::with_cases(N))]` sets the case
/// count for every property in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (config = ($cfg:expr);
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                runner.run(|rng| {
                    $(
                        let $arg = match $crate::strategy::Strategy::generate(&($strat), rng) {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => {
                                return ::core::result::Result::Err(
                                    $crate::test_runner::TestCaseError::reject(
                                        concat!("strategy for `", stringify!($arg), "` rejected input"),
                                    ),
                                );
                            }
                        };
                    )+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Weighted or unweighted choice between strategies yielding one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((
                $weight as u32,
                ::std::boxed::Box::new($strat)
                    as ::std::boxed::Box<dyn $crate::strategy::DynStrategy<_>>,
            )),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Like `assert!`, but fails the current case instead of panicking
/// directly, so the runner can report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Like `assert_eq!`, but fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if !(*left_val == *right_val) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                            left_val, right_val
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if !(*left_val == *right_val) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "{}\n  left: `{:?}`\n right: `{:?}`",
                            ::std::format!($($fmt)*), left_val, right_val
                        ),
                    ));
                }
            }
        }
    };
}

/// Rejects the current case (it is retried with fresh input and does not
/// count toward the case total) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
