//! Packet-filter drop detection (§3.1.1): self-consistency checks.
//!
//! The key idea: TCP is reliable, so the TCP itself diligently repairs
//! *genuine network drops*, while a *filter drop* leaves behavior that is
//! inconsistent with the recorded packets — the connection acts as if a
//! packet existed that the trace lacks. The paper employs eight such
//! checks; this module implements the six that need no congestion-window
//! model, and the sender-analysis replay contributes the remaining two
//! ([`DropCheck::WindowViolation`] and [`DropCheck::UnliberatedLull`]).
//!
//! Several checks are only sound from a particular vantage point (e.g.
//! dup acks without visible stimulus prove nothing at the *sender's*
//! filter, which cannot see what the receiver received), so detection is
//! parameterized by [`Vantage`].

use tcpa_trace::{Connection, Dir, Duration};
use tcpa_wire::SeqNum;

/// Where the packet filter sat relative to the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Vantage {
    /// At or near the bulk-data sender.
    Sender,
    /// At or near the receiver.
    Receiver,
    /// Unknown: only vantage-neutral checks run.
    #[default]
    Unknown,
}

/// The eight self-consistency checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCheck {
    /// An ack for data that, according to the trace, was never sent /
    /// never arrived (and does not show up within the resequencing
    /// window).
    AckOfUnseenData,
    /// Cumulative acks advanced over a sequence range no recorded data
    /// packet ever covered.
    DataHoleSkipped,
    /// Duplicate acks with no recorded out-of-sequence arrival to mandate
    /// them (receiver vantage only).
    DupAckWithoutStimulus,
    /// A long run of in-sequence data with no ack records at all
    /// (receiver vantage only): the ack records were shed.
    SilentReceiver,
    /// The filter-local host's IP ident counter jumped, though it is
    /// otherwise perfectly sequential: records of its packets are missing.
    IdentSequenceGap,
    /// The traced receiver's cumulative ack number decreased — impossible
    /// for the emitting TCP (receiver vantage only).
    AckRegression,
    /// (From sender analysis:) data sent beyond the modeled window; only
    /// an unrecorded ack can explain it.
    WindowViolation,
    /// (From sender analysis:) the sender ignored an open window for far
    /// too long; only an unrecorded incoming packet can explain it.
    UnliberatedLull,
}

/// One piece of filter-drop evidence.
#[derive(Debug, Clone)]
pub struct DropEvidence {
    /// Which check fired.
    pub check: DropCheck,
    /// Index of the triggering record within the connection.
    pub index: usize,
    /// Human-readable detail.
    pub detail: String,
}

const RESEQ_EPSILON: Duration = Duration::from_millis(2);
const SILENT_SPAN: Duration = Duration::from_secs(1);
const SILENT_MIN_PKTS: usize = 4;

/// Runs the structural checks against one connection.
pub fn detect_drops(conn: &Connection, vantage: Vantage) -> Vec<DropEvidence> {
    let mut out = Vec::new();
    check_ack_of_unseen_data(conn, &mut out);
    check_data_hole_skipped(conn, &mut out);
    if vantage == Vantage::Receiver {
        check_dup_ack_without_stimulus(conn, &mut out);
        check_silent_receiver(conn, &mut out);
        check_ack_regression(conn, &mut out);
    }
    match vantage {
        Vantage::Sender => check_ident_gap(conn, Dir::SenderToReceiver, &mut out),
        Vantage::Receiver => check_ident_gap(conn, Dir::ReceiverToSender, &mut out),
        Vantage::Unknown => {}
    }
    out
}

fn check_ack_of_unseen_data(conn: &Connection, out: &mut Vec<DropEvidence>) {
    let recs = &conn.records;
    let mut highest_data_hi: Option<SeqNum> = None;
    for (i, (dir, rec)) in recs.iter().enumerate() {
        match dir {
            // SYN and FIN occupy sequence space too: the ack of a FIN is
            // one beyond the last data byte and must not read as an ack
            // of unseen data.
            Dir::SenderToReceiver if rec.seq_len() > 0 => {
                let hi = rec.seq_hi();
                highest_data_hi = Some(match highest_data_hi {
                    Some(h) => h.max(hi),
                    None => hi,
                });
            }
            Dir::ReceiverToSender if rec.is_pure_ack() => {
                if let Some(h) = highest_data_hi {
                    if rec.tcp.ack.after(h) {
                        // Resequencing produces the same signature with the
                        // data following within ε (§3.1.3); only flag a
                        // drop when it never follows.
                        let appears_soon = recs.iter().skip(i + 1).any(|(d, r)| {
                            r.ts - rec.ts <= RESEQ_EPSILON
                                && *d == Dir::SenderToReceiver
                                && r.is_data()
                                && r.seq_hi().at_or_after(rec.tcp.ack)
                        });
                        if !appears_soon {
                            out.push(DropEvidence {
                                check: DropCheck::AckOfUnseenData,
                                index: i,
                                detail: format!(
                                    "ack {} exceeds highest recorded data {}",
                                    rec.tcp.ack, h
                                ),
                            });
                            // One report per gap: fast-forward our notion.
                            highest_data_hi = Some(rec.tcp.ack);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

fn check_data_hole_skipped(conn: &Connection, out: &mut Vec<DropEvidence>) {
    // Union of recorded coverage; SYN and FIN occupy sequence space.
    let mut intervals: Vec<(SeqNum, SeqNum)> = conn
        .in_dir(Dir::SenderToReceiver)
        .filter(|r| r.seq_len() > 0)
        .map(|r| (r.seq_lo(), r.seq_hi()))
        .collect();
    if intervals.is_empty() {
        return;
    }
    intervals.sort_by(|a, b| {
        if a.0.before(b.0) {
            core::cmp::Ordering::Less
        } else if a.0 == b.0 {
            core::cmp::Ordering::Equal
        } else {
            core::cmp::Ordering::Greater
        }
    });
    let max_ack = conn
        .in_dir(Dir::ReceiverToSender)
        .filter(|r| r.tcp.flags.ack())
        .map(|r| r.tcp.ack)
        .fold(None::<SeqNum>, |acc, a| {
            Some(match acc {
                Some(m) => m.max(a),
                None => a,
            })
        });
    let Some(max_ack) = max_ack else { return };
    let mut covered_to = intervals[0].0;
    for &(lo, hi) in &intervals {
        if lo.after(covered_to) && covered_to.before(max_ack) {
            // A hole below the final cumulative ack that no data record
            // ever covered.
            let hole_hi = lo.min(max_ack);
            if hole_hi.after(covered_to) {
                out.push(DropEvidence {
                    check: DropCheck::DataHoleSkipped,
                    index: 0,
                    detail: format!("acked hole [{covered_to}, {hole_hi}) has no data record"),
                });
            }
        }
        if hi.after(covered_to) {
            covered_to = hi;
        }
    }
}

fn check_dup_ack_without_stimulus(conn: &Connection, out: &mut Vec<DropEvidence>) {
    let recs = &conn.records;
    let mut last_ack: Option<SeqNum> = None;
    let mut last_win: u16 = 0;
    // Arrivals since the previous outgoing ack that can mandate a dup:
    // out-of-sequence data or data entirely below the ack point.
    let mut stimulus_since_ack = false;
    let mut in_order_hi: Option<SeqNum> = None;
    for (i, (dir, rec)) in recs.iter().enumerate() {
        match dir {
            Dir::SenderToReceiver if rec.is_data() => {
                match in_order_hi {
                    Some(h) => {
                        if rec.seq_lo() != h
                            || last_ack.is_some_and(|a| rec.seq_hi().at_or_before(a))
                        {
                            stimulus_since_ack = true; // gap, overlap or old data
                        }
                        if rec.seq_hi().after(h) {
                            in_order_hi = Some(rec.seq_hi());
                        }
                    }
                    None => in_order_hi = Some(rec.seq_hi()),
                }
            }
            Dir::ReceiverToSender if rec.is_pure_ack() => {
                if Some(rec.tcp.ack) == last_ack
                    && rec.tcp.window == last_win
                    && !stimulus_since_ack
                {
                    out.push(DropEvidence {
                        check: DropCheck::DupAckWithoutStimulus,
                        index: i,
                        detail: format!("dup ack {} with no recorded stimulus", rec.tcp.ack),
                    });
                }
                last_ack = Some(rec.tcp.ack);
                last_win = rec.tcp.window;
                stimulus_since_ack = false;
            }
            _ => {}
        }
    }
}

fn check_silent_receiver(conn: &Connection, out: &mut Vec<DropEvidence>) {
    let recs = &conn.records;
    let mut run_start: Option<(usize, tcpa_trace::Time)> = None;
    let mut run_len = 0usize;
    for (i, (dir, rec)) in recs.iter().enumerate() {
        match dir {
            Dir::SenderToReceiver if rec.is_data() => {
                if run_start.is_none() {
                    run_start = Some((i, rec.ts));
                }
                run_len += 1;
                if let Some((start, t0)) = run_start {
                    if run_len >= SILENT_MIN_PKTS && rec.ts - t0 > SILENT_SPAN {
                        out.push(DropEvidence {
                            check: DropCheck::SilentReceiver,
                            index: start,
                            detail: format!(
                                "{run_len} data packets over {} with no ack records",
                                rec.ts - t0
                            ),
                        });
                        run_start = Some((i, rec.ts));
                        run_len = 0;
                    }
                }
            }
            Dir::ReceiverToSender if rec.tcp.flags.ack() => {
                run_start = None;
                run_len = 0;
            }
            _ => {}
        }
    }
}

fn check_ack_regression(conn: &Connection, out: &mut Vec<DropEvidence>) {
    let mut max_ack: Option<SeqNum> = None;
    for (i, (dir, rec)) in conn.records.iter().enumerate() {
        if *dir != Dir::ReceiverToSender || !rec.is_pure_ack() {
            continue;
        }
        if let Some(m) = max_ack {
            if rec.tcp.ack.before(m) {
                out.push(DropEvidence {
                    check: DropCheck::AckRegression,
                    index: i,
                    detail: format!("receiver ack went back from {m} to {}", rec.tcp.ack),
                });
            }
        }
        max_ack = Some(match max_ack {
            Some(m) => m.max(rec.tcp.ack),
            None => rec.tcp.ack,
        });
    }
}

fn check_ident_gap(conn: &Connection, dir: Dir, out: &mut Vec<DropEvidence>) {
    // Only meaningful when the host's ident stream is otherwise strictly
    // sequential (single-connection host); measure first.
    let idents: Vec<(usize, u16)> = conn
        .records
        .iter()
        .enumerate()
        .filter(|(_, (d, _))| *d == dir)
        .map(|(i, (_, r))| (i, r.ip.ident))
        .collect();
    if idents.len() < 8 {
        return;
    }
    let steps: Vec<u16> = idents
        .windows(2)
        .map(|w| w[1].1.wrapping_sub(w[0].1))
        .collect();
    let sequential = steps.iter().filter(|&&s| s == 1).count();
    if (sequential as f64) < 0.9 * steps.len() as f64 {
        return; // host interleaves other traffic; check unsound
    }
    for (w, &step) in idents.windows(2).zip(&steps) {
        if step > 1 && step < 128 {
            out.push(DropEvidence {
                check: DropCheck::IdentSequenceGap,
                index: w[1].0,
                detail: format!(
                    "ident jumped {} -> {} ({} records missing)",
                    w[0].1,
                    w[1].1,
                    step - 1
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpa_trace::{Time, Trace, TraceRecord};
    use tcpa_wire::{IpProtocol, Ipv4Addr, Ipv4Repr, TcpFlags, TcpRepr};

    fn rec(ts_ms: i64, src: u8, dst: u8, ident: u16, seq: u32, len: u32, ack: u32) -> TraceRecord {
        TraceRecord {
            ts: Time::from_millis(ts_ms),
            ip: Ipv4Repr {
                src: Ipv4Addr::from_host_id(src),
                dst: Ipv4Addr::from_host_id(dst),
                protocol: IpProtocol::Tcp,
                ttl: 64,
                ident,
                payload_len: 20 + len as usize,
            },
            tcp: TcpRepr {
                seq: SeqNum(seq),
                ack: SeqNum(ack),
                flags: TcpFlags::ACK,
                window: 8192,
                ..TcpRepr::new(5000 + u16::from(src), 5000 + u16::from(dst))
            },
            payload_len: len,
            checksum_ok: Some(true),
        }
    }

    fn conn(records: Vec<TraceRecord>) -> Connection {
        let trace: Trace = records.into_iter().collect();
        Connection::split(&trace).remove(0)
    }

    fn kinds(ev: &[DropEvidence]) -> Vec<DropCheck> {
        ev.iter().map(|e| e.check).collect()
    }

    #[test]
    fn clean_connection_has_no_evidence() {
        let c = conn(vec![
            rec(0, 1, 2, 1, 1, 512, 1),
            rec(10, 1, 2, 2, 513, 512, 1),
            rec(50, 2, 1, 1, 1, 0, 1025),
            rec(60, 1, 2, 3, 1025, 512, 1),
            rec(110, 2, 1, 2, 1, 0, 1537),
        ]);
        assert!(detect_drops(&c, Vantage::Sender).is_empty());
        assert!(detect_drops(&c, Vantage::Receiver).is_empty());
    }

    #[test]
    fn ack_of_unseen_data_detected() {
        // The filter missed the record of 513..1025; the ack proves it
        // was sent and received.
        let c = conn(vec![
            rec(0, 1, 2, 1, 1, 512, 1),
            rec(50, 2, 1, 1, 1, 0, 1025), // acks data never recorded
            rec(60, 1, 2, 3, 1025, 512, 1),
        ]);
        let ev = detect_drops(&c, Vantage::Sender);
        assert!(kinds(&ev).contains(&DropCheck::AckOfUnseenData), "{ev:?}");
    }

    #[test]
    fn data_hole_skipped_detected() {
        // 513..1025 never appears but the final ack covers 1537.
        let c = conn(vec![
            rec(0, 1, 2, 1, 1, 512, 1),
            rec(10, 1, 2, 3, 1025, 512, 1),
            rec(80, 2, 1, 1, 1, 0, 1537),
        ]);
        let ev = detect_drops(&c, Vantage::Sender);
        assert!(kinds(&ev).contains(&DropCheck::DataHoleSkipped), "{ev:?}");
    }

    #[test]
    fn genuine_network_drop_is_not_flagged() {
        // Packet 513 lost in the network *after* the filter: the trace
        // records it, the receiver dup-acks, the sender repairs it. No
        // filter drop anywhere.
        let c = conn(vec![
            rec(0, 1, 2, 1, 1, 512, 1),
            rec(5, 1, 2, 2, 513, 512, 1), // recorded, then lost downstream
            rec(10, 1, 2, 3, 1025, 512, 1),
            rec(50, 2, 1, 1, 1, 0, 513),
            rec(55, 2, 1, 2, 1, 0, 513), // dup (stimulated by 1025 arriving)
            rec(200, 1, 2, 4, 513, 512, 1), // retransmission
            rec(260, 2, 1, 3, 1, 0, 1537),
        ]);
        let ev = detect_drops(&c, Vantage::Sender);
        assert!(ev.is_empty(), "{ev:?}");
    }

    #[test]
    fn dup_ack_without_stimulus_flagged_at_receiver() {
        // Receiver vantage: a dup ack appears with no out-of-order
        // arrival recorded — the arrival record was shed by the filter.
        let c = conn(vec![
            rec(0, 1, 2, 1, 1, 512, 1),
            rec(1, 2, 1, 1, 1, 0, 513),
            rec(30, 2, 1, 2, 1, 0, 513), // dup ack, nothing arrived
        ]);
        let ev = detect_drops(&c, Vantage::Receiver);
        assert!(
            kinds(&ev).contains(&DropCheck::DupAckWithoutStimulus),
            "{ev:?}"
        );
        // The same trace seen from the sender proves nothing.
        let ev = detect_drops(&c, Vantage::Sender);
        assert!(!kinds(&ev).contains(&DropCheck::DupAckWithoutStimulus));
    }

    #[test]
    fn dup_ack_with_visible_stimulus_not_flagged() {
        let c = conn(vec![
            rec(0, 1, 2, 1, 1, 512, 1),
            rec(1, 2, 1, 1, 1, 0, 513),
            rec(20, 1, 2, 3, 1025, 512, 1), // out-of-order arrival
            rec(21, 2, 1, 2, 1, 0, 513),    // mandated dup ack
        ]);
        let ev = detect_drops(&c, Vantage::Receiver);
        assert!(
            !kinds(&ev).contains(&DropCheck::DupAckWithoutStimulus),
            "{ev:?}"
        );
    }

    #[test]
    fn silent_receiver_detected() {
        let mut records = vec![];
        for i in 0..6 {
            records.push(rec(i * 400, 1, 2, i as u16 + 1, 1 + 512 * i as u32, 512, 1));
        }
        let c = conn(records);
        let ev = detect_drops(&c, Vantage::Receiver);
        assert!(kinds(&ev).contains(&DropCheck::SilentReceiver), "{ev:?}");
    }

    #[test]
    fn ack_regression_detected_at_receiver_only() {
        let c = conn(vec![
            rec(0, 1, 2, 1, 1, 512, 1),
            rec(10, 2, 1, 1, 1, 0, 513),
            rec(20, 2, 1, 2, 1, 0, 257), // impossible from the emitter
        ]);
        assert!(kinds(&detect_drops(&c, Vantage::Receiver)).contains(&DropCheck::AckRegression));
        assert!(!kinds(&detect_drops(&c, Vantage::Sender)).contains(&DropCheck::AckRegression));
    }

    #[test]
    fn ident_gap_detected_when_stream_sequential() {
        let mut records = vec![];
        let mut ident = 1u16;
        for i in 0..12 {
            if i == 6 {
                ident += 3; // three records vanished
            }
            records.push(rec(i * 10, 1, 2, ident, 1 + 512 * i as u32, 512, 1));
            ident += 1;
        }
        records.push(rec(130, 2, 1, 1, 1, 0, 4097));
        let c = conn(records);
        let ev = detect_drops(&c, Vantage::Sender);
        assert!(kinds(&ev).contains(&DropCheck::IdentSequenceGap), "{ev:?}");
    }

    #[test]
    fn ident_gap_ignored_for_non_sequential_hosts() {
        let mut records = vec![];
        for i in 0..12u32 {
            // Host interleaves other traffic: idents jump around.
            records.push(rec(
                i as i64 * 10,
                1,
                2,
                (i * 37 % 251) as u16,
                1 + 512 * i,
                512,
                1,
            ));
        }
        let c = conn(records);
        let ev = detect_drops(&c, Vantage::Sender);
        assert!(!kinds(&ev).contains(&DropCheck::IdentSequenceGap), "{ev:?}");
    }
}
