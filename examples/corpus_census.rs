// PathSpec scenarios are configured field-by-field from the default so
// each deviation reads as one labelled line.
#![allow(clippy::field_reassign_with_default)]

//! Corpus census: batch-analyze a simulated multi-implementation corpus
//! on every core and print the Table-1-style census.
//!
//! ```sh
//! cargo run --release --example corpus_census [N_TRACES]
//! ```
//!
//! The paper's behavioral catalogues came from ~40,000 traces analyzed in
//! batch. This example generates a small stand-in corpus — a few traces
//! per known implementation over varied paths — then feeds it through
//! `tcpanaly::corpus`, which shards the work across worker threads and
//! merges the per-trace conclusions deterministically: the census printed
//! here is byte-identical to a single-threaded run.

use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles::{all_profiles, reno};
use tcpa_trace::{CorpusItem, Duration, MemorySource};
use tcpanaly::calibrate::Vantage;
use tcpanaly::corpus::{analyze_corpus, CorpusConfig};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);

    // 1. Simulate the corpus: sender-side traces cycling over every
    //    implementation, varying transfer size and path delay with the
    //    trace index so the census has texture.
    let profiles = all_profiles();
    let mut items = Vec::with_capacity(n);
    for i in 0..n {
        let cfg = profiles[i % profiles.len()].clone();
        let mut path = PathSpec::default();
        path.one_way_delay = Duration::from_millis(10 + 20 * (i as i64 % 4));
        // Loss on half the paths: recovery behavior is what separates the
        // implementations; loss-free short transfers underdetermine them.
        if i % 2 == 0 {
            path.loss_data = tcpa_netsim::LossModel::Periodic(7);
        }
        let out = run_transfer(
            cfg.clone(),
            reno(),
            &path,
            (8 + 8 * (i as u64 % 3)) * 1024,
            0xcafe + i as u64,
        );
        items.push(CorpusItem::memory(
            format!("sim/{i:04}-{}", cfg.name),
            out.sender_trace(),
        ));
    }
    println!(
        "simulated {n} sender-side traces across {} implementations",
        profiles.len()
    );

    // 2. Batch-analyze: jobs = 0 means one worker per available CPU.
    let config = CorpusConfig {
        jobs: 0,
        vantage: Vantage::Sender,
        ..CorpusConfig::default()
    };
    println!("analyzing on {} worker(s)...\n", config.effective_jobs());
    let report = analyze_corpus(MemorySource::new(items), &config);

    // 3. The merged census: fingerprint counts, calibration findings,
    //    response-delay statistics — identical for any worker count.
    print!("{}", report.render());
}
