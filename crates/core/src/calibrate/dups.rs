//! Measurement-duplicate detection and removal (§3.1.2).
//!
//! The IRIX 5.2/5.3 filters record each outgoing packet twice. A
//! duplicated *record* is distinguishable from a retransmitted *packet*:
//! the two records carry the same IP `ident` (it is literally the same
//! packet), whereas a retransmission is a new IP datagram with a new
//! ident. tcpanaly discards the *later* copy of each pair — per the paper
//! (and \[Pa97b\]); note Figure 1 shows the later copies carrying accurate
//! Ethernet wire timing while the early copies reflect the OS sourcing
//! rate, so a caller that wants wire-accurate slopes should treat a trace
//! with removed duplicates with care. What matters for behavior analysis
//! is that exactly one record per wire packet survives.

use tcpa_trace::{Time, Trace};

/// One removed duplicate.
#[derive(Debug, Clone)]
pub struct DupRemoval {
    /// Index (in the original trace) of the record that was kept.
    pub kept_index: usize,
    /// Index of the discarded later copy.
    pub removed_index: usize,
    /// Timestamp spread between the two copies.
    pub spread: tcpa_trace::Duration,
}

/// How far apart two records may be and still count as filter copies of
/// one packet (generously above the Figure 1 spreads, well below any
/// plausible RTO).
const DUP_WINDOW: tcpa_trace::Duration = tcpa_trace::Duration::from_millis(80);

/// Removes measurement duplicates, keeping the earlier copy of each pair.
pub fn remove_duplicates(trace: &Trace) -> (Trace, Vec<DupRemoval>) {
    let n = trace.len();
    let mut removed = vec![false; n];
    let mut removals = Vec::new();
    // Quadratic in the duplicate window, linear overall: the inner scan
    // stops at the first record more than DUP_WINDOW away. (Indexing
    // rather than iterators because both endpoints of the pair are
    // mutated in `removed`.)
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        if removed[i] {
            continue;
        }
        let a = &trace.records[i];
        for j in (i + 1)..n {
            if removed[j] {
                continue;
            }
            let b = &trace.records[j];
            if time_gap(a.ts, b.ts) > DUP_WINDOW {
                break;
            }
            let same_packet = a.ip.ident == b.ip.ident
                && a.ip.src == b.ip.src
                && a.ip.dst == b.ip.dst
                && a.tcp.src_port == b.tcp.src_port
                && a.tcp.seq == b.tcp.seq
                && a.tcp.ack == b.tcp.ack
                && a.tcp.flags == b.tcp.flags
                && a.payload_len == b.payload_len;
            if same_packet {
                removed[j] = true;
                removals.push(DupRemoval {
                    kept_index: i,
                    removed_index: j,
                    spread: b.ts - a.ts,
                });
            }
        }
    }
    let clean = trace
        .records
        .iter()
        .enumerate()
        .filter(|(i, _)| !removed[*i])
        .map(|(_, r)| r.clone())
        .collect();
    (clean, removals)
}

fn time_gap(a: Time, b: Time) -> tcpa_trace::Duration {
    (b - a).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpa_trace::{Duration, Time, TraceRecord};
    use tcpa_wire::{IpProtocol, Ipv4Addr, Ipv4Repr, SeqNum, TcpFlags, TcpRepr};

    fn rec(ts_us: i64, ident: u16, seq: u32, len: u32) -> TraceRecord {
        TraceRecord {
            ts: Time::from_micros(ts_us),
            ip: Ipv4Repr {
                src: Ipv4Addr::from_host_id(1),
                dst: Ipv4Addr::from_host_id(2),
                protocol: IpProtocol::Tcp,
                ttl: 64,
                ident,
                payload_len: 20 + len as usize,
            },
            tcp: TcpRepr {
                seq: SeqNum(seq),
                flags: TcpFlags::ACK,
                ..TcpRepr::new(1000, 2000)
            },
            payload_len: len,
            checksum_ok: Some(true),
        }
    }

    #[test]
    fn identical_ident_within_window_removed() {
        let trace: Trace = vec![
            rec(0, 1, 100, 512),
            rec(400, 1, 100, 512), // filter copy, 400 µs later
            rec(1000, 2, 612, 512),
        ]
        .into_iter()
        .collect();
        let (clean, removals) = remove_duplicates(&trace);
        assert_eq!(clean.len(), 2);
        assert_eq!(removals.len(), 1);
        assert_eq!(removals[0].kept_index, 0);
        assert_eq!(removals[0].removed_index, 1);
        assert_eq!(clean.records[0].ts, Time::from_micros(0), "earlier kept");
    }

    #[test]
    fn retransmission_with_new_ident_not_removed() {
        let trace: Trace = vec![rec(0, 1, 100, 512), rec(500, 7, 100, 512)]
            .into_iter()
            .collect();
        let (clean, removals) = remove_duplicates(&trace);
        assert_eq!(clean.len(), 2, "same seq, different ident: a retransmit");
        assert!(removals.is_empty());
    }

    #[test]
    fn far_apart_same_ident_not_removed() {
        // Ident wrapping after 65536 packets can legitimately reuse a
        // value much later; the window guards against that.
        let trace: Trace = vec![rec(0, 1, 100, 512), rec(200_000, 1, 100, 512)]
            .into_iter()
            .collect();
        let (clean, removals) = remove_duplicates(&trace);
        assert_eq!(clean.len(), 2);
        assert!(removals.is_empty());
    }

    #[test]
    fn spread_is_reported() {
        let trace: Trace = vec![rec(0, 3, 0, 100), rec(250, 3, 0, 100)]
            .into_iter()
            .collect();
        let (_, removals) = remove_duplicates(&trace);
        assert_eq!(removals[0].spread, Duration::from_micros(250));
    }

    #[test]
    fn triplicates_collapse_to_one() {
        let trace: Trace = vec![rec(0, 9, 0, 64), rec(100, 9, 0, 64), rec(200, 9, 0, 64)]
            .into_iter()
            .collect();
        let (clean, removals) = remove_duplicates(&trace);
        assert_eq!(clean.len(), 1);
        assert_eq!(removals.len(), 2);
    }
}
