//! The one-call analyzer façade and its aggregate report.

use crate::calibrate::{CalibrationReport, Calibrator, Vantage};
use crate::fingerprint::{
    fingerprint, fingerprint_receiver, FingerprintResult, FitClass, ReceiverFit,
};
use crate::handshake::{analyze_handshake, HandshakeAnalysis};
use crate::receiver::{analyze_receiver, AckClass, ReceiverAnalysis};
use tcpa_trace::{Connection, Trace};

/// Everything tcpanaly concludes about one trace.
#[derive(Debug)]
pub struct AnalysisReport {
    /// Per-connection results, in first-seen order.
    pub connections: Vec<ConnectionReport>,
    /// Trace-level calibration findings (§3).
    pub calibration: CalibrationReport,
}

/// Results for a single connection.
#[derive(Debug)]
pub struct ConnectionReport {
    /// The connection's endpoints, rendered.
    pub description: String,
    /// Candidate implementations ranked by fit (§5, §6.1); empty if the
    /// connection carried no analyzable bulk data.
    pub fingerprint: Vec<FingerprintResult>,
    /// Receiver-side analysis (§7, §9), when data flowed.
    pub receiver: Option<ReceiverAnalysis>,
    /// Receiver-side implementation candidates, consistent first (only
    /// from a receiver vantage).
    pub receiver_fingerprint: Vec<ReceiverFit>,
    /// Connection-establishment (SYN retry) analysis.
    pub handshake: Option<HandshakeAnalysis>,
    /// Trace-derived accounting (packet/byte/retransmission counts).
    pub stats: Option<tcpa_trace::ConnStats>,
}

impl ConnectionReport {
    /// The best-fitting implementation name, if any candidate was close.
    pub fn best_fit(&self) -> Option<&'static str> {
        self.fingerprint
            .first()
            .filter(|r| r.fit == FitClass::Close)
            .map(|r| r.name)
    }
}

/// The analyzer façade: calibrate, split, fingerprint, analyze.
#[derive(Debug, Default)]
pub struct Analyzer {
    vantage: Vantage,
}

impl Analyzer {
    /// An analyzer with an unknown vantage point.
    pub fn new() -> Analyzer {
        Analyzer::default()
    }

    /// Declares the trace captured at the data sender.
    pub fn at_sender() -> Analyzer {
        Analyzer {
            vantage: Vantage::Sender,
        }
    }

    /// Declares the trace captured at the receiver.
    pub fn at_receiver() -> Analyzer {
        Analyzer {
            vantage: Vantage::Receiver,
        }
    }

    /// Infers the vantage point from the trace itself (§3.2): whichever
    /// endpoint answers its stimuli within sub-milliseconds is the one
    /// the filter sat beside. Falls back to unknown when ambiguous.
    pub fn auto(trace: &Trace) -> Analyzer {
        let (clean, _) = Calibrator::new().calibrate(trace);
        let mut votes = (0usize, 0usize);
        for conn in Connection::split(&clean) {
            match crate::calibrate::infer_vantage(&conn).vantage {
                Vantage::Sender => votes.0 += 1,
                Vantage::Receiver => votes.1 += 1,
                Vantage::Unknown => {}
            }
        }
        let vantage = if votes.0 > votes.1 {
            Vantage::Sender
        } else if votes.1 > votes.0 {
            Vantage::Receiver
        } else {
            Vantage::Unknown
        };
        Analyzer { vantage }
    }

    /// The vantage this analyzer assumes.
    pub fn vantage(&self) -> Vantage {
        self.vantage
    }

    /// Runs the full pipeline on a trace.
    ///
    /// Every stage records a wall-clock span into the global
    /// [`tcpa_obs`] registry (and into the per-trace audit trail when
    /// one is active): `stage.calibrate`, `stage.split`, then per
    /// connection `stage.fingerprint`, `stage.receiver`,
    /// `stage.receiver_fingerprint`, `stage.handshake`, `stage.stats`,
    /// all under the umbrella `analyze.total`.
    pub fn analyze(&self, trace: &Trace) -> AnalysisReport {
        let _total = tcpa_obs::span("analyze.total");
        let calibrator = Calibrator {
            vantage: self.vantage,
        };
        let (clean, calibration) =
            tcpa_obs::time("stage.calibrate", || calibrator.calibrate(trace));
        let connections = tcpa_obs::time("stage.split", || Connection::split(&clean))
            .into_iter()
            .map(|conn| self.analyze_connection(&conn))
            .collect();
        AnalysisReport {
            connections,
            calibration,
        }
    }

    fn analyze_connection(&self, conn: &Connection) -> ConnectionReport {
        // The connection key rides on every per-connection span so the
        // exported trace can answer "which connection was this?".
        let key = format!("{} -> {}", conn.sender, conn.receiver);
        let fingerprint = tcpa_obs::time_noted("stage.fingerprint", &key, || match self.vantage {
            // Sender behavior can only be judged from a vantage at or
            // near the sender (§6.1); from elsewhere, network delay
            // between filter and sender poisons the response delays.
            Vantage::Receiver => Vec::new(),
            _ => fingerprint(conn),
        });
        let receiver = tcpa_obs::time_noted("stage.receiver", &key, || match self.vantage {
            Vantage::Sender => None,
            _ => analyze_receiver(conn),
        });
        let receiver_fingerprint =
            tcpa_obs::time_noted("stage.receiver_fingerprint", &key, || match self.vantage {
                Vantage::Receiver => fingerprint_receiver(conn),
                _ => Vec::new(),
            });
        ConnectionReport {
            fingerprint,
            receiver,
            receiver_fingerprint,
            handshake: tcpa_obs::time_noted("stage.handshake", &key, || analyze_handshake(conn)),
            stats: tcpa_obs::time_noted("stage.stats", &key, || tcpa_trace::ConnStats::of(conn)),
            description: key,
        }
    }
}

/// The census writer's single stdout choke point. Everything tcpanaly
/// prints to stdout — census tables, reports, usage — goes through this
/// one call, so the byte-stability contract has exactly one site to
/// audit and the `no-raw-eprintln` lint exactly one call to whitelist.
/// Diagnostics do NOT belong here; route them through the `tcpa_obs`
/// logger, which owns stderr.
pub fn emit_stdout(text: &str) {
    // tcpa-lint: allow(no-raw-eprintln) -- the one sanctioned stdout write: every census/report byte funnels through here
    print!("{text}");
}

impl AnalysisReport {
    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let c = &self.calibration;
        out.push_str("== Calibration (§3) ==\n");
        out.push_str(&format!(
            "  measurement duplicates removed: {}\n  time travel instances: {}\n  resequencing evidence: {}\n  filter-drop evidence: {}\n",
            c.duplicates.len(),
            c.time_travel.len(),
            c.resequencing.len(),
            c.drop_evidence.len()
        ));
        if c.ordering_untrustworthy() {
            out.push_str("  !! event ordering untrustworthy; cause-and-effect suspect\n");
        }
        for conn in &self.connections {
            out.push_str(&format!("\n== Connection {} ==\n", conn.description));
            if let Some(st) = &conn.stats {
                out.push_str(&format!(
                    "  {} data pkts ({} retransmitted, {:.0}%), {} unique bytes in {}, goodput {:.1} KB/s\n",
                    st.data_packets,
                    st.retransmitted_packets,
                    100.0 * st.retransmission_ratio(),
                    st.unique_bytes,
                    st.elapsed(),
                    st.goodput() / 1000.0,
                ));
            }
            if conn.fingerprint.is_empty() {
                out.push_str("  (no sender-side fingerprint from this vantage)\n");
            }
            for r in conn.fingerprint.iter().take(6) {
                let mut delays = r.analysis.response_delays.clone();
                out.push_str(&format!(
                    "  {:<22} {:<18} issues {:>2}  delays p50 {} p90 {}\n",
                    r.name,
                    r.fit.to_string(),
                    r.analysis.issues.len(),
                    delays
                        .median()
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "-".into()),
                    delays
                        .percentile(90.0)
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "-".into()),
                ));
            }
            if let Some(rx) = &conn.receiver {
                out.push_str(&format!(
                    "  receiver: {} delayed / {} normal / {} stretch / {} dup / {} gratuitous acks; policy {:?}\n",
                    rx.count(AckClass::Delayed),
                    rx.count(AckClass::Normal),
                    rx.count(AckClass::Stretch),
                    rx.count(AckClass::Duplicate),
                    rx.count(AckClass::Gratuitous),
                    rx.policy,
                ));
                if !rx.corrupt_arrivals.is_empty() {
                    out.push_str(&format!(
                        "  inferred corrupt arrivals: {}\n",
                        rx.corrupt_arrivals.len()
                    ));
                }
            }
            if !conn.receiver_fingerprint.is_empty() {
                let consistent: Vec<&str> = conn
                    .receiver_fingerprint
                    .iter()
                    .filter(|f| f.consistent)
                    .map(|f| f.name)
                    .collect();
                out.push_str(&format!(
                    "  receiver-side consistent candidates: {}\n",
                    if consistent.is_empty() {
                        "(none)".to_string()
                    } else {
                        consistent.join(", ")
                    }
                ));
            }
            if let Some(h) = &conn.handshake {
                if h.retries() > 0 {
                    out.push_str(&format!(
                        "  handshake: {} SYN retries, initial RTO {}, backoff {:?}\n",
                        h.retries(),
                        h.initial_rto
                            .map(|d| d.to_string())
                            .unwrap_or_else(|| "-".into()),
                        h.shape
                    ));
                }
            }
        }
        out
    }
}
