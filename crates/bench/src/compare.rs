//! `tcpa-bench compare` — diffing two `tcpa-bench/v1` stage-timing
//! documents into a perf verdict.
//!
//! `BENCH_stage_timings.json` is only a trajectory if something reads
//! it: this module compares a committed baseline against a fresh run,
//! prints a deterministic per-scenario delta table, and decides whether
//! any scenario *regressed* — slower by more than
//! [`CompareConfig::threshold_pct`] percent AND more than
//! [`CompareConfig::floor_ms`] milliseconds. Both gates must trip: the
//! percentage alone would flag microsecond jitter on fast scenarios,
//! the floor alone would ignore a big relative slide on a slow one.
//!
//! Output ordering follows the *old* document (the baseline is the
//! contract), with scenarios new to the current run appended — so the
//! table is byte-stable for fixed inputs and diffs cleanly in CI logs.

use crate::TextTable;
use tcpanaly::obs::json::Value;

/// Regression thresholds for one comparison.
#[derive(Debug, Clone, Copy)]
pub struct CompareConfig {
    /// A scenario regresses only when it slows down by more than this
    /// percentage of the baseline…
    pub threshold_pct: f64,
    /// …and by more than this many absolute milliseconds (noise floor).
    pub floor_ms: f64,
}

impl Default for CompareConfig {
    fn default() -> CompareConfig {
        CompareConfig {
            threshold_pct: 25.0,
            floor_ms: 1.0,
        }
    }
}

/// How one scenario moved between the two documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within thresholds.
    Ok,
    /// Slower beyond both the percentage and the floor.
    Regressed,
    /// Faster beyond both the percentage and the floor.
    Improved,
    /// Present only in the new document.
    Added,
    /// Present only in the old document.
    Removed,
}

impl Verdict {
    fn as_str(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Regressed => "REGRESSED",
            Verdict::Improved => "improved",
            Verdict::Added => "added",
            Verdict::Removed => "removed",
        }
    }
}

/// One scenario's delta row.
#[derive(Debug, Clone)]
pub struct DeltaRow {
    /// Scenario slug.
    pub scenario: String,
    /// Baseline wall clock, seconds (`None` for added scenarios).
    pub old_secs: Option<f64>,
    /// Current wall clock, seconds (`None` for removed scenarios).
    pub new_secs: Option<f64>,
    /// The slowest-moving stage between the runs, as supporting
    /// evidence for the wall-clock verdict (empty when unavailable).
    pub hottest_stage: String,
    /// The verdict under the config's thresholds.
    pub verdict: Verdict,
}

/// The full comparison: rows in baseline order, additions appended.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Per-scenario rows.
    pub rows: Vec<DeltaRow>,
    /// The thresholds the verdicts were computed under.
    pub config: CompareConfig,
}

/// One parsed scenario: wall clock plus per-stage total nanoseconds.
struct Scenario {
    elapsed_secs: f64,
    stage_total_ns: Vec<(String, u64)>,
}

fn parse_doc(text: &str, which: &str) -> Result<Vec<(String, Scenario)>, String> {
    crate::timing::validate(text).map_err(|e| format!("{which}: {e}"))?;
    let doc = Value::parse(text).map_err(|e| format!("{which}: {e}"))?;
    let mut out = Vec::new();
    for s in doc
        .get("scenarios")
        .and_then(Value::as_arr)
        .unwrap_or(&[])
        .iter()
    {
        let slug = s
            .get("scenario")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();
        let elapsed_secs = s
            .get("elapsed_secs")
            .and_then(Value::as_f64)
            .unwrap_or_default();
        let stage_total_ns = s
            .get("stages")
            .and_then(Value::as_obj)
            .map(|stages| {
                stages
                    .iter()
                    .map(|(name, h)| {
                        (
                            name.clone(),
                            h.get("total_ns").and_then(Value::as_u64).unwrap_or(0),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        if out.iter().any(|(existing, _)| *existing == slug) {
            return Err(format!("{which}: duplicate scenario {slug:?}"));
        }
        out.push((
            slug,
            Scenario {
                elapsed_secs,
                stage_total_ns,
            },
        ));
    }
    Ok(out)
}

/// The stage whose total moved the most between the runs, signed.
fn hottest_stage(old: &Scenario, new: &Scenario) -> String {
    let mut best: Option<(i128, &str)> = None;
    for (name, new_ns) in &new.stage_total_ns {
        let old_ns = old
            .stage_total_ns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0);
        let delta = *new_ns as i128 - old_ns as i128;
        if best.map(|(d, _)| delta.abs() > d.abs()).unwrap_or(true) {
            best = Some((delta, name));
        }
    }
    match best {
        Some((delta, name)) if delta != 0 => {
            format!(
                "{name} {}{:.1} ms",
                sign(delta as f64),
                delta.abs() as f64 / 1e6
            )
        }
        _ => String::new(),
    }
}

fn sign(v: f64) -> &'static str {
    if v < 0.0 {
        "-"
    } else {
        "+"
    }
}

/// Compares two `tcpa-bench/v1` documents. Errors are parse/schema
/// problems; threshold verdicts live in the returned report.
pub fn compare(
    old_text: &str,
    new_text: &str,
    config: CompareConfig,
) -> Result<CompareReport, String> {
    let old = parse_doc(old_text, "old document")?;
    let new = parse_doc(new_text, "new document")?;
    let floor_secs = config.floor_ms / 1e3;
    let mut rows = Vec::new();
    for (slug, old_s) in &old {
        let row = match new.iter().find(|(n, _)| n == slug) {
            None => DeltaRow {
                scenario: slug.clone(),
                old_secs: Some(old_s.elapsed_secs),
                new_secs: None,
                hottest_stage: String::new(),
                verdict: Verdict::Removed,
            },
            Some((_, new_s)) => {
                let delta = new_s.elapsed_secs - old_s.elapsed_secs;
                let pct = if old_s.elapsed_secs > 0.0 {
                    100.0 * delta / old_s.elapsed_secs
                } else if delta > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                };
                let verdict = if delta > floor_secs && pct > config.threshold_pct {
                    Verdict::Regressed
                } else if -delta > floor_secs && -pct > config.threshold_pct {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                };
                DeltaRow {
                    scenario: slug.clone(),
                    old_secs: Some(old_s.elapsed_secs),
                    new_secs: Some(new_s.elapsed_secs),
                    hottest_stage: hottest_stage(old_s, new_s),
                    verdict,
                }
            }
        };
        rows.push(row);
    }
    for (slug, new_s) in &new {
        if !old.iter().any(|(o, _)| o == slug) {
            rows.push(DeltaRow {
                scenario: slug.clone(),
                old_secs: None,
                new_secs: Some(new_s.elapsed_secs),
                hottest_stage: String::new(),
                verdict: Verdict::Added,
            });
        }
    }
    Ok(CompareReport { rows, config })
}

impl CompareReport {
    /// `true` when any scenario regressed beyond the thresholds.
    pub fn has_regressions(&self) -> bool {
        self.rows.iter().any(|r| r.verdict == Verdict::Regressed)
    }

    /// Renders the deterministic delta table plus a one-line summary.
    pub fn render(&self) -> String {
        let secs = |v: Option<f64>| match v {
            Some(s) => format!("{:.3}", s),
            None => "-".to_string(),
        };
        let mut table = TextTable::new(&[
            "scenario",
            "old s",
            "new s",
            "delta",
            "hottest stage",
            "verdict",
        ]);
        for row in &self.rows {
            let delta = match (row.old_secs, row.new_secs) {
                (Some(old), Some(new)) => {
                    let d = new - old;
                    let pct = if old > 0.0 {
                        format!(" ({}{:.0}%)", sign(d), (100.0 * d / old).abs())
                    } else {
                        String::new()
                    };
                    format!("{}{:.3}s{pct}", sign(d), d.abs())
                }
                _ => "-".to_string(),
            };
            table.row(vec![
                row.scenario.clone(),
                secs(row.old_secs),
                secs(row.new_secs),
                delta,
                row.hottest_stage.clone(),
                row.verdict.as_str().to_string(),
            ]);
        }
        let regressed = self
            .rows
            .iter()
            .filter(|r| r.verdict == Verdict::Regressed)
            .count();
        let mut out = table.render();
        out.push_str(&format!(
            "{} scenarios, {} regressed (threshold {:.0}%, floor {:.1} ms)\n",
            self.rows.len(),
            regressed,
            self.config.threshold_pct,
            self.config.floor_ms,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &[(&str, f64, u64)]) -> String {
        let scenarios: Vec<String> = rows
            .iter()
            .map(|(slug, secs, stage_ns)| {
                format!(
                    r#"{{"scenario": "{slug}", "section": "S", "elapsed_secs": {secs},
                        "counters": {{}},
                        "stages": {{"stage.calibrate": {{"count": 1, "total_ns": {stage_ns},
                          "p50_ns": 0, "p90_ns": 0, "p99_ns": 0, "max_ns": 0}}}}}}"#
                )
            })
            .collect();
        format!(
            r#"{{"schema": "tcpa-bench/v1", "scenarios": [{}]}}"#,
            scenarios.join(", ")
        )
    }

    #[test]
    fn flags_regressions_beyond_both_gates() {
        let old = doc(&[("a", 1.0, 1_000_000), ("b", 0.0001, 100)]);
        // a: +50% and +500ms — regressed. b: +900% but under the 1ms
        // floor — noise, not a regression.
        let new = doc(&[("a", 1.5, 1_400_000_000), ("b", 0.001, 100)]);
        let report = compare(&old, &new, CompareConfig::default()).expect("compare");
        assert!(report.has_regressions());
        assert_eq!(report.rows[0].verdict, Verdict::Regressed);
        assert_eq!(report.rows[1].verdict, Verdict::Ok);
        let table = report.render();
        assert!(table.contains("REGRESSED"), "{table}");
        assert!(table.contains("stage.calibrate +1399.0 ms"), "{table}");
        assert!(table.contains("1 regressed"), "{table}");
    }

    #[test]
    fn improvements_additions_and_removals_do_not_gate() {
        let old = doc(&[("gone", 2.0, 10), ("fast", 2.0, 10)]);
        let new = doc(&[("fast", 0.5, 10), ("fresh", 1.0, 10)]);
        let report = compare(&old, &new, CompareConfig::default()).expect("compare");
        assert!(!report.has_regressions());
        let verdicts: Vec<Verdict> = report.rows.iter().map(|r| r.verdict).collect();
        assert_eq!(
            verdicts,
            vec![Verdict::Removed, Verdict::Improved, Verdict::Added]
        );
    }

    #[test]
    fn identical_documents_are_all_ok() {
        let d = doc(&[("a", 1.0, 5), ("b", 2.0, 7)]);
        let report = compare(&d, &d, CompareConfig::default()).expect("compare");
        assert!(!report.has_regressions());
        assert!(report.rows.iter().all(|r| r.verdict == Verdict::Ok));
        // Byte-determinism: rendering twice is identical.
        assert_eq!(report.render(), report.render());
    }

    #[test]
    fn schema_problems_are_errors() {
        let good = doc(&[("a", 1.0, 5)]);
        assert!(compare("{}", &good, CompareConfig::default()).is_err());
        assert!(compare(&good, "not json", CompareConfig::default()).is_err());
        let dup = doc(&[("a", 1.0, 5), ("a", 1.0, 5)]);
        let err = compare(&dup, &good, CompareConfig::default()).expect_err("dup");
        assert!(err.contains("duplicate"), "{err}");
    }
}
