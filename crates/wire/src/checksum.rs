//! The Internet checksum (RFC 1071) used by IPv4, TCP and ICMP.
//!
//! The checksum is the 16-bit ones'-complement of the ones'-complement sum
//! of the data, taken in big-endian 16-bit words with an implicit zero pad
//! byte when the length is odd.

/// Incremental ones'-complement accumulator.
///
/// Sections of a packet (pseudo-header, header, payload) can be folded in
/// one after another; [`Checksum::finish`] produces the final checksum
/// field value.
///
/// ```
/// use tcpa_wire::checksum::Checksum;
/// let mut ck = Checksum::new();
/// ck.add_bytes(&[0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7]);
/// assert_eq!(ck.finish(), !0xddf2u16);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Creates an accumulator with a zero running sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds a byte slice into the running sum. Odd-length slices are
    /// padded with a zero byte, per RFC 1071; callers must therefore only
    /// pass odd-length slices as the *final* section.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for chunk in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Folds one big-endian 16-bit word into the running sum.
    pub fn add_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Folds a 32-bit value as two 16-bit words.
    pub fn add_u32(&mut self, word: u32) {
        self.add_u16((word >> 16) as u16);
        self.add_u16(word as u16);
    }

    /// Reduces the running sum and returns the checksum field value
    /// (the complement of the folded sum).
    pub fn finish(mut self) -> u16 {
        while self.sum > 0xffff {
            self.sum = (self.sum & 0xffff) + (self.sum >> 16);
        }
        !(self.sum as u16)
    }
}

/// Computes the checksum of a single contiguous buffer.
pub fn checksum(data: &[u8]) -> u16 {
    let mut ck = Checksum::new();
    ck.add_bytes(data);
    ck.finish()
}

/// Verifies a buffer whose checksum field is *included* in `data`.
///
/// A correct buffer folds to `0xffff` before complementing, i.e. the
/// computed checksum over the whole buffer is zero.
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_reference_vector() {
        // Example from RFC 1071 §3: words 0001 f203 f4f5 f6f7 sum to ddf2
        // (after folding), so the checksum field is !0xddf2 = 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), !0xab00);
        assert_eq!(checksum(&[0xab, 0x00]), !0xab00);
    }

    #[test]
    fn empty_buffer_checksums_to_all_ones() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn verify_round_trip() {
        let mut data = vec![0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06];
        // Insert a checksum so the whole buffer verifies.
        let ck = checksum(&data);
        data.extend_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn incremental_equals_contiguous() {
        let data: Vec<u8> = (0u16..200).map(|i| (i * 7) as u8).collect();
        let mut inc = Checksum::new();
        inc.add_bytes(&data[..100]);
        inc.add_bytes(&data[100..]);
        assert_eq!(inc.finish(), checksum(&data));
    }

    #[test]
    fn carry_folding_handles_saturation() {
        // 40 000 words of 0xffff forces multiple folds.
        let data = vec![0xff; 80_000];
        assert_eq!(checksum(&data), 0);
    }
}
