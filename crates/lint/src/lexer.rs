//! A small hand-rolled Rust token scanner.
//!
//! The lint's rules are *lexical*: they match short token sequences
//! (`.unwrap(`, `HashMap`, `as u32`, …), so a full parse is unnecessary —
//! what *is* necessary is never mistaking the inside of a string literal,
//! char literal, or comment for code. This lexer gets exactly that right:
//! strings (plain, raw, byte, raw-byte, with escapes), char literals vs.
//! lifetimes, nested block comments, raw identifiers. Everything else is
//! surfaced as identifiers, literals, and punctuation with line/column
//! positions.
//!
//! No `syn`, no proc-macro machinery: the workspace's CI is offline and
//! the gate must not acquire dependencies of its own.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are unescaped: `r#type` →
    /// `type`).
    Ident,
    /// Lifetime (`'a`), label (`'outer`).
    Lifetime,
    /// Numeric literal.
    Num,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// `..`, `..=`, or `...` — distinct because range indexing matters.
    DotDot,
    /// `::` — distinct because path patterns matter.
    PathSep,
    /// Any other single punctuation character.
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// The token text (for `Punct`, the single character).
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

impl Tok {
    /// `true` if this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// `true` if this is the given punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

/// One comment, kept separate from the code token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The lexed file: code tokens and comments, both in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens (comments excluded).
    pub tokens: Vec<Tok>,
    /// Comments (line and block, including doc comments).
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.chars.get(self.i).copied()?;
        self.i += 1;
        if ch == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(ch)
    }
}

fn is_ident_start(ch: char) -> bool {
    ch == '_' || ch.is_alphabetic()
}

fn is_ident_continue(ch: char) -> bool {
    ch == '_' || ch.is_alphanumeric()
}

/// Lexes a Rust source file. Unterminated constructs (a file truncated
/// inside a string, say) consume to end of input rather than erroring:
/// the lint must degrade, not die, on the code it reads.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(ch) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if ch.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if ch == '/' && cur.peek_at(1) == Some('/') {
            let mut text = String::new();
            while let Some(c) = cur.peek() {
                if c == '\n' {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            out.comments.push(Comment { text, line });
            continue;
        }
        if ch == '/' && cur.peek_at(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            while let Some(c) = cur.peek() {
                if c == '/' && cur.peek_at(1) == Some('*') {
                    depth += 1;
                    text.push_str("/*");
                    cur.bump();
                    cur.bump();
                } else if c == '*' && cur.peek_at(1) == Some('/') {
                    depth -= 1;
                    text.push_str("*/");
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(c);
                    cur.bump();
                }
            }
            out.comments.push(Comment { text, line });
            continue;
        }
        // Raw strings and byte/raw-byte/C strings: r"…", r#"…"#, br"…",
        // b"…", c"…". Also raw identifiers r#ident.
        if is_ident_start(ch) {
            // Check the string-literal prefixes before treating the run
            // as an identifier.
            if let Some(tok) = try_prefixed_string(&mut cur, line, col) {
                out.tokens.push(tok);
                continue;
            }
            // Raw identifier r#name.
            if ch == 'r'
                && cur.peek_at(1) == Some('#')
                && cur.peek_at(2).is_some_and(is_ident_start)
            {
                cur.bump(); // r
                cur.bump(); // #
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
                continue;
            }
            let mut text = String::new();
            while let Some(c) = cur.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        // Plain string literal.
        if ch == '"' {
            let text = consume_quoted(&mut cur);
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text,
                line,
                col,
            });
            continue;
        }
        // Char literal vs lifetime.
        if ch == '\'' {
            if let Some(tok) = consume_char_or_lifetime(&mut cur, line, col) {
                out.tokens.push(tok);
            }
            continue;
        }
        // Numbers.
        if ch.is_ascii_digit() {
            let mut text = String::new();
            while let Some(c) = cur.peek() {
                if is_ident_continue(c) {
                    text.push(c);
                    cur.bump();
                } else if c == '.'
                    && cur.peek_at(1) != Some('.')
                    && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit())
                    && !text.contains('.')
                {
                    // One decimal point, never a range (`0..n`).
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Num,
                text,
                line,
                col,
            });
            continue;
        }
        // Multi-char puncts the rules care about.
        if ch == '.' && cur.peek_at(1) == Some('.') {
            cur.bump();
            cur.bump();
            let mut text = String::from("..");
            if cur.peek() == Some('=') || cur.peek() == Some('.') {
                text.push(cur.bump().unwrap_or('=')); // peeked above; never None
            }
            out.tokens.push(Tok {
                kind: TokKind::DotDot,
                text,
                line,
                col,
            });
            continue;
        }
        if ch == ':' && cur.peek_at(1) == Some(':') {
            cur.bump();
            cur.bump();
            out.tokens.push(Tok {
                kind: TokKind::PathSep,
                text: "::".into(),
                line,
                col,
            });
            continue;
        }
        // Everything else: single punct.
        cur.bump();
        out.tokens.push(Tok {
            kind: TokKind::Punct,
            text: ch.to_string(),
            line,
            col,
        });
    }
    out
}

/// Consumes `"…"` with escape handling; the opening quote is at the
/// cursor. Returns the literal including quotes.
fn consume_quoted(cur: &mut Cursor) -> String {
    let mut text = String::new();
    text.push(cur.bump().unwrap_or('"')); // opening quote
    while let Some(c) = cur.peek() {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        text.push(c);
        cur.bump();
        if c == '"' {
            break;
        }
    }
    text
}

/// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"` starting at an
/// identifier-start character. Returns `None` when the cursor is not at
/// a prefixed string (and consumes nothing in that case).
fn try_prefixed_string(cur: &mut Cursor, line: u32, col: u32) -> Option<Tok> {
    let c0 = cur.peek()?;
    // Possible prefixes: r, b, c, br, rb (rb is not legal Rust but cheap
    // to accept), each followed by optional #s then a quote.
    let mut raw = false;
    let mut ahead;
    match c0 {
        'r' => {
            raw = true;
            ahead = 1;
            if cur.peek_at(1) == Some('b') {
                ahead = 2;
            }
        }
        'b' | 'c' => {
            ahead = 1;
            if cur.peek_at(1) == Some('r') {
                raw = true;
                ahead = 2;
            }
        }
        _ => return None,
    }
    let mut hashes = 0usize;
    while raw && cur.peek_at(ahead + hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek_at(ahead + hashes) != Some('"') {
        return None;
    }
    if !raw && hashes > 0 {
        return None;
    }
    // Byte char literal (b'x') is handled by the char path, not here.
    let mut text = String::new();
    for _ in 0..ahead + hashes + 1 {
        if let Some(c) = cur.bump() {
            text.push(c);
        }
    }
    if raw {
        // Consume until `"` followed by `hashes` hashes.
        while let Some(c) = cur.peek() {
            if c == '"' {
                let mut ok = true;
                for k in 0..hashes {
                    if cur.peek_at(1 + k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..1 + hashes {
                        if let Some(c) = cur.bump() {
                            text.push(c);
                        }
                    }
                    break;
                }
            }
            text.push(c);
            cur.bump();
        }
    } else {
        // Cooked string with escapes; the opening quote is consumed.
        while let Some(c) = cur.peek() {
            if c == '\\' {
                text.push(c);
                cur.bump();
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
                continue;
            }
            text.push(c);
            cur.bump();
            if c == '"' {
                break;
            }
        }
    }
    Some(Tok {
        kind: TokKind::Str,
        text,
        line,
        col,
    })
}

/// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal). The
/// opening quote is at the cursor.
fn consume_char_or_lifetime(cur: &mut Cursor, line: u32, col: u32) -> Option<Tok> {
    // A char literal is '\…' or 'X' followed by a closing quote; a
    // lifetime is ' followed by an identifier and no closing quote.
    let next = cur.peek_at(1);
    let is_char = match next {
        Some('\\') => true,
        Some(c) if is_ident_start(c) => cur.peek_at(2) == Some('\''),
        Some(_) => true, // '(' , '1' etc: must be a char literal
        None => false,
    };
    if is_char {
        let mut text = String::new();
        text.push(cur.bump()?); // '
        while let Some(c) = cur.peek() {
            if c == '\\' {
                text.push(c);
                cur.bump();
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
                continue;
            }
            text.push(c);
            cur.bump();
            if c == '\'' {
                break;
            }
        }
        Some(Tok {
            kind: TokKind::Char,
            text,
            line,
            col,
        })
    } else {
        let mut text = String::new();
        text.push(cur.bump()?); // '
        while let Some(c) = cur.peek() {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            cur.bump();
        }
        Some(Tok {
            kind: TokKind::Lifetime,
            text,
            line,
            col,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let x = "a.unwrap() // not code"; y.unwrap();"#;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "y", "unwrap"]);
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = r##"let s = r#"panic!("inner")"#; real();"##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "real"]);
    }

    #[test]
    fn comments_are_separated() {
        let src = "// fake.unwrap()\nx.unwrap(); /* block\npanic!() */ done();";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        let ids: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ids, vec!["x", "unwrap", "done"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn ranges_are_dotdot_not_number_soup() {
        let src = "let s = &b[1..n]; let t = 0..=9; let f = 1.5;";
        let lexed = lex(src);
        let dotdots = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::DotDot)
            .count();
        assert_eq!(dotdots, 2);
        assert!(lexed.tokens.iter().any(|t| t.text == "1.5"));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("a\n  b");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn raw_identifiers_unescape() {
        let ids = idents("let r#type = 1;");
        assert_eq!(ids, vec!["let", "type"]);
    }

    #[test]
    fn path_sep_is_a_single_token() {
        let lexed = lex("std::env::args()");
        let seps = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::PathSep)
            .count();
        assert_eq!(seps, 2);
    }
}
