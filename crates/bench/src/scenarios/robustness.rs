//! Robustness — salvage-mode batch analysis of a deliberately damaged
//! corpus.
//!
//! §3 of the paper is blunt about real measurement data: traces arrive
//! truncated, resequenced and corrupted, and an unattended analyzer must
//! degrade gracefully rather than die. This scenario simulates a corpus,
//! injects the file-level fault taxonomy (`tcpa_trace::mangle`) into a
//! seeded fraction of the captures, and batch-analyzes the result under
//! `DegradePolicy::Salvage`. The contracts checked:
//!
//! * **zero panics** — no fault kind may crash a worker;
//! * **full accounting** — every item is analyzed, salvaged or carries a
//!   typed failure, and every damaged capture's skipped bytes are tallied;
//! * **determinism** — the merged census is byte-identical for any worker
//!   count, damaged corpus or not;
//! * **strict mode** — the same corpus under `DegradePolicy::Strict`
//!   aborts instead of degrading.

use crate::{Section, TextTable};
use tcpa_netsim::rng::SplitMix64;
use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles::all_profiles;
use tcpa_trace::mangle::{mangle, FaultKind, MangleSpec};
use tcpa_trace::{pcap_io, CorpusItem, Duration, MemorySource};
use tcpa_wire::TsResolution;
use tcpanaly::calibrate::Vantage;
use tcpanaly::corpus::{analyze_corpus, CorpusConfig, DegradePolicy};

/// Corpus size for the full `repro_all` run.
pub const CORPUS_SIZE: usize = 1000;

/// Fraction of the corpus that gets mangled (≥ the 10% acceptance floor).
const FAULT_NUMERATOR: usize = 1;
const FAULT_DENOMINATOR: usize = 5;

/// Simulates `n` traces, writes each to pcap bytes, and mangles every
/// fifth one with 1–2 seeded faults cycling through the full taxonomy.
fn damaged_corpus(n: usize) -> (Vec<CorpusItem>, usize) {
    let profiles = all_profiles();
    let mut rng = SplitMix64::new(0xfa17_c0de);
    let mut items = Vec::with_capacity(n);
    let mut damaged = 0;
    for i in 0..n {
        let cfg = profiles[i % profiles.len()].clone();
        let path = PathSpec {
            one_way_delay: Duration::from_millis(10 + 20 * (i as i64 % 4)),
            ..PathSpec::default()
        };
        let out = run_transfer(
            cfg.clone(),
            tcpa_tcpsim::profiles::reno(),
            &path,
            12 * 1024,
            0xbad5eed + i as u64,
        );
        let bytes = pcap_io::write_pcap(&out.sender_trace(), Vec::new(), TsResolution::Micro, 0)
            .expect("write capture");
        let (bytes, label) = if i % FAULT_DENOMINATOR < FAULT_NUMERATOR {
            let spec = MangleSpec {
                seed: rng.next_u64(),
                faults: 1 + (i / FAULT_DENOMINATOR) % 2,
                kinds: FaultKind::ALL.to_vec(),
            };
            let (mangled, faults) = mangle(&bytes, &spec);
            if !faults.is_empty() {
                damaged += 1;
            }
            (mangled, format!("dmg/{i:04}-{}", cfg.name))
        } else {
            (bytes, format!("ok/{i:04}-{}", cfg.name))
        };
        items.push(CorpusItem::pcap_bytes(label, bytes));
    }
    (items, damaged)
}

fn config(jobs: usize, degrade: DegradePolicy) -> CorpusConfig {
    CorpusConfig {
        jobs,
        vantage: Vantage::Sender,
        degrade,
        ..CorpusConfig::default()
    }
}

/// Runs the scenario on an `n`-trace corpus (tests use a small `n`; the
/// `repro_all` entry point uses [`CORPUS_SIZE`]).
pub fn run_with(n: usize) -> Section {
    let (items, damaged) = damaged_corpus(n);
    // Floor of 4 so the determinism check is meaningful on small hosts.
    let jobs = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .max(4);

    // Salvage policy: serial vs parallel, must agree byte-for-byte.
    let serial = analyze_corpus(
        MemorySource::new(items.clone()),
        &config(1, DegradePolicy::Salvage),
    );
    let parallel = analyze_corpus(
        MemorySource::new(items.clone()),
        &config(jobs, DegradePolicy::Salvage),
    );
    let identical = serial.render() == parallel.render();
    let c = &parallel.census;
    let accounted = c.analyzed + c.salvaged + c.failed() == n;

    // Strict policy on the same damaged corpus must abort.
    let strict = analyze_corpus(
        MemorySource::new(items),
        &config(jobs, DegradePolicy::Strict),
    );

    let mut table = TextTable::new(&["metric", "value"]);
    table.row(vec!["corpus size".into(), n.to_string()]);
    table.row(vec!["captures mangled".into(), damaged.to_string()]);
    table.row(vec!["salvaged".into(), c.salvaged.to_string()]);
    table.row(vec!["analyzed clean".into(), c.analyzed.to_string()]);
    table.row(vec!["failed".into(), c.failed().to_string()]);
    table.row(vec!["panics".into(), c.panics.to_string()]);
    table.row(vec!["damaged regions".into(), c.damage_regions.to_string()]);
    table.row(vec!["bytes skipped".into(), c.bytes_skipped.to_string()]);
    let mut body = table.render();
    body.push('\n');
    body.push_str(&parallel.render());

    let ok = identical && accounted && c.panics == 0 && c.salvaged > 0 && strict.aborted;
    Section {
        id: "Robustness".into(),
        title: "salvage-mode batch analysis of a damaged corpus".into(),
        paper_claim: "real measurement data is imperfect (§3): traces arrive \
                      truncated and corrupted, and tcpanaly had to analyze \
                      them anyway, accounting for every measurement error it \
                      could not remove."
            .into(),
        params: format!(
            "{n} simulated traces, {damaged} mangled with the §3 file-level \
             fault taxonomy (seeded), analyzed with --degrade=salvage on 1 \
             and {jobs} workers, then with --degrade=strict"
        ),
        body,
        measured: vec![
            ("panics".into(), c.panics.to_string()),
            ("salvaged traces".into(), c.salvaged.to_string()),
            (
                "census byte-identical (1 vs N workers)".into(),
                identical.to_string(),
            ),
            ("every item accounted".into(), accounted.to_string()),
            ("strict mode aborted".into(), strict.aborted.to_string()),
        ],
        verdict: if ok {
            format!(
                "REPRODUCED: {} of {n} damaged captures salvaged with zero \
                 panics, deterministic census, full damage accounting; \
                 strict mode aborts as specified.",
                c.salvaged
            )
        } else if c.panics > 0 {
            format!("FAILED: {} worker panics on damaged captures", c.panics)
        } else if !identical {
            "FAILED: salvage census depends on worker count".into()
        } else if !strict.aborted {
            "FAILED: strict policy did not abort on a damaged corpus".into()
        } else {
            format!(
                "PARTIAL: accounting incomplete ({} + {} + {} != {n})",
                c.analyzed,
                c.salvaged,
                c.failed()
            )
        },
    }
}

/// The `repro_all` entry point at full corpus size.
pub fn run() -> Section {
    run_with(CORPUS_SIZE)
}

#[cfg(test)]
mod tests {
    #[test]
    fn robustness_scenario_reproduces_small() {
        let s = super::run_with(50);
        assert!(
            s.verdict.starts_with("REPRODUCED"),
            "{}\n{}",
            s.verdict,
            s.body
        );
    }
}
