//! Corpus trace sources — the supply side of batch analysis.
//!
//! The paper's catalogues were built from ~40,000 traces; anything at that
//! scale needs a uniform way to enumerate work without loading every
//! capture up front. A [`TraceSource`] hands out [`CorpusItem`]s one at a
//! time; each item carries a stable label and a [`TraceInput`] that is
//! *loaded by the worker that claims it*, so file I/O and pcap decoding
//! parallelize along with the analysis itself.

use crate::pcap_io;
use crate::record::Trace;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};

/// One unit of corpus work: a labelled, possibly not-yet-loaded trace.
#[derive(Debug, Clone)]
pub struct CorpusItem {
    /// Stable label (file path or synthetic name) used in reports.
    pub id: String,
    /// Where the trace bytes come from.
    pub input: TraceInput,
}

/// Where a corpus item's packets come from.
#[derive(Debug, Clone)]
pub enum TraceInput {
    /// An already-loaded trace (simulated corpora, tests).
    Memory(Trace),
    /// A pcap file, opened and decoded by the worker that claims the item.
    PcapFile(PathBuf),
    /// Fault injection: panics on load. Exists so the pipeline's
    /// panic-isolation guarantee (one poisoned trace must cost one item,
    /// not the whole run) stays testable without a real analyzer bug.
    Poison,
}

impl CorpusItem {
    /// An item wrapping an in-memory trace.
    pub fn memory(id: impl Into<String>, trace: Trace) -> CorpusItem {
        CorpusItem {
            id: id.into(),
            input: TraceInput::Memory(trace),
        }
    }

    /// An item naming a pcap file; the path doubles as the label.
    pub fn pcap(path: impl Into<PathBuf>) -> CorpusItem {
        let path = path.into();
        CorpusItem {
            id: path.display().to_string(),
            input: TraceInput::PcapFile(path),
        }
    }

    /// A poisoned item whose load panics (fault injection for tests).
    pub fn poison(id: impl Into<String>) -> CorpusItem {
        CorpusItem {
            id: id.into(),
            input: TraceInput::Poison,
        }
    }
}

impl TraceInput {
    /// Materializes the trace, doing any file I/O and pcap decoding on the
    /// calling thread. Errors are strings: the pipeline reports them
    /// per-item rather than aborting the batch.
    pub fn load(self) -> Result<Trace, String> {
        match self {
            TraceInput::Memory(trace) => Ok(trace),
            TraceInput::PcapFile(path) => {
                let file =
                    std::fs::File::open(&path).map_err(|e| format!("{}: {e}", path.display()))?;
                pcap_io::read_pcap(std::io::BufReader::new(file))
                    .map(|(trace, _skipped)| trace)
                    .map_err(|e| format!("{}: {e:?}", path.display()))
            }
            TraceInput::Poison => panic!("poisoned corpus item loaded"),
        }
    }
}

/// A pull-based supply of corpus items.
///
/// Implementations must be `Send`: the batch pipeline moves the source
/// behind a mutex shared by its workers. `next_item` should be cheap —
/// return paths or handles and let [`TraceInput::load`] do the heavy
/// lifting on the claiming worker.
pub trait TraceSource: Send {
    /// Total number of items, when known up front (sizes progress output).
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// The next item, or `None` when the corpus is exhausted.
    fn next_item(&mut self) -> Option<CorpusItem>;
}

/// A source over a pre-built list of items.
#[derive(Debug, Default)]
pub struct MemorySource {
    items: VecDeque<CorpusItem>,
}

impl MemorySource {
    /// A source yielding `items` in order.
    pub fn new(items: Vec<CorpusItem>) -> MemorySource {
        MemorySource {
            items: items.into(),
        }
    }

    /// A source over explicit pcap paths, in the order given.
    pub fn from_pcap_files<P: Into<PathBuf>>(paths: Vec<P>) -> MemorySource {
        MemorySource::new(paths.into_iter().map(CorpusItem::pcap).collect())
    }

    /// A source over every `*.pcap` in `dir` (non-recursive), sorted by
    /// file name so corpus order — and therefore the merged report — is
    /// independent of directory-listing order.
    pub fn from_pcap_dir(dir: impl AsRef<Path>) -> std::io::Result<MemorySource> {
        let dir = dir.as_ref();
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_file() && p.extension().map(|e| e == "pcap").unwrap_or(false))
            .collect();
        paths.sort();
        Ok(MemorySource::from_pcap_files(paths))
    }
}

impl TraceSource for MemorySource {
    fn len_hint(&self) -> Option<usize> {
        Some(self.items.len())
    }

    fn next_item(&mut self) -> Option<CorpusItem> {
        self.items.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_source_yields_in_order() {
        let mut src = MemorySource::new(vec![
            CorpusItem::memory("a", Trace::new()),
            CorpusItem::memory("b", Trace::new()),
        ]);
        assert_eq!(src.len_hint(), Some(2));
        assert_eq!(src.next_item().unwrap().id, "a");
        assert_eq!(src.next_item().unwrap().id, "b");
        assert!(src.next_item().is_none());
    }

    #[test]
    fn missing_pcap_is_a_load_error_not_a_panic() {
        let item = CorpusItem::pcap("/nonexistent/never.pcap");
        assert!(item.input.load().is_err());
    }

    #[test]
    #[should_panic(expected = "poisoned corpus item")]
    fn poison_panics_on_load() {
        let _ = CorpusItem::poison("bad").input.load();
    }

    #[test]
    fn dir_listing_is_sorted_and_filtered() {
        let dir = std::env::temp_dir().join(format!("tcpa_src_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["b.pcap", "a.pcap", "notes.txt"] {
            std::fs::write(dir.join(name), b"x").unwrap();
        }
        let mut src = MemorySource::from_pcap_dir(&dir).unwrap();
        assert_eq!(src.len_hint(), Some(2));
        assert!(src.next_item().unwrap().id.ends_with("a.pcap"));
        assert!(src.next_item().unwrap().id.ends_with("b.pcap"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
