//! Trace calibration (§3): finding and coping with measurement error
//! before any behavioral conclusion is drawn.

pub mod drops;
pub mod dups;
pub mod reseq;
pub mod timing;
pub mod vantage;

use tcpa_trace::{Connection, Trace};

pub use drops::{DropCheck, DropEvidence, Vantage};
pub use dups::DupRemoval;
pub use reseq::ReseqEvidence;
pub use timing::TimeTravel;
pub use vantage::{infer_vantage, VantageInference};

/// Aggregate calibration result for one trace.
#[derive(Debug, Clone, Default)]
pub struct CalibrationReport {
    /// Measurement duplicates found and removed (§3.1.2).
    pub duplicates: Vec<DupRemoval>,
    /// Timestamp decreases (§3.1.4).
    pub time_travel: Vec<TimeTravel>,
    /// Resequencing evidence (§3.1.3).
    pub resequencing: Vec<ReseqEvidence>,
    /// Filter-drop evidence from the self-consistency checks (§3.1.1).
    pub drop_evidence: Vec<DropEvidence>,
}

impl CalibrationReport {
    /// `true` when no measurement error of any kind was detected.
    pub fn is_clean(&self) -> bool {
        self.duplicates.is_empty()
            && self.time_travel.is_empty()
            && self.resequencing.is_empty()
            && self.drop_evidence.is_empty()
    }

    /// `true` when the trace's event *ordering* cannot be trusted for
    /// cause-and-effect analysis (§3.1.3: resequencing "destroys any
    /// ready assessment of cause-and-effect").
    pub fn ordering_untrustworthy(&self) -> bool {
        !self.resequencing.is_empty() || !self.time_travel.is_empty()
    }
}

/// Runs all calibration stages on a trace, returning the *cleaned* trace
/// (duplicates removed) alongside the report.
#[derive(Debug, Clone, Default)]
pub struct Calibrator {
    /// Where the filter sat; gates the vantage-specific drop checks.
    pub vantage: Vantage,
}

impl Calibrator {
    /// A calibrator with an unknown vantage point (only vantage-neutral
    /// checks run).
    pub fn new() -> Calibrator {
        Calibrator::default()
    }

    /// A calibrator for a trace captured at the data sender.
    pub fn at_sender() -> Calibrator {
        Calibrator {
            vantage: Vantage::Sender,
        }
    }

    /// A calibrator for a trace captured at the receiver.
    pub fn at_receiver() -> Calibrator {
        Calibrator {
            vantage: Vantage::Receiver,
        }
    }

    /// Calibrates a trace: removes measurement duplicates, then runs every
    /// detector on the cleaned trace.
    pub fn calibrate(&self, trace: &Trace) -> (Trace, CalibrationReport) {
        let (clean, duplicates) = dups::remove_duplicates(trace);
        let time_travel = timing::detect_time_travel(&clean);
        let mut report = CalibrationReport {
            duplicates,
            time_travel,
            resequencing: Vec::new(),
            drop_evidence: Vec::new(),
        };
        for conn in Connection::split(&clean) {
            report
                .resequencing
                .extend(reseq::detect_resequencing(&conn));
            report
                .drop_evidence
                .extend(drops::detect_drops(&conn, self.vantage));
        }
        (clean, report)
    }
}
