//! Companion scenario: the `tcpa-lint` workspace gate, timed.
//!
//! Not a paper artifact — this times the static-analysis pass that
//! guards the reproduction's determinism contract, so regressions in
//! lint wall-clock (it runs on every CI push) show up in
//! `BENCH_stage_timings.json` next to the analysis stages it protects.

use crate::Section;
use std::path::Path;

/// Lints the whole workspace in-process and reports the gate verdict
/// plus corpus size. `repro_all` supplies the wall-clock measurement.
pub fn run() -> Section {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (body, measured, verdict) = match tcpa_lint::check_workspace(&root) {
        Ok(report) => {
            let verdict = if report.is_clean() {
                "Reproduced: the workspace satisfies its own determinism/no-panic/logging contract."
                    .to_string()
            } else {
                "NOT clean: the workspace has unsuppressed lint findings.".to_string()
            };
            let measured = vec![
                (
                    "files checked".to_string(),
                    report.files_checked.to_string(),
                ),
                ("findings".to_string(), report.findings.len().to_string()),
                (
                    "justified allows".to_string(),
                    report.allowed.len().to_string(),
                ),
            ];
            (report.render_human(), measured, verdict)
        }
        Err(e) => (
            format!("lint gate unavailable: {e}\n"),
            vec![],
            "SKIPPED: Lint.toml not reachable from this build location.".to_string(),
        ),
    };
    Section {
        id: "Static analysis".into(),
        title: "tcpa-lint workspace gate".into(),
        paper_claim: "The analysis is deterministic and degrades instead of dying; \
                      this workspace enforces both statically on every commit."
            .into(),
        params: "cargo run -p tcpa-lint -- check (in-process), deny-by-default, \
                 scoped by Lint.toml"
            .into(),
        body,
        measured,
        verdict,
    }
}
