//! Timestamp sanity: "time travel" detection (§3.1.4).
//!
//! Packet filters write records in order; their timestamps should never
//! decrease. When they do, the filter host's clock was set backwards
//! between two records — the paper found more than 500 such instances,
//! all on BSDI 1.1 / NetBSD 1.0 tracing hosts whose fast clocks were
//! periodically yanked back by synchronization.
//!
//! (Forward steps are nearly indistinguishable from elevated network
//! delay in a single trace and need paired sender/receiver timing, per
//! \[Pa97b\]; this reproduction, like tcpanaly's single-trace check,
//! reports backward steps only.)

use tcpa_trace::{Duration, Trace};

/// One observed backward timestamp step.
#[derive(Debug, Clone)]
pub struct TimeTravel {
    /// Index of the record whose timestamp precedes its predecessor's.
    pub index: usize,
    /// Magnitude of the decrease (positive).
    pub magnitude: Duration,
}

/// Scans for decreasing timestamps.
pub fn detect_time_travel(trace: &Trace) -> Vec<TimeTravel> {
    trace
        .records
        .windows(2)
        .enumerate()
        .filter_map(|(i, w)| {
            let delta = w[1].ts - w[0].ts;
            if delta.is_negative() {
                Some(TimeTravel {
                    index: i + 1,
                    magnitude: -delta,
                })
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpa_trace::{Time, TraceRecord};
    use tcpa_wire::{IpProtocol, Ipv4Addr, Ipv4Repr, TcpRepr};

    fn rec(ts_us: i64) -> TraceRecord {
        TraceRecord {
            ts: Time::from_micros(ts_us),
            ip: Ipv4Repr {
                src: Ipv4Addr::from_host_id(1),
                dst: Ipv4Addr::from_host_id(2),
                protocol: IpProtocol::Tcp,
                ttl: 64,
                ident: 0,
                payload_len: 20,
            },
            tcp: TcpRepr::new(1, 2),
            payload_len: 0,
            checksum_ok: None,
        }
    }

    #[test]
    fn monotone_trace_is_clean() {
        let trace: Trace = [0, 10, 20, 20, 30].iter().map(|&t| rec(t)).collect();
        assert!(
            detect_time_travel(&trace).is_empty(),
            "equal stamps are fine"
        );
    }

    #[test]
    fn each_decrease_reported_with_magnitude() {
        let trace: Trace = [0, 100, 70, 80, 75].iter().map(|&t| rec(t)).collect();
        let tt = detect_time_travel(&trace);
        assert_eq!(tt.len(), 2);
        assert_eq!(tt[0].index, 2);
        assert_eq!(tt[0].magnitude, Duration::from_micros(30));
        assert_eq!(tt[1].index, 4);
        assert_eq!(tt[1].magnitude, Duration::from_micros(5));
    }

    #[test]
    fn empty_and_singleton_traces() {
        assert!(detect_time_travel(&Trace::new()).is_empty());
        let one: Trace = [5].iter().map(|&t| rec(t)).collect();
        assert!(detect_time_travel(&one).is_empty());
    }
}
