//! IPv4 headers (RFC 791) with checksum generation and verification.
//!
//! Options are accepted on parse (skipped via IHL) but never emitted; the
//! simulators send option-free 20-byte headers, matching the traces the
//! paper analyzed.

use crate::checksum;
use crate::{Result, WireError};
use core::fmt;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// Builds an address from four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr([a, b, c, d])
    }

    /// A test-network (RFC 5737) address derived from a small host id:
    /// `192.0.2.<id>`.
    pub const fn from_host_id(id: u8) -> Ipv4Addr {
        Ipv4Addr([192, 0, 2, id])
    }

    /// The address as a big-endian `u32`, as used in checksums.
    pub fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// IP protocol numbers this crate understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17) — recognized but unused by the simulators.
    Udp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(v: IpProtocol) -> u8 {
        match v {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(other) => other,
        }
    }
}

/// Length of an option-free IPv4 header in bytes.
pub const HEADER_LEN: usize = 20;

/// A decoded IPv4 header (options, if any, are skipped and not retained).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Time-to-live.
    pub ttl: u8,
    /// Identification field (used by some TCPs as a packet counter; tcpanaly
    /// uses it to tell retransmitted *packets* from duplicated *records*).
    pub ident: u16,
    /// Payload length in bytes (total length minus header length).
    pub payload_len: usize,
}

impl Ipv4Repr {
    /// Parses the header from the front of `packet`, verifying the header
    /// checksum, and returns the header and the payload slice.
    ///
    /// The payload slice is truncated to `payload_len` if the buffer
    /// carries trailing padding (common with Ethernet minimum-size frames).
    pub fn parse(packet: &[u8]) -> Result<(Ipv4Repr, &[u8])> {
        if packet.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let version = packet[0] >> 4;
        if version != 4 {
            return Err(WireError::BadValue);
        }
        let ihl = usize::from(packet[0] & 0x0f) * 4;
        if ihl < HEADER_LEN || packet.len() < ihl {
            return Err(WireError::BadLength);
        }
        if !checksum::verify(&packet[..ihl]) {
            return Err(WireError::BadChecksum);
        }
        let total_len = usize::from(u16::from_be_bytes([packet[2], packet[3]]));
        if total_len < ihl || total_len > packet.len() {
            return Err(WireError::BadLength);
        }
        let repr = Ipv4Repr {
            src: Ipv4Addr([packet[12], packet[13], packet[14], packet[15]]),
            dst: Ipv4Addr([packet[16], packet[17], packet[18], packet[19]]),
            protocol: packet[9].into(),
            ttl: packet[8],
            ident: u16::from_be_bytes([packet[4], packet[5]]),
            payload_len: total_len - ihl,
        };
        Ok((repr, &packet[ihl..total_len]))
    }

    /// Like [`Ipv4Repr::parse`], but tolerates a payload truncated by a
    /// capture snap length: the total-length field may exceed the buffer,
    /// and the returned payload slice is whatever was captured. The header
    /// itself must still be complete and checksum-correct.
    pub fn parse_lenient(packet: &[u8]) -> Result<(Ipv4Repr, &[u8])> {
        if packet.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let version = packet[0] >> 4;
        if version != 4 {
            return Err(WireError::BadValue);
        }
        let ihl = usize::from(packet[0] & 0x0f) * 4;
        if ihl < HEADER_LEN || packet.len() < ihl {
            return Err(WireError::BadLength);
        }
        if !checksum::verify(&packet[..ihl]) {
            return Err(WireError::BadChecksum);
        }
        let total_len = usize::from(u16::from_be_bytes([packet[2], packet[3]]));
        if total_len < ihl {
            return Err(WireError::BadLength);
        }
        let repr = Ipv4Repr {
            src: Ipv4Addr([packet[12], packet[13], packet[14], packet[15]]),
            dst: Ipv4Addr([packet[16], packet[17], packet[18], packet[19]]),
            protocol: packet[9].into(),
            ttl: packet[8],
            ident: u16::from_be_bytes([packet[4], packet[5]]),
            payload_len: total_len - ihl,
        };
        let end = total_len.min(packet.len());
        Ok((repr, &packet[ihl..end]))
    }

    /// Appends the encoded 20-byte header (checksum filled in) to `buf`.
    ///
    /// `self.payload_len` must already reflect the payload that the caller
    /// will append after the header.
    pub fn emit(&self, buf: &mut Vec<u8>) {
        let total_len = (HEADER_LEN + self.payload_len) as u16;
        let start = buf.len();
        buf.push(0x45); // version 4, IHL 5
        buf.push(0); // DSCP/ECN
        buf.extend_from_slice(&total_len.to_be_bytes());
        buf.extend_from_slice(&self.ident.to_be_bytes());
        buf.extend_from_slice(&[0x40, 0x00]); // flags: DF, fragment offset 0
        buf.push(self.ttl);
        buf.push(self.protocol.into());
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(&self.src.0);
        buf.extend_from_slice(&self.dst.0);
        let ck = checksum::checksum(&buf[start..start + HEADER_LEN]);
        buf[start + 10..start + 12].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Repr {
        Ipv4Repr {
            src: Ipv4Addr::from_host_id(1),
            dst: Ipv4Addr::from_host_id(2),
            protocol: IpProtocol::Tcp,
            ttl: 64,
            ident: 0x1234,
            payload_len: 8,
        }
    }

    #[test]
    fn round_trip() {
        let repr = sample();
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf.extend_from_slice(&[9, 8, 7, 6, 5, 4, 3, 2]);
        let (parsed, payload) = Ipv4Repr::parse(&buf).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(payload, &[9, 8, 7, 6, 5, 4, 3, 2]);
    }

    #[test]
    fn trailing_padding_is_stripped() {
        let repr = sample();
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf.extend_from_slice(&[1; 8]);
        buf.extend_from_slice(&[0; 18]); // Ethernet pad
        let (_, payload) = Ipv4Repr::parse(&buf).unwrap();
        assert_eq!(payload.len(), 8);
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let repr = sample();
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf[8] ^= 0xff; // flip TTL
        assert_eq!(Ipv4Repr::parse(&buf).unwrap_err(), WireError::BadChecksum);
    }

    #[test]
    fn non_v4_rejected() {
        let repr = sample();
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        buf[0] = 0x65; // version 6
        assert_eq!(Ipv4Repr::parse(&buf).unwrap_err(), WireError::BadValue);
    }

    #[test]
    fn bad_total_length_rejected() {
        let repr = sample();
        let mut buf = Vec::new();
        repr.emit(&mut buf);
        // total length claims 28 bytes but buffer only has the header
        assert_eq!(Ipv4Repr::parse(&buf).unwrap_err(), WireError::BadLength);
    }

    #[test]
    fn ihl_with_options_skipped() {
        // Hand-build a 24-byte header (IHL=6) with a NOP-padded option area.
        let mut buf = vec![
            0x46, 0x00, 0x00, 0x1c, // v4 ihl6, len 28
            0x00, 0x01, 0x40, 0x00, // ident 1, DF
            0x40, 0x06, 0x00, 0x00, // ttl 64, tcp, ck placeholder
            192, 0, 2, 1, // src
            192, 0, 2, 2, // dst
            0x01, 0x01, 0x01, 0x01, // four NOP options
        ];
        let ck = checksum::checksum(&buf);
        buf[10..12].copy_from_slice(&ck.to_be_bytes());
        buf.extend_from_slice(&[0xaa; 4]);
        let (repr, payload) = Ipv4Repr::parse(&buf).unwrap();
        assert_eq!(repr.payload_len, 4);
        assert_eq!(payload, &[0xaa; 4]);
    }
}
