//! Congestion-window arithmetic as pure functions of a [`TcpConfig`].
//!
//! These rules are consumed twice: by [`crate::endpoint::TcpEndpoint`]
//! when *generating* traffic, and by the `tcpanaly` crate when *replaying*
//! a trace to compute data liberations (§6.1). Keeping them pure and in
//! one place is this reproduction's equivalent of the paper's "1,400 lines
//! of C++ concerning the behavior of the different TCPs".

use crate::config::{CwndIncrease, FastRecovery, QuenchResponse, TcpConfig};
use tcpa_wire::SeqNum;

/// A cap standing in for the "huge value" uninitialized memory provides in
/// the Net/3 bug (§8.4). One gigabyte: far above any offered window.
pub const HUGE_WINDOW: u64 = 1 << 30;

/// Congestion-control state, shared between simulation and analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct CcState {
    /// Congestion window in bytes.
    pub cwnd: u64,
    /// Slow-start threshold in bytes.
    pub ssthresh: u64,
    /// Consecutive duplicate acks seen.
    pub dup_acks: u32,
    /// In Reno fast recovery.
    pub in_recovery: bool,
    /// `snd_max` at the time recovery was entered; an ack at or beyond it
    /// ends recovery.
    pub recover: SeqNum,
}

impl CcState {
    /// Initial windows at connection establishment (§8.4).
    ///
    /// `peer_sent_mss` is whether the peer's SYN/SYN-ack carried an MSS
    /// option — its absence triggers the Net/3 uninitialized-cwnd bug.
    /// `mss` is the value from [`TcpConfig::cwnd_mss`].
    pub fn at_establishment(cfg: &TcpConfig, mss: u32, peer_sent_mss: bool) -> CcState {
        let (cwnd, ssthresh) = if cfg.uninit_cwnd_bug && !peer_sent_mss {
            (HUGE_WINDOW, HUGE_WINDOW)
        } else {
            let cwnd = u64::from(cfg.initial_cwnd_segs) * u64::from(mss);
            let ssthresh = match cfg.initial_ssthresh_segs {
                Some(segs) => u64::from(segs) * u64::from(mss),
                None => 65_535,
            };
            (cwnd, ssthresh)
        };
        CcState {
            cwnd,
            ssthresh,
            dup_acks: 0,
            in_recovery: false,
            recover: SeqNum::ZERO,
        }
    }

    /// `true` if the next window increase uses slow start (§8.3: the
    /// boundary test is itself a variant).
    pub fn in_slow_start(&self, cfg: &TcpConfig) -> bool {
        if cfg.ss_test_strict {
            self.cwnd < self.ssthresh
        } else {
            self.cwnd <= self.ssthresh
        }
    }

    /// Window opening applied when an ack for new data arrives
    /// (§8.1 Eqn 1 / §8.2 Eqn 2).
    pub fn open_window(&mut self, cfg: &TcpConfig, mss: u32) {
        let mss = u64::from(mss);
        let incr = if self.in_slow_start(cfg) {
            mss
        } else {
            let mut i = mss * mss / self.cwnd.max(1);
            if cfg.cwnd_increase == CwndIncrease::SuperLinear {
                i += mss / 8;
            }
            i.max(1)
        };
        self.cwnd = (self.cwnd + incr).min(HUGE_WINDOW);
    }

    /// The new ssthresh after a loss signal, given the amount of data in
    /// flight (§8.3: rounding and floor are variants).
    pub fn cut_ssthresh(cfg: &TcpConfig, mss: u32, flight: u64) -> u64 {
        let mss = u64::from(mss);
        let mut half = flight / 2;
        if cfg.ssthresh_round_down && mss > 0 {
            half = half / mss * mss;
        }
        half.max(u64::from(cfg.min_ssthresh_segs) * mss)
    }

    /// Fast retransmit fires (dup-ack threshold reached). `flight` is the
    /// lesser of cwnd and the offered window, `snd_max` the highest
    /// sequence sent. Returns `true` if Reno-style recovery was entered
    /// (the caller keeps transmitting on later dups), `false` for
    /// Tahoe-style slow start (the caller resets `snd_nxt`).
    pub fn enter_fast_retransmit(
        &mut self,
        cfg: &TcpConfig,
        mss: u32,
        flight: u64,
        snd_max: SeqNum,
    ) -> bool {
        self.ssthresh = Self::cut_ssthresh(cfg, mss, flight);
        match cfg.fast_recovery {
            FastRecovery::Reno => {
                self.cwnd = self.ssthresh + 3 * u64::from(mss);
                self.in_recovery = true;
                self.recover = snd_max;
                true
            }
            FastRecovery::None | FastRecovery::RareBuggy => {
                // §8.6: Solaris has recovery code but a logic bug keeps it
                // from running; both collapse to Tahoe behavior.
                self.cwnd = u64::from(mss);
                self.in_recovery = false;
                false
            }
        }
    }

    /// An additional dup ack while in Reno recovery inflates the window.
    pub fn recovery_inflate(&mut self, mss: u32) {
        debug_assert!(self.in_recovery);
        self.cwnd = (self.cwnd + u64::from(mss)).min(HUGE_WINDOW);
    }

    /// An ack for new data ends recovery; deflation depends on the §8.3
    /// bug flags.
    pub fn exit_recovery(&mut self, cfg: &TcpConfig, mss: u32) {
        debug_assert!(self.in_recovery);
        self.in_recovery = false;
        if cfg.header_prediction_bug {
            // The fast path skipped the deflation entirely: cwnd stays
            // inflated ([BP95] "failure to shrink the congestion window").
        } else if cfg.fencepost_bug {
            // Off-by-one: deflates, but one segment high.
            self.cwnd = self.ssthresh + u64::from(mss);
        } else {
            self.cwnd = self.ssthresh;
        }
    }

    /// Retransmission timeout: collapse to one segment and halve ssthresh.
    pub fn on_timeout(&mut self, cfg: &TcpConfig, mss: u32, flight: u64) {
        self.ssthresh = Self::cut_ssthresh(cfg, mss, flight);
        self.cwnd = u64::from(mss);
        self.in_recovery = false;
        if cfg.clear_dupacks_on_timeout {
            self.dup_acks = 0;
        }
    }

    /// ICMP source quench received (§6.2).
    pub fn on_quench(&mut self, cfg: &TcpConfig, mss: u32) {
        match cfg.quench_response {
            QuenchResponse::SlowStart => {
                self.cwnd = u64::from(mss);
            }
            QuenchResponse::SlowStartCutSsthresh => {
                self.ssthresh = (self.ssthresh / 2).max(u64::from(mss));
                self.cwnd = u64::from(mss);
            }
            QuenchResponse::CwndDownOneSegment => {
                self.cwnd = self.cwnd.saturating_sub(u64::from(mss)).max(u64::from(mss));
            }
            QuenchResponse::Ignore => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TcpConfig;

    const MSS: u32 = 512;

    fn fresh(cfg: &TcpConfig) -> CcState {
        CcState::at_establishment(cfg, MSS, true)
    }

    #[test]
    fn establishment_defaults() {
        let cfg = TcpConfig::generic_reno();
        let st = fresh(&cfg);
        assert_eq!(st.cwnd, 512);
        assert_eq!(st.ssthresh, 65_535);
    }

    #[test]
    fn net3_bug_requires_missing_mss_option() {
        let mut cfg = TcpConfig::generic_reno();
        cfg.uninit_cwnd_bug = true;
        let with_option = CcState::at_establishment(&cfg, MSS, true);
        assert_eq!(with_option.cwnd, 512, "bug dormant when option present");
        let without = CcState::at_establishment(&cfg, MSS, false);
        assert_eq!(without.cwnd, HUGE_WINDOW);
        assert_eq!(without.ssthresh, HUGE_WINDOW);
    }

    #[test]
    fn linux_style_ssthresh_of_one_segment() {
        let mut cfg = TcpConfig::generic_reno();
        cfg.initial_ssthresh_segs = Some(1);
        let st = fresh(&cfg);
        assert_eq!(st.ssthresh, 512);
        // cwnd == ssthresh: with the non-strict test this is still slow
        // start for exactly one increase...
        assert!(st.in_slow_start(&cfg));
        // ...and with the strict test it is congestion avoidance already.
        cfg.ss_test_strict = true;
        assert!(!st.in_slow_start(&cfg));
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let cfg = TcpConfig::generic_reno();
        let mut st = fresh(&cfg);
        st.open_window(&cfg, MSS);
        assert_eq!(st.cwnd, 1024, "one MSS per ack in slow start");
    }

    #[test]
    fn congestion_avoidance_eqn1_vs_eqn2() {
        let tahoe = TcpConfig::generic_tahoe();
        let reno = TcpConfig::generic_reno();
        let mut st1 = fresh(&tahoe);
        st1.cwnd = 8192;
        st1.ssthresh = 4096;
        let mut st2 = st1.clone();
        st1.open_window(&tahoe, MSS);
        st2.open_window(&reno, MSS);
        assert_eq!(st1.cwnd, 8192 + 512 * 512 / 8192); // Eqn 1
        assert_eq!(st2.cwnd, 8192 + 512 * 512 / 8192 + 512 / 8); // Eqn 2
    }

    #[test]
    fn ca_increase_never_zero() {
        let cfg = TcpConfig::generic_tahoe();
        let mut st = fresh(&cfg);
        st.cwnd = 1 << 20; // mss²/cwnd rounds to 0
        st.ssthresh = 1;
        let before = st.cwnd;
        st.open_window(&cfg, MSS);
        assert_eq!(st.cwnd, before + 1, "minimum 1-byte increase");
    }

    #[test]
    fn ssthresh_cut_floor_and_rounding() {
        let mut cfg = TcpConfig::generic_reno();
        assert_eq!(CcState::cut_ssthresh(&cfg, MSS, 10_000), 5_000);
        cfg.ssthresh_round_down = true;
        assert_eq!(CcState::cut_ssthresh(&cfg, MSS, 10_000), 4_608); // 9*512
        assert_eq!(
            CcState::cut_ssthresh(&cfg, MSS, 100),
            2 * 512,
            "floor of two segments"
        );
        cfg.min_ssthresh_segs = 1;
        assert_eq!(CcState::cut_ssthresh(&cfg, MSS, 100), 512);
    }

    #[test]
    fn reno_fast_retransmit_inflates_then_deflates() {
        let cfg = TcpConfig::generic_reno();
        let mut st = fresh(&cfg);
        st.cwnd = 8192;
        let entered = st.enter_fast_retransmit(&cfg, MSS, 8192, SeqNum(9000));
        assert!(entered);
        assert_eq!(st.ssthresh, 4096);
        assert_eq!(st.cwnd, 4096 + 3 * 512);
        st.recovery_inflate(MSS);
        assert_eq!(st.cwnd, 4096 + 4 * 512);
        st.exit_recovery(&cfg, MSS);
        assert!(!st.in_recovery);
        assert_eq!(st.cwnd, 4096);
    }

    #[test]
    fn tahoe_fast_retransmit_collapses() {
        let cfg = TcpConfig::generic_tahoe();
        let mut st = fresh(&cfg);
        st.cwnd = 8192;
        let entered = st.enter_fast_retransmit(&cfg, MSS, 8192, SeqNum(9000));
        assert!(!entered);
        assert_eq!(st.cwnd, 512);
        assert!(!st.in_recovery);
    }

    #[test]
    fn deflation_bugs_observable() {
        let mut cfg = TcpConfig::generic_reno();
        let mut st = fresh(&cfg);
        st.cwnd = 8192;
        st.enter_fast_retransmit(&cfg, MSS, 8192, SeqNum(9000));
        let inflated = st.cwnd;

        let mut hdr = st.clone();
        cfg.header_prediction_bug = true;
        hdr.exit_recovery(&cfg, MSS);
        assert_eq!(hdr.cwnd, inflated, "header-prediction bug: no deflation");

        cfg.header_prediction_bug = false;
        cfg.fencepost_bug = true;
        let mut fence = st.clone();
        fence.exit_recovery(&cfg, MSS);
        assert_eq!(fence.cwnd, 4096 + 512, "fencepost: one segment high");
    }

    #[test]
    fn timeout_resets_window() {
        let cfg = TcpConfig::generic_reno();
        let mut st = fresh(&cfg);
        st.cwnd = 20_000;
        st.dup_acks = 2;
        st.on_timeout(&cfg, MSS, 20_000);
        assert_eq!(st.cwnd, 512);
        assert_eq!(st.ssthresh, 10_000);
        assert_eq!(st.dup_acks, 0);
    }

    #[test]
    fn dupack_counter_bug_survives_timeout() {
        let mut cfg = TcpConfig::generic_reno();
        cfg.clear_dupacks_on_timeout = false;
        let mut st = fresh(&cfg);
        st.dup_acks = 2;
        st.on_timeout(&cfg, MSS, 4096);
        assert_eq!(st.dup_acks, 2, "§8.3: counter not cleared on timeout");
    }

    #[test]
    fn quench_responses_differ_per_lineage() {
        let mss = MSS;
        let mut bsd = fresh(&TcpConfig::generic_reno());
        bsd.cwnd = 8192;
        bsd.ssthresh = 8000;
        let mut cfg = TcpConfig::generic_reno();
        bsd.on_quench(&cfg, mss);
        assert_eq!(bsd.cwnd, 512);
        assert_eq!(bsd.ssthresh, 8000, "BSD leaves ssthresh alone");

        cfg.quench_response = QuenchResponse::SlowStartCutSsthresh;
        let mut sol = fresh(&cfg);
        sol.cwnd = 8192;
        sol.ssthresh = 8000;
        sol.on_quench(&cfg, mss);
        assert_eq!(sol.cwnd, 512);
        assert_eq!(sol.ssthresh, 4000, "Solaris also halves ssthresh");

        cfg.quench_response = QuenchResponse::CwndDownOneSegment;
        let mut lin = fresh(&cfg);
        lin.cwnd = 8192;
        lin.on_quench(&cfg, mss);
        assert_eq!(lin.cwnd, 8192 - 512, "Linux 1.0 shaves one segment");

        cfg.quench_response = QuenchResponse::Ignore;
        let mut ign = fresh(&cfg);
        ign.cwnd = 8192;
        ign.on_quench(&cfg, mss);
        assert_eq!(ign.cwnd, 8192);
    }
}
