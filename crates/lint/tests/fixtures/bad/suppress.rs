// Bad: suppression attempts that must be reported, not honored.
fn half_hearted(x: Option<u8>) -> u8 {
    // tcpa-lint: allow(no-unwrap-in-analyzer)
    x.unwrap()
}

fn typoed(y: Option<u8>) -> u8 {
    y.unwrap() // tcpa-lint: allow(no-unwraps-anywhere) -- rule name does not exist
}
