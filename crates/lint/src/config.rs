//! `Lint.toml` — per-crate scoping for the rule set.
//!
//! The workspace config is a deliberately small TOML subset, parsed by
//! hand (the offline-CI constraint rules out the `toml` crate, and the
//! config needs nothing fancy):
//!
//! ```toml
//! [workspace]
//! exclude = ["target/", "vendor/"]
//!
//! [rule.no-unwrap-in-analyzer]
//! include = ["crates/core/src/"]          # path-prefix scoping
//! exclude = []
//! index_include = ["crates/core/src/"]    # rule-specific sub-scope
//! ```
//!
//! Supported syntax: `[section]` headers, `key = "string"`,
//! `key = ["array", "of", "strings"]`, `key = true|false`, `#` comments,
//! and nothing else. Unknown sections or keys are an error — a typo in
//! the gate's own config must fail loudly, not silently widen or narrow
//! a rule's scope.

use std::collections::BTreeMap;

/// Scope lists for one rule. Empty `include` means "every file".
#[derive(Debug, Clone, Default)]
pub struct RuleScope {
    /// Path prefixes the rule applies to (empty = all files).
    pub include: Vec<String>,
    /// Path prefixes exempted from the rule.
    pub exclude: Vec<String>,
    /// Rule-specific sub-scopes, keyed by `<name>_include` /
    /// `<name>_exclude` (e.g. the `index_include` of
    /// `no-unwrap-in-analyzer`, the `clock_exclude` of
    /// `determinism-hazards`).
    pub extra: BTreeMap<String, Vec<String>>,
}

impl RuleScope {
    /// `true` when `path` (workspace-relative, `/`-separated) is in the
    /// rule's main scope.
    pub fn applies(&self, path: &str) -> bool {
        in_scope(path, &self.include, &self.exclude)
    }

    /// Evaluates a named sub-scope: `<name>_include` / `<name>_exclude`
    /// layered on top of the main scope. A sub-check with no
    /// `<name>_include` key inherits the rule's `include`.
    pub fn applies_sub(&self, name: &str, path: &str) -> bool {
        let include = self
            .extra
            .get(&format!("{name}_include"))
            .unwrap_or(&self.include);
        let empty = Vec::new();
        let exclude = self.extra.get(&format!("{name}_exclude")).unwrap_or(&empty);
        if !in_scope(path, include, exclude) {
            return false;
        }
        // The rule-wide exclude always applies.
        !self.exclude.iter().any(|p| path.starts_with(p.as_str()))
    }
}

fn in_scope(path: &str, include: &[String], exclude: &[String]) -> bool {
    let included = include.is_empty() || include.iter().any(|p| path.starts_with(p.as_str()));
    included && !exclude.iter().any(|p| path.starts_with(p.as_str()))
}

/// The whole pass's configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path prefixes never walked at all (build artifacts, vendored
    /// stand-ins, the lint's own deliberately-bad fixtures).
    pub walk_exclude: Vec<String>,
    /// Per-rule scopes, keyed by rule name. Rules absent from the config
    /// run with full scope — deny by default.
    pub rules: BTreeMap<String, RuleScope>,
}

impl Config {
    /// The scope for a rule (full scope if the config never mentions it).
    pub fn scope(&self, rule: &str) -> RuleScope {
        self.rules.get(rule).cloned().unwrap_or_default()
    }

    /// Parses the `Lint.toml` subset. `known_rules` guards against
    /// configuring a rule that does not exist.
    pub fn parse(src: &str, known_rules: &[&str]) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section: Option<String> = None;
        for (lineno, line) in logical_lines(src) {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or(format!("Lint.toml:{lineno}: unterminated section header"))?
                    .trim()
                    .to_string();
                if name != "workspace" && !name.starts_with("rule.") {
                    return Err(format!(
                        "Lint.toml:{lineno}: unknown section [{name}] (expected [workspace] or [rule.<name>])"
                    ));
                }
                if let Some(rule) = name.strip_prefix("rule.") {
                    if !known_rules.contains(&rule) {
                        return Err(format!(
                            "Lint.toml:{lineno}: unknown rule {rule:?} (known: {})",
                            known_rules.join(", ")
                        ));
                    }
                    config.rules.entry(rule.to_string()).or_default();
                }
                section = Some(name);
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or(format!("Lint.toml:{lineno}: expected `key = value`"))?;
            let key = key.trim();
            let value =
                parse_value(value.trim()).map_err(|e| format!("Lint.toml:{lineno}: {e}"))?;
            match section.as_deref() {
                Some("workspace") => match (key, value) {
                    ("exclude", Value::Array(paths)) => config.walk_exclude = paths,
                    ("exclude", _) => {
                        return Err(format!(
                            "Lint.toml:{lineno}: workspace.exclude must be a string array"
                        ))
                    }
                    _ => return Err(format!("Lint.toml:{lineno}: unknown workspace key {key:?}")),
                },
                Some(name) if name.starts_with("rule.") => {
                    let rule = name.trim_start_matches("rule.").to_string();
                    let scope = config.rules.entry(rule).or_default();
                    let Value::Array(paths) = value else {
                        return Err(format!(
                            "Lint.toml:{lineno}: rule scopes must be string arrays"
                        ));
                    };
                    match key {
                        "include" => scope.include = paths,
                        "exclude" => scope.exclude = paths,
                        sub if sub.ends_with("_include") || sub.ends_with("_exclude") => {
                            scope.extra.insert(sub.to_string(), paths);
                        }
                        _ => return Err(format!("Lint.toml:{lineno}: unknown rule key {key:?}")),
                    }
                }
                _ => return Err(format!("Lint.toml:{lineno}: key outside any [section]")),
            }
        }
        Ok(config)
    }
}

/// Joins multi-line arrays into single logical lines (comments already
/// stripped), keyed by the line number they start on.
fn logical_lines(src: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut open = 0i32;
    for (idx, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim().to_string();
        let balance = bracket_balance(&line);
        if open > 0 {
            // Continuation of an array opened on an earlier line.
            if let Some(last) = out.last_mut() {
                last.1.push(' ');
                last.1.push_str(&line);
            }
        } else {
            out.push((idx + 1, line));
        }
        open += balance;
    }
    out
}

/// Net `[`/`]` balance outside double-quoted strings.
fn bracket_balance(line: &str) -> i32 {
    let mut balance = 0i32;
    let mut in_str = false;
    for ch in line.chars() {
        match ch {
            '"' => in_str = !in_str,
            '[' if !in_str => balance += 1,
            ']' if !in_str => balance -= 1,
            _ => {}
        }
    }
    balance
}

enum Value {
    Str(String),
    Array(Vec<String>),
    /// Accepted syntactically so a future boolean key gets a good
    /// "must be a string array" error instead of a parse failure.
    Bool,
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '\\' if in_str => {
                escaped = !escaped;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_value(src: &str) -> Result<Value, String> {
    if src == "true" {
        return Ok(Value::Bool);
    }
    if src == "false" {
        return Ok(Value::Bool);
    }
    if let Some(body) = src.strip_prefix('[') {
        let body = body.strip_suffix(']').ok_or("unterminated array")?;
        let mut items = Vec::new();
        for part in split_top_level(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Str(s) => items.push(s),
                _ => return Err("arrays may only contain strings".into()),
            }
        }
        return Ok(Value::Array(items));
    }
    if let Some(body) = src.strip_prefix('"') {
        let body = body.strip_suffix('"').ok_or("unterminated string")?;
        if body.contains('"') {
            return Err("stray quote inside string".into());
        }
        return Ok(Value::Str(body.replace("\\\\", "\\")));
    }
    Err(format!("cannot parse value {src:?}"))
}

/// Splits an array body on commas that sit outside quotes.
fn split_top_level(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for ch in body.chars() {
        match ch {
            '"' => {
                in_str = !in_str;
                cur.push(ch);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    const KNOWN: &[&str] = &["no-unwrap-in-analyzer", "determinism-hazards"];

    #[test]
    fn parses_scopes_and_extras() {
        let src = r#"
# gate config
[workspace]
exclude = ["target/", "vendor/"]

[rule.no-unwrap-in-analyzer]
include = ["crates/core/src/"]  # analyzer only
index_include = ["crates/core/src/receiver.rs"]
"#;
        let c = Config::parse(src, KNOWN).expect("parses");
        assert_eq!(c.walk_exclude, vec!["target/", "vendor/"]);
        let scope = c.scope("no-unwrap-in-analyzer");
        assert!(scope.applies("crates/core/src/sender.rs"));
        assert!(!scope.applies("crates/obs/src/log.rs"));
        assert!(scope.applies_sub("index", "crates/core/src/receiver.rs"));
        assert!(!scope.applies_sub("index", "crates/core/src/sender.rs"));
    }

    #[test]
    fn unmentioned_rule_gets_full_scope() {
        let c = Config::parse("[workspace]\nexclude = []\n", KNOWN).expect("parses");
        assert!(c.scope("determinism-hazards").applies("anything/at/all.rs"));
    }

    #[test]
    fn unknown_rule_or_key_is_an_error() {
        assert!(Config::parse("[rule.no-such-rule]\n", KNOWN).is_err());
        assert!(Config::parse("[workspace]\ntypo = []\n", KNOWN).is_err());
        assert!(Config::parse("stray = 1\n", KNOWN).is_err());
    }

    #[test]
    fn multi_line_arrays_join() {
        let src = "[workspace]\nexclude = [\n    \"vendor/\",  # stand-ins\n    \"target/\",\n]\n";
        let c = Config::parse(src, KNOWN).expect("parses");
        assert_eq!(c.walk_exclude, vec!["vendor/", "target/"]);
    }

    #[test]
    fn sub_scope_inherits_main_include_when_absent() {
        let src = "[rule.determinism-hazards]\ninclude = [\"crates/core/\"]\n";
        let c = Config::parse(src, KNOWN).expect("parses");
        let s = c.scope("determinism-hazards");
        assert!(s.applies_sub("clock", "crates/core/src/lib.rs"));
        assert!(!s.applies_sub("clock", "crates/obs/src/span.rs"));
    }
}
