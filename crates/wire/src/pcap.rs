//! Classic libpcap capture files — the format `tcpdump` writes.
//!
//! The paper's input corpus is tcpdump traces; this module lets the
//! reproduction round-trip its simulated traces through the same container
//! so they can be inspected with standard tools, and lets the analyzer
//! ingest real captures.
//!
//! Both byte orders and both timestamp resolutions (microsecond magic
//! `0xa1b2c3d4`, nanosecond magic `0xa1b23c4d`) are supported on read;
//! writes use little-endian with a caller-chosen resolution.
//!
//! Two readers are provided. [`PcapReader`] is strict: the first malformed
//! byte aborts with a [`PcapError`] naming the damage and its byte offset.
//! [`salvage_records`] is the graceful-degradation path (§3 of the paper:
//! real measurement data is damaged): it classifies each damaged region
//! with a [`FaultKind`], resynchronizes on the next plausible record
//! header, and returns whatever could be recovered together with a
//! [`SalvageSummary`] accounting for every skipped byte.

use std::io::{self, Read, Write};

/// Timestamp resolution of a capture file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsResolution {
    /// Microsecond timestamps (magic `0xa1b2c3d4`).
    Micro,
    /// Nanosecond timestamps (magic `0xa1b23c4d`).
    Nano,
}

impl TsResolution {
    fn magic(self) -> u32 {
        match self {
            TsResolution::Micro => 0xa1b2_c3d4,
            TsResolution::Nano => 0xa1b2_3c4d,
        }
    }

    /// Subsecond units per second at this resolution.
    pub fn units_per_sec(self) -> u64 {
        match self {
            TsResolution::Micro => 1_000_000,
            TsResolution::Nano => 1_000_000_000,
        }
    }
}

/// `LINKTYPE_ETHERNET`, the only link type the simulators emit.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// Captured lengths above this are treated as corrupt rather than
/// allocated (64 MiB; no real link produces frames near this).
pub const MAX_INCL_LEN: u32 = 0x0400_0000;

/// One captured record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture timestamp in nanoseconds since the epoch (normalized from
    /// the file's native resolution).
    pub ts_nanos: u64,
    /// Original packet length on the wire (may exceed `data.len()` when the
    /// capture used a snap length).
    pub orig_len: u32,
    /// The captured bytes.
    pub data: Vec<u8>,
}

/// Errors arising when reading or writing capture files. Every format
/// variant names the damage and carries the byte offset where it was
/// found, so a census failure line can point at the corrupt region.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The capture's magic number is unrecognized.
    BadMagic {
        /// The magic actually found (read little-endian).
        magic: u32,
    },
    /// The file ends inside the 24-byte global header.
    TruncatedGlobalHeader {
        /// Bytes actually present.
        have: usize,
    },
    /// The file ends inside a 16-byte record header.
    TruncatedRecordHeader {
        /// Byte offset of the record header.
        offset: u64,
        /// Header bytes actually present.
        have: usize,
    },
    /// The file ends inside a record's captured data.
    TruncatedRecordData {
        /// Byte offset of the record header.
        offset: u64,
        /// The record's claimed captured length.
        incl_len: u32,
        /// Data bytes actually present.
        have: usize,
    },
    /// A record's `incl_len` is implausibly large (would OOM).
    BadRecordLength {
        /// Byte offset of the record header.
        offset: u64,
        /// The claimed captured length.
        incl_len: u32,
    },
    /// A record's subsecond timestamp field exceeds one second.
    BadTimestamp {
        /// Byte offset of the record header.
        offset: u64,
        /// The out-of-range subsecond value.
        subsec: u32,
    },
    /// The capture's link type is one the decoder cannot parse.
    UnsupportedLinkType {
        /// The link type found in the global header.
        linktype: u32,
    },
}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

impl core::fmt::Display for PcapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap i/o error: {e}"),
            PcapError::BadMagic { magic } => {
                write!(f, "unrecognized capture magic 0x{magic:08x}")
            }
            PcapError::TruncatedGlobalHeader { have } => {
                write!(f, "truncated global header ({have} of 24 bytes)")
            }
            PcapError::TruncatedRecordHeader { offset, have } => {
                write!(
                    f,
                    "truncated record header at byte {offset} ({have} of 16 bytes)"
                )
            }
            PcapError::TruncatedRecordData {
                offset,
                incl_len,
                have,
            } => write!(
                f,
                "record at byte {offset} truncated ({have} of {incl_len} data bytes)"
            ),
            PcapError::BadRecordLength { offset, incl_len } => {
                write!(f, "implausible record length {incl_len} at byte {offset}")
            }
            PcapError::BadTimestamp { offset, subsec } => {
                write!(
                    f,
                    "corrupt timestamp (subsecond field {subsec}) at byte {offset}"
                )
            }
            PcapError::UnsupportedLinkType { linktype } => {
                write!(f, "unsupported link type {linktype}")
            }
        }
    }
}

impl std::error::Error for PcapError {}

/// Byte-order + resolution combination a magic number selects.
#[derive(Debug, Clone, Copy)]
struct Layout {
    swapped: bool,
    resolution: TsResolution,
}

impl Layout {
    fn from_magic(magic_le: u32) -> Option<Layout> {
        let (swapped, resolution) = match magic_le {
            0xa1b2_c3d4 => (false, TsResolution::Micro),
            0xd4c3_b2a1 => (true, TsResolution::Micro),
            0xa1b2_3c4d => (false, TsResolution::Nano),
            0x4d3c_b2a1 => (true, TsResolution::Nano),
            _ => return None,
        };
        Some(Layout {
            swapped,
            resolution,
        })
    }

    fn u32(&self, b: [u8; 4]) -> u32 {
        if self.swapped {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        }
    }
}

/// Streaming reader for classic pcap files (strict: aborts on the first
/// malformed byte, reporting what and where).
pub struct PcapReader<R: Read> {
    inner: R,
    layout: Layout,
    linktype: u32,
    snaplen: u32,
    /// Byte offset of the next unread byte.
    offset: u64,
}

/// Reads as many bytes as the source yields into `buf`, returning the
/// count (unlike `read_exact`, a short read is reported, not an error).
fn read_fully<R: Read>(inner: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut have = 0;
    while have < buf.len() {
        match inner.read(&mut buf[have..]) {
            Ok(0) => break,
            Ok(n) => have += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(have)
}

impl<R: Read> PcapReader<R> {
    /// Opens a capture, consuming and validating the 24-byte global header.
    pub fn new(mut inner: R) -> core::result::Result<Self, PcapError> {
        let mut header = [0u8; 24];
        let have = read_fully(&mut inner, &mut header)?;
        if have < 24 {
            return Err(PcapError::TruncatedGlobalHeader { have });
        }
        let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let layout = Layout::from_magic(magic).ok_or(PcapError::BadMagic { magic })?;
        let snaplen = layout.u32([header[16], header[17], header[18], header[19]]);
        let linktype = layout.u32([header[20], header[21], header[22], header[23]]);
        Ok(PcapReader {
            inner,
            layout,
            linktype,
            snaplen,
            offset: 24,
        })
    }

    /// The file's link type (e.g. [`LINKTYPE_ETHERNET`]).
    pub fn linktype(&self) -> u32 {
        self.linktype
    }

    /// The file's snap length.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// The file's native timestamp resolution.
    pub fn resolution(&self) -> TsResolution {
        self.layout.resolution
    }

    /// Byte offset of the next unread byte (for error reporting).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Reads the next record, or `Ok(None)` at a clean end of file.
    pub fn next_record(&mut self) -> core::result::Result<Option<PcapRecord>, PcapError> {
        let rec_offset = self.offset;
        let mut header = [0u8; 16];
        let have = read_fully(&mut self.inner, &mut header)?;
        if have == 0 {
            return Ok(None);
        }
        if have < 16 {
            return Err(PcapError::TruncatedRecordHeader {
                offset: rec_offset,
                have,
            });
        }
        let ts_sec = self
            .layout
            .u32([header[0], header[1], header[2], header[3]]);
        let ts_sub = self
            .layout
            .u32([header[4], header[5], header[6], header[7]]);
        let incl_len = self
            .layout
            .u32([header[8], header[9], header[10], header[11]]);
        let orig_len = self
            .layout
            .u32([header[12], header[13], header[14], header[15]]);
        if u64::from(ts_sub) >= self.layout.resolution.units_per_sec() {
            return Err(PcapError::BadTimestamp {
                offset: rec_offset,
                subsec: ts_sub,
            });
        }
        if incl_len > MAX_INCL_LEN {
            // Refuse rather than OOM.
            return Err(PcapError::BadRecordLength {
                offset: rec_offset,
                incl_len,
            });
        }
        // Checked, not `as`: on a 16-bit usize the cast would silently
        // truncate the allocation and misalign every later record.
        let alloc = usize::try_from(incl_len).map_err(|_| PcapError::BadRecordLength {
            offset: rec_offset,
            incl_len,
        })?;
        let mut data = vec![0u8; alloc];
        let have = read_fully(&mut self.inner, &mut data)?;
        if have < data.len() {
            return Err(PcapError::TruncatedRecordData {
                offset: rec_offset,
                incl_len,
                have,
            });
        }
        self.offset = rec_offset + 16 + u64::from(incl_len);
        let per_unit = 1_000_000_000 / self.layout.resolution.units_per_sec();
        let ts_nanos = u64::from(ts_sec) * 1_000_000_000 + u64::from(ts_sub) * per_unit;
        Ok(Some(PcapRecord {
            ts_nanos,
            orig_len,
            data,
        }))
    }

    /// Collects every remaining record.
    pub fn read_all(&mut self) -> core::result::Result<Vec<PcapRecord>, PcapError> {
        let mut records = Vec::new();
        while let Some(rec) = self.next_record()? {
            records.push(rec);
        }
        Ok(records)
    }
}

// ---------------------------------------------------------------------------
// Salvage: graceful-degradation reading of damaged captures.
// ---------------------------------------------------------------------------

/// The file-level error taxonomy — the §3 measurement-error classes
/// translated to capture-file damage. The mangler injects these; the
/// salvage reader classifies what it skips with the same vocabulary so
/// tests can assert recovery per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// The file ends inside the 24-byte global header.
    TruncatedGlobalHeader,
    /// The global header's magic number is unrecognized.
    BadMagic,
    /// The file ends inside a 16-byte record header.
    TruncatedRecordHeader,
    /// The file ends inside a record's captured data.
    MidRecordEof,
    /// Garbage bytes spliced between two records.
    GarbageSplice,
    /// A record whose `incl_len` was zeroed, stranding its data bytes.
    ZeroLength,
    /// A record whose `incl_len` is implausibly large.
    OversizedLength,
    /// A record whose subsecond timestamp field exceeds one second.
    CorruptTimestamp,
}

impl FaultKind {
    /// Every fault class, in a stable order (fixture and report order).
    pub const ALL: [FaultKind; 8] = [
        FaultKind::TruncatedGlobalHeader,
        FaultKind::BadMagic,
        FaultKind::TruncatedRecordHeader,
        FaultKind::MidRecordEof,
        FaultKind::GarbageSplice,
        FaultKind::ZeroLength,
        FaultKind::OversizedLength,
        FaultKind::CorruptTimestamp,
    ];

    /// Stable kebab-case label (fixture file names, report rendering).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::TruncatedGlobalHeader => "truncated-global-header",
            FaultKind::BadMagic => "bad-magic",
            FaultKind::TruncatedRecordHeader => "truncated-record-header",
            FaultKind::MidRecordEof => "mid-record-eof",
            FaultKind::GarbageSplice => "garbage-splice",
            FaultKind::ZeroLength => "zero-length",
            FaultKind::OversizedLength => "oversized-length",
            FaultKind::CorruptTimestamp => "corrupt-timestamp",
        }
    }
}

impl core::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// One contiguous damaged byte range the salvage reader skipped.
///
/// The `kind` is the salvage reader's *classification* of why parsing
/// failed at the region's start. Truncation and magic damage classify
/// exactly; damage inside the record stream (garbage, stranded payload
/// bytes) is classified by how its first bytes misparse, which is
/// deterministic but heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DamageRegion {
    /// Byte offset where parsing failed.
    pub offset: u64,
    /// Bytes skipped before parsing resynchronized (or EOF).
    pub len: u64,
    /// Classification of the damage.
    pub kind: FaultKind,
}

/// What [`salvage_records`] recovered and what it had to skip.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SalvageSummary {
    /// Total bytes presented.
    pub bytes_total: u64,
    /// Bytes inside damaged regions (never parsed into a record).
    pub bytes_skipped: u64,
    /// Every damaged region, in file order.
    pub damage: Vec<DamageRegion>,
    /// The global header was unusable; little-endian microsecond layout
    /// and Ethernet framing were assumed.
    pub header_assumed: bool,
    /// Link type (from the header, or [`LINKTYPE_ETHERNET`] if assumed).
    pub linktype: u32,
}

impl SalvageSummary {
    /// `true` when the file parsed without any damage.
    pub fn is_clean(&self) -> bool {
        self.damage.is_empty() && !self.header_assumed
    }
}

/// Cap on how far past a damaged byte the resynchronization scan looks
/// for the next plausible record header. Bounds worst-case work on
/// adversarial input to O(window) per damaged region.
const RESYNC_WINDOW: usize = 4 << 20;

/// Attempts to parse one record at `pos`; on failure classifies why.
fn try_record(bytes: &[u8], pos: usize, layout: Layout) -> Result<(PcapRecord, usize), FaultKind> {
    let rest = bytes.len() - pos;
    if rest < 16 {
        return Err(FaultKind::TruncatedRecordHeader);
    }
    let h = &bytes[pos..pos + 16];
    let ts_sec = layout.u32([h[0], h[1], h[2], h[3]]);
    let ts_sub = layout.u32([h[4], h[5], h[6], h[7]]);
    let incl_len = layout.u32([h[8], h[9], h[10], h[11]]);
    let orig_len = layout.u32([h[12], h[13], h[14], h[15]]);
    if u64::from(ts_sub) >= layout.resolution.units_per_sec() {
        return Err(FaultKind::CorruptTimestamp);
    }
    if incl_len > MAX_INCL_LEN {
        return Err(FaultKind::OversizedLength);
    }
    // Checked conversion: a length that does not fit usize is the same
    // salvage fault as one over the cap, not a silent truncation.
    let len = usize::try_from(incl_len).map_err(|_| FaultKind::OversizedLength)?;
    if rest - 16 < len {
        return Err(FaultKind::MidRecordEof);
    }
    let data = bytes[pos + 16..pos + 16 + len].to_vec();
    let per_unit = 1_000_000_000 / layout.resolution.units_per_sec();
    let ts_nanos = u64::from(ts_sec) * 1_000_000_000 + u64::from(ts_sub) * per_unit;
    Ok((
        PcapRecord {
            ts_nanos,
            orig_len,
            data,
        },
        pos + 16 + len,
    ))
}

/// Largest plausible timestamp jump (one day, either direction) between
/// the last good record and a resync candidate. Packet bytes misparsed as
/// a record header rarely land within a day of the capture's clock, so
/// this filters coincidental parses that would cascade misalignment.
const MAX_TS_JUMP_SECS: u64 = 86_400;

fn ts_plausible(prev_ts_nanos: Option<u64>, candidate_nanos: u64) -> bool {
    match prev_ts_nanos {
        None => true,
        Some(prev) => candidate_nanos.abs_diff(prev) / 1_000_000_000 <= MAX_TS_JUMP_SECS,
    }
}

/// Scans forward for the next byte offset where a plausible record starts.
/// A candidate must parse, sit within [`MAX_TS_JUMP_SECS`] of the last
/// good record's timestamp, *and* chain: the record after it must parse
/// too, or the candidate record must end exactly at EOF.
fn find_resync(
    bytes: &[u8],
    from: usize,
    layout: Layout,
    prev_ts_nanos: Option<u64>,
) -> Option<usize> {
    if bytes.len() < 16 {
        return None;
    }
    let last = (bytes.len() - 16).min(from.saturating_add(RESYNC_WINDOW));
    for o in from..=last {
        if let Ok((rec, next)) = try_record(bytes, o, layout) {
            if !ts_plausible(prev_ts_nanos, rec.ts_nanos) {
                continue;
            }
            if next == bytes.len() || try_record(bytes, next, layout).is_ok() {
                return Some(o);
            }
        }
    }
    None
}

/// Reads every salvageable record from a possibly damaged capture.
///
/// Never fails and never panics: damaged regions are classified with a
/// [`FaultKind`], skipped by scanning for the next plausible record
/// header, and accounted for byte-by-byte in the returned
/// [`SalvageSummary`]. An unrecognized or truncated global header is
/// itself damage — little-endian microsecond layout is then assumed,
/// which recovers the overwhelmingly common case (tcpdump default).
pub fn salvage_records(bytes: &[u8]) -> (Vec<PcapRecord>, SalvageSummary) {
    let mut summary = SalvageSummary {
        bytes_total: bytes.len() as u64,
        linktype: LINKTYPE_ETHERNET,
        ..SalvageSummary::default()
    };
    let mut records = Vec::new();

    // Global header: damaged headers are recorded, then defaults assumed.
    let assumed = Layout {
        swapped: false,
        resolution: TsResolution::Micro,
    };
    let (layout, mut pos) = if bytes.len() < 24 {
        let kind = match bytes.len() >= 4 {
            true if Layout::from_magic(u32::from_le_bytes([
                bytes[0], bytes[1], bytes[2], bytes[3],
            ]))
            .is_some() =>
            {
                FaultKind::TruncatedGlobalHeader
            }
            true => FaultKind::BadMagic,
            false => FaultKind::TruncatedGlobalHeader,
        };
        summary.damage.push(DamageRegion {
            offset: 0,
            len: bytes.len() as u64,
            kind,
        });
        summary.bytes_skipped = bytes.len() as u64;
        summary.header_assumed = true;
        return (records, summary);
    } else {
        let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        match Layout::from_magic(magic) {
            Some(layout) => {
                summary.linktype = layout.u32([bytes[20], bytes[21], bytes[22], bytes[23]]);
                (layout, 24)
            }
            None => {
                summary.damage.push(DamageRegion {
                    offset: 0,
                    len: 4,
                    kind: FaultKind::BadMagic,
                });
                summary.bytes_skipped += 4;
                summary.header_assumed = true;
                (assumed, 24)
            }
        }
    };

    let mut prev_ts_nanos: Option<u64> = None;
    while pos < bytes.len() {
        match try_record(bytes, pos, layout) {
            Ok((rec, next)) => {
                prev_ts_nanos = Some(rec.ts_nanos);
                records.push(rec);
                pos = next;
            }
            Err(kind) => {
                // A corrupt-timestamp header still carries trustworthy
                // length fields: jump the whole record when that lands on
                // another record (or EOF), so false sync points inside its
                // payload cannot cascade misalignment.
                let skip_whole = if kind == FaultKind::CorruptTimestamp {
                    let h = &bytes[pos..pos + 16];
                    let field = layout.u32([h[8], h[9], h[10], h[11]]);
                    // Checked: an unconvertible length disqualifies the
                    // jump instead of truncating to a bogus target.
                    usize::try_from(field).ok().and_then(|incl_len| {
                        let end = pos.saturating_add(16).saturating_add(incl_len);
                        (field <= MAX_INCL_LEN
                            && end <= bytes.len()
                            && (end == bytes.len() || try_record(bytes, end, layout).is_ok()))
                        .then_some(end)
                    })
                } else {
                    None
                };
                match skip_whole.or_else(|| find_resync(bytes, pos + 1, layout, prev_ts_nanos)) {
                    Some(resync) => {
                        summary.damage.push(DamageRegion {
                            offset: pos as u64,
                            len: (resync - pos) as u64,
                            kind,
                        });
                        summary.bytes_skipped += (resync - pos) as u64;
                        pos = resync;
                    }
                    None => {
                        summary.damage.push(DamageRegion {
                            offset: pos as u64,
                            len: (bytes.len() - pos) as u64,
                            kind,
                        });
                        summary.bytes_skipped += (bytes.len() - pos) as u64;
                        break;
                    }
                }
            }
        }
    }
    (records, summary)
}

/// Streaming writer for classic pcap files (little-endian).
pub struct PcapWriter<W: Write> {
    inner: W,
    resolution: TsResolution,
}

impl<W: Write> PcapWriter<W> {
    /// Creates a capture file, emitting the global header.
    pub fn new(
        mut inner: W,
        resolution: TsResolution,
        linktype: u32,
        snaplen: u32,
    ) -> io::Result<Self> {
        inner.write_all(&resolution.magic().to_le_bytes())?;
        inner.write_all(&2u16.to_le_bytes())?; // version major
        inner.write_all(&4u16.to_le_bytes())?; // version minor
        inner.write_all(&0i32.to_le_bytes())?; // thiszone
        inner.write_all(&0u32.to_le_bytes())?; // sigfigs
        inner.write_all(&snaplen.to_le_bytes())?;
        inner.write_all(&linktype.to_le_bytes())?;
        Ok(PcapWriter { inner, resolution })
    }

    /// Appends one record. `ts_nanos` is truncated to the file
    /// resolution. Fails with `InvalidInput` rather than wrapping when a
    /// field does not fit the 32-bit on-disk format (a timestamp past
    /// 2106, or more than 4 GiB of captured data).
    pub fn write_record(&mut self, ts_nanos: u64, orig_len: u32, data: &[u8]) -> io::Result<()> {
        let per_unit = 1_000_000_000 / self.resolution.units_per_sec();
        let ts_sec = u32::try_from(ts_nanos / 1_000_000_000).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("timestamp {ts_nanos}ns overflows the 32-bit pcap seconds field"),
            )
        })?;
        // Subseconds always fit: x % 1e9 / per_unit < units_per_sec <= 1e9.
        let ts_sub = u32::try_from((ts_nanos % 1_000_000_000) / per_unit)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "subsecond field overflow"))?;
        let incl_len = u32::try_from(data.len()).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "record of {} bytes overflows the 32-bit incl_len field",
                    data.len()
                ),
            )
        })?;
        self.inner.write_all(&ts_sec.to_le_bytes())?;
        self.inner.write_all(&ts_sub.to_le_bytes())?;
        self.inner.write_all(&incl_len.to_le_bytes())?;
        self.inner.write_all(&orig_len.to_le_bytes())?;
        self.inner.write_all(data)
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip(resolution: TsResolution) {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, resolution, LINKTYPE_ETHERNET, 65535).unwrap();
            w.write_record(1_500_000_123_456_789_000, 100, &[1, 2, 3])
                .unwrap();
            w.write_record(1_500_000_124_000_000_500, 4, &[9, 9, 9, 9])
                .unwrap();
            w.finish().unwrap();
        }
        let mut r = PcapReader::new(Cursor::new(buf)).unwrap();
        assert_eq!(r.linktype(), LINKTYPE_ETHERNET);
        assert_eq!(r.resolution(), resolution);
        let recs = r.read_all().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].data, vec![1, 2, 3]);
        assert_eq!(recs[0].orig_len, 100);
        match resolution {
            TsResolution::Micro => {
                assert_eq!(recs[0].ts_nanos, 1_500_000_123_456_789_000);
                // sub-µs truncated
                assert_eq!(recs[1].ts_nanos, 1_500_000_124_000_000_000);
            }
            TsResolution::Nano => {
                assert_eq!(recs[1].ts_nanos, 1_500_000_124_000_000_500);
            }
        }
    }

    #[test]
    fn micro_round_trip() {
        round_trip(TsResolution::Micro);
    }

    #[test]
    fn nano_round_trip() {
        round_trip(TsResolution::Nano);
    }

    #[test]
    fn big_endian_file_readable() {
        // Hand-build a big-endian µs file with one empty record.
        let mut buf = Vec::new();
        buf.extend_from_slice(&0xa1b2_c3d4u32.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0i32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&65535u32.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&10u32.to_be_bytes()); // ts_sec
        buf.extend_from_slice(&250_000u32.to_be_bytes()); // ts_usec
        buf.extend_from_slice(&0u32.to_be_bytes()); // incl_len
        buf.extend_from_slice(&60u32.to_be_bytes()); // orig_len
        let mut r = PcapReader::new(Cursor::new(buf)).unwrap();
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.ts_nanos, 10_250_000_000);
        assert_eq!(rec.orig_len, 60);
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn bad_magic_rejected_with_value() {
        let buf = vec![0u8; 24];
        match PcapReader::new(Cursor::new(buf)) {
            Err(PcapError::BadMagic { magic: 0 }) => {}
            Err(other) => panic!("expected BadMagic, got {other:?}"),
            Ok(_) => panic!("expected BadMagic, got a reader"),
        }
    }

    #[test]
    fn truncated_global_header_reports_have() {
        match PcapReader::new(Cursor::new(vec![0xd4u8, 0xc3, 0xb2])) {
            Err(PcapError::TruncatedGlobalHeader { have: 3 }) => {}
            Err(other) => panic!("expected TruncatedGlobalHeader, got {other:?}"),
            Ok(_) => panic!("expected TruncatedGlobalHeader, got a reader"),
        }
    }

    #[test]
    fn truncated_record_reports_offset_and_counts() {
        let mut buf = Vec::new();
        {
            let mut w =
                PcapWriter::new(&mut buf, TsResolution::Micro, LINKTYPE_ETHERNET, 65535).unwrap();
            w.write_record(0, 10, &[0; 10]).unwrap();
            w.finish().unwrap();
        }
        buf.truncate(buf.len() - 3);
        let mut r = PcapReader::new(Cursor::new(buf)).unwrap();
        match r.next_record() {
            Err(PcapError::TruncatedRecordData {
                offset: 24,
                incl_len: 10,
                have: 7,
            }) => {}
            other => panic!("expected TruncatedRecordData, got {other:?}"),
        }
    }

    #[test]
    fn absurd_record_length_rejected_with_offset() {
        let mut buf = Vec::new();
        {
            let w =
                PcapWriter::new(&mut buf, TsResolution::Micro, LINKTYPE_ETHERNET, 65535).unwrap();
            w.finish().unwrap();
        }
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0xffff_ffffu32.to_le_bytes()); // incl_len
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut r = PcapReader::new(Cursor::new(buf)).unwrap();
        match r.next_record() {
            Err(PcapError::BadRecordLength {
                offset: 24,
                incl_len: 0xffff_ffff,
            }) => {}
            other => panic!("expected BadRecordLength, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_subsecond_rejected_with_offset() {
        let mut buf = Vec::new();
        {
            let w =
                PcapWriter::new(&mut buf, TsResolution::Micro, LINKTYPE_ETHERNET, 65535).unwrap();
            w.finish().unwrap();
        }
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&2_000_000u32.to_le_bytes()); // ts_usec >= 1e6
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut r = PcapReader::new(Cursor::new(buf)).unwrap();
        match r.next_record() {
            Err(PcapError::BadTimestamp {
                offset: 24,
                subsec: 2_000_000,
            }) => {}
            other => panic!("expected BadTimestamp, got {other:?}"),
        }
    }

    /// A little-endian µs capture with `n` small records, returned with
    /// the byte offsets of each record header.
    fn small_capture(n: usize) -> (Vec<u8>, Vec<usize>) {
        let mut buf = Vec::new();
        let mut offsets = Vec::new();
        let mut w = PcapWriter::new(&mut buf, TsResolution::Micro, LINKTYPE_ETHERNET, 65535)
            .expect("vec write");
        for i in 0..n {
            let data: Vec<u8> = (0..20 + i as u8).collect();
            w.write_record(i as u64 * 1_000_000_000, data.len() as u32, &data)
                .expect("vec write");
        }
        w.finish().expect("vec write");
        let mut off = 24usize;
        for i in 0..n {
            offsets.push(off);
            off += 16 + 20 + i;
        }
        (buf, offsets)
    }

    #[test]
    fn salvage_on_clean_file_is_lossless() {
        let (buf, _) = small_capture(5);
        let (recs, summary) = salvage_records(&buf);
        assert_eq!(recs.len(), 5);
        assert!(summary.is_clean());
        assert_eq!(summary.bytes_skipped, 0);
        assert_eq!(summary.linktype, LINKTYPE_ETHERNET);
    }

    #[test]
    fn salvage_skips_garbage_between_records() {
        let (buf, offsets) = small_capture(4);
        let mut damaged = buf[..offsets[2]].to_vec();
        damaged.extend_from_slice(&[0xffu8; 37]); // garbage splice
        damaged.extend_from_slice(&buf[offsets[2]..]);
        let (recs, summary) = salvage_records(&damaged);
        assert_eq!(recs.len(), 4, "all real records recovered");
        assert_eq!(summary.damage.len(), 1);
        assert_eq!(summary.damage[0].offset, offsets[2] as u64);
        assert_eq!(summary.damage[0].len, 37);
        assert_eq!(summary.bytes_skipped, 37);
    }

    #[test]
    fn salvage_recovers_after_bad_magic() {
        let (mut buf, _) = small_capture(3);
        buf[0..4].copy_from_slice(&0xdead_beefu32.to_le_bytes());
        let (recs, summary) = salvage_records(&buf);
        assert_eq!(recs.len(), 3, "records readable under assumed layout");
        assert!(summary.header_assumed);
        assert_eq!(summary.damage[0].kind, FaultKind::BadMagic);
    }

    #[test]
    fn salvage_classifies_trailing_truncation() {
        let (buf, offsets) = small_capture(3);
        // Cut inside the last record's data.
        let cut = offsets[2] + 16 + 5;
        let (recs, summary) = salvage_records(&buf[..cut]);
        assert_eq!(recs.len(), 2);
        assert_eq!(summary.damage.len(), 1);
        assert_eq!(summary.damage[0].kind, FaultKind::MidRecordEof);
        assert_eq!(summary.damage[0].offset, offsets[2] as u64);
        // Cut inside the last record's header.
        let cut = offsets[2] + 9;
        let (recs, summary) = salvage_records(&buf[..cut]);
        assert_eq!(recs.len(), 2);
        assert_eq!(summary.damage[0].kind, FaultKind::TruncatedRecordHeader);
    }

    #[test]
    fn salvage_resyncs_past_corrupt_timestamp() {
        let (mut buf, offsets) = small_capture(4);
        // Corrupt record 1's subsecond field (bytes 4..8 of its header).
        buf[offsets[1] + 4..offsets[1] + 8].copy_from_slice(&0xf000_0000u32.to_le_bytes());
        let (recs, summary) = salvage_records(&buf);
        assert_eq!(recs.len(), 3, "only the corrupted record is lost");
        assert_eq!(summary.damage[0].kind, FaultKind::CorruptTimestamp);
        assert_eq!(summary.damage[0].offset, offsets[1] as u64);
    }

    #[test]
    fn salvage_of_empty_and_tiny_inputs() {
        let (recs, summary) = salvage_records(&[]);
        assert!(recs.is_empty());
        assert_eq!(summary.bytes_total, 0);
        let (recs, summary) = salvage_records(&[0xd4, 0xc3, 0xb2, 0xa1, 0x02]);
        assert!(recs.is_empty());
        assert_eq!(summary.damage[0].kind, FaultKind::TruncatedGlobalHeader);
        let (recs, summary) = salvage_records(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(recs.is_empty());
        assert_eq!(summary.damage[0].kind, FaultKind::BadMagic);
    }
}
