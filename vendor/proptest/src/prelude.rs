//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::arbitrary::{any, Any, Arbitrary};
pub use crate::strategy::{DynStrategy, Just, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
