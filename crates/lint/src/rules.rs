//! The rule set. Each rule is a token-sequence matcher over one file,
//! scoped by `Lint.toml` and exempt in test regions.

use crate::config::RuleScope;
use crate::lexer::{Tok, TokKind};
use crate::scope::TestRegions;

/// Rule names, sorted. `Config::parse` validates against this list, and
/// so does the suppression parser.
pub const RULE_NAMES: &[&str] = &[
    "determinism-hazards",
    "lossy-cast-in-parser",
    "no-raw-eprintln",
    "no-unwrap-in-analyzer",
    "thread-spawn-audit",
];

/// Pseudo-rule reported when a suppression comment carries the marker
/// but cannot be parsed. Not in [`RULE_NAMES`]: it cannot be scoped
/// away or allowed.
pub const MALFORMED_RULE: &str = "malformed-suppression";

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule name.
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

/// Everything a rule needs to examine one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Lexed code tokens.
    pub tokens: &'a [Tok],
    /// Detected `#[cfg(test)]` / `#[test]` line ranges.
    pub tests: &'a TestRegions,
    /// Whole file is test scope (`tests/`, `benches/`, `examples/`).
    pub file_is_test: bool,
}

impl FileCtx<'_> {
    fn exempt(&self, line: u32) -> bool {
        self.file_is_test || self.tests.contains(line)
    }

    fn finding(&self, tok: &Tok, rule: &str, message: String) -> Finding {
        Finding {
            path: self.path.to_string(),
            line: tok.line,
            col: tok.col,
            rule: rule.to_string(),
            message,
        }
    }
}

/// Runs every rule whose scope covers `ctx.path`.
pub fn run_all(ctx: &FileCtx<'_>, scope_for: impl Fn(&str) -> RuleScope) -> Vec<Finding> {
    let mut out = Vec::new();
    for &rule in RULE_NAMES {
        let scope = scope_for(rule);
        if !scope.applies(ctx.path) {
            continue;
        }
        match rule {
            "no-unwrap-in-analyzer" => no_unwrap(ctx, &scope, &mut out),
            "no-raw-eprintln" => no_raw_eprintln(ctx, &mut out),
            "determinism-hazards" => determinism_hazards(ctx, &scope, &mut out),
            "lossy-cast-in-parser" => lossy_cast(ctx, &mut out),
            "thread-spawn-audit" => thread_spawn(ctx, &mut out),
            _ => unreachable!("rule list and dispatch table must agree"),
        }
    }
    out
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// `no-unwrap-in-analyzer`: `.unwrap()` / `.expect()`, the panic macro
/// family, and (in the `index` sub-scope) unchecked range slicing — the
/// salvage path must degrade, not die.
fn no_unwrap(ctx: &FileCtx<'_>, scope: &RuleScope, out: &mut Vec<Finding>) {
    let t = ctx.tokens;
    for i in 0..t.len() {
        if ctx.exempt(t[i].line) {
            continue;
        }
        // `.unwrap(` / `.expect(`
        if t[i].is_punct('.')
            && t.get(i + 2).is_some_and(|p| p.is_punct('('))
            && t.get(i + 1)
                .is_some_and(|m| m.is_ident("unwrap") || m.is_ident("expect"))
        {
            let m = &t[i + 1];
            out.push(ctx.finding(
                m,
                "no-unwrap-in-analyzer",
                format!(
                    "`.{}()` on an analyzer path can abort the whole corpus run; \
                     return a typed error instead",
                    m.text
                ),
            ));
            continue;
        }
        // panic! family
        if t[i].kind == TokKind::Ident
            && PANIC_MACROS.contains(&t[i].text.as_str())
            && t.get(i + 1).is_some_and(|p| p.is_punct('!'))
        {
            out.push(ctx.finding(
                &t[i],
                "no-unwrap-in-analyzer",
                format!(
                    "`{}!` in analyzer code kills the process instead of degrading \
                     the one trace that misbehaved",
                    t[i].text
                ),
            ));
            continue;
        }
        // Unchecked range slicing `expr[a..b]` (index sub-scope only).
        if t[i].is_punct('[')
            && i > 0
            && scope.applies_sub("index", ctx.path)
            && is_indexable(&t[i - 1])
        {
            if let Some(close) = matching_square(t, i) {
                let has_range = t[i + 1..close]
                    .iter()
                    .scan(0i32, |depth, tok| {
                        let d = *depth;
                        if tok.is_punct('[') || tok.is_punct('(') {
                            *depth += 1;
                        } else if tok.is_punct(']') || tok.is_punct(')') {
                            *depth -= 1;
                        }
                        Some((d, tok))
                    })
                    .any(|(d, tok)| d == 0 && tok.kind == TokKind::DotDot);
                if has_range {
                    out.push(
                        ctx.finding(
                            &t[i],
                            "no-unwrap-in-analyzer",
                            "unchecked range slice panics when the bounds lie; use `.get(..)` \
                         or prove the bounds in a comment-justified allow"
                                .to_string(),
                        ),
                    );
                }
            }
        }
    }
}

fn is_indexable(prev: &Tok) -> bool {
    prev.kind == TokKind::Ident || prev.is_punct(')') || prev.is_punct(']')
}

fn matching_square(t: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, tok) in t.iter().enumerate().skip(open) {
        if tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// `no-raw-eprintln`: diagnostics must route through the `tcpa-obs`
/// logger, and census stdout through the single `report.rs` choke point —
/// stray prints break stdout byte-stability.
fn no_raw_eprintln(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let t = ctx.tokens;
    for i in 0..t.len() {
        if ctx.exempt(t[i].line) {
            continue;
        }
        if t[i].kind == TokKind::Ident
            && PRINT_MACROS.contains(&t[i].text.as_str())
            && t.get(i + 1).is_some_and(|p| p.is_punct('!'))
        {
            out.push(ctx.finding(
                &t[i],
                "no-raw-eprintln",
                format!(
                    "`{}!` bypasses the obs logger / census choke point and breaks \
                     stdout byte-stability",
                    t[i].text
                ),
            ));
        }
    }
}

const ENV_READS: &[&str] = &[
    "args",
    "args_os",
    "current_dir",
    "remove_var",
    "set_var",
    "var",
    "var_os",
    "vars",
    "vars_os",
];

/// `determinism-hazards`: unordered-map types in output-feeding crates
/// (`hash` sub-scope), wall-clock reads outside whitelisted timing
/// modules (`clock` sub-scope), and `std::env` reads outside CLI parsing
/// (`env` sub-scope).
///
/// The `span_clock` sub-scope covers the files the `clock` whitelist
/// exempts: there, raw `Instant::now()`/`SystemTime::now()` is still
/// flagged — not as an output hazard but because it bypasses the span
/// API, so the time never reaches metrics or the trace. Only
/// `crates/obs` itself (where the span clock lives) is excluded.
fn determinism_hazards(ctx: &FileCtx<'_>, scope: &RuleScope, out: &mut Vec<Finding>) {
    let t = ctx.tokens;
    let hash = scope.applies_sub("hash", ctx.path);
    let clock = scope.applies_sub("clock", ctx.path);
    let span_clock = scope.applies_sub("span_clock", ctx.path);
    let env = scope.applies_sub("env", ctx.path);
    for i in 0..t.len() {
        if ctx.exempt(t[i].line) {
            continue;
        }
        if hash && (t[i].is_ident("HashMap") || t[i].is_ident("HashSet")) {
            out.push(ctx.finding(
                &t[i],
                "determinism-hazards",
                format!(
                    "`{}` iteration order varies run-to-run; use `BTreeMap`/`BTreeSet` \
                     in crates that feed sorted or serialized output",
                    t[i].text
                ),
            ));
            continue;
        }
        if clock
            && (t[i].is_ident("Instant") || t[i].is_ident("SystemTime"))
            && t.get(i + 1).is_some_and(|p| p.kind == TokKind::PathSep)
            && t.get(i + 2).is_some_and(|m| m.is_ident("now"))
        {
            out.push(ctx.finding(
                &t[i],
                "determinism-hazards",
                format!(
                    "`{}::now()` outside the whitelisted timing modules leaks wall-clock \
                     into analysis output",
                    t[i].text
                ),
            ));
            continue;
        }
        // Only where the `clock` whitelist opted the file out — under the
        // default (full) scope the branch above already owns the pattern.
        if !clock
            && span_clock
            && (t[i].is_ident("Instant") || t[i].is_ident("SystemTime"))
            && t.get(i + 1).is_some_and(|p| p.kind == TokKind::PathSep)
            && t.get(i + 2).is_some_and(|m| m.is_ident("now"))
        {
            out.push(ctx.finding(
                &t[i],
                "determinism-hazards",
                format!(
                    "raw `{}::now()` bypasses the span API; time through \
                     `tcpa_obs::span`/`time` so the measurement reaches metrics \
                     and the trace, or add a justified allow",
                    t[i].text
                ),
            ));
            continue;
        }
        if env {
            // `std::env` anywhere (imports included).
            if t[i].is_ident("std")
                && t.get(i + 1).is_some_and(|p| p.kind == TokKind::PathSep)
                && t.get(i + 2).is_some_and(|m| m.is_ident("env"))
            {
                out.push(
                    ctx.finding(
                        &t[i],
                        "determinism-hazards",
                        "`std::env` reads outside CLI parsing make results depend on ambient \
                     process state"
                            .to_string(),
                    ),
                );
                continue;
            }
            // `env::var(..)` etc. via a prior import (skip when the `std::`
            // qualifier already produced a finding two tokens back).
            if t[i].is_ident("env")
                && t.get(i + 1).is_some_and(|p| p.kind == TokKind::PathSep)
                && t.get(i + 2).is_some_and(|m| {
                    m.kind == TokKind::Ident && ENV_READS.contains(&m.text.as_str())
                })
                && !(i >= 2 && t[i - 1].kind == TokKind::PathSep && t[i - 2].is_ident("std"))
            {
                out.push(ctx.finding(
                    &t[i],
                    "determinism-hazards",
                    format!(
                        "`env::{}` outside CLI parsing makes results depend on ambient \
                         process state",
                        t[i + 2].text
                    ),
                ));
            }
        }
    }
}

/// Narrowing targets for `lossy-cast-in-parser`. Widening casts
/// (`as u64`, `as u128`, `as f64`) are deliberately absent.
const NARROW_TARGETS: &[&str] = &[
    "i16", "i32", "i64", "i8", "isize", "u16", "u32", "u8", "usize",
];

/// `lossy-cast-in-parser`: `as` narrowing in byte-decoding paths — PR 2's
/// salvage fuzzing showed oversized length fields bite exactly here.
fn lossy_cast(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let t = ctx.tokens;
    for i in 0..t.len() {
        if ctx.exempt(t[i].line) {
            continue;
        }
        if t[i].is_ident("as")
            && t.get(i + 1).is_some_and(|n| {
                n.kind == TokKind::Ident && NARROW_TARGETS.contains(&n.text.as_str())
            })
        {
            out.push(ctx.finding(
                &t[i],
                "lossy-cast-in-parser",
                format!(
                    "`as {}` silently truncates oversized length fields; use `try_from` \
                     and surface a parse error with the byte offset",
                    t[i + 1].text
                ),
            ));
        }
    }
}

/// `thread-spawn-audit`: ad-hoc threads bypass the corpus watchdog and
/// audit-trail absorption; every spawn outside `corpus.rs` needs a
/// justified allow.
fn thread_spawn(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let t = ctx.tokens;
    for i in 1..t.len() {
        if ctx.exempt(t[i].line) {
            continue;
        }
        if t[i].is_ident("spawn")
            && t.get(i + 1).is_some_and(|p| p.is_punct('('))
            && (t[i - 1].kind == TokKind::PathSep || t[i - 1].is_punct('.'))
        {
            out.push(
                ctx.finding(
                    &t[i],
                    "thread-spawn-audit",
                    "thread spawned outside corpus.rs bypasses the watchdog and audit-trail \
                 absorption; justify with an allow or move under the corpus runner"
                        .to_string(),
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::lexer::lex;
    use crate::scope::detect;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let tests = detect(&lexed.tokens);
        let ctx = FileCtx {
            path,
            tokens: &lexed.tokens,
            tests: &tests,
            file_is_test: crate::scope::path_is_test(path),
        };
        let config = Config::default();
        run_all(&ctx, |r| config.scope(r))
    }

    fn rules_hit(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn unwrap_expect_and_panics_fire() {
        let f = check(
            "a.rs",
            "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); }",
        );
        assert_eq!(rules_hit(&f), vec!["no-unwrap-in-analyzer"; 3], "{f:?}");
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let f = check("a.rs", "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn range_slice_fires_only_as_indexing() {
        let f = check("a.rs", "fn f() { let a = &buf[1..n]; let b = [0u8; 4]; }");
        assert_eq!(rules_hit(&f), vec!["no-unwrap-in-analyzer"]);
        let g = check("a.rs", "fn f() { for i in 0..n { q(i); } }");
        assert!(g.is_empty(), "{g:?}");
    }

    #[test]
    fn print_family_fires() {
        let f = check("a.rs", "fn f() { println!(\"x\"); eprintln!(\"y\"); }");
        assert_eq!(rules_hit(&f), vec!["no-raw-eprintln"; 2]);
    }

    #[test]
    fn determinism_hazards_fire() {
        let src = "use std::collections::HashMap;\nfn f() { let t = Instant::now(); let v = std::env::var(\"X\"); }";
        let f = check("a.rs", src);
        assert_eq!(rules_hit(&f), vec!["determinism-hazards"; 3], "{f:?}");
    }

    #[test]
    fn span_clock_fires_only_where_clock_whitelist_applies() {
        let config = Config::parse(
            "[rule.determinism-hazards]\n\
             clock_exclude = [\"crates/bench/\", \"crates/obs/src/\"]\n\
             span_clock_exclude = [\"crates/obs/src/\"]\n",
            RULE_NAMES,
        )
        .expect("config parses");
        let src = "fn f() { let t = Instant::now(); }";
        let lexed = lex(src);
        let tests = detect(&lexed.tokens);
        let run = |path| {
            let ctx = FileCtx {
                path,
                tokens: &lexed.tokens,
                tests: &tests,
                file_is_test: false,
            };
            run_all(&ctx, |r| config.scope(r))
        };
        // Full scope: the legacy clock branch owns the pattern (one finding).
        let f = run("crates/core/src/a.rs");
        assert_eq!(rules_hit(&f), vec!["determinism-hazards"], "{f:?}");
        assert!(f[0].message.contains("whitelisted timing modules"), "{f:?}");
        // Clock-whitelisted file: the span-clock branch takes over.
        let f = run("crates/bench/src/a.rs");
        assert_eq!(rules_hit(&f), vec!["determinism-hazards"], "{f:?}");
        assert!(f[0].message.contains("bypasses the span API"), "{f:?}");
        // The span implementation itself is exempt from both.
        let f = run("crates/obs/src/span.rs");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn env_via_import_fires_once() {
        let f = check("a.rs", "fn f() { let v = env::var(\"X\"); }");
        assert_eq!(rules_hit(&f), vec!["determinism-hazards"]);
        // Fully qualified: one finding (at `std`), not two.
        let g = check("a.rs", "fn f() { let v = std::env::var(\"X\"); }");
        assert_eq!(rules_hit(&g), vec!["determinism-hazards"]);
    }

    #[test]
    fn narrowing_casts_fire_widening_do_not() {
        let f = check(
            "a.rs",
            "fn f(x: u64) { let a = x as u32; let b = x as u64; }",
        );
        assert_eq!(rules_hit(&f), vec!["lossy-cast-in-parser"]);
    }

    #[test]
    fn spawn_fires_outside_corpus() {
        let f = check(
            "a.rs",
            "fn f() { std::thread::spawn(|| {}); s.spawn(|| {}); }",
        );
        assert_eq!(rules_hit(&f), vec!["thread-spawn-audit"; 2]);
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); panic!(); }\n}\n";
        assert!(check("a.rs", src).is_empty());
        assert!(check("crates/x/tests/t.rs", "fn t() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn scoping_excludes_paths() {
        let config = Config::parse(
            "[rule.no-unwrap-in-analyzer]\ninclude = [\"crates/core/\"]\n",
            RULE_NAMES,
        )
        .expect("config parses");
        let src = "fn f() { x.unwrap(); }";
        let lexed = lex(src);
        let tests = detect(&lexed.tokens);
        let ctx = FileCtx {
            path: "crates/obs/src/log.rs",
            tokens: &lexed.tokens,
            tests: &tests,
            file_is_test: false,
        };
        let f = run_all(&ctx, |r| config.scope(r));
        assert!(f.iter().all(|f| f.rule != "no-unwrap-in-analyzer"), "{f:?}");
    }
}
