//! Reporters: human (`file:line:col: rule: message`) and machine
//! (`--format json`, schema `tcpa-lint/v1`).
//!
//! Both renderings are deterministic by construction — findings and
//! allows are sorted, nothing emits a timestamp — so two consecutive
//! runs over the same tree produce byte-identical output. That mirrors
//! the workspace contract the lint itself enforces.

use crate::rules::Finding;
use crate::suppress::Allow;

/// A finding that was matched by a justified allow.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AllowedFinding {
    /// Workspace-relative path.
    pub path: String,
    /// Line of the suppressed finding.
    pub line: u32,
    /// Rule that was allowed.
    pub rule: String,
    /// The justification carried by the allow comment.
    pub justification: String,
}

/// The outcome of a whole check run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Surviving findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// Findings matched by a justified allow, sorted.
    pub allowed: Vec<AllowedFinding>,
    /// Number of `.rs` files examined.
    pub files_checked: usize,
}

impl LintReport {
    /// Sorts both lists into their canonical order. Called once after
    /// the walk so renderings are deterministic.
    pub fn finalize(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule))
        });
        self.allowed.sort();
    }

    /// `true` when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human rendering: one `path:line:col: rule: message` line per
    /// finding plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}:{}: {}: {}\n",
                f.path, f.line, f.col, f.rule, f.message
            ));
        }
        out.push_str(&format!(
            "tcpa-lint: {} finding(s), {} allowed, {} file(s) checked\n",
            self.findings.len(),
            self.allowed.len(),
            self.files_checked
        ));
        out
    }

    /// JSON rendering, schema `tcpa-lint/v1`. Hand-rolled (the crate has
    /// no dependencies); keys are emitted in a fixed order.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"tcpa-lint/v1\",\n");
        out.push_str(&format!("  \"files_checked\": {},\n", self.files_checked));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"path\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&f.path),
                f.line,
                f.col,
                json_str(&f.rule),
                json_str(&f.message)
            ));
        }
        out.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"allowed\": [");
        for (i, a) in self.allowed.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"justification\": {}}}",
                json_str(&a.path),
                a.line,
                json_str(&a.rule),
                json_str(&a.justification)
            ));
        }
        out.push_str(if self.allowed.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

/// Merges one allow list against one file's findings: matched findings
/// move to `allowed`, the rest survive.
pub fn apply_allows(findings: Vec<Finding>, allows: &[Allow], report: &mut LintReport) {
    for f in findings {
        let matched = allows
            .iter()
            .find(|a| a.rule == f.rule && a.target_line == f.line);
        match matched {
            Some(a) => report.allowed.push(AllowedFinding {
                path: f.path,
                line: f.line,
                rule: f.rule,
                justification: a.justification.clone(),
            }),
            None => report.findings.push(f),
        }
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, line: u32, rule: &str) -> Finding {
        Finding {
            path: path.into(),
            line,
            col: 1,
            rule: rule.into(),
            message: "m".into(),
        }
    }

    #[test]
    fn renders_sorted_and_stable() {
        let mut r = LintReport {
            findings: vec![
                finding("b.rs", 2, "no-raw-eprintln"),
                finding("a.rs", 9, "no-raw-eprintln"),
            ],
            allowed: vec![],
            files_checked: 2,
        };
        r.finalize();
        assert!(r.render_human().starts_with("a.rs:9:1:"));
        let j1 = r.render_json();
        let j2 = r.render_json();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"schema\": \"tcpa-lint/v1\""));
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let r = LintReport::default();
        let j = r.render_json();
        assert!(j.contains("\"findings\": []"));
        assert!(j.contains("\"allowed\": []"));
    }

    #[test]
    fn allows_split_findings() {
        use crate::suppress::Allow;
        let mut report = LintReport::default();
        let allows = vec![Allow {
            rule: "no-raw-eprintln".into(),
            justification: "census choke point".into(),
            comment_line: 2,
            target_line: 2,
        }];
        apply_allows(
            vec![
                finding("a.rs", 2, "no-raw-eprintln"),
                finding("a.rs", 5, "no-raw-eprintln"),
            ],
            &allows,
            &mut report,
        );
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 5);
        assert_eq!(report.allowed.len(), 1);
        assert_eq!(report.allowed[0].justification, "census choke point");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
