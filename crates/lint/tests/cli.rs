//! End-to-end CLI tests: exit codes and byte-stable output from the
//! built `tcpa-lint` binary, exactly as CI invokes it.

use std::path::Path;
use std::process::{Command, Output};

const GOLDEN: &str = include_str!("goldens/fixtures.json");

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tcpa-lint"))
        .args(args)
        .output()
        .expect("spawn tcpa-lint")
}

fn fixtures_root() -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .display()
        .to_string()
}

fn workspace_root() -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .display()
        .to_string()
}

#[test]
fn bad_fixtures_exit_nonzero_with_golden_json() {
    let out = lint(&["check", "--root", &fixtures_root(), "--format", "json"]);
    assert_eq!(out.status.code(), Some(1), "findings must exit 1");
    assert_eq!(String::from_utf8_lossy(&out.stdout), GOLDEN);
}

#[test]
fn json_output_is_byte_identical_across_runs() {
    let args = ["check", "--root", &fixtures_root(), "--format", "json"];
    let first = lint(&args[..]);
    let second = lint(&args[..]);
    assert_eq!(first.stdout, second.stdout);
    assert_eq!(first.status.code(), second.status.code());
}

#[test]
fn workspace_is_clean_through_the_cli() {
    let out = lint(&["check", "--root", &workspace_root(), "--format", "json"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace lint gate failed:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(lint(&[]).status.code(), Some(2));
    assert_eq!(lint(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(lint(&["check", "--format", "yaml"]).status.code(), Some(2));
    assert_eq!(lint(&["check", "--root"]).status.code(), Some(2));
}

#[test]
fn human_format_reports_findings_with_positions() {
    let out = lint(&["check", "--root", &fixtures_root()]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("bad/unwrap.rs:3:33: no-unwrap-in-analyzer:"));
    assert!(text.lines().last().unwrap().starts_with("tcpa-lint: "));
}
