//! Corpus-scale batch analysis (§8–§10 at production size).
//!
//! The paper's behavioral catalogues came from ~40,000 traces; one trace
//! at a time on one thread does not get there. This module shards a
//! corpus of traces — supplied by any
//! [`TraceSource`](tcpa_trace::source::TraceSource) — across `N` worker
//! threads (plain `std::thread` + channels, no external runtime) and
//! merges the per-trace conclusions into a Table-1-style census.
//!
//! Guarantees the rest of the system builds on:
//!
//! * **Determinism** — results are merged in input order, so the census
//!   (and its rendering) is byte-identical whatever the worker count or
//!   completion order.
//! * **Fault isolation** — one bad trace costs exactly one item, never
//!   the pipeline. Failures carry a typed [`AnalysisError`] (I/O,
//!   malformed bytes, timeout, panic) so the census can say *why*, and a
//!   [`DegradePolicy`] decides whether damaged captures abort the run
//!   ([`DegradePolicy::Strict`]), are skipped as failed items
//!   ([`DegradePolicy::Skip`]), or are salvage-read with the recovered
//!   records analyzed and the damage accounted
//!   ([`DegradePolicy::Salvage`]).
//! * **Bounded patience** — transient I/O errors are retried with
//!   backoff; a per-item wall-clock watchdog (when configured) converts a
//!   wedged analysis into a [`AnalysisError::Timeout`] failure.
//! * **Worker reuse** — each worker keeps one [`Analyzer`] (and its
//!   vantage) for its whole life; per-trace setup is just the trace load.
//! * **Observability** — every stage records into the global
//!   [`tcpa_obs`] registry (counters for retries, timeouts, panics,
//!   degrade outcomes and salvage losses; log-bucket histograms for
//!   stage durations), an optional [`CorpusConfig::audit_dir`] writes
//!   one JSON event log per trace, and [`CorpusConfig::progress`]
//!   prints a periodic stderr status line. None of it perturbs the
//!   deterministic census.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;

use crate::calibrate::Vantage;
use crate::fingerprint::FitClass;
use crate::report::{AnalysisReport, Analyzer};
use tcpa_obs::audit::{self, AuditTrail, EventKind};
use tcpa_obs::progress::{ItemClass, Progress};
use tcpa_obs::trace;
use tcpa_trace::pcap_io::IngestReport;
use tcpa_trace::source::{CorpusItem, LoadError, LoadMode, Loaded, TraceInput, TraceSource};
use tcpa_trace::{Duration, Summary, Trace};

/// What to do with a damaged (malformed but partially recoverable)
/// capture. Clean traces behave identically under every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Abort the whole run on the first malformed capture (distinct exit
    /// code in the CLI). For pipelines where damage means the corpus
    /// itself is suspect.
    Strict,
    /// Salvage-read damaged captures: skip damaged byte regions, analyze
    /// the recovered records, and account for the degradation in the
    /// census. For unattended runs over imperfect data (§3).
    Salvage,
    /// Report damaged captures as failed items and keep going (the
    /// historical behavior).
    #[default]
    Skip,
}

impl DegradePolicy {
    /// Stable lowercase name (CLI flag values).
    pub fn name(self) -> &'static str {
        match self {
            DegradePolicy::Strict => "strict",
            DegradePolicy::Salvage => "salvage",
            DegradePolicy::Skip => "skip",
        }
    }
}

impl core::fmt::Display for DegradePolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for DegradePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<DegradePolicy, String> {
        match s {
            "strict" => Ok(DegradePolicy::Strict),
            "salvage" => Ok(DegradePolicy::Salvage),
            "skip" => Ok(DegradePolicy::Skip),
            other => Err(format!(
                "unknown degradation mode {other:?} (expected strict, salvage or skip)"
            )),
        }
    }
}

/// Batch-pipeline configuration.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Worker threads; `0` means one per available CPU.
    pub jobs: usize,
    /// Vantage assumed for every trace. [`Vantage::Unknown`] auto-detects
    /// per trace (§3.2), like the CLI's default single-trace mode.
    pub vantage: Vantage,
    /// How damaged captures are treated.
    pub degrade: DegradePolicy,
    /// Per-item wall-clock budget for the analysis step. `None` (the
    /// default) runs inline with no watchdog; `Some(d)` runs each
    /// analysis on a watchdog thread and converts overruns into
    /// [`AnalysisError::Timeout`]. A timed-out analysis thread is
    /// detached, not killed — the item is reported and the run moves on.
    pub timeout: Option<std::time::Duration>,
    /// Retries for *transient* I/O errors (interrupted, would-block,
    /// timed out) when loading a trace. Non-transient errors (not found,
    /// permission denied) never retry.
    pub io_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub retry_backoff: std::time::Duration,
    /// When set, one `tcpa-audit/v1` JSON event log is written here per
    /// processed trace (the directory is created if absent). Write
    /// failures are logged and counted, never fatal.
    pub audit_dir: Option<std::path::PathBuf>,
    /// When set, a status line is printed to stderr at this interval
    /// (and once at the end) while the corpus drains. Stdout is never
    /// touched.
    pub progress: Option<std::time::Duration>,
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig {
            jobs: 0,
            vantage: Vantage::Unknown,
            degrade: DegradePolicy::default(),
            timeout: None,
            io_retries: 2,
            retry_backoff: std::time::Duration::from_millis(20),
            audit_dir: None,
            progress: None,
        }
    }
}

impl CorpusConfig {
    /// The concrete worker count this config resolves to.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }
}

/// Why one corpus item produced no (full) analysis — the typed failure
/// taxonomy the census aggregates and the CLI renders per item.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The trace bytes could not be read at all (after retries).
    Io {
        /// Description including the path and OS error.
        detail: String,
    },
    /// The capture is malformed and salvage would recover nothing.
    Malformed {
        /// Description including the path and byte offset of the damage.
        detail: String,
    },
    /// The capture is damaged but salvageable; the policy
    /// ([`DegradePolicy::Strict`]/[`DegradePolicy::Skip`]) refused to
    /// degrade. The report says what a salvage run would recover.
    Salvaged {
        /// The ingest ledger a salvage read produced.
        report: IngestReport,
    },
    /// Analysis exceeded the configured per-item wall-clock budget.
    Timeout {
        /// The budget that was exceeded, in milliseconds.
        limit_ms: u64,
    },
    /// The analyzer panicked on this trace.
    Panicked {
        /// The panic payload message.
        message: String,
    },
}

impl core::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AnalysisError::Io { detail } => write!(f, "i/o error: {detail}"),
            AnalysisError::Malformed { detail } => write!(f, "malformed capture: {detail}"),
            AnalysisError::Salvaged { report } => write!(
                f,
                "damaged capture ({report}); rerun with --degrade=salvage to recover"
            ),
            AnalysisError::Timeout { limit_ms } => {
                write!(f, "analysis timed out after {limit_ms} ms")
            }
            AnalysisError::Panicked { message } => write!(f, "analyzer panic: {message}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl AnalysisError {
    /// Stable failure-class name used in metrics counters and audit
    /// outcomes (`failed.io`, `failed.malformed`, …).
    pub fn class(&self) -> &'static str {
        match self {
            AnalysisError::Io { .. } => "io",
            AnalysisError::Malformed { .. } | AnalysisError::Salvaged { .. } => "malformed",
            AnalysisError::Timeout { .. } => "timeout",
            AnalysisError::Panicked { .. } => "panic",
        }
    }
}

/// What happened to one corpus item.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemOutcome {
    /// Analyzed successfully from an undamaged trace.
    Analyzed(ItemSummary),
    /// The capture was damaged; the salvaged records were analyzed and
    /// the degradation is accounted in `report`.
    Salvaged {
        /// Conclusions from the recovered records.
        summary: ItemSummary,
        /// The ingest ledger: bytes skipped, damage classes, offsets.
        report: IngestReport,
    },
    /// No analysis was produced.
    Failed(AnalysisError),
}

impl ItemOutcome {
    /// `true` when the item produced an analysis (possibly degraded).
    pub fn is_success(&self) -> bool {
        matches!(
            self,
            ItemOutcome::Analyzed(_) | ItemOutcome::Salvaged { .. }
        )
    }

    /// Stable outcome name used in metrics counters and audit trails:
    /// `analyzed`, `salvaged`, or `failed.<class>`.
    pub fn name(&self) -> String {
        match self {
            ItemOutcome::Analyzed(_) => "analyzed".into(),
            ItemOutcome::Salvaged { .. } => "salvaged".into(),
            ItemOutcome::Failed(e) => format!("failed.{}", e.class()),
        }
    }

    /// Bumps the corpus-level counters this outcome contributes to.
    /// Sums are order-independent, so the resulting metrics are
    /// deterministic whatever the worker count.
    fn count_into_metrics(&self) {
        tcpa_obs::add("corpus.items_total", 1);
        match self {
            ItemOutcome::Analyzed(_) => tcpa_obs::add("corpus.analyzed", 1),
            ItemOutcome::Salvaged { report, .. } => {
                tcpa_obs::add("corpus.salvaged", 1);
                tcpa_obs::add("corpus.salvage.bytes_skipped", report.bytes_skipped);
                tcpa_obs::add("corpus.salvage.damage_regions", report.damage.len() as u64);
            }
            ItemOutcome::Failed(e) => {
                tcpa_obs::add(
                    match e {
                        AnalysisError::Io { .. } => "corpus.failed.io",
                        AnalysisError::Malformed { .. } | AnalysisError::Salvaged { .. } => {
                            "corpus.failed.malformed"
                        }
                        AnalysisError::Timeout { .. } => "corpus.failed.timeout",
                        AnalysisError::Panicked { .. } => "corpus.failed.panic",
                    },
                    1,
                );
            }
        }
    }

    /// The progress-meter classification of this outcome.
    fn progress_class(&self) -> ItemClass {
        match self {
            ItemOutcome::Analyzed(_) => ItemClass::Analyzed,
            ItemOutcome::Salvaged { .. } => ItemClass::Salvaged,
            ItemOutcome::Failed(_) => ItemClass::Failed,
        }
    }
}

/// Per-item result, in input order.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemReport {
    /// Position in the corpus (0-based input order).
    pub index: usize,
    /// The item's label (file path or synthetic name).
    pub id: String,
    /// What happened.
    pub outcome: ItemOutcome,
}

/// The distilled per-trace conclusions kept by the census. The full
/// [`AnalysisReport`] (every candidate's replay) would be megabytes per
/// item at corpus scale; this is the part Table 1 needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemSummary {
    /// Packets in the trace.
    pub records: usize,
    /// Connections found after calibration.
    pub connections: usize,
    /// Per connection: the close best-fit implementation, if any.
    pub best_fits: Vec<Option<String>>,
    /// Measurement duplicates removed (§3.1.2).
    pub duplicates: usize,
    /// Timestamp decreases (§3.1.4).
    pub time_travel: usize,
    /// Filter resequencing evidence (§3.1.3).
    pub resequencing: usize,
    /// Packet-filter drop evidence (§3.1.1).
    pub drop_evidence: usize,
    /// Response-delay samples of each connection's best-fit candidate.
    pub response_delays: Vec<Duration>,
}

impl ItemSummary {
    /// `true` when calibration flagged any measurement error.
    pub fn has_calibration_errors(&self) -> bool {
        self.duplicates + self.time_travel + self.resequencing + self.drop_evidence > 0
    }
}

/// Distills a full report into the census-relevant summary.
fn distill(report: &AnalysisReport, records: usize) -> ItemSummary {
    let mut best_fits = Vec::with_capacity(report.connections.len());
    let mut response_delays = Vec::new();
    for conn in &report.connections {
        best_fits.push(conn.best_fit().map(str::to_owned));
        if let Some(top) = conn.fingerprint.first() {
            if top.fit == FitClass::Close {
                response_delays.extend_from_slice(top.analysis.response_delays.samples());
            }
        }
    }
    ItemSummary {
        records,
        connections: report.connections.len(),
        best_fits,
        duplicates: report.calibration.duplicates.len(),
        time_travel: report.calibration.time_travel.len(),
        resequencing: report.calibration.resequencing.len(),
        drop_evidence: report.calibration.drop_evidence.len(),
        response_delays,
    }
}

/// Aggregated, order-independent corpus conclusions.
#[derive(Debug, Clone)]
pub struct Census {
    /// Items fed in.
    pub items_total: usize,
    /// Items analyzed successfully from undamaged traces.
    pub analyzed: usize,
    /// Items analyzed from salvaged (damaged) captures.
    pub salvaged: usize,
    /// Items whose bytes could not be read (after retries).
    pub io_errors: usize,
    /// Items with malformed or policy-refused damaged captures.
    pub malformed: usize,
    /// Items whose analysis exceeded the wall-clock budget.
    pub timeouts: usize,
    /// Items that panicked the analyzer.
    pub panics: usize,
    /// Bytes skipped as damaged across all salvaged items.
    pub bytes_skipped: u64,
    /// Damaged regions across all salvaged items.
    pub damage_regions: usize,
    /// Connections across all successfully analyzed traces.
    pub connections: usize,
    /// Packets across all successfully analyzed traces.
    pub records: u64,
    /// Close best-fit counts per implementation name (Table 1's census).
    pub best_fit: BTreeMap<String, usize>,
    /// Connections with no close-fitting candidate.
    pub unidentified: usize,
    /// Measurement duplicates removed, summed.
    pub duplicates: usize,
    /// Time-travel instances, summed.
    pub time_travel: usize,
    /// Resequencing evidence, summed.
    pub resequencing: usize,
    /// Filter-drop evidence, summed.
    pub drop_evidence: usize,
    /// Traces with at least one calibration finding.
    pub traces_with_calibration_errors: usize,
    /// Best-fit response delays pooled across the corpus.
    pub response_delays: Summary,
}

impl Census {
    fn new() -> Census {
        Census {
            items_total: 0,
            analyzed: 0,
            salvaged: 0,
            io_errors: 0,
            malformed: 0,
            timeouts: 0,
            panics: 0,
            bytes_skipped: 0,
            damage_regions: 0,
            connections: 0,
            records: 0,
            best_fit: BTreeMap::new(),
            unidentified: 0,
            duplicates: 0,
            time_travel: 0,
            resequencing: 0,
            drop_evidence: 0,
            traces_with_calibration_errors: 0,
            response_delays: Summary::new(),
        }
    }

    fn absorb_summary(&mut self, s: &ItemSummary) {
        self.connections += s.connections;
        self.records += s.records as u64;
        for fit in &s.best_fits {
            match fit {
                Some(name) => *self.best_fit.entry(name.clone()).or_insert(0) += 1,
                None => self.unidentified += 1,
            }
        }
        self.duplicates += s.duplicates;
        self.time_travel += s.time_travel;
        self.resequencing += s.resequencing;
        self.drop_evidence += s.drop_evidence;
        if s.has_calibration_errors() {
            self.traces_with_calibration_errors += 1;
        }
        for &d in &s.response_delays {
            self.response_delays.add(d);
        }
    }

    fn absorb(&mut self, report: &ItemReport) {
        self.items_total += 1;
        match &report.outcome {
            ItemOutcome::Analyzed(s) => {
                self.analyzed += 1;
                self.absorb_summary(s);
            }
            ItemOutcome::Salvaged { summary, report } => {
                self.salvaged += 1;
                self.bytes_skipped += report.bytes_skipped;
                self.damage_regions += report.damage.len();
                self.absorb_summary(summary);
            }
            ItemOutcome::Failed(e) => match e {
                AnalysisError::Io { .. } => self.io_errors += 1,
                AnalysisError::Malformed { .. } | AnalysisError::Salvaged { .. } => {
                    self.malformed += 1
                }
                AnalysisError::Timeout { .. } => self.timeouts += 1,
                AnalysisError::Panicked { .. } => self.panics += 1,
            },
        }
    }

    /// Items that did not produce an analysis.
    pub fn failed(&self) -> usize {
        self.io_errors + self.malformed + self.timeouts + self.panics
    }
}

/// Everything a corpus run yields: ordered per-item reports + the census.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// One entry per input item that was processed, ordered by input
    /// index regardless of which worker finished when. Under
    /// [`DegradePolicy::Strict`] an abort leaves later items unprocessed.
    pub items: Vec<ItemReport>,
    /// The merged census.
    pub census: Census,
    /// `true` when a strict-policy run aborted on a malformed capture
    /// before draining the source.
    pub aborted: bool,
}

impl CorpusReport {
    /// The lowest-index failed item, if any (under strict policy, the
    /// malformed capture that stopped the run).
    pub fn first_failure(&self) -> Option<&ItemReport> {
        self.items.iter().find(|r| !r.outcome.is_success())
    }

    /// Renders the Table-1-style census plus a failure list. Deterministic:
    /// identical corpora yield byte-identical output whatever `jobs` was.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let c = &self.census;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== Corpus census: {} traces ({} analyzed, {} salvaged, {} failed) ==",
            c.items_total,
            c.analyzed,
            c.salvaged,
            c.failed()
        );
        if self.aborted {
            let _ = writeln!(out, "  RUN ABORTED (strict mode, malformed capture)");
        }
        let _ = writeln!(
            out,
            "  connections: {}   packets: {}",
            c.connections, c.records
        );
        let _ = writeln!(
            out,
            "  calibration: {} dup records removed, {} time travel, {} reseq, {} filter-drop evidence ({} traces affected)",
            c.duplicates, c.time_travel, c.resequencing, c.drop_evidence,
            c.traces_with_calibration_errors
        );
        if c.salvaged > 0 {
            let _ = writeln!(
                out,
                "  salvage: {} traces degraded, {} damaged regions, {} bytes skipped",
                c.salvaged, c.damage_regions, c.bytes_skipped
            );
        }
        if c.failed() > 0 {
            let _ = writeln!(
                out,
                "  failures: {} i/o, {} malformed, {} timeout, {} panic",
                c.io_errors, c.malformed, c.timeouts, c.panics
            );
        }
        let mut delays = c.response_delays.clone();
        if let (Some(p50), Some(p90), Some(max)) =
            (delays.median(), delays.percentile(90.0), delays.max())
        {
            let _ = writeln!(
                out,
                "  best-fit response delays: p50 {} p90 {} max {} ({} samples)",
                p50,
                p90,
                max,
                delays.count()
            );
        }
        let _ = writeln!(out, "  {:<26} best-fit connections", "implementation");
        let _ = writeln!(out, "  {}", "-".repeat(46));
        for (name, count) in &c.best_fit {
            let _ = writeln!(out, "  {name:<26} {count}");
        }
        if c.unidentified > 0 {
            let _ = writeln!(out, "  {:<26} {}", "(no close fit)", c.unidentified);
        }
        let failures: Vec<(&ItemReport, String)> = self
            .items
            .iter()
            .filter_map(|r| match &r.outcome {
                ItemOutcome::Failed(e) => Some((r, e.to_string())),
                _ => None,
            })
            .collect();
        if !failures.is_empty() {
            let _ = writeln!(out, "  failed items:");
            for (r, what) in failures {
                let _ = writeln!(out, "    [{:>4}] {}: {}", r.index, r.id, what);
            }
        }
        out
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Analyzes one loaded trace with a vantage-appropriate analyzer.
fn analyze_one(fixed: Option<&Analyzer>, trace: &Trace) -> ItemSummary {
    let report = match fixed {
        Some(analyzer) => analyzer.analyze(trace),
        None => Analyzer::auto(trace).analyze(trace),
    };
    distill(&report, trace.len())
}

/// Loads one input under the policy's load mode, retrying transient I/O
/// errors with exponential backoff. A malformed capture under a
/// non-salvage policy is probed with a salvage read so the error can say
/// what degradation would have recovered.
fn load_item(config: &CorpusConfig, input: &TraceInput) -> Result<Loaded, AnalysisError> {
    let mode = match config.degrade {
        DegradePolicy::Salvage => LoadMode::Salvage,
        DegradePolicy::Strict | DegradePolicy::Skip => LoadMode::Strict,
    };
    let mut attempt = 0u32;
    loop {
        match input.load_mode(mode) {
            Ok(loaded) => return Ok(loaded),
            Err(e) if e.is_transient() && attempt < config.io_retries => {
                tcpa_obs::add("corpus.io_retries", 1);
                let detail = format!("attempt {}: {e}", attempt + 1);
                trace::instant("retry", &detail);
                audit::event(EventKind::Retry, "load", detail);
                thread::sleep(config.retry_backoff * 2u32.saturating_pow(attempt));
                attempt += 1;
            }
            Err(LoadError::Io { detail, .. }) => return Err(AnalysisError::Io { detail }),
            Err(LoadError::Malformed { detail }) => {
                // What would salvage have recovered? (Damaged files only,
                // so the extra read is off the common path.)
                let probe = input
                    .load_mode(LoadMode::Salvage)
                    .ok()
                    .and_then(|l| l.salvage);
                return Err(match probe {
                    Some(report) if report.records > 0 => AnalysisError::Salvaged { report },
                    _ => AnalysisError::Malformed { detail },
                });
            }
        }
    }
}

/// Runs the analysis step, optionally under a wall-clock watchdog.
///
/// With a timeout, analysis runs on a dedicated thread; on overrun the
/// thread is detached (it cannot be killed) and the item is reported as
/// timed out — the worker moves on. Because the audit trail is
/// thread-local, the watchdog thread opens its own trail and ships it
/// back with the result so stage events survive the thread hop; a
/// timed-out analysis necessarily loses its in-flight stage events.
fn analyze_guarded(
    fixed: Option<&Analyzer>,
    vantage: Vantage,
    timeout: Option<std::time::Duration>,
    trace: Trace,
) -> Result<ItemSummary, AnalysisError> {
    match timeout {
        None => catch_unwind(AssertUnwindSafe(|| analyze_one(fixed, &trace))).map_err(|p| {
            AnalysisError::Panicked {
                message: panic_message(p),
            }
        }),
        Some(limit) => {
            let auditing = audit::is_active();
            // The span tree crosses the thread boundary explicitly: the
            // watchdog adopts this item's context (same id counter, its
            // spans parented under our open span) so the tree stays
            // connected. A timed-out watchdog is detached before it
            // flushes; its in-flight spans are lost, like its audit
            // events.
            let traced = trace::handoff();
            let (tx, rx) = mpsc::channel();
            let spawned = thread::Builder::new()
                .name("tcpanaly-watchdog".into())
                .spawn(move || {
                    if auditing {
                        audit::begin("<watchdog>", 0);
                    }
                    let adopted = traced.is_some();
                    if let Some(ctx) = traced {
                        trace::adopt(ctx);
                    }
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let fixed = match vantage {
                            Vantage::Sender => Some(Analyzer::at_sender()),
                            Vantage::Receiver => Some(Analyzer::at_receiver()),
                            Vantage::Unknown => None,
                        };
                        analyze_one(fixed.as_ref(), &trace)
                    }));
                    let trail = audit::take("");
                    if adopted {
                        trace::finish_adopted();
                    }
                    let _ = tx.send((result.map_err(panic_message), trail));
                });
            if spawned.is_err() {
                return Err(AnalysisError::Io {
                    detail: "could not spawn watchdog thread".into(),
                });
            }
            match rx.recv_timeout(limit) {
                Ok((result, inner)) => {
                    if let Some(inner) = inner {
                        audit::absorb(inner);
                    }
                    match result {
                        Ok(summary) => Ok(summary),
                        Err(message) => Err(AnalysisError::Panicked { message }),
                    }
                }
                Err(_) => {
                    trace::instant("timeout", &format!("limit {} ms", limit.as_millis()));
                    Err(AnalysisError::Timeout {
                        limit_ms: limit.as_millis() as u64,
                    })
                }
            }
        }
    }
}

/// Loads and analyzes one item, converting every failure mode — panic,
/// I/O, malformed bytes, timeout — into a reported outcome. When
/// `config.audit_dir` is set, the item's whole trip is recorded into an
/// audit trail (returned sealed, for the worker to write out).
fn process_item(
    config: &CorpusConfig,
    fixed: Option<&Analyzer>,
    index: usize,
    id: &str,
    input: &TraceInput,
) -> (ItemOutcome, Option<AuditTrail>) {
    if config.audit_dir.is_some() {
        audit::begin(id, index as u64);
    }
    trace::begin_item(id, index as u64);
    let outcome = {
        // The item's root span: every stage span and fault instant below
        // (including the watchdog's, via handoff) parents under it.
        let mut root = tcpa_obs::span("corpus.item");
        root.note(id);
        let outcome = process_item_inner(config, fixed, input);
        match &outcome {
            ItemOutcome::Salvaged { report, .. } => {
                trace::instant("salvage", &report.to_string());
            }
            ItemOutcome::Failed(e) => {
                trace::instant("degrade", &format!("{}: {e}", e.class()));
            }
            ItemOutcome::Analyzed(_) => {}
        }
        outcome
    };
    match &outcome {
        ItemOutcome::Salvaged { summary, report } => {
            audit::event(EventKind::Info, "ingest.salvage", report.to_string());
            audit::event(EventKind::Verdict, "summary", summarize(summary));
        }
        ItemOutcome::Analyzed(summary) => {
            audit::event(EventKind::Verdict, "summary", summarize(summary));
        }
        ItemOutcome::Failed(e) => {
            audit::event(EventKind::Error, e.class(), e.to_string());
        }
    }
    let trail = audit::take(&outcome.name());
    trace::end_item();
    (outcome, trail)
}

/// One line of verdict detail for the audit trail.
fn summarize(s: &ItemSummary) -> String {
    let fits: Vec<&str> = s
        .best_fits
        .iter()
        .map(|f| f.as_deref().unwrap_or("(no close fit)"))
        .collect();
    format!(
        "{} records, {} connections, best fits [{}], calibration findings {}",
        s.records,
        s.connections,
        fits.join(", "),
        s.duplicates + s.time_travel + s.resequencing + s.drop_evidence,
    )
}

fn process_item_inner(
    config: &CorpusConfig,
    fixed: Option<&Analyzer>,
    input: &TraceInput,
) -> ItemOutcome {
    // Load (with retry). The load itself is panic-isolated: a poisoned
    // item must cost one item, not the worker.
    let loaded = match catch_unwind(AssertUnwindSafe(|| load_item(config, input))) {
        Ok(Ok(loaded)) => loaded,
        Ok(Err(e)) => return ItemOutcome::Failed(e),
        Err(payload) => {
            return ItemOutcome::Failed(AnalysisError::Panicked {
                message: panic_message(payload),
            })
        }
    };
    let Loaded { trace, salvage } = loaded;
    let damage = salvage.filter(|r| !r.is_clean());
    match analyze_guarded(fixed, config.vantage, config.timeout, trace) {
        Ok(summary) => match damage {
            Some(report) => ItemOutcome::Salvaged { summary, report },
            None => ItemOutcome::Analyzed(summary),
        },
        Err(e) => ItemOutcome::Failed(e),
    }
}

struct Cursor<S> {
    source: S,
    next_index: usize,
}

/// Runs the corpus through `config.effective_jobs()` workers and merges
/// the results deterministically.
///
/// Workers pull items from the source behind a mutex (pulling is cheap;
/// loading and analysis happen outside the lock), analyze them with a
/// per-worker [`Analyzer`], and send `(index, outcome)` down a channel.
/// The caller's thread collects everything and restores input order, so
/// the returned [`CorpusReport`] — and its rendering — is byte-identical
/// to a `jobs = 1` run. Under [`DegradePolicy::Strict`] the first
/// malformed capture raises an abort flag; workers stop pulling and the
/// report is marked [`CorpusReport::aborted`].
pub fn analyze_corpus<S: TraceSource>(source: S, config: &CorpusConfig) -> CorpusReport {
    let jobs = config.effective_jobs().max(1);
    let total_hint = source.len_hint();
    let cursor = Mutex::new(Cursor {
        source,
        next_index: 0,
    });
    let abort = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<ItemReport>();
    let mut progress = config
        .progress
        .map(|interval| Progress::start(total_hint, interval));

    let mut items = thread::scope(|scope| {
        for worker in 0..jobs {
            let tx = tx.clone();
            let cursor = &cursor;
            let abort = &abort;
            scope.spawn(move || {
                trace::set_lane(&format!("worker-{worker}"));
                // Per-worker analyzer: constructed once, reused for every
                // item this worker claims (auto-vantage has no fixed
                // analyzer; it must sniff each trace).
                let fixed = match config.vantage {
                    Vantage::Sender => Some(Analyzer::at_sender()),
                    Vantage::Receiver => Some(Analyzer::at_receiver()),
                    Vantage::Unknown => None,
                };
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let (index, item) = {
                        // A worker panicking while pulling would poison the
                        // lock; recover the guard rather than cascade.
                        let mut cur = match cursor.lock() {
                            Ok(guard) => guard,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        match cur.source.next_item() {
                            Some(item) => {
                                let index = cur.next_index;
                                cur.next_index += 1;
                                (index, item)
                            }
                            None => break,
                        }
                    };
                    let CorpusItem { id, input } = item;
                    let (outcome, trail) = process_item(config, fixed.as_ref(), index, &id, &input);
                    outcome.count_into_metrics();
                    if let (Some(trail), Some(dir)) = (trail, config.audit_dir.as_deref()) {
                        if let Err(e) = trail.write_to(dir) {
                            tcpa_obs::add("corpus.audit.write_errors", 1);
                            tcpa_obs::log::warn(&format!(
                                "audit trail for {} not written: {e}",
                                trail.trace_id
                            ));
                        }
                    }
                    if config.degrade == DegradePolicy::Strict {
                        if let ItemOutcome::Failed(
                            AnalysisError::Malformed { .. } | AnalysisError::Salvaged { .. },
                        ) = &outcome
                        {
                            abort.store(true, Ordering::Relaxed);
                        }
                    }
                    if tx.send(ItemReport { index, id, outcome }).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        // Collect on this thread while workers run; order restored below.
        let mut collected = Vec::new();
        for report in rx {
            if let Some(meter) = &progress {
                meter.observe(report.outcome.progress_class());
            }
            collected.push(report);
        }
        collected
    });
    if let Some(meter) = progress.take() {
        meter.finish();
    }

    items.sort_unstable_by_key(|r| r.index);
    let mut census = Census::new();
    for report in &items {
        census.absorb(report);
    }
    CorpusReport {
        items,
        census,
        aborted: abort.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpa_trace::source::MemorySource;

    #[test]
    fn empty_corpus_renders() {
        let report = analyze_corpus(MemorySource::default(), &CorpusConfig::default());
        assert_eq!(report.census.items_total, 0);
        assert!(!report.aborted);
        assert!(report.render().contains("0 traces"));
    }

    #[test]
    fn effective_jobs_defaults_to_parallelism() {
        assert!(CorpusConfig::default().effective_jobs() >= 1);
        let one = CorpusConfig {
            jobs: 1,
            ..CorpusConfig::default()
        };
        assert_eq!(one.effective_jobs(), 1);
    }

    #[test]
    fn load_error_is_isolated_and_typed() {
        let source = MemorySource::new(vec![tcpa_trace::CorpusItem::pcap(
            "/nonexistent/never.pcap",
        )]);
        let report = analyze_corpus(source, &CorpusConfig::default());
        assert_eq!(report.census.io_errors, 1);
        assert!(matches!(
            report.items[0].outcome,
            ItemOutcome::Failed(AnalysisError::Io { .. })
        ));
        assert!(report.render().contains("i/o error"));
        assert!(
            report.render().contains("never.pcap"),
            "failure line must name the originating path"
        );
    }

    #[test]
    fn transient_io_errors_retry_and_count() {
        let before = tcpa_obs::registry::global().snapshot();
        let source = MemorySource::new(vec![tcpa_trace::CorpusItem::flaky(
            "flaky.pcap",
            Trace::new(),
            2,
        )]);
        let config = CorpusConfig {
            jobs: 1,
            retry_backoff: std::time::Duration::from_millis(1),
            ..CorpusConfig::default()
        };
        let report = analyze_corpus(source, &config);
        assert_eq!(report.census.analyzed, 1, "{}", report.render());
        let after = tcpa_obs::registry::global().snapshot().since(&before);
        assert!(
            after
                .counters
                .get("corpus.io_retries")
                .copied()
                .unwrap_or(0)
                >= 2,
            "both injected failures must be counted as retries"
        );
    }

    #[test]
    fn audit_trail_records_retries_and_outcome() {
        let dir = std::env::temp_dir().join(format!("tcpa-audit-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let source = MemorySource::new(vec![
            tcpa_trace::CorpusItem::flaky("flaky.pcap", Trace::new(), 1),
            tcpa_trace::CorpusItem::pcap("/nonexistent/never.pcap"),
        ]);
        let config = CorpusConfig {
            jobs: 1,
            retry_backoff: std::time::Duration::from_millis(1),
            audit_dir: Some(dir.clone()),
            ..CorpusConfig::default()
        };
        let report = analyze_corpus(source, &config);
        assert_eq!(report.census.items_total, 2);

        let flaky = std::fs::read_to_string(dir.join("00000-flaky.pcap.json")).expect("trail 0");
        tcpa_obs::metrics::validate_audit(&flaky).expect("schema-valid trail");
        assert!(flaky.contains("\"kind\": \"retry\""), "{flaky}");
        assert!(flaky.contains("\"outcome\": \"analyzed\""), "{flaky}");
        assert!(flaky.contains("\"kind\": \"verdict\""), "{flaky}");

        let failed =
            std::fs::read_to_string(dir.join("00001-_nonexistent_never.pcap.json")).expect("t1");
        tcpa_obs::metrics::validate_audit(&failed).expect("schema-valid trail");
        assert!(failed.contains("\"outcome\": \"failed.io\""), "{failed}");
        assert!(failed.contains("\"kind\": \"error\""), "{failed}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn degrade_policy_parses_and_prints() {
        for policy in [
            DegradePolicy::Strict,
            DegradePolicy::Salvage,
            DegradePolicy::Skip,
        ] {
            assert_eq!(policy.name().parse::<DegradePolicy>(), Ok(policy));
        }
        assert!("lenient".parse::<DegradePolicy>().is_err());
        assert_eq!(DegradePolicy::default(), DegradePolicy::Skip);
    }
}
