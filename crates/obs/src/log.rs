//! A leveled stderr logger.
//!
//! Diagnostics must never interleave with machine output: everything
//! here goes to stderr, stdout stays reserved for census tables and
//! reports. The default level is [`Level::Warn`], so stderr is clean on
//! a healthy run; `-v`/`-vv` raise it and `--quiet` drops it to errors
//! only.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Failures the run cannot paper over.
    Error = 0,
    /// Degradations and suspicious conditions.
    Warn = 1,
    /// Progress milestones, configuration echoes.
    Info = 2,
    /// Per-item chatter.
    Debug = 3,
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);
static PROGRAM: Mutex<&'static str> = Mutex::new("tcpa");

/// Sets the most verbose level that still prints.
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current threshold.
pub fn level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// `true` when a message at `at` would print.
pub fn enabled(at: Level) -> bool {
    at <= level()
}

/// Sets the program name prefixed to every line (the CLI sets
/// `"tcpanaly"`).
pub fn set_program(name: &'static str) {
    *lock(&PROGRAM) = name;
}

/// The configured program name.
pub fn program() -> &'static str {
    *lock(&PROGRAM)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Emits `msg` at `at` to stderr if the level allows.
pub fn log(at: Level, msg: &str) {
    if enabled(at) {
        eprintln!("{}: {msg}", program());
    }
}

/// Error-level message (prints even under `--quiet`).
pub fn error(msg: &str) {
    log(Level::Error, msg);
}

/// Warning-level message.
pub fn warn(msg: &str) {
    log(Level::Warn, msg);
}

/// Info-level message (needs `-v`).
pub fn info(msg: &str) {
    log(Level::Info, msg);
}

/// Debug-level message (needs `-vv`).
pub fn debug(msg: &str) {
    log(Level::Debug, msg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_gate() {
        assert!(Level::Error < Level::Debug);
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        set_level(Level::Warn);
    }
}
