// Bad: narrowing casts on decoded length fields.
fn decode(len_field: u64, count_field: u64) -> (usize, u32, u16) {
    let len = len_field as usize;
    let records = count_field as u32;
    let port = count_field as u16;
    (len, records, port)
}
