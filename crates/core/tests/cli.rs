// PathSpec scenarios are configured field-by-field from the default so
// each deviation reads as one labelled line.
#![allow(clippy::field_reassign_with_default)]

//! End-to-end tests of the `tcpanaly` command-line binary: generate a
//! pcap with the simulator, then drive the real executable over it.

use std::io::Write as _;
use std::process::Command;
use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::pcap_io;
use tcpa_wire::TsResolution;

fn write_trace(name: &str, trace: &tcpa_trace::Trace) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("tcpanaly_cli_{name}_{}.pcap", std::process::id()));
    let file = std::fs::File::create(&path).expect("create pcap");
    pcap_io::write_pcap(trace, file, TsResolution::Micro, 0).expect("write pcap");
    path
}

fn tcpanaly(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_tcpanaly"))
        .args(args)
        .output()
        .expect("run tcpanaly");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn cli_fingerprints_a_pcap() {
    let out = run_transfer(
        profiles::solaris_2_4(),
        profiles::reno(),
        &PathSpec::default(),
        100 * 1024,
        400,
    );
    let path = write_trace("fp", &out.sender_trace());
    let (stdout, stderr, ok) = tcpanaly(&["--sender", path.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("Calibration"));
    assert!(stdout.contains("Solaris 2.4"), "{stdout}");
    assert!(stdout.contains("close"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn cli_auto_detects_vantage() {
    let out = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &PathSpec::default(),
        100 * 1024,
        401,
    );
    let spath = write_trace("auto_s", &out.sender_trace());
    let (stdout, _, ok) = tcpanaly(&[spath.to_str().unwrap()]);
    assert!(ok);
    assert!(
        stdout.contains("auto-detected Sender"),
        "sender trace: {stdout}"
    );
    let rpath = write_trace("auto_r", &out.receiver_trace());
    let (stdout, _, ok) = tcpanaly(&[rpath.to_str().unwrap()]);
    assert!(ok);
    assert!(
        stdout.contains("auto-detected Receiver"),
        "receiver trace: {stdout}"
    );
    let _ = std::fs::remove_file(spath);
    let _ = std::fs::remove_file(rpath);
}

#[test]
fn cli_single_impl_mode_reports_issues() {
    // A Linux 1.0 storm trace checked against Generic Reno: the CLI must
    // surface the disagreements.
    let mut path_spec = PathSpec::default();
    path_spec.loss_data = tcpa_netsim::LossModel::Periodic(20);
    let out = run_transfer(
        profiles::linux_1_0(),
        profiles::linux_1_0(),
        &path_spec,
        64 * 1024,
        402,
    );
    let path = write_trace("impl", &out.sender_trace());
    let (stdout, _, ok) = tcpanaly(&["--impl", "Generic Reno", path.to_str().unwrap()]);
    assert!(ok);
    assert!(
        stdout.contains("clearly incorrect"),
        "Reno must not fit a Linux 1.0 storm: {stdout}"
    );
    let (stdout, _, ok) = tcpanaly(&["--impl", "Linux 1.0", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("close"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn cli_rejects_unknown_impl_and_missing_file() {
    let out = run_transfer(
        profiles::reno(),
        profiles::reno(),
        &PathSpec::default(),
        16 * 1024,
        403,
    );
    let path = write_trace("err", &out.sender_trace());
    let (_, stderr, ok) = tcpanaly(&["--impl", "4.5BSD", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("unknown implementation"));
    let (_, stderr, ok) = tcpanaly(&["/nonexistent/file.pcap"]);
    assert!(!ok);
    assert!(stderr.contains("file.pcap"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn cli_rejects_garbage_capture() {
    let path =
        std::env::temp_dir().join(format!("tcpanaly_cli_garbage_{}.pcap", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(b"this is not a capture file at all").unwrap();
    drop(f);
    let (_, stderr, ok) = tcpanaly(&[path.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("magic"), "{stderr}");
    let _ = std::fs::remove_file(path);
}

/// Like [`tcpanaly`], but also returns the raw exit code (batch mode has
/// a three-way convention: 0 ok, 1 failed items, 2 usage).
fn tcpanaly_code(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_tcpanaly"))
        .args(args)
        .output()
        .expect("run tcpanaly");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

/// A temp directory holding `n` small generated pcaps.
fn batch_dir(tag: &str, n: usize) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tcpanaly_batch_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    for i in 0..n {
        let out = run_transfer(
            profiles::reno(),
            profiles::reno(),
            &PathSpec::default(),
            8 * 1024,
            500 + i as u64,
        );
        let file = std::fs::File::create(dir.join(format!("t{i}.pcap"))).unwrap();
        pcap_io::write_pcap(&out.sender_trace(), file, TsResolution::Micro, 0).unwrap();
    }
    dir
}

#[test]
fn cli_batch_mode_prints_census_and_is_deterministic() {
    let dir = batch_dir("census", 6);
    let dir_arg = dir.to_str().unwrap();
    let (one, _, code) = tcpanaly_code(&["--jobs", "1", dir_arg]);
    assert_eq!(code, 0, "{one}");
    assert!(one.contains("Corpus census: 6 traces (6 analyzed"), "{one}");
    assert!(one.contains("best-fit connections"), "{one}");
    let (four, _, code) = tcpanaly_code(&["--jobs", "4", dir_arg]);
    assert_eq!(code, 0);
    assert_eq!(one, four, "batch output must not depend on worker count");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cli_batch_mode_exit_codes() {
    let dir = batch_dir("codes", 2);
    let good = dir.join("t0.pcap");
    // One unreadable item → census still prints, exit 1.
    let (stdout, _, code) = tcpanaly_code(&[
        "--jobs",
        "2",
        good.to_str().unwrap(),
        "/nonexistent/never.pcap",
    ]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("1 failed"), "{stdout}");
    assert!(stdout.contains("failures: 1 i/o"), "{stdout}");
    assert!(stdout.contains("failed items:"), "{stdout}");
    assert!(
        stdout.contains("never.pcap: ") && stdout.contains("i/o error"),
        "failure lines must carry the path and the typed error: {stdout}"
    );
    // Batch mode is incompatible with single-trace flags → usage (2).
    let (_, stderr, code) = tcpanaly_code(&[
        "--jobs",
        "2",
        "--impl",
        "Generic Reno",
        good.to_str().unwrap(),
    ]);
    assert_eq!(code, 2);
    assert!(stderr.contains("incompatible"), "{stderr}");
    // A directory with no pcaps → usage (2).
    let empty = dir.join("empty_sub");
    std::fs::create_dir_all(&empty).unwrap();
    let (_, stderr, code) = tcpanaly_code(&["--jobs", "0", empty.to_str().unwrap()]);
    assert_eq!(code, 2);
    assert!(stderr.contains("no .pcap files"), "{stderr}");
    // Bad count → usage (2).
    let (_, _, code) = tcpanaly_code(&["--jobs", "lots", good.to_str().unwrap()]);
    assert_eq!(code, 2);
    let _ = std::fs::remove_dir_all(dir);
}

/// Path of a committed damaged fixture (see `tests/fixtures/mangled/`).
fn mangled_fixture(name: &str) -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/mangled")
        .join(name)
}

#[test]
fn cli_degrade_salvage_single_file_recovers() {
    let path = mangled_fixture("corrupt-timestamp.pcap");
    let path = path.to_str().unwrap();
    // Default (skip) policy: damaged file is an error, exit 1.
    let (_, stderr, code) = tcpanaly_code(&[path]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("timestamp"), "{stderr}");
    // Salvage policy: recovered records are analyzed, damage is printed.
    let (stdout, stderr, code) = tcpanaly_code(&["--degrade=salvage", path]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("salvaged 32 records"), "{stdout}");
    assert!(stdout.contains("corrupt-timestamp"), "{stdout}");
    assert!(stdout.contains("Calibration"), "{stdout}");
}

#[test]
fn cli_degrade_strict_single_file_exit_3() {
    let path = mangled_fixture("garbage-splice.pcap");
    let (_, stderr, code) = tcpanaly_code(&["--degrade", "strict", path.to_str().unwrap()]);
    assert_eq!(code, 3, "{stderr}");
    assert!(stderr.contains("strict mode aborted"), "{stderr}");
}

#[test]
fn cli_batch_degrade_policies_and_exit_codes() {
    let dir = batch_dir("degrade", 2);
    for name in ["corrupt-timestamp.pcap", "oversized-length.pcap"] {
        std::fs::copy(mangled_fixture(name), dir.join(format!("zz-{name}"))).unwrap();
    }
    let dir_arg = dir.to_str().unwrap();

    // skip (default): damaged items are failed items → exit 1, and the
    // failure lines carry the typed error plus the originating path.
    let (stdout, _, code) = tcpanaly_code(&["--jobs", "2", dir_arg]);
    assert_eq!(code, 1, "{stdout}");
    assert!(
        stdout.contains("(2 analyzed, 0 salvaged, 2 failed)"),
        "{stdout}"
    );
    assert!(stdout.contains("failed items:"), "{stdout}");
    assert!(stdout.contains("damaged capture"), "{stdout}");
    assert!(stdout.contains("zz-corrupt-timestamp.pcap"), "{stdout}");
    assert!(stdout.contains("--degrade=salvage"), "{stdout}");

    // salvage: damaged items degrade to analyzed-with-accounting → exit 0,
    // deterministic across worker counts.
    let (one, _, code) = tcpanaly_code(&["--jobs", "1", "--degrade=salvage", dir_arg]);
    assert_eq!(code, 0, "{one}");
    assert!(one.contains("(2 analyzed, 2 salvaged, 0 failed)"), "{one}");
    assert!(one.contains("salvage: 2 traces degraded"), "{one}");
    let (four, _, code) = tcpanaly_code(&["--jobs", "4", "--degrade=salvage", dir_arg]);
    assert_eq!(code, 0);
    assert_eq!(one, four, "salvage census must not depend on worker count");

    // strict: first malformed capture aborts the run → exit 3.
    let (stdout, stderr, code) = tcpanaly_code(&["--jobs", "1", "--degrade", "strict", dir_arg]);
    assert_eq!(code, 3, "{stdout}\n{stderr}");
    assert!(stdout.contains("RUN ABORTED"), "{stdout}");
    assert!(stderr.contains("strict mode aborted"), "{stderr}");

    // An unknown mode is a usage error → exit 2.
    let (_, stderr, code) = tcpanaly_code(&["--degrade", "lenient", dir_arg]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown degradation mode"), "{stderr}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cli_list_impls() {
    let (stdout, _, ok) = tcpanaly(&["--list-impls"]);
    assert!(ok);
    assert!(stdout.contains("Solaris 2.4"));
    assert!(stdout.contains("Trumpet/Winsock"));
    assert!(stdout.lines().count() >= 20);
}
