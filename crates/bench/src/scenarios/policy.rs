//! §9 — receiver acking policies and response delays.

use crate::{Section, TextTable};
use tcpa_tcpsim::harness::{run_transfer, PathSpec};
use tcpa_tcpsim::profiles;
use tcpa_trace::{Connection, Duration, Histogram};
use tcpanaly::receiver::{analyze_receiver, AckClass, PolicyGuess};

/// §9.1 — delayed-ack latency distributions and the T·ρ ≤ 2b band.
///
/// The paper: BSD delayed acks are uniform over 0–200 ms (heartbeat);
/// Linux 1.0 acks every packet within ~1 ms; Solaris uses a 50 ms
/// interval timer, which for link rates below ≈20 KB/s guarantees *every*
/// ack is a delayed ack (counter-productively) — a band that includes the
/// then-common 56/64 kb/s links, whereas BSD's 200 ms timer only suffers
/// this below ≈5 KB/s.
pub fn ack_policy() -> Section {
    let mut table = TextTable::new(&[
        "receiver",
        "rate",
        "delayed",
        "normal",
        "stretch",
        "mean delay",
        "cv",
        "policy guess",
    ]);

    let mut bsd_ok = false;
    let mut linux_ok = false;
    let mut solaris_ok = false;
    let mut solaris_all_delayed_at_64k = false;
    let mut bsd_normal_at_64k = false;

    for (cfg, label) in [
        (profiles::reno(), "BSD (200ms hb)"),
        (profiles::linux_1_0(), "Linux 1.0"),
        (profiles::solaris_2_4(), "Solaris 2.4"),
    ] {
        for &rate in &[64_000u64, 1_544_000] {
            let mut path = PathSpec::default();
            path.rate_bps = rate;
            let bytes = if rate < 200_000 {
                48 * 1024
            } else {
                100 * 1024
            };
            let out = run_transfer(profiles::reno(), cfg.clone(), &path, bytes, 900);
            let conn = Connection::split(&out.receiver_trace()).remove(0);
            let a = analyze_receiver(&conn).expect("analyzable");
            let delayed = a.count(AckClass::Delayed);
            let normal = a.count(AckClass::Normal);
            let stretch = a.count(AckClass::Stretch);
            let mean = a
                .ack_delays
                .mean()
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into());
            // CV of the delayed-ack histogram over 0..250 ms.
            let mut hist = Histogram::new(Duration::ZERO, Duration::from_millis(25), 10);
            for &d in a.delayed_ack_delays.samples() {
                hist.add(d);
            }
            let cv = hist.cv();
            table.row(vec![
                label.into(),
                if rate < 200_000 {
                    "64 kb/s".into()
                } else {
                    "T1".into()
                },
                delayed.to_string(),
                normal.to_string(),
                stretch.to_string(),
                mean,
                format!("{cv:.2}"),
                format!("{:?}", a.policy),
            ]);

            if rate == 64_000 {
                match label {
                    "BSD (200ms hb)" => {
                        bsd_ok = matches!(a.policy, PolicyGuess::Heartbeat { .. });
                        // §9.1: at 64 kb/s BSD still manages normal acks.
                        bsd_normal_at_64k = normal > 0;
                    }
                    "Linux 1.0" => {
                        linux_ok = a.policy == PolicyGuess::EveryPacket;
                    }
                    "Solaris 2.4" => {
                        solaris_ok = matches!(a.policy, PolicyGuess::IntervalTimer { .. });
                        // §9.1: T=50 ms, ρ=8 KB/s, b=1460: Tρ=400 < 2b=2920
                        // ⇒ every in-sequence ack is a delayed ack.
                        solaris_all_delayed_at_64k = normal == 0 && delayed > 10;
                    }
                    _ => {}
                }
            }
        }
    }

    Section {
        id: "§9.1".into(),
        title: "Acking in-sequence data: delayed / normal / stretch".into(),
        paper_claim: "BSD delayed acks spread uniformly over 0–200 ms (heartbeat \
                      timer); Linux 1.0 acks every packet within ~1 ms; Solaris's \
                      50 ms per-packet timer guarantees every ack is delayed \
                      whenever the link rate ρ ≤ 2·MSS/T ≈ 58 KB/s — including \
                      56/64 kb/s links — where BSD's 200 ms timer still produces \
                      normal acks."
            .into(),
        params: "Reno sender; BSD / Linux 1.0 / Solaris receivers at 64 kb/s and T1".into(),
        body: table.render(),
        measured: vec![
            ("BSD policy identified".into(), bsd_ok.to_string()),
            ("Linux policy identified".into(), linux_ok.to_string()),
            ("Solaris policy identified".into(), solaris_ok.to_string()),
            (
                "Solaris at 64 kb/s: all acks delayed".into(),
                solaris_all_delayed_at_64k.to_string(),
            ),
            (
                "BSD at 64 kb/s: normal acks present".into(),
                bsd_normal_at_64k.to_string(),
            ),
        ],
        verdict: if bsd_ok
            && linux_ok
            && solaris_ok
            && solaris_all_delayed_at_64k
            && bsd_normal_at_64k
        {
            "REPRODUCED: all three policies identified; the Solaris 50 ms sub-optimality band includes 64 kb/s exactly as derived in §9.1.".into()
        } else {
            format!(
                "PARTIAL: bsd={bsd_ok} linux={linux_ok} solaris={solaris_ok} \
                 sol64k={solaris_all_delayed_at_64k} bsd64k={bsd_normal_at_64k}"
            )
        },
    }
}

/// §9.3 — receiver response delays (the RTT-measurement noise term).
pub fn response_delay() -> Section {
    let mut table = TextTable::new(&["receiver", "min", "median", "p90", "max"]);
    let mut linux_small = false;
    let mut bsd_large = false;
    for (cfg, label) in [
        (profiles::reno(), "BSD (200ms hb)"),
        (profiles::linux_1_0(), "Linux 1.0"),
        (profiles::solaris_2_4(), "Solaris 2.4"),
    ] {
        let mut path = PathSpec::default();
        path.rate_bps = 128_000;
        let out = run_transfer(profiles::reno(), cfg, &path, 64 * 1024, 901);
        let conn = Connection::split(&out.receiver_trace()).remove(0);
        let a = analyze_receiver(&conn).expect("analyzable");
        let mut d = a.ack_delays.clone();
        let min = d.min().map(|x| x.to_string()).unwrap_or_default();
        let median = d.median().map(|x| x.to_string()).unwrap_or_default();
        let p90 = d
            .percentile(90.0)
            .map(|x| x.to_string())
            .unwrap_or_default();
        let max = d.max().map(|x| x.to_string()).unwrap_or_default();
        match label {
            "Linux 1.0" => {
                linux_small =
                    d.percentile(90.0).unwrap_or(Duration::from_secs(1)) < Duration::from_millis(5)
            }
            "BSD (200ms hb)" => {
                bsd_large = d.max().unwrap_or(Duration::ZERO) > Duration::from_millis(100)
            }
            _ => {}
        }
        table.row(vec![label.into(), min, median, p90, max]);
    }
    Section {
        id: "§9.3".into(),
        title: "Receiver response delays".into(),
        paper_claim: "Variations in how long receivers take to generate acks \
                      introduce a significant noise term for senders measuring \
                      RTTs to high resolution: ~0–200 ms for BSD heartbeat \
                      receivers versus ~1 ms for ack-every-packet receivers."
            .into(),
        params: "Reno sender at 128 kb/s; per-receiver ack generation delay \
                 statistics"
            .into(),
        body: table.render(),
        measured: vec![
            ("Linux p90 < 5 ms".into(), linux_small.to_string()),
            ("BSD max > 100 ms".into(), bsd_large.to_string()),
        ],
        verdict: if linux_small && bsd_large {
            "REPRODUCED: two orders of magnitude between acking policies — the paper's RTT noise term.".into()
        } else {
            format!("PARTIAL: linux_small={linux_small} bsd_large={bsd_large}")
        },
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn ack_policy_reproduces() {
        let s = super::ack_policy();
        assert!(
            s.verdict.starts_with("REPRODUCED"),
            "{}\n{}",
            s.verdict,
            s.body
        );
    }

    #[test]
    fn response_delay_reproduces() {
        let s = super::response_delay();
        assert!(
            s.verdict.starts_with("REPRODUCED"),
            "{}\n{}",
            s.verdict,
            s.body
        );
    }
}
