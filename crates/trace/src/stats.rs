//! Summary statistics used by the analyzer and the reproduction harness.
//!
//! tcpanaly compares candidate TCP implementations using statistics of
//! *response delays* (§6.1: minimum and mean response times) and reports
//! ack-delay *distributions* (§9.1: BSD's uniform 0–200 ms spread). These
//! helpers keep that logic in one place.

use crate::time::Duration;

/// Running summary of a set of durations: count, min, max, mean and a few
/// percentiles (computed exactly; samples are retained).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<Duration>,
    sorted: bool,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Summary {
        Summary::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, d: Duration) {
        self.samples.push(d);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<Duration> {
        self.samples.iter().copied().min()
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<Duration> {
        self.samples.iter().copied().max()
    }

    /// Arithmetic mean, if any samples exist.
    pub fn mean(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: i128 = self.samples.iter().map(|d| i128::from(d.0)).sum();
        Some(Duration((sum / self.samples.len() as i128) as i64))
    }

    /// Exact percentile by nearest-rank (p in [0, 100]).
    pub fn percentile(&mut self, p: f64) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
        Some(self.samples[rank.min(n) - 1])
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Option<Duration> {
        self.percentile(50.0)
    }

    /// The index of the largest sample, if any — tcpanaly flags the
    /// *location* of the largest response delay to pinpoint where an
    /// implementation model disagrees with a trace (§6.1).
    pub fn argmax(&self) -> Option<usize> {
        self.samples
            .iter()
            .enumerate()
            .max_by_key(|(_, d)| **d)
            .map(|(i, _)| i)
    }

    /// Borrow of the raw samples, in insertion order unless a percentile
    /// has been computed since the last insertion.
    pub fn samples(&self) -> &[Duration] {
        &self.samples
    }
}

/// A fixed-bin histogram over durations, for reporting distributions such
/// as §9.1's delayed-ack latencies.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: Duration,
    bin_width: Duration,
    bins: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above the top edge.
    pub overflow: u64,
}

impl Histogram {
    /// Builds a histogram with `n_bins` bins of width `bin_width`, starting
    /// at `lo`.
    pub fn new(lo: Duration, bin_width: Duration, n_bins: usize) -> Histogram {
        assert!(bin_width.0 > 0, "bin width must be positive");
        assert!(n_bins > 0, "need at least one bin");
        Histogram {
            lo,
            bin_width,
            bins: vec![0; n_bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, d: Duration) {
        if d < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((d.0 - self.lo.0) / self.bin_width.0) as usize;
        if idx >= self.bins.len() {
            self.overflow += 1;
        } else {
            self.bins[idx] += 1;
        }
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// The `[lo, hi)` range of bin `i`.
    pub fn bin_range(&self, i: usize) -> (Duration, Duration) {
        let lo = Duration(self.lo.0 + self.bin_width.0 * i as i64);
        (lo, lo + self.bin_width)
    }

    /// Coefficient of variation of the bin counts — a cheap uniformity
    /// check. A uniform distribution over the bins has CV near 0; a
    /// point-mass puts nearly everything in one bin (CV ≈ √n). Used to
    /// distinguish BSD's even 0–200 ms delayed-ack spread from Linux 1.0's
    /// ≈1 ms point mass (§9.1).
    pub fn cv(&self) -> f64 {
        let n = self.bins.len() as f64;
        let total = self.total() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let mean = total / n;
        let var = self
            .bins
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }

    /// A one-line bar rendering for reports.
    pub fn render(&self) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &count) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_range(i);
            let bar_len = (count * 50 / max) as usize;
            out.push_str(&format!(
                "{:>10} - {:>10} | {:<50} {}\n",
                lo.to_string(),
                hi.to_string(),
                "#".repeat(bar_len),
                count
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for ms in [10, 20, 30, 40] {
            s.add(Duration::from_millis(ms));
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.min(), Some(Duration::from_millis(10)));
        assert_eq!(s.max(), Some(Duration::from_millis(40)));
        assert_eq!(s.mean(), Some(Duration::from_millis(25)));
    }

    #[test]
    fn summary_percentiles_nearest_rank() {
        let mut s = Summary::new();
        for ms in 1..=100 {
            s.add(Duration::from_millis(ms));
        }
        assert_eq!(s.percentile(50.0), Some(Duration::from_millis(50)));
        assert_eq!(s.percentile(95.0), Some(Duration::from_millis(95)));
        assert_eq!(s.percentile(100.0), Some(Duration::from_millis(100)));
        assert_eq!(s.percentile(0.0), Some(Duration::from_millis(1)));
    }

    #[test]
    fn summary_empty_is_none() {
        let mut s = Summary::new();
        assert!(s.mean().is_none());
        assert!(s.percentile(50.0).is_none());
        assert!(s.argmax().is_none());
    }

    #[test]
    fn summary_argmax_points_at_largest() {
        let mut s = Summary::new();
        s.add(Duration::from_millis(5));
        s.add(Duration::from_millis(50));
        s.add(Duration::from_millis(7));
        assert_eq!(s.argmax(), Some(1));
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(Duration::ZERO, Duration::from_millis(50), 4);
        h.add(Duration::from_millis(-1)); // underflow
        h.add(Duration::from_millis(0));
        h.add(Duration::from_millis(49));
        h.add(Duration::from_millis(50));
        h.add(Duration::from_millis(199));
        h.add(Duration::from_millis(200)); // overflow
        assert_eq!(h.bins(), &[2, 1, 0, 1]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 4);
        assert_eq!(
            h.bin_range(1),
            (Duration::from_millis(50), Duration::from_millis(100))
        );
    }

    #[test]
    fn histogram_cv_separates_uniform_from_point_mass() {
        let mut uniform = Histogram::new(Duration::ZERO, Duration::from_millis(10), 20);
        let mut point = Histogram::new(Duration::ZERO, Duration::from_millis(10), 20);
        for i in 0..200 {
            uniform.add(Duration::from_millis(i % 200));
            point.add(Duration::from_millis(1));
        }
        assert!(uniform.cv() < 0.3, "uniform cv = {}", uniform.cv());
        assert!(point.cv() > 3.0, "point cv = {}", point.cv());
    }

    #[test]
    fn histogram_render_has_bin_per_line() {
        let mut h = Histogram::new(Duration::ZERO, Duration::from_millis(100), 2);
        h.add(Duration::from_millis(10));
        let rendered = h.render();
        assert_eq!(rendered.lines().count(), 2);
    }
}
